//! Workload generation: seeded draws of member sets, sender sets and
//! core candidates over a topology.

use cbt_topology::{AllPairs, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A seeded workload generator bound to one graph.
pub struct Workload {
    rng: ChaCha8Rng,
    nodes: Vec<NodeId>,
}

impl Workload {
    /// Binds to `g` with a seed.
    pub fn new(g: &Graph, seed: u64) -> Self {
        Workload { rng: ChaCha8Rng::seed_from_u64(seed), nodes: g.nodes().collect() }
    }

    /// Draws `k` distinct member routers.
    pub fn members(&mut self, k: usize) -> Vec<NodeId> {
        let mut pool = self.nodes.clone();
        pool.shuffle(&mut self.rng);
        pool.truncate(k.min(self.nodes.len()));
        pool.sort(); // deterministic order downstream
        pool
    }

    /// Draws `k` senders from `members` (cycling if k > members).
    pub fn senders_from(&mut self, members: &[NodeId], k: usize) -> Vec<NodeId> {
        assert!(!members.is_empty());
        let mut pool: Vec<NodeId> = members.to_vec();
        pool.shuffle(&mut self.rng);
        (0..k).map(|i| pool[i % pool.len()]).collect()
    }

    /// A random core choice.
    pub fn random_core(&mut self) -> NodeId {
        *self.nodes.choose(&mut self.rng).expect("graph has nodes")
    }
}

/// Core placement strategies (ablation Abl-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorePlacement {
    /// Uniformly random router.
    Random,
    /// The graph center (minimum eccentricity).
    Center,
    /// The member-set medoid (minimum total distance to members).
    Medoid,
}

impl CorePlacement {
    /// Resolves the strategy to a concrete router.
    pub fn place(self, ap: &AllPairs, members: &[NodeId], wl: &mut Workload) -> NodeId {
        match self {
            CorePlacement::Random => wl.random_core(),
            CorePlacement::Center => ap.center().expect("connected graph"),
            CorePlacement::Medoid => ap.medoid(members).expect("non-empty members"),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CorePlacement::Random => "random",
            CorePlacement::Center => "center",
            CorePlacement::Medoid => "medoid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::generate;

    #[test]
    fn members_are_distinct_sorted_and_seeded() {
        let g = generate::grid(5, 5);
        let a = Workload::new(&g, 7).members(10);
        let b = Workload::new(&g, 7).members(10);
        assert_eq!(a, b, "same seed, same draw");
        assert_eq!(a.len(), 10);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "distinct");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted");
        let c = Workload::new(&g, 8).members(10);
        assert_ne!(a, c, "different seed, different draw");
    }

    #[test]
    fn members_clamped_to_graph_size() {
        let g = generate::line(3);
        assert_eq!(Workload::new(&g, 0).members(99).len(), 3);
    }

    #[test]
    fn senders_cycle_when_more_than_members() {
        let g = generate::line(5);
        let mut wl = Workload::new(&g, 1);
        let members = wl.members(2);
        let senders = wl.senders_from(&members, 5);
        assert_eq!(senders.len(), 5);
        for s in &senders {
            assert!(members.contains(s));
        }
    }

    #[test]
    fn placements_resolve() {
        let g = generate::grid(3, 3);
        let ap = AllPairs::compute(&g);
        let mut wl = Workload::new(&g, 2);
        let members = wl.members(4);
        assert_eq!(CorePlacement::Center.place(&ap, &members, &mut wl), NodeId(4));
        let medoid = CorePlacement::Medoid.place(&ap, &members, &mut wl);
        assert!(g.nodes().any(|n| n == medoid));
        let rand1 = CorePlacement::Random.place(&ap, &members, &mut wl);
        assert!(g.nodes().any(|n| n == rand1));
    }
}
