//! Shared plumbing for experiments that run the full packet-level
//! simulator (overhead, latency, failover): stand up a Waxman topology
//! with one stub LAN + host per router, join members, observe.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{generate, Graph, HostId, NetworkSpec, NodeId, RouterId};
use cbt_wire::{Addr, GroupId};

/// A ready-to-run simulated CBT deployment.
pub struct SimSetup {
    /// The world (routers + hosts installed, not yet started).
    pub cw: CbtWorld,
    /// Router-level graph it was built from.
    pub graph: Graph,
    /// The group used throughout.
    pub group: GroupId,
    /// Core router ids, primary first.
    pub cores: Vec<RouterId>,
    /// Core identity addresses, primary first.
    pub core_addrs: Vec<Addr>,
}

impl SimSetup {
    /// Builds a Waxman world of `n` routers with the given cores.
    pub fn waxman(n: usize, seed: u64, cfg: CbtConfig, cores: &[NodeId]) -> SimSetup {
        let graph = generate::waxman(generate::WaxmanParams { n, ..Default::default() }, seed);
        Self::from_graph(graph, cfg, cores)
    }

    /// Builds from an explicit router graph.
    pub fn from_graph(graph: Graph, cfg: CbtConfig, cores: &[NodeId]) -> SimSetup {
        let net = NetworkSpec::from_graph_with_stub_lans(&graph);
        let core_ids: Vec<RouterId> = cores.iter().map(|c| RouterId(c.0)).collect();
        let core_addrs: Vec<Addr> = core_ids.iter().map(|c| net.router_addr(*c)).collect();
        let cw =
            CbtWorld::build(net, cfg, WorldConfig { record_trace: true, ..Default::default() });
        SimSetup { cw, graph, group: GroupId::numbered(1), cores: core_ids, core_addrs }
    }

    /// The stub host living behind router `r` (one per router by
    /// construction of `from_graph_with_stub_lans`).
    pub fn host_of(&self, r: NodeId) -> HostId {
        HostId(r.0)
    }

    /// Schedules joins for the hosts behind `member_routers`, staggered
    /// `gap` apart starting at `start`.
    pub fn join_members(
        &mut self,
        member_routers: &[NodeId],
        start: SimTime,
        gap: SimDuration,
    ) -> Vec<(NodeId, SimTime)> {
        let cores = self.core_addrs.clone();
        let group = self.group;
        let mut schedule = Vec::new();
        let mut at = start;
        for &m in member_routers {
            let h = self.host_of(m);
            self.cw.host(h).join_at(at, group, cores.clone());
            schedule.push((m, at));
            at += gap;
        }
        schedule
    }

    /// Are all `member_routers`' serving DRs on-tree right now?
    pub fn all_on_tree(&mut self, member_routers: &[NodeId]) -> bool {
        let group = self.group;
        member_routers.iter().all(|m| {
            let r = RouterId(m.0);
            self.cw.router(r).engine().is_on_tree(group)
        })
    }

    /// Fleet-wide observability aggregate: every router's counter
    /// snapshot (drop taxonomy, protocol counters, latency histograms)
    /// merged into one. Deterministic for a deterministic run — safe to
    /// embed in byte-compared experiment output.
    pub fn obs_fleet(&mut self) -> cbt_obs::ObsSnapshot {
        let mut fleet = cbt_obs::ObsSnapshot { router: "fleet".into(), ..Default::default() };
        for i in 0..self.graph.node_count() {
            fleet.merge(&self.cw.router(RouterId(i as u32)).engine().obs_snapshot());
        }
        fleet
    }

    /// Count of member DRs currently on-tree.
    pub fn on_tree_count(&mut self, member_routers: &[NodeId]) -> usize {
        let group = self.group;
        member_routers
            .iter()
            .filter(|m| self.cw.router(RouterId(m.0)).engine().is_on_tree(group))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn waxman_world_joins_converge() {
        let graph = generate::waxman(generate::WaxmanParams { n: 25, ..Default::default() }, 5);
        let mut wl = Workload::new(&graph, 55);
        let members = wl.members(6);
        let core = members[0];
        let mut setup = SimSetup::from_graph(graph, CbtConfig::fast(), &[core]);
        setup.join_members(&members, SimTime::from_secs(1), SimDuration::from_millis(200));
        setup.cw.world.start();
        setup.cw.world.run_until(SimTime::from_secs(10));
        assert!(setup.all_on_tree(&members), "every member DR joined");
        // And the trace saw join traffic.
        use cbt_netsim::PacketKind;
        use cbt_wire::ControlType;
        assert!(setup.cw.world.trace().count(PacketKind::Control(ControlType::JoinRequest)) > 0);
    }
}
