//! Experiment output: named tables plus a machine-readable JSON blob.

use cbt_metrics::{BarChart, Table};

/// The result of one experiment run.
#[derive(Debug)]
pub struct Report {
    /// Experiment id (matches DESIGN.md's index, e.g. "S93-T1").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Named tables (the paper-style rows).
    pub tables: Vec<(String, Table)>,
    /// Rendered figures (terminal bar charts for figure-type results).
    pub charts: Vec<BarChart>,
    /// Everything again, machine-readable.
    pub json: serde_json::Value,
    /// Fleet-wide observability snapshot (drop-reason taxonomy,
    /// per-group protocol counters, latency histograms) for experiments
    /// that run the packet simulator; `Null` otherwise. Exported under
    /// `"obs"` in the JSON written next to the tables.
    pub obs: serde_json::Value,
    /// Free-form findings: the "shape" statements EXPERIMENTS.md quotes.
    pub findings: Vec<String>,
}

impl Report {
    /// New empty report.
    pub fn new(id: &'static str, title: &'static str) -> Self {
        Report {
            id,
            title,
            tables: Vec::new(),
            charts: Vec::new(),
            json: serde_json::Value::Null,
            obs: serde_json::Value::Null,
            findings: Vec::new(),
        }
    }

    /// Attaches a counter snapshot (usually the fleet aggregate from
    /// [`crate::simrun::SimSetup::obs_fleet`]). The snapshot's own JSON
    /// exporter is the schema authority; this just re-parses it into
    /// the report's machine-readable value.
    pub fn attach_obs(&mut self, snap: &cbt_obs::ObsSnapshot) -> &mut Self {
        self.obs = serde_json::from_str(&snap.to_json()).unwrap_or(serde_json::Value::Null);
        self
    }

    /// Adds a table.
    pub fn table(&mut self, name: impl Into<String>, t: Table) -> &mut Self {
        self.tables.push((name.into(), t));
        self
    }

    /// Adds a rendered figure.
    pub fn chart(&mut self, c: BarChart) -> &mut Self {
        self.charts.push(c);
        self
    }

    /// Adds a finding sentence.
    pub fn finding(&mut self, s: impl Into<String>) -> &mut Self {
        self.findings.push(s.into());
        self
    }

    /// Renders everything for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for (name, t) in &self.tables {
            out.push_str(&format!("\n-- {name} --\n"));
            out.push_str(&t.render());
        }
        for c in &self.charts {
            out.push('\n');
            out.push_str(&c.render(40));
        }
        if let Some(drops) = self.obs.get("drops") {
            out.push_str(&format!("\nFleet drop counters: {drops}\n"));
        }
        if !self.findings.is_empty() {
            out.push_str("\nFindings:\n");
            for f in &self.findings {
                out.push_str(&format!("  * {f}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut r = Report::new("X-1", "demo");
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        r.table("numbers", t);
        r.finding("a beats b");
        let s = r.render();
        assert!(s.contains("X-1"));
        assert!(s.contains("numbers"));
        assert!(s.contains("a beats b"));
    }
}
