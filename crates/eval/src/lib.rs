//! # cbt-eval — the experiment harness
//!
//! One module per experiment in DESIGN.md's index. Every experiment is
//! a pure function from parameters to a [`Report`] (tables + JSON), so
//! the CLI, the integration tests and the Criterion benches all drive
//! the same code.
//!
//! | id | module |
//! |---|---|
//! | Spec-E1..E6 | [`experiments::spec`] |
//! | S93-T1 state scaling | [`experiments::state`] |
//! | S93-T2 tree cost | [`experiments::treecost`] |
//! | S93-F1 delay ratio | [`experiments::delay`] |
//! | S93-F2 traffic concentration | [`experiments::traffic`] |
//! | S93-T3 control overhead | [`experiments::overhead`] |
//! | S93-T4 join latency | [`experiments::latency`] |
//! | Abl-1 core placement | [`experiments::placement`] |
//! | Abl-2 multi-core failover | [`experiments::multicore`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod membership;
pub mod parallel;
pub mod report;
pub mod simrun;
pub mod workload;

pub use report::Report;
