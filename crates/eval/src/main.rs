//! `cbt-eval` — regenerate any table/figure of the reproduction.
//!
//! ```text
//! cbt-eval <experiment> [--quick] [--jobs N]
//! cbt-eval all [--quick] [--jobs N]
//! cbt-eval list
//! ```
//!
//! Independent trials (one per seed) fan out over `--jobs N` worker
//! threads (default: `CBT_EVAL_JOBS` or the machine's parallelism);
//! results are merged in seed order, so the output is identical for
//! any N. Results are printed and also written as JSON under
//! `target/eval-results/`.

use cbt_eval::experiments::*;
use cbt_eval::Report;
use std::path::PathBuf;

/// A named experiment runner (`quick` flag → smaller presets).
type Runner = (&'static str, Box<dyn Fn(bool) -> Report>);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Parsed through the shared parallelism knob so `--jobs` and the
    // node's `--shards` reject bad values with identical messages.
    let jobs_knob = cbt::parallelism::EVAL_JOBS;
    if let Some(i) = args.iter().position(|a| a == jobs_knob.flag_name()) {
        let value = args.get(i + 1).map(String::as_str).unwrap_or("");
        match jobs_knob.parse_flag(value) {
            Ok(n) => cbt_eval::parallel::set_jobs(n),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    // `--depth N` caps the fault-schedule length of the `explore`
    // search (ignored by every other experiment).
    let mut depth: Option<usize> = None;
    if let Some(i) = args.iter().position(|a| a == "--depth") {
        let value = args.get(i + 1).map(String::as_str).unwrap_or("");
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => depth = Some(n),
            _ => {
                eprintln!("--depth expects a positive integer, got '{value}'");
                std::process::exit(2);
            }
        }
    }
    let mut skip_next = false;
    let which = args
        .iter()
        .find(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--jobs" || *a == "--depth" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .unwrap_or_default();

    let runners: Vec<Runner> = vec![
        ("spec-e1", Box::new(|_| spec::e1())),
        ("spec-e2", Box::new(|_| spec::e2())),
        ("spec-e3", Box::new(|_| spec::e3())),
        ("spec-e4", Box::new(|_| spec::e4())),
        ("spec-e5", Box::new(|_| spec::e5())),
        ("spec-e6", Box::new(|_| spec::e6())),
        (
            "state-scaling",
            Box::new(|q| state::run(&if q { state::Params::quick() } else { Default::default() })),
        ),
        (
            "tree-cost",
            Box::new(|q| {
                treecost::run(&if q { treecost::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "delay-ratio",
            Box::new(|q| delay::run(&if q { delay::Params::quick() } else { Default::default() })),
        ),
        (
            "traffic-concentration",
            Box::new(|q| {
                traffic::run(&if q { traffic::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "control-overhead",
            Box::new(|q| {
                overhead::run(&if q { overhead::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "join-latency",
            Box::new(|q| {
                latency::run(&if q { latency::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "core-placement",
            Box::new(|q| {
                placement::run(&if q { placement::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "multi-core",
            Box::new(|q| {
                multicore::run(&if q { multicore::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "groupscale",
            Box::new(|q| {
                groupscale::run(&if q { groupscale::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "dataplane",
            Box::new(|q| {
                dataplane::run(&if q { dataplane::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "shardscale",
            Box::new(|q| {
                shardscale::run(&if q { shardscale::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "netscale",
            Box::new(|q| {
                netscale::run(&if q { netscale::Params::quick() } else { Default::default() })
            }),
        ),
        (
            "explore",
            Box::new(move |q| {
                let mut p = if q { explore::Params::quick() } else { Default::default() };
                if let Some(d) = depth {
                    p.depth = d;
                }
                explore::run(&p)
            }),
        ),
    ];

    match which.as_str() {
        "" | "help" | "--help" => {
            eprintln!("usage: cbt-eval <experiment|all|list> [--quick]");
            eprintln!("experiments:");
            for (name, _) in &runners {
                eprintln!("  {name}");
            }
            std::process::exit(if which.is_empty() { 2 } else { 0 });
        }
        "list" => {
            for (name, _) in &runners {
                println!("{name}");
            }
        }
        "all" => {
            let mut timings = Vec::new();
            let mut timer_scaling = serde_json::Value::Null;
            let mut dataplane_rows = serde_json::Value::Null;
            let mut shard_scaling = serde_json::Value::Null;
            let mut netscale_rows = serde_json::Value::Null;
            let mut explore_cov = serde_json::Value::Null;
            for (name, run) in &runners {
                let t0 = std::time::Instant::now();
                let report = run(quick);
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                println!("{}", report.render());
                write_json(name, &report);
                // Scaling rows from the implementation benchmarks are
                // benchmark records in their own right; carry them into
                // the consolidated record alongside the wall timings.
                if *name == "groupscale" {
                    timer_scaling = report.json.clone();
                }
                if *name == "dataplane" {
                    dataplane_rows = report.json.clone();
                }
                if *name == "shardscale" {
                    shard_scaling = report.json.clone();
                }
                if *name == "netscale" {
                    netscale_rows = report.json.clone();
                }
                if *name == "explore" {
                    explore_cov = report.json.clone();
                }
                timings.push(serde_json::json!({
                    "experiment": *name,
                    "wall_ms": wall_ms,
                }));
            }
            write_bench(
                timings,
                timer_scaling,
                dataplane_rows,
                shard_scaling,
                netscale_rows,
                explore_cov,
                quick,
            );
        }
        name => match runners.iter().find(|(n, _)| *n == name) {
            Some((_, run)) => {
                let report = run(quick);
                println!("{}", report.render());
                write_json(name, &report);
            }
            None => {
                eprintln!("unknown experiment '{name}'; try `cbt-eval list`");
                std::process::exit(2);
            }
        },
    }
}

/// Consolidated wall-clock timings for an `all` run — the evaluation
/// suite's own benchmark record (timings vary run to run; the
/// experiment JSONs next to it do not).
#[allow(clippy::too_many_arguments)]
fn write_bench(
    timings: Vec<serde_json::Value>,
    timer_scaling: serde_json::Value,
    dataplane: serde_json::Value,
    shard_scaling: serde_json::Value,
    netscale: serde_json::Value,
    explore: serde_json::Value,
    quick: bool,
) {
    let dir = PathBuf::from("target");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let total: f64 = timings.iter().filter_map(|t| t["wall_ms"].as_f64()).sum();
    let payload = serde_json::json!({
        "suite": "cbt-eval all",
        "quick": quick,
        "jobs": cbt_eval::parallel::jobs(),
        "total_wall_ms": total,
        "experiments": timings,
        "timer_scaling": timer_scaling,
        "dataplane": dataplane,
        "shard_scaling": shard_scaling,
        "netscale": netscale,
        "explore": explore,
    });
    let path = dir.join("BENCH_eval.json");
    if let Ok(s) = serde_json::to_string_pretty(&payload) {
        let _ = std::fs::write(&path, s);
        eprintln!("[written {}]", path.display());
    }
}

fn write_json(name: &str, report: &Report) {
    let dir = PathBuf::from("target/eval-results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let payload = serde_json::json!({
        "id": report.id,
        "title": report.title,
        "findings": report.findings,
        "data": report.json,
        "obs": report.obs,
        "tables": report
            .tables
            .iter()
            .map(|(n, t)| serde_json::json!({"name": n, "csv": t.to_csv()}))
            .collect::<Vec<_>>(),
    });
    if let Ok(s) = serde_json::to_string_pretty(&payload) {
        let _ = std::fs::write(&path, s);
        eprintln!("[written {}]", path.display());
    }
}
