//! Parallel trial executor for the evaluation suite.
//!
//! Every sweep in this crate averages independent trials — one
//! simulation per seed, no shared state between them. [`run_trials`]
//! fans those trials out over a small thread pool and hands the
//! results back **in input order**, so aggregation code is oblivious
//! to scheduling: the merged output is byte-identical whether the
//! trials ran on one thread or eight.
//!
//! Worker count, in precedence order: [`set_jobs`] (the `--jobs N`
//! CLI flag), the `CBT_EVAL_JOBS` environment variable, then
//! `std::thread::available_parallelism()` — resolved through the
//! shared [`cbt::parallelism::EVAL_JOBS`] knob, so the precedence and
//! error messages match the node's `--shards`/`CBT_SHARDS` exactly.
//! With one job (or one trial) no threads are spawned at all — the
//! sequential fallback is a plain in-order map.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

static JOBS: OnceLock<usize> = OnceLock::new();

/// Pins the worker count (clamped to ≥ 1). First caller wins — the
/// CLI calls this before any experiment runs; later calls (and calls
/// after the first [`jobs`] query) are ignored.
pub fn set_jobs(n: usize) {
    let _ = JOBS.set(n.max(1));
}

/// The worker count trials fan out over.
pub fn jobs() -> usize {
    *JOBS.get_or_init(|| cbt::parallelism::EVAL_JOBS.resolve_lenient())
}

/// Runs `f` over every item, in parallel when [`jobs`] allows, and
/// returns the results **in item order** regardless of which worker
/// finished first.
///
/// Work is distributed by an atomic cursor (no per-worker chunking),
/// so a straggler trial cannot idle the other workers. A panic inside
/// `f` propagates once the scope joins.
pub fn run_trials<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // Send can only fail if the receiver is gone, which
                // means the scope is already unwinding from a panic.
                let _ = tx.send((i, f(&items[i])));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, v) in rx {
            slots[i] = Some(v);
        }
        slots.into_iter().map(|v| v.expect("every trial produced a result")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..64).collect();
        // Uneven workloads: later items finish sooner than earlier
        // ones, so completion order differs from input order.
        let out = run_trials(&items, |&i| {
            std::thread::sleep(std::time::Duration::from_micros(64 - i));
            i * 10
        });
        assert_eq!(out, items.iter().map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(run_trials(&none, |&x| x).is_empty());
        assert_eq!(run_trials(&[7u32], |&x| x + 1), vec![8]);
    }
}
