//! S93-F1 — delay ratio: member↔member path stretch over the shared
//! tree vs direct unicast shortest paths, as a function of group size.
//!
//! The '93 analysis: with a sensibly placed core the *average* stretch
//! stays small (≲1.4–1.5) and bounded ~2×; the figure reproduced here
//! is mean/max ratio vs group size.

use crate::report::Report;
use crate::workload::Workload;
use cbt_baselines::cbt_shared_tree;
use cbt_metrics::{delay_ratio_stats, table::f, Table};
use cbt_topology::{generate, AllPairs};
use serde_json::json;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Topology size.
    pub n: usize,
    /// Group sizes to sweep.
    pub group_sizes: Vec<usize>,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
}

impl Default for Params {
    fn default() -> Self {
        Params { n: 100, group_sizes: vec![2, 4, 8, 16, 32, 64], seeds: (0..30).collect() }
    }
}

impl Params {
    /// Small preset for tests/benches.
    pub fn quick() -> Self {
        Params { n: 40, group_sizes: vec![4, 16], seeds: vec![0, 1, 2] }
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("S93-F1", "delay ratio: shared tree vs unicast shortest path");
    let mut table = Table::new([
        "group size",
        "mean ratio",
        "p95 ratio",
        "max ratio",
        "mean tree dist",
        "mean direct dist",
    ]);
    let mut rows_json = Vec::new();

    for &m in &p.group_sizes {
        if m > p.n {
            continue;
        }
        let mut ratios = Vec::new();
        let mut p95s = Vec::new();
        let mut maxes = Vec::new();
        let mut tree_ds = Vec::new();
        let mut direct_ds = Vec::new();
        // One independent trial per seed; merged back in seed order.
        let trials = crate::parallel::run_trials(&p.seeds, |&seed| {
            let g = generate::waxman(generate::WaxmanParams { n: p.n, ..Default::default() }, seed);
            let ap = AllPairs::compute(&g);
            let mut wl = Workload::new(&g, seed.wrapping_add(3000));
            let members = wl.members(m);
            let core = ap.medoid(&members).expect("connected");
            let tree = cbt_shared_tree(&g, core, &members);
            delay_ratio_stats(&tree, &ap, &members).filter(|s| s.ratio.n > 0)
        });
        for stats in trials.into_iter().flatten() {
            ratios.push(stats.ratio.mean);
            p95s.push(stats.ratio.p95);
            maxes.push(stats.ratio.max);
            tree_ds.push(stats.tree_dist.mean);
            direct_ds.push(stats.direct_dist.mean);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        table.row([
            m.to_string(),
            f(avg(&ratios)),
            f(avg(&p95s)),
            f(avg(&maxes)),
            f(avg(&tree_ds)),
            f(avg(&direct_ds)),
        ]);
        rows_json.push(json!({
            "group_size": m,
            "mean_ratio": avg(&ratios),
            "p95_ratio": avg(&p95s),
            "max_ratio": avg(&maxes),
        }));
    }

    report.table(format!("delay stretch, Waxman n={}, medoid core", p.n), table);
    let mut fig = cbt_metrics::BarChart::new(format!(
        "Figure S93-F1: mean delay stretch vs group size (Waxman n={})",
        p.n
    ))
    .unit("x");
    for row in &rows_json {
        fig.bar(format!("|G|={}", row["group_size"]), row["mean_ratio"].as_f64().unwrap_or(0.0));
    }
    report.chart(fig);
    report.json = json!({
        "params": {"n": p.n, "group_sizes": p.group_sizes, "seeds": p.seeds.len()},
        "rows": rows_json,
    });
    report.finding(
        "Average member-pair stretch through a medoid core stays well under 2x, with the tail \
         bounded by roughly twice the unicast distance — the delay cost the '93 paper accepts \
         in exchange for O(G) state.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_at_least_one_and_bounded() {
        let r = run(&Params::quick());
        for row in r.json["rows"].as_array().unwrap() {
            let mean = row["mean_ratio"].as_f64().unwrap();
            assert!(mean >= 1.0 - 1e-9, "tree can't beat shortest path");
            assert!(mean < 2.5, "medoid core keeps stretch modest, got {mean}");
        }
    }
}
