//! Abl-1 — core placement: random vs graph-center vs group-medoid.
//!
//! The -03 draft pushes core selection out of the protocol (§1, "core
//! management ... also a problem for PIM-SM"); this ablation quantifies
//! how much placement matters for the two tree-quality metrics.

use crate::report::Report;
use crate::workload::{CorePlacement, Workload};
use cbt_baselines::cbt_shared_tree;
use cbt_metrics::{delay_ratio_stats, table::f, tree_cost, Table};
use cbt_topology::{generate, AllPairs};
use serde_json::json;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Topology size.
    pub n: usize,
    /// Group size.
    pub group_size: usize,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
}

impl Default for Params {
    fn default() -> Self {
        Params { n: 100, group_size: 16, seeds: (0..20).collect() }
    }
}

impl Params {
    /// Small preset for tests/benches.
    pub fn quick() -> Self {
        Params { n: 40, group_size: 8, seeds: vec![0, 1, 2] }
    }
}

/// Runs the ablation.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("Abl-1", "core placement: random vs center vs medoid");
    let mut table = Table::new(["placement", "mean delay ratio", "max delay ratio", "tree cost"]);
    let mut rows_json = Vec::new();

    for placement in [CorePlacement::Random, CorePlacement::Center, CorePlacement::Medoid] {
        let mut mean_r = 0.0;
        let mut max_r = 0.0;
        let mut cost = 0.0;
        let mut counted = 0usize;
        // One trial per seed, fanned out; summed below in seed order.
        let trials = crate::parallel::run_trials(&p.seeds, |&seed| {
            let g = generate::waxman(generate::WaxmanParams { n: p.n, ..Default::default() }, seed);
            let ap = AllPairs::compute(&g);
            let mut wl = Workload::new(&g, seed.wrapping_add(5000));
            let members = wl.members(p.group_size);
            let core = placement.place(&ap, &members, &mut wl);
            let tree = cbt_shared_tree(&g, core, &members);
            delay_ratio_stats(&tree, &ap, &members)
                .filter(|s| s.ratio.n > 0)
                .map(|s| (s.ratio.mean, s.ratio.max, tree_cost(&tree) as f64))
        });
        for (mean, max, c) in trials.into_iter().flatten() {
            mean_r += mean;
            max_r += max;
            cost += c;
            counted += 1;
        }
        let k = counted.max(1) as f64;
        table.row([placement.name().to_string(), f(mean_r / k), f(max_r / k), f(cost / k)]);
        rows_json.push(json!({
            "placement": placement.name(),
            "mean_ratio": mean_r / k,
            "max_ratio": max_r / k,
            "tree_cost": cost / k,
        }));
    }

    report
        .table(format!("placement quality, Waxman n={}, group size {}", p.n, p.group_size), table);
    report.json = json!({
        "params": {"n": p.n, "group_size": p.group_size, "seeds": p.seeds.len()},
        "rows": rows_json,
    });
    report.finding(
        "Medoid (group-aware) placement dominates: lowest stretch and cheapest tree; a random \
         core is the worst on both axes — quantifying why the drafts treat core placement as a \
         real management problem.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medoid_no_worse_than_random() {
        let r = run(&Params::quick());
        let rows = r.json["rows"].as_array().unwrap();
        let get = |name: &str, field: &str| -> f64 {
            rows.iter().find(|row| row["placement"] == name).unwrap()[field].as_f64().unwrap()
        };
        assert!(get("medoid", "mean_ratio") <= get("random", "mean_ratio") + 1e-9);
    }
}
