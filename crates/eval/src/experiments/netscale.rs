//! Impl-4 — internet-scale routing: incremental SPF + on-demand core
//! trees over an arena-backed (CSR) graph, driven to 100k routers and
//! a million member-sessions.
//!
//! The packet-level simulator tops out around the `NetworkBuilder`
//! address-plan cap (65 536 routers), so this experiment runs at the
//! graph level — exactly the layer the '93 paper's own evaluation used
//! — on a GT-ITM-style transit-stub topology:
//!
//! 1. **generate** a transit-stub graph (and, for the generation
//!    benchmark, a same-size grid-sampled Waxman graph) with wall
//!    times recorded;
//! 2. **build** the flat CSR arena and warm one shortest-path tree per
//!    group core — the on-demand RIB's steady state;
//! 3. **drive** a Poisson join/leave membership workload (diurnal
//!    curve, locality hotspots, flash crowd) and re-measure the '93
//!    axes — state, tree cost, delay ratio, traffic concentration —
//!    against flood-and-prune and shortest-path-tree baselines at the
//!    membership peak;
//! 4. **flap** random links and compare the incremental repair cost
//!    (nodes touched, wall time) against full recomputes, verifying at
//!    the end that the repaired trees are *identical* to from-scratch
//!    SPF.

use crate::membership::{FlashCrowd, MembershipEvent, MembershipParams, MembershipStream};
use crate::report::Report;
use cbt_baselines::{flood_and_prune, source_tree};
use cbt_metrics::{linkload, table::f, Table};
use cbt_obs::SpfStats;
use cbt_topology::csr::{CsrGraph, SpfScratch, SpfTree};
use cbt_topology::generate::{self, TransitStubParams, WaxmanParams};
use cbt_topology::NodeId;
use serde_json::json;
use std::collections::HashMap;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Transit-stub topology shape.
    pub topo: TransitStubParams,
    /// Number of multicast groups (cores spread over transit nodes).
    pub groups: usize,
    /// Background member-session arrivals over the horizon.
    pub arrivals: usize,
    /// Mean membership holding time (seconds).
    pub hold_s: f64,
    /// Simulated horizon (seconds); also the diurnal day length.
    pub horizon_s: f64,
    /// Flash-crowd joins on top of the background churn.
    pub flash_joins: usize,
    /// Senders per group for the baseline comparisons.
    pub senders_per_group: usize,
    /// Link flaps in the incremental-SPF benchmark.
    pub flaps: usize,
    /// Members given a full SPF for the delay-ratio sample.
    pub delay_sources: usize,
    /// Membership snapshots across the horizon.
    pub samples: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            // 8 × 16 × (1 + 6·130) = 99 968 routers.
            topo: TransitStubParams {
                transit_domains: 8,
                transit_size: 16,
                stubs_per_transit_node: 6,
                stub_size: 130,
            },
            groups: 32,
            arrivals: 1_000_000,
            hold_s: 4.0 * 3600.0,
            horizon_s: 86_400.0,
            flash_joins: 50_000,
            senders_per_group: 4,
            flaps: 64,
            delay_sources: 48,
            samples: 6,
            seed: 9393,
        }
    }
}

impl Params {
    /// ~10k-router preset for the CI smoke run.
    pub fn quick() -> Self {
        Params {
            // 4 × 8 × (1 + 4·77) = 9 888 routers.
            topo: TransitStubParams {
                transit_domains: 4,
                transit_size: 8,
                stubs_per_transit_node: 4,
                stub_size: 77,
            },
            groups: 16,
            arrivals: 100_000,
            hold_s: 1200.0,
            horizon_s: 7200.0,
            flash_joins: 10_000,
            senders_per_group: 2,
            flaps: 16,
            delay_sources: 12,
            samples: 4,
            seed: 9393,
        }
    }

    /// Tiny preset for the in-crate unit tests (runs in debug builds).
    #[cfg(test)]
    fn tiny() -> Self {
        Params {
            topo: TransitStubParams {
                transit_domains: 2,
                transit_size: 4,
                stubs_per_transit_node: 3,
                stub_size: 12,
            },
            groups: 4,
            arrivals: 3000,
            hold_s: 600.0,
            horizon_s: 3600.0,
            flash_joins: 500,
            senders_per_group: 2,
            flaps: 8,
            delay_sources: 4,
            samples: 2,
            seed: 9393,
        }
    }
}

/// xorshift64* for flap/target selection.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Union-of-member-paths walk over a warm core tree: stamps every
/// on-tree node, summing node count and edge weight without
/// allocating per query.
struct TreeWalk {
    mark: Vec<u32>,
    stamp: u32,
}

/// What one group's tree walk found.
struct Span {
    /// Routers on the tree (state entries for this group).
    nodes: u64,
    /// Total edge weight of the union tree.
    cost: u64,
    /// Tree edges as (child, parent) pairs.
    edges: Vec<(u32, u32)>,
}

impl TreeWalk {
    fn new(n: usize) -> Self {
        TreeWalk { mark: vec![u32::MAX; n], stamp: 0 }
    }

    fn span(&mut self, tree: &SpfTree, members: &[u32]) -> Span {
        self.stamp = self.stamp.wrapping_add(1);
        let mut span = Span { nodes: 0, cost: 0, edges: Vec::new() };
        for &m in members {
            if tree.dist(m).is_none() {
                continue;
            }
            let mut x = m;
            while self.mark[x as usize] != self.stamp {
                self.mark[x as usize] = self.stamp;
                span.nodes += 1;
                match tree.toward_root(x) {
                    Some(p) => {
                        let w = tree.dist(x).expect("on tree") - tree.dist(p).expect("parent");
                        span.cost += w;
                        span.edges.push((x, p));
                        x = p;
                    }
                    None => break, // reached the core
                }
            }
        }
        span
    }
}

/// One membership snapshot's cheap metrics.
#[derive(Debug, Clone)]
struct Sample {
    t_s: f64,
    concurrent: u64,
    cbt_state: u64,
    cbt_cost: u64,
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new(
        "Impl-4",
        "internet-scale routing: incremental SPF + on-demand core trees at 100k routers",
    );
    let n = p.topo.total_nodes();
    let transit = p.topo.transit_nodes();
    let groups = p.groups.min(transit);
    let mut stats = SpfStats::new();

    // --- Phase 1: topology generation (wall-timed). ---
    let t0 = std::time::Instant::now();
    let g = generate::transit_stub(p.topo, p.seed);
    let ts_gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Same-size Waxman via the grid sampler, β tuned for an
    // internet-like mean degree of ~8 (the O(n²) sampler this replaced
    // would take minutes at 100k nodes).
    let beta =
        (8.0 / (n as f64 * 0.25 * 2.0 * std::f64::consts::PI)).sqrt() / std::f64::consts::SQRT_2;
    let t0 = std::time::Instant::now();
    let wax = generate::waxman(WaxmanParams { n, alpha: 0.25, beta }, p.seed);
    let wax_gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    let wax_edges = wax.edge_count();
    drop(wax);

    // --- Phase 2: CSR arena + one warm tree per group core. ---
    let edge_list: Vec<(u32, u32, u32)> = g.edges().map(|(a, b, w)| (a.0, b.0, w)).collect();
    let t0 = std::time::Instant::now();
    let (csr, slot_pairs) = CsrGraph::from_edges(n, &edge_list);
    let csr_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cores: Vec<u32> = (0..groups).map(|gi| ((gi * transit) / groups) as u32).collect();
    let mut scratch = SpfScratch::new();
    let t0 = std::time::Instant::now();
    let mut trees: Vec<SpfTree> = cores
        .iter()
        .map(|&c| {
            let t = SpfTree::full(&csr, c, &mut scratch);
            stats.record_full(t.reached());
            t
        })
        .collect();
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let tree_bytes: usize = trees.iter().map(|t| t.mem_bytes()).sum();

    // --- Phase 3: membership workload + per-sample state/cost axes. ---
    let pool: Vec<u32> = (transit as u32..n as u32).collect();
    let mp = MembershipParams {
        groups,
        horizon_s: p.horizon_s,
        arrivals: p.arrivals,
        hold_s: p.hold_s,
        diurnal_depth: 0.6,
        day_s: p.horizon_s,
        hotspot_frac: 0.5,
        flash: Some(FlashCrowd {
            group: (groups as u32) / 2,
            at_s: 0.62 * p.horizon_s,
            joins: p.flash_joins,
            window_s: p.horizon_s / 72.0,
            hold_s: p.hold_s / 16.0,
        }),
    };
    let t0 = std::time::Instant::now();
    let mut counts: Vec<HashMap<u32, u32>> = vec![HashMap::new(); groups];
    let mut concurrent = 0u64;
    let mut total_joins = 0u64;
    let mut walker = TreeWalk::new(n);
    let mut samples: Vec<Sample> = Vec::new();
    let mut peak_members: Vec<Vec<u32>> = vec![Vec::new(); groups];
    let mut peak_concurrent = 0u64;
    let sample_gap_us = (p.horizon_s * 1e6) as u64 / p.samples as u64;
    let mut next_sample = sample_gap_us;
    let take_sample = |t_us: u64,
                       counts: &Vec<HashMap<u32, u32>>,
                       concurrent: u64,
                       walker: &mut TreeWalk,
                       samples: &mut Vec<Sample>,
                       peak_members: &mut Vec<Vec<u32>>,
                       peak_concurrent: &mut u64| {
        let mut state = 0u64;
        let mut cost = 0u64;
        let mut members: Vec<Vec<u32>> = Vec::with_capacity(groups);
        for (gi, c) in counts.iter().enumerate() {
            let mut m: Vec<u32> = c.keys().copied().collect();
            m.sort_unstable();
            let span = walker.span(&trees[gi], &m);
            state += span.nodes;
            cost += span.cost;
            members.push(m);
        }
        samples.push(Sample {
            t_s: t_us as f64 / 1e6,
            concurrent,
            cbt_state: state,
            cbt_cost: cost,
        });
        if concurrent > *peak_concurrent {
            *peak_concurrent = concurrent;
            *peak_members = members;
        }
    };
    for ev in MembershipStream::new(&mp, pool, p.seed) {
        let t_us = ev.time_us();
        while t_us >= next_sample {
            take_sample(
                next_sample,
                &counts,
                concurrent,
                &mut walker,
                &mut samples,
                &mut peak_members,
                &mut peak_concurrent,
            );
            next_sample += sample_gap_us;
        }
        match ev {
            MembershipEvent::Join { group, router, .. } => {
                *counts[group as usize].entry(router).or_default() += 1;
                concurrent += 1;
                total_joins += 1;
            }
            MembershipEvent::Leave { group, router, .. } => {
                let gmap = &mut counts[group as usize];
                if let Some(c) = gmap.get_mut(&router) {
                    *c -= 1;
                    if *c == 0 {
                        gmap.remove(&router);
                    }
                    concurrent -= 1;
                }
            }
        }
    }
    while samples.len() < p.samples {
        take_sample(
            next_sample,
            &counts,
            concurrent,
            &mut walker,
            &mut samples,
            &mut peak_members,
            &mut peak_concurrent,
        );
        next_sample += sample_gap_us;
    }
    let membership_ms = t0.elapsed().as_secs_f64() * 1e3;

    // --- Phase 4: the four '93 axes at the membership peak. ---
    let t0 = std::time::Instant::now();
    let mut cbt_state = 0u64;
    let mut cbt_cost = 0u64;
    let mut fp_state = 0u64;
    let mut fp_msgs = 0u64;
    let mut spt_state = 0u64;
    let mut spt_cost_total = 0u64;
    let mut spt_trees_count = 0u64;
    let mut cbt_loads: std::collections::BTreeMap<(NodeId, NodeId), u64> = Default::default();
    let mut spt_loads: std::collections::BTreeMap<(NodeId, NodeId), u64> = Default::default();
    for (gi, members) in peak_members.iter().enumerate() {
        let span = walker.span(&trees[gi], members);
        cbt_state += span.nodes;
        cbt_cost += span.cost;
        for &(a, b) in &span.edges {
            let key = if a < b { (NodeId(a), NodeId(b)) } else { (NodeId(b), NodeId(a)) };
            *cbt_loads.entry(key).or_default() += p.senders_per_group as u64;
        }
        // Senders: spread evenly over the sorted member list.
        let k = p.senders_per_group.min(members.len());
        let senders: Vec<u32> = (0..k).map(|i| members[(i * members.len()) / k.max(1)]).collect();
        let member_ids: Vec<NodeId> = members.iter().map(|&m| NodeId(m)).collect();
        for &src in &senders {
            let fp = flood_and_prune(&g, NodeId(src), &member_ids);
            fp_state += fp.total_state_entries() as u64;
            fp_msgs += fp.total_messages();
            let st = source_tree(&g, NodeId(src), &member_ids);
            spt_state += st.edges().count() as u64 + 1;
            spt_cost_total += st.total_weight();
            spt_trees_count += 1;
            for (a, b, _) in st.edges() {
                let key = if a.0 < b.0 { (a, b) } else { (b, a) };
                *spt_loads.entry(key).or_default() += 1;
            }
        }
    }
    let cbt_conc = linkload::load_stats(&cbt_loads);
    let spt_conc = linkload::load_stats(&spt_loads);
    // Delay ratio: actual shared-tree path (up to the lowest common
    // ancestor on the core tree, then down) vs the unicast shortest
    // path, over sampled member pairs.
    let mut rng = XorShift(p.seed ^ 0xdead_beef);
    let mut delay_sum = 0.0f64;
    let mut delay_max = 0.0f64;
    let mut delay_n = 0u64;
    let mut src_scratch = SpfScratch::new();
    for i in 0..p.delay_sources {
        let gi = i % groups;
        let members = &peak_members[gi];
        if members.len() < 2 {
            continue;
        }
        let src = members[(i / groups * 7919) % members.len()];
        let sp = SpfTree::full(&csr, src, &mut src_scratch);
        stats.record_full(sp.reached());
        // Mark src's path to the core with its distance-to-core.
        let tree = &trees[gi];
        let mut up: HashMap<u32, u64> = HashMap::new();
        let mut x = src;
        if tree.dist(x).is_none() {
            continue;
        }
        loop {
            up.insert(x, tree.dist(x).expect("on tree"));
            match tree.toward_root(x) {
                Some(parent) => x = parent,
                None => break,
            }
        }
        for _ in 0..32.min(members.len()) {
            let b = members[rng.below(members.len())];
            let (Some(direct), Some(db)) = (sp.dist(b), tree.dist(b)) else { continue };
            if direct == 0 {
                continue;
            }
            // Walk b upward to the first node on src's path: the LCA.
            let mut m = b;
            while !up.contains_key(&m) {
                match tree.toward_root(m) {
                    Some(parent) => m = parent,
                    None => break,
                }
            }
            if !up.contains_key(&m) {
                continue;
            }
            let dm = tree.dist(m).expect("lca on tree");
            // Tree path s→b goes up to the LCA, then down:
            // (d(src,core) − d(lca,core)) + (d(b,core) − d(lca,core)).
            let tree_delay = (up[&src] - dm) + (db - dm);
            let ratio = tree_delay as f64 / direct as f64;
            delay_sum += ratio;
            if ratio > delay_max {
                delay_max = ratio;
            }
            delay_n += 1;
        }
    }
    let delay_mean = if delay_n == 0 { 0.0 } else { delay_sum / delay_n as f64 };
    let axes_ms = t0.elapsed().as_secs_f64() * 1e3;

    // --- Phase 5: link-flap benchmark — incremental vs full SPF. ---
    // Full-recompute wall: rebuild every warm tree once.
    let t0 = std::time::Instant::now();
    let full_settled: u64 = trees.iter_mut().map(|t| t.recompute_full(&csr, &mut scratch)).sum();
    let full_rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    let arena_bytes = csr.mem_bytes();
    let (touched_total, inc_wall_ms) = flap_bench(
        csr,
        &mut trees,
        &edge_list,
        &slot_pairs,
        p.flaps,
        p.seed,
        &mut scratch,
        &mut stats,
    );
    let full_equiv_nodes = 2 * p.flaps as u64 * full_settled;
    let touched_ratio = full_equiv_nodes as f64 / touched_total.max(1) as f64;
    let full_equiv_ms = 2.0 * p.flaps as f64 * full_rebuild_ms;
    let wall_ratio = full_equiv_ms / inc_wall_ms.max(1e-9);

    // --- Report. ---
    let mut scale = Table::new([
        "routers",
        "edges",
        "ts gen ms",
        "waxman gen ms",
        "csr ms",
        "warm ms",
        "arena MB",
    ]);
    scale.row([
        n.to_string(),
        edge_list.len().to_string(),
        f(ts_gen_ms),
        f(wax_gen_ms),
        f(csr_build_ms),
        f(warm_ms),
        f((arena_bytes + tree_bytes) as f64 / 1e6),
    ]);
    report.table(
        format!(
            "scale: transit-stub {}×{} transit, {}×{} stubs; {} groups; same-size Waxman \
             (grid-sampled, {} edges) generated for the generation benchmark",
            p.topo.transit_domains,
            p.topo.transit_size,
            p.topo.stubs_per_transit_node,
            p.topo.stub_size,
            groups,
            wax_edges
        ),
        scale,
    );

    let mut mtable = Table::new(["t (s)", "concurrent", "cbt state", "cbt tree cost"]);
    for s in &samples {
        mtable.row([
            f(s.t_s),
            s.concurrent.to_string(),
            s.cbt_state.to_string(),
            s.cbt_cost.to_string(),
        ]);
    }
    report.table(
        format!(
            "membership over the horizon ({} join-sessions, diurnal + hotspots + flash crowd; \
             peak {} concurrent)",
            total_joins, peak_concurrent
        ),
        mtable,
    );

    let mut axes = Table::new(["axis", "cbt", "flood-prune", "spt"]);
    axes.row([
        "state entries".into(),
        cbt_state.to_string(),
        fp_state.to_string(),
        spt_state.to_string(),
    ]);
    axes.row([
        "tree cost".into(),
        cbt_cost.to_string(),
        "-".into(),
        f(spt_cost_total as f64 / spt_trees_count.max(1) as f64),
    ]);
    axes.row(["delay ratio (mean)".into(), f(delay_mean), "1.0".into(), "1.0".into()]);
    axes.row([
        "max link load".into(),
        cbt_conc.max_link.to_string(),
        "-".into(),
        spt_conc.max_link.to_string(),
    ]);
    report.table(
        format!(
            "the '93 axes at the membership peak ({} senders/group; spt tree cost is the \
             per-source mean)",
            p.senders_per_group
        ),
        axes,
    );

    let mut flap = Table::new([
        "flaps",
        "touched/flap",
        "full nodes/flap",
        "touched ratio",
        "inc ms",
        "full-equiv ms",
        "wall ratio",
    ]);
    flap.row([
        p.flaps.to_string(),
        f(touched_total as f64 / p.flaps.max(1) as f64),
        (2 * full_settled).to_string(),
        f(touched_ratio),
        f(inc_wall_ms),
        f(full_equiv_ms),
        f(wall_ratio),
    ]);
    report.table(
        "incremental SPF vs full recompute over random link flaps (fail + restore each)",
        flap,
    );

    let mut fig = cbt_metrics::BarChart::new(
        "Figure Impl-4: state entries at the membership peak".to_string(),
    )
    .unit(" entries");
    fig.bar("cbt".to_string(), cbt_state as f64);
    fig.bar("flood-prune".to_string(), fp_state as f64);
    fig.bar("spt".to_string(), spt_state as f64);
    report.chart(fig);

    report.json = json!({
        "params": {
            "routers": n,
            "groups": groups,
            "arrivals": p.arrivals,
            "flash_joins": p.flash_joins,
            "senders_per_group": p.senders_per_group,
            "flaps": p.flaps,
            "seed": p.seed,
        },
        "generation": {
            "transit_stub_ms": ts_gen_ms,
            "waxman_ms": wax_gen_ms,
            "waxman_edges": wax_edges,
            "csr_build_ms": csr_build_ms,
            "warm_trees_ms": warm_ms,
            "arena_bytes": arena_bytes,
            "tree_bytes": tree_bytes,
        },
        "membership": {
            "total_joins": total_joins,
            "peak_concurrent": peak_concurrent,
            "stream_ms": membership_ms,
            "samples": samples.iter().map(|s| json!({
                "t_s": s.t_s,
                "concurrent": s.concurrent,
                "cbt_state": s.cbt_state,
                "cbt_cost": s.cbt_cost,
            })).collect::<Vec<_>>(),
        },
        "axes": {
            "wall_ms": axes_ms,
            "cbt_state": cbt_state,
            "flood_prune_state": fp_state,
            "flood_prune_messages": fp_msgs,
            "spt_state": spt_state,
            "cbt_tree_cost": cbt_cost,
            "spt_tree_cost_mean": spt_cost_total as f64 / spt_trees_count.max(1) as f64,
            "delay_ratio_mean": delay_mean,
            "delay_ratio_max": delay_max,
            "delay_pairs": delay_n,
            "cbt_max_link": cbt_conc.max_link,
            "spt_max_link": spt_conc.max_link,
            "cbt_total_load": cbt_conc.total,
            "spt_total_load": spt_conc.total,
        },
        "flaps": {
            "count": p.flaps,
            "touched_total": touched_total,
            "full_equiv_nodes": full_equiv_nodes,
            "touched_ratio": touched_ratio,
            "incremental_wall_ms": inc_wall_ms,
            "full_equiv_wall_ms": full_equiv_ms,
            "wall_ratio": wall_ratio,
        },
        "spf": stats.to_json(),
    });
    report.finding(format!(
        "At {} routers / {} member-sessions the arena-backed graph routes without per-query \
         allocation and a link flap repairs all {} cached core trees touching {:.0}× fewer \
         nodes than full SPF ({:.1} vs {} nodes per flap), with the repaired trees verified \
         bit-identical to from-scratch recomputes; the '93 axes hold at scale: CBT state \
         ({}) ≪ flood-prune state ({}), mean delay ratio {:.2}, max-link concentration \
         {} vs {} for per-source trees.",
        n,
        total_joins,
        groups,
        touched_ratio,
        touched_total as f64 / p.flaps.max(1) as f64,
        2 * full_settled,
        cbt_state,
        fp_state,
        delay_mean,
        cbt_conc.max_link,
        spt_conc.max_link,
    ));
    report
}

/// Fails and restores `flaps` random links, repairing every warm tree
/// incrementally, and finishes by asserting the repaired trees are
/// identical to from-scratch SPF. Returns (nodes touched, wall ms).
#[allow(clippy::too_many_arguments)]
fn flap_bench(
    mut csr: CsrGraph,
    trees: &mut [SpfTree],
    edge_list: &[(u32, u32, u32)],
    slot_pairs: &[[u32; 2]],
    flaps: usize,
    seed: u64,
    scratch: &mut SpfScratch,
    stats: &mut SpfStats,
) -> (u64, f64) {
    let mut rng = XorShift(seed ^ 0x5bd1_e995);
    let mut touched = 0u64;
    let mut wall_ms = 0.0f64;
    for _ in 0..flaps {
        let e = rng.below(edge_list.len());
        let (a, b, _) = edge_list[e];
        let pair = [(a, b)];
        let t0 = std::time::Instant::now();
        for s in slot_pairs[e] {
            csr.set_slot_live(s, false);
        }
        for t in trees.iter_mut() {
            let k = t.repair_removals(&csr, &pair, &[], scratch);
            stats.record_repair(k);
            touched += k;
        }
        for s in slot_pairs[e] {
            csr.set_slot_live(s, true);
        }
        for t in trees.iter_mut() {
            let k = t.repair_additions(&csr, &pair, &[], scratch);
            stats.record_repair(k);
            touched += k;
        }
        wall_ms += t0.elapsed().as_secs_f64() * 1e3;
    }
    // Exactness: after the whole flap schedule every repaired tree must
    // equal a from-scratch recompute on the (fully restored) graph.
    for t in trees.iter() {
        let fresh = SpfTree::full(&csr, t.root(), scratch);
        for x in 0..csr.node_count() as u32 {
            assert_eq!(t.dist(x), fresh.dist(x), "incremental == full: dist of {x}");
            assert_eq!(t.toward_root(x), fresh.toward_root(x), "incremental == full: pred of {x}");
        }
    }
    (touched, wall_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_covers_every_axis_and_verifies_incremental_spf() {
        let r = run(&Params::tiny());
        let j = &r.json;
        assert!(j["generation"]["transit_stub_ms"].as_f64().unwrap() >= 0.0);
        assert!(j["generation"]["waxman_ms"].as_f64().unwrap() >= 0.0);
        assert!(j["membership"]["peak_concurrent"].as_u64().unwrap() > 0);
        assert!(j["membership"]["samples"].as_array().unwrap().len() >= 2);
        let axes = &j["axes"];
        assert!(axes["cbt_state"].as_u64().unwrap() > 0);
        assert!(
            axes["cbt_state"].as_u64().unwrap() < axes["flood_prune_state"].as_u64().unwrap(),
            "explicit-join state must undercut flood-prune state"
        );
        assert!(axes["delay_ratio_mean"].as_f64().unwrap() >= 1.0 - 1e-9);
        assert!(axes["cbt_max_link"].as_u64().unwrap() > 0);
        // run() itself asserts incremental == full after the flaps; here
        // we only pin that the repairs were meaningfully cheaper even at
        // toy scale.
        assert!(j["flaps"]["touched_ratio"].as_f64().unwrap() > 3.0);
    }

    #[test]
    fn quick_preset_meets_the_50x_incremental_bar() {
        // The CI smoke assert, kept in-tree so a plain `cargo test`
        // catches a regression before CI does. ~10k routers.
        let r = run(&Params::quick());
        let ratio = r.json["flaps"]["touched_ratio"].as_f64().unwrap();
        assert!(ratio >= 50.0, "incremental repair only {ratio:.1}× cheaper than full SPF");
    }
}
