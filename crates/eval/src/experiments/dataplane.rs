//! Impl-2 — live data-plane throughput: batched zero-copy node loops
//! vs the legacy wake-per-packet, copy-per-recipient plane.
//!
//! Drives a real tokio deployment ([`LiveNet`]) — every router and
//! host its own task, frames crossing real channels under wall-clock
//! time — through a flood workload: N concurrent senders (each a
//! non-member host on its own stub LAN, §5.1) blast packets at a
//! member group whose receivers sit two router hops away. Both data
//! planes run in the *same harness*; the only variable is
//! [`DataPlaneConfig`]: `legacy()` wakes once per frame and deep-copies
//! every fan-out, the default drains up to `rx_batch` frames per wakeup
//! and fans out refcounted handles.
//!
//! Reported per (senders, mode): delivered packets/s (goodput at the
//! receiver), p50/p99 end-to-end latency (send-call to app delivery,
//! stamped in the payload), and fabric drop counts.

use crate::report::Report;
use cbt::CbtConfig;
use cbt_metrics::{table::f, Table};
use cbt_node::fabric::DataPlaneConfig;
use cbt_node::live::LiveNet;
use cbt_topology::{HostId, NetworkBuilder, NetworkSpec, RouterId};
use cbt_wire::GroupId;
use serde_json::json;
use tokio::time::Duration;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Concurrent sender counts to sweep.
    pub senders: Vec<usize>,
    /// Total packets per run (split evenly across the senders).
    pub total_packets: usize,
    /// Application payload size in bytes (≥ 8; the first 8 carry the
    /// send timestamp).
    pub payload_len: usize,
    /// Independent trials per (senders, mode) cell; the reported row is
    /// the trial with the median goodput. Wall-clock throughput under a
    /// real scheduler is noisy; medians over independent deployments are
    /// the standard way to keep one unlucky run out of the record.
    pub trials: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { senders: vec![1, 8, 64], total_packets: 24576, payload_len: 512, trials: 5 }
    }
}

impl Params {
    /// Smaller preset for tests/CI smoke runs. Keeps the 64-sender
    /// point — the concurrency regime the batched plane exists for —
    /// and enough trials for a stable median.
    pub fn quick() -> Self {
        Params { senders: vec![1, 64], total_packets: 16384, payload_len: 512, trials: 5 }
    }
}

/// What one flood run measured.
#[derive(Debug, Clone, Copy)]
struct RunStats {
    sent: u64,
    received: u64,
    pkts_per_s: f64,
    p50_us: u64,
    p99_us: u64,
    fabric_dropped: u64,
}

/// Group members on the delivery LAN — the fan-out the data planes
/// differ on most: legacy materializes one frame copy and one task
/// wakeup per member per packet, batched fans out refcounted handles
/// and drains member inboxes in batches.
const RECEIVERS: usize = 16;

/// A five-router chain — R0 fronts `n` stub LANs (one non-member
/// sender host each), the core sits in the middle, and [`RECEIVERS`]
/// member hosts share the delivery LAN at the far end. Every data
/// packet crosses five router tasks and then fans out to every member,
/// so the per-packet cost of the node task loops and the per-recipient
/// fan-out policy (the things the two data planes differ in) dominate
/// the way they do on a real multi-hop multicast tree.
fn build_net(n: usize) -> (NetworkSpec, RouterId, Vec<HostId>, Vec<HostId>) {
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0");
    let r1 = b.router("R1");
    let core = b.router("CORE");
    let r3 = b.router("R3");
    let r4 = b.router("R4");
    b.link(r0, r1, 1);
    b.link(r1, core, 1);
    b.link(core, r3, 1);
    b.link(r3, r4, 1);
    let mut senders = Vec::with_capacity(n);
    for i in 0..n {
        let lan = b.lan(format!("TX{i}"));
        b.attach(lan, r0);
        senders.push(b.host(format!("S{i}"), lan));
    }
    let rx_lan = b.lan("RX");
    b.attach(rx_lan, r4);
    let receivers = (0..RECEIVERS).map(|i| b.host(format!("M{i}"), rx_lan)).collect();
    (b.build(), core, senders, receivers)
}

/// Floods `per_sender` packets from each of `n` senders through a live
/// deployment running data plane `dp`, and measures goodput + latency
/// at the first receiver.
fn drive(n: usize, per_sender: usize, payload_len: usize, dp: DataPlaneConfig) -> RunStats {
    // Sized to the host: on multi-core machines a small worker pool
    // lets router and host tasks truly run in parallel; on a one-core
    // box extra workers are pure context-switch overhead (and measurement
    // noise), so fall back to the current-thread flavor.
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get().min(4));
    let rt = if workers > 1 {
        tokio::runtime::Builder::new_multi_thread()
            .worker_threads(workers)
            .enable_all()
            .build()
            .expect("runtime")
    } else {
        tokio::runtime::Builder::new_current_thread().enable_all().build().expect("runtime")
    };
    let stats = rt.block_on(async move {
        let (net, core_r, senders, receivers) = build_net(n);
        let core = net.router_addr(core_r);
        let group = GroupId::numbered(42);
        // §5.1: non-member senders need their D-DR to hold a
        // <core, group> mapping; supply it as managed configuration.
        let cfg = CbtConfig::fast().with_mapping(group, vec![core]);
        let live = LiveNet::spawn_with(net, cfg, dp);

        for &r in &receivers {
            live.host_join(r, group, vec![core]);
        }
        // Wait (wall clock) until the delivery tree is up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let core_snap = live.router_snapshot(core_r, group).await.expect("core alive");
            if core_snap.on_tree && !core_snap.children.is_empty() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "tree never formed");
            tokio::time::sleep(Duration::from_millis(50)).await;
        }

        // Closed-loop burst load: each wave blasts one concurrent burst
        // from every sender, then waits for the receiver's delivery
        // count to settle before launching the next. Sizing note: every
        // sender contributes at least a 16-packet burst, so a wave is
        // ~512–1024 frames converging on R0 — deep enough that batch
        // draining and fan-out policy dominate, shallow enough that a
        // healthy plane absorbs it within its bounded inbox (a slow one
        // sheds frames, counted and reported). Throughput is delivered
        // goodput over the active drain windows only; dead time between
        // waves (our own polling) is excluded. Each payload carries its
        // send timestamp (µs since deployment epoch) in its first 8
        // bytes.
        let wave_per_sender = (512 / n).max(16);
        let wave_total = wave_per_sender * n;
        let total = n * per_sender;
        let n_waves = total.div_ceil(wave_total).max(2);
        let sent = (n_waves * wave_total) as u64;
        // Delivery count observed after each wave settled: slices the
        // delivery log per wave even when overload dropped frames.
        let mut checkpoints = Vec::with_capacity(n_waves);
        for wave in 0..n_waves {
            for &s in &senders {
                let burst: Vec<Vec<u8>> = (0..wave_per_sender)
                    .map(|_| {
                        let mut payload = vec![0u8; payload_len.max(8)];
                        payload[..8].copy_from_slice(&live.now().micros().to_le_bytes());
                        payload
                    })
                    .collect();
                live.host_send_burst(s, group, burst, 32);
            }
            // The wave is over when everything arrived, or when the
            // count stops moving (overload shed the remainder).
            let target = (wave + 1) * wave_total;
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let mut last_len = 0usize;
            let mut stalled = 0u32;
            let settled = loop {
                let len = live.host_received_count(receivers[0]).await.expect("receiver alive");
                if len >= target || std::time::Instant::now() >= deadline {
                    break len;
                }
                if len == last_len {
                    stalled += 1;
                    if stalled >= 50 {
                        break len;
                    }
                } else {
                    stalled = 0;
                    last_len = len;
                }
                tokio::time::sleep(Duration::from_millis(2)).await;
            };
            checkpoints.push(settled);
        }

        let got = live.host_received(receivers[0]).await.expect("receiver alive");
        let mut lat_us: Vec<u64> = Vec::with_capacity(got.len());
        let mut stamps: Vec<(u64, u64)> = Vec::with_capacity(got.len()); // (stamp, at)
        for d in &got {
            let stamp = u64::from_le_bytes(d.payload[..8].try_into().expect("stamped payload"));
            stamps.push((stamp, d.at.micros()));
            lat_us.push(d.at.micros().saturating_sub(stamp));
        }
        // Per-wave goodput: first send stamp to last delivery of the
        // wave's slice of the delivery log, scaled to the full member
        // fan-out. The run's reported rate is the *median* wave — one
        // scheduler hiccup (or the cold first wave) must not skew a
        // wall-clock measurement taken over ~25 ms windows.
        let mut wave_rates: Vec<f64> = Vec::with_capacity(checkpoints.len());
        let mut start = 0usize;
        for &end in &checkpoints {
            let w = &stamps[start..end.min(stamps.len())];
            if !w.is_empty() {
                let first = w.iter().map(|(s, _)| *s).min().unwrap_or(0);
                let last = w.iter().map(|(_, a)| *a).max().unwrap_or(0);
                let dur = last.saturating_sub(first).max(1);
                wave_rates.push(w.len() as f64 * RECEIVERS as f64 * 1.0e6 / dur as f64);
            }
            start = end.min(stamps.len());
        }
        wave_rates.sort_by(f64::total_cmp);
        let wave_rate = if wave_rates.is_empty() { 0.0 } else { wave_rates[wave_rates.len() / 2] };
        lat_us.sort_unstable();
        let pct = |p: usize| -> u64 {
            if lat_us.is_empty() {
                return 0;
            }
            lat_us[(lat_us.len() * p / 100).min(lat_us.len() - 1)]
        };
        // Aggregate multicast goodput: deliveries across every group
        // member (each sent packet should reach all RECEIVERS members).
        let mut aggregate = 0u64;
        for &r in &receivers {
            aggregate += live.host_received_count(r).await.expect("receiver alive") as u64;
        }
        let fabric = live.fabric_stats();
        live.shutdown();
        RunStats {
            sent,
            received: aggregate,
            pkts_per_s: wave_rate,
            p50_us: pct(50),
            p99_us: pct(99),
            fabric_dropped: fabric.dropped_overflow,
        }
    });
    drop(rt);
    stats
}

/// Runs `trials` independent deployments and returns the one with the
/// median goodput.
fn drive_median(
    n: usize,
    per_sender: usize,
    payload_len: usize,
    dp: DataPlaneConfig,
    trials: usize,
) -> RunStats {
    let mut runs: Vec<RunStats> =
        (0..trials.max(1)).map(|_| drive(n, per_sender, payload_len, dp)).collect();
    runs.sort_by(|a, b| a.pkts_per_s.total_cmp(&b.pkts_per_s));
    runs[runs.len() / 2]
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report =
        Report::new("Impl-2", "live data plane: batched zero-copy vs wake-per-packet copying");
    let mut table = Table::new([
        "senders",
        "mode",
        "sent",
        "deliveries",
        "deliveries/s",
        "p50 µs",
        "p99 µs",
        "dropped",
    ]);
    let mut rows_json = Vec::new();
    let mut speedups = Vec::new();

    for &n in &p.senders {
        let per_sender = (p.total_packets / n).max(1);
        let batched =
            drive_median(n, per_sender, p.payload_len, DataPlaneConfig::default(), p.trials);
        let legacy =
            drive_median(n, per_sender, p.payload_len, DataPlaneConfig::legacy(), p.trials);
        for (mode, s) in [("batched", &batched), ("legacy", &legacy)] {
            table.row([
                n.to_string(),
                mode.to_string(),
                s.sent.to_string(),
                s.received.to_string(),
                f(s.pkts_per_s),
                s.p50_us.to_string(),
                s.p99_us.to_string(),
                s.fabric_dropped.to_string(),
            ]);
            rows_json.push(json!({
                "senders": n,
                "mode": mode,
                "sent": s.sent,
                "delivered": s.received,
                "pkts_per_s": s.pkts_per_s,
                "p50_us": s.p50_us,
                "p99_us": s.p99_us,
                "dropped_overflow": s.fabric_dropped,
            }));
        }
        speedups.push((n, batched.pkts_per_s / legacy.pkts_per_s.max(1.0)));
    }

    report.table(
        format!(
            "delivered goodput and end-to-end latency, {} packets of {} B per run",
            p.total_packets, p.payload_len
        ),
        table,
    );
    let mut fig = cbt_metrics::BarChart::new(
        "Figure Impl-2: batched/legacy goodput ratio vs senders".to_string(),
    )
    .unit("x");
    for (n, ratio) in &speedups {
        fig.bar(format!("N={n}"), *ratio);
    }
    report.chart(fig);
    report.json = json!({
        "params": {
            "senders": p.senders,
            "total_packets": p.total_packets,
            "payload_len": p.payload_len,
            "trials": p.trials,
        },
        "rows": rows_json,
        "speedups": speedups
            .iter()
            .map(|(n, r)| json!({"senders": n, "goodput_ratio": r}))
            .collect::<Vec<_>>(),
    });
    let max_ratio = speedups.iter().map(|(_, r)| *r).fold(0.0f64, f64::max);
    report.finding(format!(
        "Same topology, same engine, same tokio harness — only the data plane differs. The \
         batched zero-copy plane (drain up to rx_batch frames per wakeup, refcounted fan-out) \
         sustains up to {max_ratio:.1}x the delivered goodput of the legacy wake-per-packet \
         copy-per-recipient plane, and its bounded inboxes shed correspondingly fewer frames \
         under the concurrent-sender flood."
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both planes deliver the flood end-to-end and the report carries
    /// one row per (senders, mode) pair.
    #[test]
    fn both_planes_deliver_and_report_rows() {
        let p = Params { senders: vec![2], total_packets: 64, payload_len: 64, trials: 1 };
        let r = run(&p);
        let rows = r.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 2);
        for mode in ["batched", "legacy"] {
            let row = rows.iter().find(|r| r["mode"] == mode).expect("row per mode");
            assert!(row["delivered"].as_u64().unwrap() > 0, "{mode} delivered nothing");
            assert!(row["pkts_per_s"].as_f64().unwrap() > 0.0);
        }
    }
}
