//! S93-T4 — join latency: time from the host's IGMP report to the DR's
//! tree-joined notification, measured on the packet simulator.
//!
//! Two effects the -03 draft emphasises: (a) latency is one round-trip
//! along the unicast path to the core — it grows with hop distance —
//! and (b) a join that hits an *existing* branch terminates early
//! ("if a join hits a CBT router that is already on-tree, the join is
//! not propagated further"), so later members of a popular group join
//! faster than the first.

use crate::report::Report;
use crate::simrun::SimSetup;
use crate::workload::Workload;
use cbt::CbtConfig;
use cbt_metrics::{table::f, Summary, Table};
use cbt_netsim::{SimDuration, SimTime};
use cbt_topology::{generate, AllPairs};
use serde_json::json;
use std::collections::BTreeMap;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Topology size.
    pub n: usize,
    /// Members joining (sequentially).
    pub group_size: usize,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
}

impl Default for Params {
    fn default() -> Self {
        Params { n: 50, group_size: 16, seeds: vec![0, 1, 2, 3, 4] }
    }
}

impl Params {
    /// Small preset for tests/benches.
    pub fn quick() -> Self {
        Params { n: 20, group_size: 6, seeds: vec![2] }
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("S93-T4", "join latency vs distance to core / to the tree");
    let mut by_distance: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut first_vs_later: (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());

    // One full simulation per seed, run in parallel; each trial
    // returns its raw samples and the merge below happens in seed
    // order, so the aggregate is independent of worker count.
    let trials = crate::parallel::run_trials(&p.seeds, |&seed| {
        let graph = generate::waxman(generate::WaxmanParams { n: p.n, ..Default::default() }, seed);
        let ap = AllPairs::compute(&graph);
        let mut wl = Workload::new(&graph, seed.wrapping_add(7000));
        let members = wl.members(p.group_size);
        let core = ap.medoid(&members).expect("connected");
        let mut setup = SimSetup::from_graph(graph, CbtConfig::fast(), &[core]);
        // Join strictly one at a time, far apart, so each join's
        // latency is clean.
        let schedule =
            setup.join_members(&members, SimTime::from_secs(1), SimDuration::from_secs(2));
        setup.cw.world.start();
        setup.cw.world.run_until(SimTime::from_secs(2 * p.group_size as u64 + 5));

        let mut samples: Vec<(u64, f64)> = Vec::new();
        let mut first: Vec<f64> = Vec::new();
        let mut later: Vec<f64> = Vec::new();
        for (idx, (m, joined_at)) in schedule.iter().enumerate() {
            let h = setup.host_of(*m);
            let Some((heard_at, ..)) = setup.cw.host(h).tree_joined_events().first().copied()
            else {
                continue; // member router was itself the core: no event needed
            };
            let latency_ms = (heard_at - *joined_at).as_millis_f64();
            let dist = ap.dist(*m, core).expect("connected");
            samples.push((dist, latency_ms));
            // Normalise by the distance to the core so "first vs later"
            // compares the *per-hop* price: a later joiner's join
            // terminates at the nearest on-tree router, so it pays for
            // fewer hops than its full distance to the core.
            if dist > 0 {
                let per_hop = latency_ms / dist as f64;
                if idx == 0 {
                    first.push(per_hop);
                } else {
                    later.push(per_hop);
                }
            }
        }
        (samples, first, later, setup.obs_fleet())
    });
    let mut fleet_obs = cbt_obs::ObsSnapshot { router: "fleet".into(), ..Default::default() };
    for (samples, first, later, obs) in trials {
        for (dist, latency_ms) in samples {
            by_distance.entry(dist).or_default().push(latency_ms);
        }
        first_vs_later.0.extend(first);
        first_vs_later.1.extend(later);
        fleet_obs.merge(&obs);
    }

    let mut table = Table::new(["hops to core", "joins", "mean ms", "p95 ms", "max ms"]);
    let mut rows_json = Vec::new();
    for (dist, samples) in &by_distance {
        let s = Summary::of(samples);
        table.row([dist.to_string(), s.n.to_string(), f(s.mean), f(s.p95), f(s.max)]);
        rows_json.push(json!({"hops": dist, "n": s.n, "mean_ms": s.mean, "max_ms": s.max}));
    }
    report.table(format!("join latency by distance, Waxman n={}", p.n), table);

    let first = Summary::of(&first_vs_later.0);
    let later = Summary::of(&first_vs_later.1);
    let mut t2 = Table::new(["joiner", "joins", "mean ms per hop-to-core"]);
    t2.row(["first member".to_string(), first.n.to_string(), f(first.mean)]);
    t2.row(["later members".to_string(), later.n.to_string(), f(later.mean)]);
    report.table("first joiner vs later joiners (on-tree termination)", t2);

    report.json = json!({
        "params": {"n": p.n, "group_size": p.group_size, "seeds": p.seeds.len()},
        "by_distance": rows_json,
        "first_per_hop_ms": first.mean,
        "later_per_hop_ms": later.mean,
    });
    report.attach_obs(&fleet_obs);
    report.finding(
        "Join latency is one control round-trip along the unicast path (grows with hop count); \
         later joiners terminate at the nearest on-tree router and attach faster than the \
         group's first member.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_measured_and_ordered() {
        let r = run(&Params::quick());
        let rows = r.json["by_distance"].as_array().unwrap();
        assert!(!rows.is_empty(), "some joins measured");
        for row in rows {
            let mean = row["mean_ms"].as_f64().unwrap();
            assert!(mean > 0.0, "non-zero latency");
            assert!(mean < 5_000.0, "well under any retransmission timer: {mean}");
        }
    }

    #[test]
    fn later_joiners_pay_less_per_hop() {
        let r = run(&Params::quick());
        let first = r.json["first_per_hop_ms"].as_f64().unwrap();
        let later = r.json["later_per_hop_ms"].as_f64().unwrap();
        assert!(
            later <= first * 1.25 + 0.5,
            "on-tree termination keeps later joins cheap per hop: first {first}, later {later}"
        );
    }
}
