//! Impl-3 — sharded multi-group engine: group-space scaling over N shards.
//!
//! One `cbtd` node used to serialise every group through a single
//! engine task. The sharded engine ([`cbt::ShardedRouter`]) splits the
//! group space over N independent shards — own FIB, own timer wheel —
//! with a steering layer in front, so a deployment with one core per
//! shard forwards N groups' traffic concurrently.
//!
//! This experiment drives one leaf router to `n` group memberships,
//! split over 1/2/4/8 shard slices exactly as the live plane splits
//! them (same `shard_of`, same [`cbt::ShardedRouter::slice`] fronts),
//! then pushes a data workload **pre-steered** into per-shard input
//! queues — the lock-free steering the fabric performs — and drains
//! each shard's queue with per-shard wall timing. Churn (IGMP leave +
//! rejoin bursts) rides along in the same queues so the control path
//! is exercised mid-stream, and a timer window afterwards measures the
//! per-wakeup cost across all shard wheels.
//!
//! **Reading the numbers on a small machine:** the harness drains the
//! shard queues *sequentially* and reports aggregate goodput as
//! `total packets / max(per-shard busy time)` — the wall rate of a
//! deployment with at least one core per shard. Timing real threads
//! here would only measure the host's time-slicing; the per-shard busy
//! times are the honest per-core costs, and the shards share no state
//! by construction (the steering layer hands each frame to exactly one
//! shard).

use crate::report::Report;
use cbt::{shard_of, CbtConfig, RouteLookup, RouterAction, ShardedRouter};
use cbt_metrics::{table::f, Table};
use cbt_netsim::{SimDuration, SimTime};
use cbt_routing::Hop;
use cbt_topology::{HostId, IfIndex, NetworkBuilder, NetworkSpec};
use cbt_wire::{AckSubcode, Addr, ControlMessage, DataPacket, GroupId, IgmpMessage};
use serde_json::json;
use std::collections::BTreeMap;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Group counts to sweep.
    pub sizes: Vec<usize>,
    /// Shard counts to sweep per size.
    pub shards: Vec<usize>,
    /// Data packets pushed through the node per run, as a multiple of
    /// the group count.
    pub packets_per_group: usize,
    /// Seconds of timer activity to measure after the data drain.
    pub measure_secs: u64,
    /// Timing repetitions per (size, shards) cell; per-shard busy takes
    /// the minimum across repetitions (see [`drive_best`]).
    pub reps: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            sizes: vec![10_000, 100_000],
            shards: vec![1, 2, 4, 8],
            packets_per_group: 2,
            measure_secs: 60,
            reps: 3,
        }
    }
}

impl Params {
    /// Small preset for tests/benches and the CI smoke run.
    pub fn quick() -> Self {
        Params {
            sizes: vec![2000],
            shards: vec![1, 2],
            packets_per_group: 2,
            measure_secs: 40,
            reps: 2,
        }
    }
}

/// Scripted unicast routing: dst → hop (same shape as `groupscale`).
struct ScriptRoutes(BTreeMap<Addr, Hop>);

impl RouteLookup for ScriptRoutes {
    fn hop_toward(&self, dst: Addr) -> Option<Hop> {
        self.0.get(&dst).copied()
    }
}

/// The group universe: `numbered` covers only u16, so larger sweeps
/// take group ids straight from the class-D space.
fn group(i: usize) -> GroupId {
    GroupId::new(Addr(0xE100_0000 + i as u32)).expect("class-D address")
}

/// One queued shard input: a data packet, or a churn event (leave
/// immediately followed by a rejoin keeps the FIB population stable
/// while still paying the membership-change control cost mid-stream).
enum Input {
    Data(DataPacket),
    Leave(GroupId),
    Rejoin(GroupId),
}

/// What one (size, shards) run measured.
#[derive(Debug, Clone)]
struct RunStats {
    /// Data packets pushed through the node (all shards).
    packets: u64,
    /// Per-shard wall nanoseconds spent draining that shard's queue.
    busy_ns: Vec<u128>,
    /// Engine-counted forwarded data packets (goodput check).
    forwarded: u64,
    /// Churn messages (leaves + rejoins) processed in-stream.
    churn_msgs: u64,
    /// Timer wakeups across every shard wheel in the window.
    wakeups: u64,
    /// Wall nanoseconds inside `next_wakeup` + `on_timer` pairs.
    timer_ns: u128,
}

impl RunStats {
    /// `total packets / max(per-shard busy)` — the aggregate forward
    /// rate of a deployment with one core per shard.
    fn agg_fwd_pps(&self) -> f64 {
        let max_busy = self.busy_ns.iter().copied().max().unwrap_or(0);
        if max_busy == 0 {
            return 0.0;
        }
        self.packets as f64 / (max_busy as f64 / 1e9)
    }

    fn us_per_wakeup(&self) -> f64 {
        if self.wakeups == 0 {
            return 0.0;
        }
        self.timer_ns as f64 / 1e3 / self.wakeups as f64
    }
}

/// UP's half of the conversation: ack joins, ack quits, answer echoes.
/// Never timed — only ME's shard work is.
fn respond(
    eng: &mut ShardedRouter,
    now: SimTime,
    acts: &[RouterAction],
    up_if: IfIndex,
    up_peer: Addr,
) {
    for a in acts {
        let RouterAction::SendControl { iface, msg, .. } = a else { continue };
        if *iface != up_if {
            continue;
        }
        match msg {
            ControlMessage::JoinRequest { group, origin, target_core, cores, .. } => {
                let ack = ControlMessage::JoinAck {
                    subcode: AckSubcode::Normal,
                    group: *group,
                    origin: *origin,
                    target_core: *target_core,
                    cores: cores.clone(),
                };
                let follow = eng.handle_control(now, up_if, up_peer, ack);
                respond(eng, now, &follow, up_if, up_peer);
            }
            ControlMessage::QuitRequest { group, origin } => {
                let ack = ControlMessage::QuitAck { group: *group, origin: *origin };
                let follow = eng.handle_control(now, up_if, up_peer, ack);
                respond(eng, now, &follow, up_if, up_peer);
            }
            ControlMessage::EchoRequest { group, group_mask, .. } => {
                let reply = ControlMessage::EchoReply {
                    group: *group,
                    origin: up_peer,
                    group_mask: *group_mask,
                };
                let follow = eng.handle_control(now, up_if, up_peer, reply);
                respond(eng, now, &follow, up_if, up_peer);
            }
            _ => {}
        }
    }
}

/// Drives `n` groups over `shards` shard slices and measures the
/// pre-steered data drain plus the timer window.
fn drive(n: usize, shards: usize, packets_per_group: usize, measure_secs: u64) -> RunStats {
    let mut b = NetworkBuilder::new();
    let me = b.router("ME");
    let up = b.router("UP");
    let lan = b.lan("S0");
    b.attach(lan, me);
    b.host("H", lan);
    b.link(me, up, 1);
    let net: NetworkSpec = b.build();

    let core = net.router_addr(up);
    let host = net.host_addr(HostId(0));
    let lan_if = IfIndex(0);
    let up_if = IfIndex(1);
    let up_peer = Addr::from_octets(172, 31, 0, 2);
    let cfg = CbtConfig { shards: 1, ..CbtConfig::default() };
    let echo_us = cfg.echo_interval.micros();

    // One slice per shard, exactly as the live plane builds them.
    let mut slices: Vec<ShardedRouter> = (0..shards)
        .map(|k| {
            let routes = ScriptRoutes(
                [(core, Hop { iface: up_if, router: up, addr: up_peer, dist: 1 })]
                    .into_iter()
                    .collect(),
            );
            ShardedRouter::slice(&net, me, cfg.clone(), Box::new(routes), SimTime::ZERO, k, shards)
        })
        .collect();

    // Setup (untimed): join every group on its owning shard, staggered
    // over one echo interval so echo deadlines spread out.
    for i in 0..n {
        let g = group(i);
        let k = shard_of(g, shards);
        let t = SimTime::from_micros(1_000_000 + (i as u64 * echo_us) / n as u64);
        slices[k].learn_cores(g, &[core]);
        let acts =
            slices[k].handle_igmp(t, lan_if, host, IgmpMessage::Report { version: 2, group: g });
        respond(&mut slices[k], t, &acts, up_if, up_peer);
    }
    let settled = SimTime::from_micros(1_000_000 + echo_us);
    let fib_total: usize = slices.iter().map(|s| s.fib_len()).sum();
    assert_eq!(fib_total, n, "all {n} groups on-tree across {shards} shard(s)");

    // Pre-steer the measurement workload into per-shard queues — the
    // lock-free steering the fabric performs per frame. Deterministic
    // LCG picks the group per packet; every ~20th slot is a churn pair.
    let total_packets = n * packets_per_group;
    let mut queues: Vec<Vec<Input>> = (0..shards).map(|_| Vec::new()).collect();
    let mut churn_msgs = 0u64;
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    for p in 0..total_packets {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let g = group((rng >> 33) as usize % n);
        let k = shard_of(g, shards);
        if p % 20 == 19 {
            queues[k].push(Input::Leave(g));
            queues[k].push(Input::Rejoin(g));
            churn_msgs += 2;
        }
        queues[k].push(Input::Data(DataPacket::new(host, g, 16, vec![0u8; 8])));
    }

    // Drain each shard's queue sequentially, timing each in isolation:
    // the shards share no state, so per-shard busy time is what each
    // core of a one-core-per-shard deployment would pay.
    let mut busy_ns = vec![0u128; shards];
    let mut act_buf: Vec<RouterAction> = Vec::new();
    for (k, queue) in queues.into_iter().enumerate() {
        let eng = &mut slices[k];
        let t0 = std::time::Instant::now();
        for input in queue {
            match input {
                Input::Data(pkt) => {
                    eng.handle_native_data(settled, lan_if, host, pkt, &mut act_buf);
                    act_buf.clear();
                }
                Input::Leave(g) => {
                    let acts =
                        eng.handle_igmp(settled, lan_if, host, IgmpMessage::Leave { group: g });
                    respond(eng, settled, &acts, up_if, up_peer);
                }
                Input::Rejoin(g) => {
                    let acts = eng.handle_igmp(
                        settled,
                        lan_if,
                        host,
                        IgmpMessage::Report { version: 2, group: g },
                    );
                    respond(eng, settled, &acts, up_if, up_peer);
                }
            }
        }
        busy_ns[k] = t0.elapsed().as_nanos();
    }

    // Timer window: every shard advances its own wheel; the deployment
    // wakeup is min over wheels, so per-wakeup cost is measured per
    // shard and pooled.
    let window_end = settled + SimDuration::from_secs(measure_secs);
    let mut wakeups = 0u64;
    let mut timer_ns = 0u128;
    for eng in &mut slices {
        while let Some(t) = eng.next_wakeup() {
            if t > window_end {
                break;
            }
            let t0 = std::time::Instant::now();
            let _ = eng.next_wakeup();
            let acts = eng.on_timer(t);
            timer_ns += t0.elapsed().as_nanos();
            wakeups += 1;
            respond(eng, t, &acts, up_if, up_peer);
        }
    }

    let forwarded: u64 = slices.iter().map(|s| s.stats().data_forwarded).sum();
    let fib_total: usize = slices.iter().map(|s| s.fib_len()).sum();
    assert_eq!(fib_total, n, "churn rejoins keep the FIB population at {n}");

    RunStats { packets: total_packets as u64, busy_ns, forwarded, churn_msgs, wakeups, timer_ns }
}

/// Runs `drive` `reps` times and keeps, per shard, the fastest
/// observed drain. Wall timing on a shared machine only over-counts —
/// preemption adds time, never subtracts — so the per-shard minimum is
/// the closest estimate of the true per-core cost. Everything except
/// the timings is deterministic across repetitions.
fn drive_best(
    n: usize,
    shards: usize,
    packets_per_group: usize,
    measure_secs: u64,
    reps: usize,
) -> RunStats {
    let mut best: Option<RunStats> = None;
    for _ in 0..reps.max(1) {
        let r = drive(n, shards, packets_per_group, measure_secs);
        match &mut best {
            None => best = Some(r),
            Some(b) => {
                debug_assert_eq!(b.packets, r.packets);
                debug_assert_eq!(b.forwarded, r.forwarded);
                for k in 0..b.busy_ns.len() {
                    b.busy_ns[k] = b.busy_ns[k].min(r.busy_ns[k]);
                }
                b.timer_ns = b.timer_ns.min(r.timer_ns);
            }
        }
    }
    best.expect("at least one repetition")
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("Impl-3", "sharded engine: group-space scaling over N shards");
    let mut table = Table::new([
        "groups",
        "shards",
        "packets",
        "max shard ms",
        "agg kpps",
        "speedup",
        "µs/wakeup",
    ]);
    let mut rows_json = Vec::new();
    let mut bars = Vec::new();

    for &n in &p.sizes {
        let mut base_pps = 0.0f64;
        for &s in &p.shards {
            let run = drive_best(n, s, p.packets_per_group, p.measure_secs, p.reps);
            assert_eq!(
                run.forwarded, run.packets,
                "n={n} s={s}: every member-LAN packet forwards to the parent"
            );
            let pps = run.agg_fwd_pps();
            if s == p.shards[0] {
                base_pps = pps;
            }
            let speedup = if base_pps == 0.0 { 0.0 } else { pps / base_pps };
            let max_busy_ms = run.busy_ns.iter().copied().max().unwrap_or(0) as f64 / 1e6;
            table.row([
                n.to_string(),
                s.to_string(),
                run.packets.to_string(),
                f(max_busy_ms),
                f(pps / 1e3),
                f(speedup),
                f(run.us_per_wakeup()),
            ]);
            rows_json.push(json!({
                "groups": n,
                "shards": s,
                "packets": run.packets,
                "churn_msgs": run.churn_msgs,
                "busy_ns_per_shard": run.busy_ns.iter().map(|&x| x as u64).collect::<Vec<_>>(),
                "max_shard_busy_ms": max_busy_ms,
                "agg_fwd_pps": pps,
                "speedup_vs_1shard": speedup,
                "wakeups": run.wakeups,
                "us_per_wakeup": run.us_per_wakeup(),
            }));
            bars.push((format!("G={n} S={s}"), pps / 1e3));
        }
    }

    report.table(
        format!(
            "pre-steered per-shard drain ({}× groups data packets + leave/rejoin churn), \
             aggregate rate = packets / max(shard busy); {}s timer window",
            p.packets_per_group, p.measure_secs
        ),
        table,
    );
    let mut fig = cbt_metrics::BarChart::new(
        "Figure Impl-3: aggregate forward rate (kpps) vs shard count".to_string(),
    )
    .unit(" kpps");
    for (label, v) in &bars {
        fig.bar(label.clone(), *v);
    }
    report.chart(fig);
    report.json = json!({
        "params": {
            "sizes": p.sizes,
            "shards": p.shards,
            "packets_per_group": p.packets_per_group,
            "measure_secs": p.measure_secs,
            "reps": p.reps,
        },
        "rows": rows_json,
    });
    report.finding(
        "Group-space sharding scales the node's aggregate forward rate near-linearly: the \
         steering layer hands each packet to exactly one shard, shards share no state, and the \
         per-shard busy time drops with 1/N while the per-wakeup timer cost stays flat — so a \
         deployment with one core per shard forwards N× the single-engine rate (the harness \
         drains shard queues sequentially and reports packets / max shard busy time, the wall \
         rate of that deployment; ≥3× at 4 shards is the acceptance bar).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sharded drain forwards every packet, keeps the FIB
    /// population stable under churn, and four shards deliver well
    /// over the 3× aggregate-throughput bar. Best-of-5 timing: the
    /// test harness runs sibling tests concurrently, and on a small
    /// machine their time-slices land inside a single-shot measurement.
    #[test]
    fn four_shards_scale_aggregate_throughput() {
        let one = drive_best(4096, 1, 2, 0, 5);
        let four = drive_best(4096, 4, 2, 0, 5);
        assert_eq!(one.packets, four.packets);
        assert_eq!(one.forwarded, one.packets);
        assert_eq!(four.forwarded, four.packets);
        let speedup = four.agg_fwd_pps() / one.agg_fwd_pps();
        assert!(speedup >= 2.5, "4-shard aggregate speedup {speedup:.2} < 2.5");
    }

    /// Shard queues split the workload close to evenly — the property
    /// the aggregate rate depends on.
    #[test]
    fn shard_load_is_balanced() {
        let run = drive_best(4096, 4, 2, 0, 5);
        let max = *run.busy_ns.iter().max().unwrap() as f64;
        let min = *run.busy_ns.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 2.0, "busy skew {max}/{min}");
    }

    /// Report rows cover the whole sweep and carry the speedup field
    /// the benchmark record asserts on.
    #[test]
    fn report_rows_cover_the_sweep() {
        let r = run(&Params {
            sizes: vec![512],
            shards: vec![1, 2],
            packets_per_group: 1,
            measure_secs: 35,
            reps: 1,
        });
        let rows = r.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 2);
        for s in [1u64, 2] {
            let row = rows.iter().find(|r| r["shards"] == s).expect("row per shard count");
            assert!(row["agg_fwd_pps"].as_f64().unwrap() > 0.0);
            assert!(row["speedup_vs_1shard"].as_f64().unwrap() > 0.0);
            assert!(row["wakeups"].as_u64().unwrap() > 0, "timer window saw echo work");
        }
    }
}
