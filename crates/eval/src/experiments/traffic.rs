//! S93-F2 — traffic concentration: the hottest link's load under the
//! shared tree vs per-source trees vs naive unicast, as senders grow.
//!
//! This is the trade-off running *against* CBT: all senders' traffic
//! funnels through one tree, so its maximum link load grows with the
//! sender count faster than spread-out source trees — while still
//! beating unicast replication.

use crate::report::Report;
use crate::workload::Workload;
use cbt_baselines::{cbt_shared_tree, source_tree, unicast_star_loads};
use cbt_metrics::{linkload, table::f, Table};
use cbt_topology::{generate, AllPairs, NodeId};
use serde_json::json;
use std::collections::BTreeMap;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Topology size.
    pub n: usize,
    /// Group size.
    pub group_size: usize,
    /// Sender counts to sweep.
    pub senders: Vec<usize>,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
}

impl Default for Params {
    fn default() -> Self {
        Params { n: 100, group_size: 16, senders: vec![1, 2, 4, 8, 16], seeds: (0..10).collect() }
    }
}

impl Params {
    /// Small preset for tests/benches.
    pub fn quick() -> Self {
        Params { n: 40, group_size: 8, senders: vec![1, 4, 8], seeds: vec![0, 1] }
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("S93-F2", "traffic concentration: max link load as senders grow");
    let mut table = Table::new([
        "senders",
        "cbt max link",
        "spt max link",
        "star max link",
        "cbt total",
        "spt total",
        "star total",
    ]);
    let mut rows_json = Vec::new();

    for &s in &p.senders {
        let mut cbt_max = 0.0;
        let mut spt_max = 0.0;
        let mut star_max = 0.0;
        let mut cbt_tot = 0.0;
        let mut spt_tot = 0.0;
        let mut star_tot = 0.0;
        // One trial per seed, fanned out; summed below in seed order.
        let trials = crate::parallel::run_trials(&p.seeds, |&seed| {
            let g = generate::waxman(generate::WaxmanParams { n: p.n, ..Default::default() }, seed);
            let ap = AllPairs::compute(&g);
            let mut wl = Workload::new(&g, seed.wrapping_add(4000));
            let members = wl.members(p.group_size);
            let senders = wl.senders_from(&members, s);
            let core = ap.medoid(&members).expect("connected");

            // Shared tree: every sender's packet floods the whole tree.
            let shared = cbt_shared_tree(&g, core, &members);
            let cbt = linkload::shared_tree_loads(&shared, s);

            // Source trees: one SPT per sender transmission.
            let trees: Vec<_> = senders.iter().map(|src| source_tree(&g, *src, &members)).collect();
            let spt = linkload::source_tree_loads(&trees);

            // Unicast star per sender transmission.
            let mut star: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
            for src in &senders {
                for (edge, load) in unicast_star_loads(&g, *src, &members) {
                    *star.entry(edge).or_default() += load;
                }
            }
            let star_stats = linkload::load_stats(&star);
            (cbt, spt, star_stats)
        });
        for (cbt, spt, star_stats) in trials {
            cbt_max += cbt.max_link as f64;
            cbt_tot += cbt.total as f64;
            spt_max += spt.max_link as f64;
            spt_tot += spt.total as f64;
            star_max += star_stats.max_link as f64;
            star_tot += star_stats.total as f64;
        }
        let k = p.seeds.len() as f64;
        table.row([
            s.to_string(),
            f(cbt_max / k),
            f(spt_max / k),
            f(star_max / k),
            f(cbt_tot / k),
            f(spt_tot / k),
            f(star_tot / k),
        ]);
        rows_json.push(json!({
            "senders": s,
            "cbt_max": cbt_max / k, "spt_max": spt_max / k, "star_max": star_max / k,
            "cbt_total": cbt_tot / k, "spt_total": spt_tot / k, "star_total": star_tot / k,
        }));
    }

    report.table(format!("per-link load, Waxman n={}, group size {}", p.n, p.group_size), table);
    let mut fig = cbt_metrics::BarChart::new(format!(
        "Figure S93-F2: hottest-link load vs senders (Waxman n={}, |G|={})",
        p.n, p.group_size
    ))
    .unit(" pkts");
    for row in &rows_json {
        fig.bar(format!("cbt  S={}", row["senders"]), row["cbt_max"].as_f64().unwrap_or(0.0));
        fig.bar(format!("spt  S={}", row["senders"]), row["spt_max"].as_f64().unwrap_or(0.0));
    }
    report.chart(fig);
    report.json = json!({
        "params": {"n": p.n, "group_size": p.group_size, "senders": p.senders},
        "rows": rows_json,
    });
    report.finding(
        "Traffic concentration is CBT's known cost: the shared tree's hottest link scales \
         with the sender count, exceeding the spread of per-source trees — yet total load \
         stays far below unicast replication.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_tree_concentrates_with_many_senders() {
        let r = run(&Params::quick());
        let rows = r.json["rows"].as_array().unwrap();
        let last = &rows[rows.len() - 1];
        assert!(
            last["cbt_max"].as_f64().unwrap() >= last["spt_max"].as_f64().unwrap(),
            "shared trees concentrate at high sender counts: {last:?}"
        );
    }

    #[test]
    fn multicast_beats_unicast_star_in_total() {
        let r = run(&Params::quick());
        for row in r.json["rows"].as_array().unwrap() {
            assert!(
                row["cbt_total"].as_f64().unwrap() <= row["star_total"].as_f64().unwrap() * 1.5,
                "star replication must not win: {row:?}"
            );
        }
    }
}
