//! S93-T3 — control overhead: explicit-join CBT vs data-driven
//! flood-and-prune.
//!
//! CBT's claim: control traffic is proportional to *membership changes*
//! (a join/ack pair per new branch hop, a quit per teardown, echoes per
//! tree edge), while flood-and-prune pays a topology-wide flood per
//! (source, group) and re-pays it every prune lifetime.
//!
//! The CBT numbers are **measured** from the packet-level simulator's
//! trace; the DVMRP numbers are measured from the message-accounted
//! flood-and-prune baseline, with its steady-state term derived from
//! the classic ~2-minute prune lifetime (documented substitution).

use crate::report::Report;
use crate::simrun::SimSetup;
use crate::workload::Workload;
use cbt::CbtConfig;
use cbt_baselines::flood_and_prune;
use cbt_metrics::{table::f, Table};
use cbt_netsim::{SimDuration, SimTime};
use cbt_topology::generate;
use serde_json::json;

/// Prune lifetime used to amortise DVMRP's periodic re-flood (seconds).
pub const PRUNE_LIFETIME_S: f64 = 120.0;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Topology size.
    pub n: usize,
    /// Group sizes to sweep.
    pub group_sizes: Vec<usize>,
    /// Number of active senders (for the DVMRP per-source costs).
    pub senders: usize,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Steady-state observation window (simulated).
    pub window: SimDuration,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 50,
            group_sizes: vec![4, 8, 16, 32],
            senders: 4,
            seeds: vec![0, 1, 2],
            window: SimDuration::from_secs(60),
        }
    }
}

impl Params {
    /// Small preset for tests/benches. `n` is kept large enough that
    /// a topology-wide flood visibly dwarfs a 4-member join — at very
    /// small n the two costs are within noise of each other and the
    /// comparison says nothing.
    pub fn quick() -> Self {
        Params {
            n: 25,
            group_sizes: vec![4, 8],
            senders: 2,
            seeds: vec![0],
            window: SimDuration::from_secs(30),
        }
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("S93-T3", "control overhead: explicit join vs flood-and-prune");
    let mut table = Table::new([
        "group size",
        "cbt setup msgs",
        "cbt steady msgs/min",
        "dvmrp setup msgs",
        "dvmrp steady msgs/min",
    ]);
    let mut rows_json = Vec::new();
    let mut fleet_obs = cbt_obs::ObsSnapshot { router: "fleet".into(), ..Default::default() };

    for &m in &p.group_sizes {
        if m > p.n {
            continue;
        }
        let mut cbt_setup = 0.0;
        let mut cbt_steady = 0.0;
        let mut dv_setup = 0.0;
        let mut dv_steady = 0.0;
        // One trial per seed, fanned out; summed below in seed order.
        let trials = crate::parallel::run_trials(&p.seeds, |&seed| {
            // --- CBT, measured on the packet simulator. ---
            let graph =
                generate::waxman(generate::WaxmanParams { n: p.n, ..Default::default() }, seed);
            let mut wl = Workload::new(&graph, seed.wrapping_add(6000));
            let members = wl.members(m);
            let senders = wl.senders_from(&members, p.senders);
            let core = cbt_topology::AllPairs::compute(&graph).medoid(&members).expect("connected");
            let mut setup = SimSetup::from_graph(graph.clone(), CbtConfig::fast(), &[core]);
            setup.join_members(&members, SimTime::from_secs(1), SimDuration::from_millis(100));
            setup.cw.world.start();
            // Setup phase: everything until all members are attached
            // (bounded at 10 s fast-timer time).
            let settle = SimTime::from_secs(10);
            setup.cw.world.run_until(settle);
            // Count CBT control frames only: IGMP is common to every
            // multicast scheme and would double-charge CBT here.
            let setup_msgs = setup.cw.world.trace().cbt_control_frames() as f64;
            // Steady phase: echoes over the window.
            setup.cw.world.run_for(p.window);
            let total_msgs = setup.cw.world.trace().cbt_control_frames() as f64;
            let per_min = (total_msgs - setup_msgs) * 60.0 / p.window.as_secs_f64();
            // --- DVMRP, measured on the message-accounted baseline. ---
            let mut cycle_msgs = 0u64;
            let distinct: std::collections::BTreeSet<_> = senders.iter().copied().collect();
            for src in distinct {
                let out = flood_and_prune(&graph, src, &members);
                cycle_msgs += out.total_messages();
            }
            (setup_msgs, per_min, cycle_msgs as f64, setup.obs_fleet())
        });
        for (setup_msgs, per_min, cycle_msgs, obs) in trials {
            fleet_obs.merge(&obs);
            // CbtConfig::fast() compresses timers 10×, so a real
            // deployment sends 10× fewer steady-state messages.
            cbt_setup += setup_msgs;
            cbt_steady += per_min / 10.0;
            dv_setup += cycle_msgs;
            dv_steady += cycle_msgs * 60.0 / PRUNE_LIFETIME_S;
        }
        let k = p.seeds.len() as f64;
        table.row([
            m.to_string(),
            f(cbt_setup / k),
            f(cbt_steady / k),
            f(dv_setup / k),
            f(dv_steady / k),
        ]);
        rows_json.push(json!({
            "group_size": m,
            "cbt_setup": cbt_setup / k,
            "cbt_steady_per_min": cbt_steady / k,
            "dvmrp_setup": dv_setup / k,
            "dvmrp_steady_per_min": dv_steady / k,
        }));
    }

    report.table(
        format!(
            "control messages, Waxman n={}, {} senders (DVMRP prune lifetime {}s)",
            p.n, p.senders, PRUNE_LIFETIME_S
        ),
        table,
    );
    report.json = json!({
        "params": {"n": p.n, "group_sizes": p.group_sizes, "senders": p.senders},
        "rows": rows_json,
    });
    report.attach_obs(&fleet_obs);
    report.finding(
        "CBT setup cost tracks membership (a join/ack pair per new tree hop); flood-and-prune \
         setup tracks the whole topology times the sender count, and repeats every prune \
         lifetime. CBT's steady state is the per-edge echo heartbeat.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbt_setup_cheaper_than_dvmrp_on_sparse_groups() {
        let r = run(&Params::quick());
        let rows = r.json["rows"].as_array().unwrap();
        let first = &rows[0]; // smallest group
        assert!(
            first["cbt_setup"].as_f64().unwrap() < first["dvmrp_setup"].as_f64().unwrap(),
            "explicit join must beat topology-wide flooding for sparse groups: {first:?}"
        );
    }

    /// The embedded counter snapshot follows the exporter schema: all
    /// six drop reasons present (zeros included), traffic counters and
    /// both latency histograms alongside.
    #[test]
    fn obs_snapshot_covers_all_drop_reasons() {
        let r = run(&Params::quick());
        let drops = r.obs["drops"].as_object().expect("obs.drops object");
        for reason in [
            "TtlExpired",
            "NoFibEntry",
            "InboxOverflow",
            "ChecksumBad",
            "DecodeError",
            "ScopeBoundary",
        ] {
            assert!(drops.contains_key(reason), "missing drop reason {reason}");
        }
        assert!(
            r.obs["join_rtt_us"]["count"].as_u64().unwrap() > 0,
            "join round-trips were recorded"
        );
        assert!(r.obs["data_forwarded"].as_u64().is_some());
        assert!(r.obs["timer_lag_us"]["count"].as_u64().is_some());
    }

    #[test]
    fn overhead_grows_with_membership_for_cbt_only() {
        let r = run(&Params::quick());
        let rows = r.json["rows"].as_array().unwrap();
        if rows.len() >= 2 {
            let a = rows[0]["cbt_setup"].as_f64().unwrap();
            let b = rows[rows.len() - 1]["cbt_setup"].as_f64().unwrap();
            assert!(b >= a, "more members, more joins");
        }
    }
}
