//! Spec-E1..E6 — the protocol walkthroughs of the -03 draft, replayed
//! on the reconstructed Figure 1 / Figure 5 topologies with the full
//! message ledger printed. (The corresponding assertions live in
//! `tests/spec_walkthroughs.rs`; these runs are for eyes.)

use crate::report::Report;
use cbt::{CbtConfig, CbtWorld};
use cbt_metrics::Table;
use cbt_netsim::{Entity, PacketKind, SimTime, WorldConfig};
use cbt_topology::{figure1, figure5_loop, Figure1};
use cbt_wire::{Addr, GroupId};
use serde_json::json;

const GROUP: GroupId = GroupId::numbered(1);

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn cores(fig: &Figure1) -> Vec<Addr> {
    vec![fig.net.router_addr(fig.primary_core()), fig.net.router_addr(fig.secondary_core())]
}

/// Renders the control-plane ledger from the world's trace.
fn ledger(cw: &CbtWorld, from: SimTime) -> Table {
    let mut t = Table::new(["t (s)", "from", "message"]);
    for e in cw.world.trace().entries() {
        if e.at < from {
            continue;
        }
        let name = match e.from {
            Entity::Router(r) => cw.net.routers[r.0 as usize].name.clone(),
            Entity::Host(h) => format!("host {}", cw.net.hosts[h.0 as usize].name),
        };
        let kind = match e.kind {
            PacketKind::Control(c) => format!("{c:?}"),
            PacketKind::Igmp(i) => format!("IGMP {i:?}"),
            PacketKind::DataNative => "data (native)".to_string(),
            PacketKind::DataCbt => "data (CBT mode)".to_string(),
            PacketKind::Other => "unparseable".to_string(),
        };
        t.row([format!("{:.3}", e.at.as_secs_f64()), name, kind]);
    }
    t
}

fn tree_table(cw: &mut CbtWorld, fig: &Figure1) -> Table {
    let mut t = Table::new(["router", "on-tree", "parent", "children", "pending"]);
    let numbers: Vec<usize> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12];
    for n in numbers {
        let r = fig.router(n);
        let engine = cw.router(r).engine();
        let parent = engine.parent_of(GROUP).map(|a| a.to_string()).unwrap_or("—".into());
        let children = engine.children_of(GROUP).len().to_string();
        t.row([
            format!("R{n}"),
            engine.is_on_tree(GROUP).to_string(),
            parent,
            children,
            engine.has_pending_join(GROUP).to_string(),
        ]);
    }
    t
}

/// Spec-E1: host A's join builds S1–R1–R3–R4.
pub fn e1() -> Report {
    let fig = figure1();
    let mut cw = CbtWorld::build(fig.net.clone(), CbtConfig::fast(), WorldConfig::default());
    cw.host(fig.hosts.a).join_at(t(1), GROUP, cores(&fig));
    cw.world.start();
    cw.world.run_until(t(4));

    let mut report = Report::new("Spec-E1", "§2.5: host A joins — branch R1–R3–R4");
    report.table("message ledger", ledger(&cw, t(1)));
    report.table("resulting tree state", tree_table(&mut cw, &fig));
    report.finding(format!(
        "R1 parent = {:?}; R4 (primary core) has no parent; joins seen: {}",
        cw.router(fig.router(1)).engine().parent_of(GROUP),
        cw.world.trace().count(PacketKind::Control(cbt_wire::ControlType::JoinRequest)),
    ));
    report.json = json!({"joins": cw.world.trace().count(PacketKind::Control(cbt_wire::ControlType::JoinRequest))});
    report
}

/// Spec-E2: B joins on S4 — the proxy-ack scenario.
pub fn e2() -> Report {
    let fig = figure1();
    let mut cw = CbtWorld::build(fig.net.clone(), CbtConfig::fast(), WorldConfig::default());
    cw.host(fig.hosts.a).join_at(t(1), GROUP, cores(&fig));
    cw.host(fig.hosts.b).join_at(t(3), GROUP, cores(&fig));
    cw.world.start();
    cw.world.run_until(t(6));

    let mut report = Report::new("Spec-E2", "§2.6: proxy-ack on S4 — R2 becomes G-DR");
    report.table("message ledger (from B's join)", ledger(&cw, t(3)));
    report.table("resulting tree state", tree_table(&mut cw, &fig));
    let r2 = cw.router(fig.router(2)).engine().stats();
    let r6_state = cw.router(fig.router(6)).engine().is_on_tree(GROUP);
    report.finding(format!(
        "R2 sent {} proxy-ack(s); R6 on-tree = {} (the D-DR keeps no FIB entry)",
        r2.proxy_acks_sent, r6_state
    ));
    report.json = json!({"r2_proxy_acks": r2.proxy_acks_sent, "r6_on_tree": r6_state});
    report
}

/// Spec-E3: B leaves — teardown R2→R3.
pub fn e3() -> Report {
    let fig = figure1();
    let mut cw = CbtWorld::build(fig.net.clone(), CbtConfig::fast(), WorldConfig::default());
    cw.host(fig.hosts.a).join_at(t(1), GROUP, cores(&fig));
    cw.host(fig.hosts.b).join_at(t(3), GROUP, cores(&fig));
    cw.host(fig.hosts.b).leave_at(t(6), GROUP);
    cw.world.start();
    cw.world.run_until(t(12));

    let mut report = Report::new("Spec-E3", "§2.7: teardown — R2 quits, R3 stays (child R1)");
    report.table("message ledger (from the leave)", ledger(&cw, t(6)));
    report.table("resulting tree state", tree_table(&mut cw, &fig));
    report.finding(format!(
        "R2 on-tree = {}; R3 on-tree = {} with {} child(ren)",
        cw.router(fig.router(2)).engine().is_on_tree(GROUP),
        cw.router(fig.router(3)).engine().is_on_tree(GROUP),
        cw.router(fig.router(3)).engine().children_of(GROUP).len(),
    ));
    report.json = json!({
        "r2_on_tree": cw.router(fig.router(2)).engine().is_on_tree(GROUP),
        "r3_children": cw.router(fig.router(3)).engine().children_of(GROUP).len(),
    });
    report
}

/// Spec-E4: the §5 data-forwarding walkthrough from member G.
pub fn e4() -> Report {
    let fig = figure1();
    let mut cw = CbtWorld::build(
        fig.net.clone(),
        CbtConfig::fast().with_mode(cbt::config::ForwardingMode::CbtMode),
        WorldConfig::default(),
    );
    let all = [
        fig.hosts.a,
        fig.hosts.b,
        fig.hosts.c,
        fig.hosts.d,
        fig.hosts.e,
        fig.hosts.f,
        fig.hosts.g,
        fig.hosts.h,
        fig.hosts.i,
        fig.hosts.j,
        fig.hosts.k,
        fig.hosts.l,
    ];
    for h in all {
        cw.host(h).join_at(t(1), GROUP, cores(&fig));
    }
    cw.host(fig.hosts.g).send_at(t(5), GROUP, b"from G".to_vec(), 32);
    cw.world.start();
    cw.world.run_until(t(8));

    let mut report = Report::new("Spec-E4", "§5: data from G spans the tree (CBT mode)");
    report.table("data-plane ledger", {
        let mut t2 = Table::new(["t (s)", "from", "message"]);
        for e in cw.world.trace().entries() {
            if e.at < t(5) || !e.kind.is_data() {
                continue;
            }
            let name = match e.from {
                Entity::Router(r) => cw.net.routers[r.0 as usize].name.clone(),
                Entity::Host(h) => format!("host {}", cw.net.hosts[h.0 as usize].name),
            };
            let kind = match e.kind {
                PacketKind::DataNative => "IP multicast (native)",
                PacketKind::DataCbt => "CBT unicast/multicast",
                _ => unreachable!(),
            };
            t2.row([format!("{:.3}", e.at.as_secs_f64()), name, kind.to_string()]);
        }
        t2
    });
    let mut deliveries = Table::new(["host", "copies received"]);
    let names = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L"];
    let mut delivered = 0;
    for (name, h) in names.iter().zip(all) {
        let n = cw.host(h).received().len();
        delivered += n;
        deliveries.row([name.to_string(), n.to_string()]);
    }
    report.table("deliveries", deliveries);
    report.finding(format!(
        "11 member hosts received exactly one copy each (total {delivered}); G does not hear itself"
    ));
    report.json = json!({"total_deliveries": delivered});
    report
}

/// Spec-E5: the §6.3 loop-detection walkthrough on Figure 5.
pub fn e5() -> Report {
    let fig = figure5_loop();
    let net = fig.net.clone();
    let r = |n: usize| fig.router(n);
    let core = net.router_addr(r(1));
    let mut cw = CbtWorld::build(net.clone(), CbtConfig::fast(), WorldConfig::default());
    let h5 = cbt_topology::HostId(4);
    cw.host(h5).join_at(t(1), GROUP, vec![core]);
    cw.world.start();
    cw.world.run_until(t(4));

    // Break R2–R3 and inject the stale-routing opinions of §6.3.
    cw.world.failures_mut().fail_link(cbt_topology::LinkId(1));
    {
        let mut rib = cw.rib.write();
        rib.set_override(r(3), r(1), r(6));
        rib.set_override(r(6), r(1), r(5));
    }
    let loop_starts = cw.world.now();
    cw.world.run_until(t(25));

    let mut report = Report::new("Spec-E5", "§6.3: ACTIVE_REJOIN → NACTIVE_REJOIN loop break");
    report.table("message ledger (from the failure)", {
        let mut t2 = Table::new(["t (s)", "from", "message"]);
        for e in cw.world.trace().entries() {
            if e.at < loop_starts || !matches!(e.kind, PacketKind::Control(_)) {
                continue;
            }
            let name = match e.from {
                Entity::Router(rr) => net.routers[rr.0 as usize].name.clone(),
                Entity::Host(h) => format!("host {}", net.hosts[h.0 as usize].name),
            };
            t2.row([format!("{:.3}", e.at.as_secs_f64()), name, format!("{:?}", e.kind)]);
        }
        t2
    });
    let loops = cw.router(r(3)).engine().stats().loops_broken;
    report.finding(format!(
        "R3 detected and broke the loop {loops} time(s) via its own NACTIVE rejoin"
    ));
    report.json = json!({"loops_broken": loops});
    report
}

/// Spec-E6: parent failure and §6.1 re-attachment timing.
pub fn e6() -> Report {
    let fig = figure1();
    let mut cw = CbtWorld::build(fig.net.clone(), CbtConfig::fast(), WorldConfig::default());
    let all = [fig.hosts.a, fig.hosts.h, fig.hosts.j, fig.hosts.g, fig.hosts.k];
    for h in all {
        cw.host(h).join_at(t(1), GROUP, cores(&fig));
    }
    cw.world.start();
    cw.world.run_until(t(5));
    cw.fail_router(fig.router(8));
    cw.world.run_until(t(30));

    let mut report = Report::new("Spec-E6", "§6.1: R8 dies — echo timeout, island re-roots at R9");
    report.table("tree state after failure", tree_table(&mut cw, &fig));
    let r9 = cw.router(fig.router(9)).engine();
    report.finding(format!(
        "R9 (secondary core) on-tree = {}, parent = {:?}, parent failures seen = {}",
        r9.is_on_tree(GROUP),
        r9.parent_of(GROUP),
        r9.stats().parent_failures,
    ));
    report.json = json!({"r9_on_tree": r9.is_on_tree(GROUP)});
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_spec_scenarios_render() {
        for report in [e1(), e2(), e3(), e4(), e5(), e6()] {
            let s = report.render();
            assert!(s.contains(report.id), "{}", report.id);
            assert!(!report.tables.is_empty());
        }
    }

    #[test]
    fn e2_confirms_proxy_ack() {
        let r = e2();
        assert_eq!(r.json["r2_proxy_acks"], 1);
        assert_eq!(r.json["r6_on_tree"], false);
    }

    #[test]
    fn e4_delivers_eleven_copies() {
        let r = e4();
        assert_eq!(r.json["total_deliveries"], 11);
    }

    #[test]
    fn e5_breaks_the_loop() {
        let r = e5();
        assert!(r.json["loops_broken"].as_u64().unwrap() >= 1);
    }
}
