//! Expl-1 — systematic fault-interleaving exploration.
//!
//! Drives the forward-search harness in `cbt::explore`: one fault-free
//! baseline per scenario labels every injection point with the
//! protocol phase the fleet was in, then the search executes a budget
//! of single-fault placements (depth 1) and extends the
//! signature-changing ones with a second fault (depth 2). Every run
//! heals, quiesces, and passes through the tree-invariant checker;
//! violations come back minimized as replayable counterexamples, which
//! this experiment writes under `target/eval-results/counterexamples/`
//! in the same `cbt-cex v1` format the golden corpus in
//! `tests/corpus/` uses.
//!
//! The interesting output is the phase × fault-dimension coverage
//! matrix (how many executed placements landed a crash inside
//! pending-join, a control drop inside teardown, …) and the count of
//! distinct end-state signatures — a measure of how much genuinely
//! different behaviour the budget bought. A healthy report has **zero**
//! counterexamples; any row in that table is a protocol bug with a
//! ready-made regression file.
//!
//! Interleavings fan out over the trial pool ([`crate::parallel`]):
//! the search hands whole batches to `run_trials`, which returns
//! results in input order, so the report is identical for any
//! `--jobs N`.

use crate::report::Report;
use cbt::explore::{explore_with, run_job, ExploreParams, ExploreReport, FaultTag};
use cbt::ProtocolPhase;
use cbt_metrics::Table;
use serde_json::json;
use std::path::PathBuf;

/// Search budget knobs (a thin preset layer over
/// [`cbt::explore::ExploreParams`]).
#[derive(Debug, Clone)]
pub struct Params {
    /// Maximum schedule length (1 = single faults only).
    pub depth: usize,
    /// Total interleaving budget across scenarios and depths.
    pub max_runs: usize,
    /// Shard count every run uses.
    pub shards: usize,
    /// World seed shared by every run.
    pub seed: u64,
    /// Where minimized counterexamples are written (`None` = don't).
    pub counterexample_dir: Option<PathBuf>,
}

impl Default for Params {
    fn default() -> Self {
        let base = ExploreParams::default();
        Params {
            depth: base.depth,
            max_runs: 1500,
            shards: base.shards,
            seed: base.seed,
            counterexample_dir: Some(PathBuf::from("target/eval-results/counterexamples")),
        }
    }
}

impl Params {
    /// CI smoke preset: still ≥ 500 interleavings (the acceptance
    /// floor), just a tighter budget than the full run.
    pub fn quick() -> Self {
        Params { max_runs: 600, ..Params::default() }
    }

    fn to_explore(&self) -> ExploreParams {
        ExploreParams {
            depth: self.depth,
            max_runs: self.max_runs,
            shards: self.shards,
            seed: self.seed,
            ..ExploreParams::default()
        }
    }
}

/// Runs the search over the trial pool and renders the report.
pub fn run(p: &Params) -> Report {
    let params = p.to_explore();
    let result = explore_with(&params, |jobs| crate::parallel::run_trials(jobs, run_job));
    render(p, &params, &result)
}

fn render(p: &Params, params: &ExploreParams, r: &ExploreReport) -> Report {
    let mut report = Report::new("Expl-1", "systematic fault-interleaving exploration");

    // Phase × fault-dimension coverage (runs per cell).
    let mut cov = Table::new([
        "phase",
        FaultTag::DropControl.as_str(),
        FaultTag::DropData.as_str(),
        FaultTag::Crash.as_str(),
        FaultTag::CutLink.as_str(),
        FaultTag::CutLan.as_str(),
    ]);
    for phase in ProtocolPhase::ALL {
        let mut row = vec![phase.as_str().to_string()];
        row.extend(FaultTag::ALL.iter().map(|&t| r.coverage.get(phase, t).to_string()));
        cov.row(row);
    }
    report.table("fault placements executed per protocol phase × fault dimension", cov);

    let mut summary = Table::new(["scenario", "interleavings"]);
    for (name, n) in &r.per_scenario {
        summary.row([name.clone(), n.to_string()]);
    }
    summary.row(["total".to_string(), r.interleavings.to_string()]);
    report.table("interleavings per scenario", summary);

    // Counterexamples are the headline result; persist them in replay
    // format so a violation found in CI is immediately a local repro.
    let mut cex_files = Vec::new();
    if let Some(dir) = &p.counterexample_dir {
        if !r.counterexamples.is_empty() && std::fs::create_dir_all(dir).is_ok() {
            for (i, cex) in r.counterexamples.iter().enumerate() {
                let path = dir.join(cex.file_name(i));
                if std::fs::write(&path, cex.to_string()).is_ok() {
                    cex_files.push(path.display().to_string());
                }
            }
        }
    }

    report.json = json!({
        "params": {
            "scenarios": params.scenarios,
            "depth": params.depth,
            "max_runs": params.max_runs,
            "shards": params.shards,
            "seed": params.seed,
        },
        "interleavings": r.interleavings,
        "distinct_signatures": r.distinct_signatures,
        "violating_runs": r.violating_runs,
        "quiesce_failures": r.quiesce_failures,
        "phases_covered": r.coverage.phases_covered(),
        "coverage": ProtocolPhase::ALL.iter().map(|&ph| json!({
            "phase": ph.as_str(),
            "runs": FaultTag::ALL.iter()
                .map(|&t| json!({"fault": t.as_str(), "count": r.coverage.get(ph, t)}))
                .collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
        "per_scenario": r.per_scenario.iter()
            .map(|(n, c)| json!({"scenario": n, "interleavings": c}))
            .collect::<Vec<_>>(),
        "counterexamples": r.counterexamples.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        "counterexample_files": cex_files,
    });
    report.attach_obs(&r.baseline_obs);

    report.finding(format!(
        "{} fault interleavings executed (depth ≤ {}) across {} scenarios produced {} distinct \
         end-state signatures; faults landed in {}/{} protocol phases across all five fault \
         dimensions.",
        r.interleavings,
        params.depth,
        r.per_scenario.len(),
        r.distinct_signatures,
        r.coverage.phases_covered(),
        ProtocolPhase::COUNT,
    ));
    if r.counterexamples.is_empty() {
        report.finding(format!(
            "Every interleaving healed to an invariant-clean tree ({} quiesce failures): \
             parent/child symmetry, loop freedom, member attachment, and no orphaned hard \
             state all hold after every fault schedule in the budget.",
            r.quiesce_failures,
        ));
    } else {
        report.finding(format!(
            "{} run(s) violated tree invariants — {} minimized counterexample(s) written as \
             replayable .cex files (see counterexample_files in the JSON record).",
            r.violating_runs,
            r.counterexamples.len(),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny budget still exercises the full pipeline: coverage rows
    /// for every phase, per-scenario accounting, machine-readable
    /// record, and a clean verdict on the healthy engine.
    #[test]
    fn report_carries_coverage_and_verdict() {
        let p = Params { depth: 1, max_runs: 12, counterexample_dir: None, ..Params::default() };
        let r = run(&p);
        assert_eq!(r.json["interleavings"].as_u64().unwrap(), 12);
        assert!(r.json["distinct_signatures"].as_u64().unwrap() >= 2);
        assert_eq!(r.json["coverage"].as_array().unwrap().len(), ProtocolPhase::COUNT);
        assert_eq!(r.json["per_scenario"].as_array().unwrap().len(), 3);
        assert!(
            r.json["counterexamples"].as_array().unwrap().is_empty(),
            "healthy engine explores clean: {:?}",
            r.json["counterexamples"]
        );
        assert!(!r.findings.is_empty());
        assert!(r.obs.get("drops").is_some(), "baseline obs snapshot attached");
    }
}
