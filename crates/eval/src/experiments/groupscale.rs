//! Impl-1 — timer service scaling: hierarchical wheel vs full-state scan.
//!
//! The engine's legacy timer path recomputes `next_wakeup` and walks
//! every FIB entry, pending join, LAN and deferral on *every* wakeup:
//! O(groups) per tick. The timer wheel keys each deadline once, so a
//! wakeup costs O(entries actually due). This experiment drives one
//! leaf router to N group memberships (staggered so echo deadlines
//! spread over the whole §9 echo interval), then measures the wall cost
//! of the `next_wakeup` + `on_timer` pair over a multi-interval window.
//! Both modes are driven through the identical deterministic schedule —
//! same wakeups, same actions — so the only variable is the timer
//! service itself.

use crate::report::Report;
use cbt::{CbtConfig, CbtRouter, RouteLookup};
use cbt_metrics::{table::f, Table};
use cbt_netsim::{SimDuration, SimTime};
use cbt_routing::Hop;
use cbt_topology::{HostId, IfIndex, NetworkBuilder, NetworkSpec};
use cbt_wire::{AckSubcode, Addr, ControlMessage, GroupId, IgmpMessage};
use serde_json::json;
use std::collections::BTreeMap;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Group counts to sweep.
    pub sizes: Vec<usize>,
    /// Seconds of timer activity to measure once all joins settle.
    pub measure_secs: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params { sizes: vec![100, 1000, 10_000], measure_secs: 120 }
    }
}

impl Params {
    /// Small preset for tests/benches.
    pub fn quick() -> Self {
        Params { sizes: vec![100, 1000], measure_secs: 60 }
    }
}

/// Scripted unicast routing: dst → hop. Mirrors the engine's test
/// harness (which is `cfg(test)`-gated and not exported).
struct ScriptRoutes(BTreeMap<Addr, Hop>);

impl RouteLookup for ScriptRoutes {
    fn hop_toward(&self, dst: Addr) -> Option<Hop> {
        self.0.get(&dst).copied()
    }
}

/// What one driven run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RunStats {
    /// `next_wakeup` + `on_timer` invocations inside the window.
    wakeups: u64,
    /// Wall nanoseconds spent inside those invocations.
    timer_ns: u128,
    /// Actions the timer path emitted inside the window.
    timer_actions: u64,
}

/// Structural fingerprint (everything except wall time) — must be
/// identical across modes or the comparison is meaningless.
fn shape(s: &RunStats) -> (u64, u64) {
    (s.wakeups, s.timer_actions)
}

/// Drives one leaf router to `n` memberships and measures the timer
/// path. ME sits on a stub LAN (if0) with one host and a p2p link (if1)
/// to UP, which plays both unicast next hop and tree parent: it acks
/// every join and answers every echo, so ME holds `n` FIB entries with
/// a live parent — the state the per-tick scan pays for.
fn drive(n: usize, wheel: bool, measure_secs: u64) -> RunStats {
    let mut b = NetworkBuilder::new();
    let me = b.router("ME");
    let up = b.router("UP");
    let lan = b.lan("S0");
    b.attach(lan, me);
    b.host("H", lan);
    b.link(me, up, 1);
    let net: NetworkSpec = b.build();

    let core = net.router_addr(up);
    let host = net.host_addr(HostId(0));
    let lan_if = IfIndex(0);
    let up_if = IfIndex(1);
    let up_peer = Addr::from_octets(172, 31, 0, 2);
    let routes = ScriptRoutes(
        [(core, Hop { iface: up_if, router: up, addr: up_peer, dist: 1 })].into_iter().collect(),
    );

    let cfg = CbtConfig { timer_wheel: wheel, ..CbtConfig::default() };
    let echo_us = cfg.echo_interval.micros();
    let mut eng = CbtRouter::new(&net, me, cfg, Box::new(routes), SimTime::ZERO);

    // Stagger the n joins across one full echo interval so per-group
    // echo deadlines spread out instead of piling onto one instant.
    let mut joins: Vec<(SimTime, GroupId)> = (0..n)
        .map(|i| {
            let t = SimTime::from_micros(1_000_000 + (i as u64 * echo_us) / n as u64);
            (t, GroupId::numbered(i as u16))
        })
        .collect();
    joins.reverse(); // pop() yields earliest first

    let measure_start = SimTime::from_micros(1_000_000 + echo_us);
    let measure_end = measure_start + SimDuration::from_secs(measure_secs);
    let mut stats = RunStats { wakeups: 0, timer_ns: 0, timer_actions: 0 };

    // UP's half of the conversation: ack joins, answer echoes. Neither
    // is timed — only the timer path under test is.
    let respond = |eng: &mut CbtRouter, now: SimTime, acts: &[cbt::RouterAction]| {
        for a in acts {
            let cbt::RouterAction::SendControl { iface, msg, .. } = a else { continue };
            if *iface != up_if {
                continue;
            }
            match msg {
                ControlMessage::JoinRequest { group, origin, target_core, cores, .. } => {
                    let ack = ControlMessage::JoinAck {
                        subcode: AckSubcode::Normal,
                        group: *group,
                        origin: *origin,
                        target_core: *target_core,
                        cores: cores.clone(),
                    };
                    eng.handle_control(now, up_if, up_peer, ack);
                }
                ControlMessage::EchoRequest { group, group_mask, .. } => {
                    let reply = ControlMessage::EchoReply {
                        group: *group,
                        origin: up_peer,
                        group_mask: *group_mask,
                    };
                    eng.handle_control(now, up_if, up_peer, reply);
                }
                _ => {}
            }
        }
    };

    loop {
        let next_join = joins.last().map(|(t, _)| *t);
        let next_timer = eng.next_wakeup();
        let now = match (next_join, next_timer) {
            (Some(j), Some(t)) => j.min(t),
            (Some(j), None) => j,
            (None, Some(t)) => t,
            (None, None) => break,
        };
        if now > measure_end {
            break;
        }
        // Timers first at ties, then the join input — the same policy
        // for both modes, so their schedules stay aligned.
        if next_timer.is_some_and(|t| t <= now) {
            let in_window = now >= measure_start;
            let t0 = std::time::Instant::now();
            // The pair the simulator pays per wakeup: the reschedule
            // peek plus the due-work dispatch.
            let _ = eng.next_wakeup();
            let acts = eng.on_timer(now);
            let dt = t0.elapsed().as_nanos();
            if in_window {
                stats.wakeups += 1;
                stats.timer_ns += dt;
                stats.timer_actions += acts.len() as u64;
            }
            respond(&mut eng, now, &acts);
        } else {
            let (t, group) = joins.pop().expect("join input due");
            eng.learn_cores(group, &[core]);
            let acts = eng.handle_igmp(t, lan_if, host, IgmpMessage::Report { version: 2, group });
            respond(&mut eng, t, &acts);
        }
    }
    assert_eq!(eng.fib().len(), n, "all {n} groups must be on-tree with a live parent");
    stats
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("Impl-1", "timer service: wheel vs per-tick full-state scan");
    let mut table =
        Table::new(["groups", "mode", "wakeups", "timer ms", "µs/wakeup", "timer events/s"]);
    let mut rows_json = Vec::new();
    let mut per_size = Vec::new();

    for &n in &p.sizes {
        let wheel = drive(n, true, p.measure_secs);
        let scan = drive(n, false, p.measure_secs);
        assert_eq!(shape(&wheel), shape(&scan), "n={n}: modes must replay the identical schedule");
        let mut us_per_wakeup = [0.0f64; 2];
        for (slot, (mode, s)) in [("wheel", &wheel), ("scan", &scan)].iter().enumerate() {
            let ms = s.timer_ns as f64 / 1.0e6;
            let us =
                if s.wakeups == 0 { 0.0 } else { s.timer_ns as f64 / 1.0e3 / s.wakeups as f64 };
            let eps = if ms == 0.0 { 0.0 } else { s.timer_actions as f64 / (ms / 1.0e3) };
            us_per_wakeup[slot] = us;
            table.row([
                n.to_string(),
                mode.to_string(),
                s.wakeups.to_string(),
                f(ms),
                f(us),
                f(eps),
            ]);
            rows_json.push(json!({
                "groups": n,
                "mode": mode,
                "wakeups": s.wakeups,
                "timer_wall_ms": ms,
                "us_per_wakeup": us,
                "timer_actions": s.timer_actions,
                "events_per_s": eps,
            }));
        }
        per_size.push((n, us_per_wakeup[0], us_per_wakeup[1]));
    }

    report.table(
        format!(
            "per-wakeup timer cost, {}s window after joins settle (leaf router, live parent)",
            p.measure_secs
        ),
        table,
    );
    let mut fig =
        cbt_metrics::BarChart::new("Figure Impl-1: µs per timer wakeup vs group count".to_string())
            .unit(" µs");
    for (n, wheel_us, scan_us) in &per_size {
        fig.bar(format!("wheel G={n}"), *wheel_us);
        fig.bar(format!("scan  G={n}"), *scan_us);
    }
    report.chart(fig);
    report.json = json!({
        "params": {"sizes": p.sizes, "measure_secs": p.measure_secs},
        "rows": rows_json,
    });
    report.finding(
        "Both timer services replay the identical wakeup schedule (equal wakeup and action \
         counts — the determinism suite proves bit-identity), but the scan path pays O(groups) \
         per wakeup while the wheel pays only for entries actually due: its per-wakeup cost \
         stays near-flat from 100 to 10k groups where the scan's grows linearly.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_replay_the_same_schedule() {
        let wheel = drive(64, true, 40);
        let scan = drive(64, false, 40);
        assert_eq!(shape(&wheel), shape(&scan));
        // A 40s window past a 30s echo interval must see echo traffic.
        assert!(wheel.timer_actions as usize >= 64, "echoes fired: {wheel:?}");
    }

    #[test]
    fn report_has_rows_for_both_modes_per_size() {
        let r = run(&Params { sizes: vec![32, 96], measure_secs: 35 });
        let rows = r.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 4);
        for n in [32u64, 96] {
            for mode in ["wheel", "scan"] {
                assert!(
                    rows.iter().any(|r| r["groups"] == n && r["mode"] == mode),
                    "missing row {n}/{mode}"
                );
            }
        }
        // The schedule scales with group count.
        let w = |n: u64| {
            rows.iter()
                .find(|r| r["groups"] == n && r["mode"] == "wheel")
                .and_then(|r| r["wakeups"].as_u64())
                .unwrap()
        };
        assert!(w(96) > w(32), "more groups ⇒ more echo wakeups");
    }
}
