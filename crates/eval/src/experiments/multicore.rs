//! Abl-2 — single vs multiple cores under primary-core failure.
//!
//! With one core, killing it strands the group: FIB entries through the
//! dead core linger until echo timeouts tear them down, and no re-join
//! can succeed. With a secondary core in the §1 ordered list, §6.1's
//! re-attachment steers orphaned routers to the alternate and service
//! resumes within the echo-timeout + rejoin budget.
//!
//! Recovery is judged by the honest signal — end-to-end probe delivery
//! between two member hosts — not by FIB presence (stale entries look
//! "attached" until the keepalives notice).

use crate::report::Report;
use crate::simrun::SimSetup;
use crate::workload::Workload;
use cbt::CbtConfig;
use cbt_metrics::{table::f, Table};
use cbt_netsim::{SimDuration, SimTime};
use cbt_topology::{generate, AllPairs, RouterId};
use serde_json::json;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Topology size.
    pub n: usize,
    /// Group size.
    pub group_size: usize,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
}

impl Default for Params {
    fn default() -> Self {
        Params { n: 40, group_size: 10, seeds: vec![0, 1, 2] }
    }
}

impl Params {
    /// Small preset for tests/benches.
    pub fn quick() -> Self {
        Params { n: 20, group_size: 6, seeds: vec![0] }
    }
}

/// One scenario's outcome.
#[derive(Debug, Clone, Copy)]
struct Outcome {
    /// Probe delivered to every member before the kill (sanity).
    worked_before: bool,
    /// Seconds (simulated) from the kill until a probe reached **all**
    /// members again; `None` if full service never resumed. (CBT trees
    /// are bidirectional, so same-branch pairs keep working for a while
    /// even with the core dead — full-group delivery is the honest
    /// recovery criterion.)
    recovery_s: Option<u64>,
    /// Members reached by a final probe sent long after the kill — for
    /// a single core this collapses to zero once teardown cascades.
    late_delivery: usize,
}

/// Is every node of `must_reach` still mutually connected after
/// deleting `removed` from `g`?
fn connected_without(
    g: &cbt_topology::Graph,
    removed: cbt_topology::NodeId,
    must_reach: &[cbt_topology::NodeId],
) -> bool {
    let mut h = cbt_topology::Graph::with_nodes(g.node_count());
    for (a, b, w) in g.edges() {
        if a != removed && b != removed {
            h.add_edge(a, b, w);
        }
    }
    let Some(&start) = must_reach.first() else { return true };
    let sp = cbt_topology::ShortestPaths::dijkstra(&h, start);
    must_reach.iter().all(|m| sp.dist(*m).is_some())
}

fn scenario(n: usize, group_size: usize, seed: u64, core_count: usize) -> Outcome {
    let graph = generate::waxman(generate::WaxmanParams { n, ..Default::default() }, seed);
    let ap = AllPairs::compute(&graph);
    let mut wl = Workload::new(&graph, seed.wrapping_add(8000));
    let members = wl.members(group_size);
    let center = ap.center().expect("connected");
    // The primary must not be a cut vertex separating the members from
    // the rest — otherwise "recovery" is physically impossible and the
    // run measures the topology, not the protocol. Prefer the members'
    // medoid; fall back to the next-most-central survivable choice.
    let mut candidates: Vec<_> = graph.nodes().filter(|c| !members.contains(c)).collect();
    candidates.sort_by_key(|c| {
        members.iter().map(|m| ap.dist(*c, *m).unwrap_or(u64::MAX / 2)).sum::<u64>()
    });
    let primary = candidates
        .iter()
        .copied()
        .find(|c| {
            let mut reach = members.clone();
            let sec = if center != *c { center } else { cbt_topology::NodeId(1) };
            reach.push(sec);
            connected_without(&graph, *c, &reach)
        })
        .expect("some survivable primary exists");
    let secondary = if center != primary { center } else { wl.random_core() };
    let cores: Vec<_> = match core_count {
        1 => vec![primary],
        _ => vec![primary, secondary],
    };

    let mut setup = SimSetup::from_graph(graph, CbtConfig::fast(), &cores);
    let members: Vec<_> =
        members.into_iter().filter(|m| *m != primary && *m != secondary).collect();
    setup.join_members(&members, SimTime::from_secs(1), SimDuration::from_millis(100));
    let sender = setup.host_of(members[0]);
    let listeners: Vec<_> = members[1..].iter().map(|m| setup.host_of(*m)).collect();
    setup.cw.world.start();
    setup.cw.world.run_until(SimTime::from_secs(8));

    // One probe transmission; returns how many listeners heard it.
    let probe = |setup: &mut SimSetup, tag: String, wait: SimDuration| -> usize {
        let baselines: Vec<usize> =
            listeners.iter().map(|h| setup.cw.host(*h).received().len()).collect();
        let t = setup.cw.world.now();
        setup.cw.host(sender).send_at(t, setup.group, tag.into_bytes(), 64);
        setup.cw.touch_host(sender);
        let deadline = setup.cw.world.now() + wait;
        setup.cw.world.run_until(deadline);
        listeners
            .iter()
            .zip(&baselines)
            .filter(|(h, base)| setup.cw.host(**h).received().len() > **base)
            .count()
    };

    let worked_before =
        probe(&mut setup, "pre".into(), SimDuration::from_secs(2)) == listeners.len();

    // Kill the primary; probe every 2 s of simulated time. (The tree
    // below the dead core keeps delivering for a while — bidirectional
    // shared trees don't need the root for intra-subtree traffic — so
    // "recovered" is only credited when delivery is also *sustained*
    // past every teardown timer, i.e. the late probe still reaches
    // everyone.)
    setup.cw.fail_router(RouterId(primary.0));
    let mut recovery_s = None;
    for round in 1..=20u64 {
        let reached = probe(&mut setup, format!("p{round}"), SimDuration::from_secs(2));
        if reached == listeners.len() && recovery_s.is_none() {
            recovery_s = Some(2 * round);
        }
        if round >= 10 && recovery_s.is_some() {
            break;
        }
    }
    // Late probe well after every teardown timer has run its course.
    let settle = setup.cw.world.now() + SimDuration::from_secs(20);
    setup.cw.world.run_until(settle);
    let late_delivery = probe(&mut setup, "late".into(), SimDuration::from_secs(2));
    if late_delivery != listeners.len() {
        recovery_s = None; // transient delivery only: not a recovery
    }
    Outcome { worked_before, recovery_s, late_delivery }
}

/// Runs the ablation.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("Abl-2", "primary-core failure: one core vs two");
    let mut table = Table::new([
        "cores",
        "pre-kill delivery",
        "full service recovered",
        "mean recovery s (sim)",
        "late-probe reach",
    ]);
    let mut rows_json = Vec::new();

    for core_count in [1usize, 2] {
        let mut worked_before = 0usize;
        let mut recoveries = Vec::new();
        let mut late_total = 0usize;
        // One full failover scenario per seed, fanned out; merged in
        // seed order.
        let trials = crate::parallel::run_trials(&p.seeds, |&seed| {
            scenario(p.n, p.group_size, seed, core_count)
        });
        for o in trials {
            worked_before += o.worked_before as usize;
            late_total += o.late_delivery;
            if let Some(t) = o.recovery_s {
                recoveries.push(t as f64);
            }
        }
        let mean_rec = if recoveries.is_empty() {
            None
        } else {
            Some(recoveries.iter().sum::<f64>() / recoveries.len() as f64)
        };
        table.row([
            core_count.to_string(),
            format!("{worked_before}/{}", p.seeds.len()),
            format!("{}/{}", recoveries.len(), p.seeds.len()),
            mean_rec.map(f).unwrap_or_else(|| "never".into()),
            late_total.to_string(),
        ]);
        rows_json.push(json!({
            "cores": core_count,
            "worked_before": worked_before,
            "recovered_runs": recoveries.len(),
            "runs": p.seeds.len(),
            "mean_recovery_s": mean_rec,
            "late_delivery": late_total,
        }));
    }

    report.table(
        format!(
            "failover (probe-delivery criterion), Waxman n={}, group size {}, fast timers",
            p.n, p.group_size
        ),
        table,
    );
    report.json = json!({
        "params": {"n": p.n, "group_size": p.group_size, "seeds": p.seeds.len()},
        "rows": rows_json,
    });
    report.finding(
        "With a single core its failure ends service permanently — stale FIB entries linger \
         until echo timeouts but no re-join can succeed. A secondary core in the ordered list \
         restores end-to-end delivery within the echo-timeout (9 s fast) + rejoin budget.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cores_recover_one_does_not() {
        let r = run(&Params::quick());
        let rows = r.json["rows"].as_array().unwrap();
        let one = &rows[0];
        let two = &rows[1];
        assert_eq!(one["worked_before"], one["runs"], "pre-kill delivery worked");
        assert_eq!(
            one["recovered_runs"].as_u64().unwrap(),
            0,
            "single core: full service never resumes: {one:?}"
        );
        assert_eq!(
            one["late_delivery"].as_u64().unwrap(),
            0,
            "single core: teardown cascades end even partial delivery: {one:?}"
        );
        assert_eq!(
            two["recovered_runs"], two["runs"],
            "dual core: every run recovered fully: {two:?}"
        );
        assert!(two["mean_recovery_s"].as_f64().unwrap() <= 30.0);
    }
}
