//! S93-T1 — router state: CBT O(G) vs source-based O(S·G).
//!
//! The headline scaling claim: a CBT router keeps one FIB entry per
//! group it is on-tree for, independent of the number of senders, and
//! off-tree routers keep nothing. A DVMRP-style router keeps one
//! (source, group) entry per active sender — and routers *off* the
//! delivery tree still pay prune state because the flood touched them.

use crate::report::Report;
use crate::workload::Workload;
use cbt_baselines::{cbt_shared_tree, flood_and_prune};
use cbt_metrics::{table::f, Table};
use cbt_topology::{generate, AllPairs, NodeId};
use serde_json::json;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Topology size.
    pub n: usize,
    /// Group size (member routers) held fixed across the sender sweep.
    pub group_size: usize,
    /// Sender counts to sweep.
    pub senders: Vec<usize>,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 100,
            group_size: 16,
            senders: vec![1, 2, 4, 8, 16, 32],
            seeds: (0..10).collect(),
        }
    }
}

impl Params {
    /// Small preset for tests/benches.
    pub fn quick() -> Self {
        Params { n: 40, group_size: 8, senders: vec![1, 4, 8], seeds: vec![0, 1] }
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("S93-T1", "router state: CBT vs DVMRP-style source trees");
    let mut table = Table::new([
        "senders",
        "cbt total entries",
        "cbt max/router",
        "dvmrp total entries",
        "dvmrp max/router",
        "dvmrp/cbt",
    ]);
    let mut rows_json = Vec::new();

    for &s in &p.senders {
        let mut cbt_total = 0.0;
        let mut cbt_max = 0.0;
        let mut dv_total = 0.0;
        let mut dv_max = 0.0;
        // One trial per seed, fanned out; summed below in seed order.
        let trials = crate::parallel::run_trials(&p.seeds, |&seed| {
            let g = generate::waxman(generate::WaxmanParams { n: p.n, ..Default::default() }, seed);
            let ap = AllPairs::compute(&g);
            let mut wl = Workload::new(&g, seed.wrapping_add(1000));
            let members = wl.members(p.group_size);
            let senders = wl.senders_from(&members, s);
            let core = ap.medoid(&members).expect("connected");

            // CBT: one entry per on-tree router, senders irrelevant.
            let tree = cbt_shared_tree(&g, core, &members);
            let mut on_tree: std::collections::BTreeSet<NodeId> = members.iter().copied().collect();
            on_tree.insert(core);
            for (a, b, _) in tree.edges() {
                on_tree.insert(a);
                on_tree.insert(b);
            }
            // DVMRP: per *distinct* sender, forwarding + prune state.
            let mut per_router = vec![0u64; p.n];
            let distinct: std::collections::BTreeSet<NodeId> = senders.iter().copied().collect();
            for src in distinct {
                let out = flood_and_prune(&g, src, &members);
                for r in out.forwarding_state.iter().chain(out.prune_state.iter()) {
                    per_router[r.idx()] += 1;
                }
            }
            (
                on_tree.len() as f64,
                per_router.iter().sum::<u64>() as f64,
                *per_router.iter().max().unwrap_or(&0) as f64,
            )
        });
        for (on_tree_n, dv_t, dv_m) in trials {
            cbt_total += on_tree_n;
            cbt_max += 1.0; // one group ⇒ at most one entry per router
            dv_total += dv_t;
            dv_max += dv_m;
        }
        let k = p.seeds.len() as f64;
        let (cbt_total, cbt_max, dv_total, dv_max) =
            (cbt_total / k, cbt_max / k, dv_total / k, dv_max / k);
        table.row([
            s.to_string(),
            f(cbt_total),
            f(cbt_max),
            f(dv_total),
            f(dv_max),
            f(dv_total / cbt_total),
        ]);
        rows_json.push(json!({
            "senders": s,
            "cbt_total": cbt_total,
            "cbt_max_per_router": cbt_max,
            "dvmrp_total": dv_total,
            "dvmrp_max_per_router": dv_max,
        }));
    }

    report.table(
        format!(
            "FIB/state entries, n={}, group size {}, {} seeds",
            p.n,
            p.group_size,
            p.seeds.len()
        ),
        table,
    );
    let mut fig = cbt_metrics::BarChart::new(format!(
        "Figure S93-T1: total state entries vs senders (Waxman n={}, |G|={})",
        p.n, p.group_size
    ))
    .unit(" entries");
    for row in &rows_json {
        fig.bar(format!("cbt    S={}", row["senders"]), row["cbt_total"].as_f64().unwrap_or(0.0));
        fig.bar(format!("dvmrp  S={}", row["senders"]), row["dvmrp_total"].as_f64().unwrap_or(0.0));
    }
    report.chart(fig);
    report.json = json!({
        "params": {"n": p.n, "group_size": p.group_size, "senders": p.senders, "seeds": p.seeds},
        "rows": rows_json,
    });
    report.finding(
        "CBT state is flat in the number of senders (shared tree, one entry per on-tree router); \
         the source-based scheme grows linearly with senders and charges even off-tree routers \
         (prune state).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbt_state_flat_dvmrp_linear() {
        let r = run(&Params::quick());
        let rows = r.json["rows"].as_array().unwrap();
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        // CBT total identical across sender counts.
        assert_eq!(first["cbt_total"], last["cbt_total"]);
        // DVMRP grows with senders.
        assert!(
            last["dvmrp_total"].as_f64().unwrap() > first["dvmrp_total"].as_f64().unwrap() * 2.0,
            "{:?} vs {:?}",
            first,
            last
        );
    }

    #[test]
    fn dvmrp_exceeds_cbt_even_with_one_sender() {
        let r = run(&Params::quick());
        let rows = r.json["rows"].as_array().unwrap();
        // Prune state makes even S=1 more expensive than CBT's tree.
        assert!(
            rows[0]["dvmrp_total"].as_f64().unwrap() > rows[0]["cbt_total"].as_f64().unwrap(),
            "flood touches everything"
        );
    }
}
