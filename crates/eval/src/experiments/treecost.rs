//! S93-T2 — tree cost: edges a CBT shared tree uses vs per-source
//! shortest-path trees.
//!
//! The '93 result: one shared tree's cost is close to a single SPT's,
//! and far below the *union* of per-source trees once several senders
//! are active — the network carries one tree instead of S of them.

use crate::report::Report;
use crate::workload::Workload;
use cbt_baselines::{cbt_shared_tree, source_tree};
use cbt_metrics::{table::f, tree_cost, Table};
use cbt_topology::{generate, AllPairs, Graph};
use serde_json::json;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Topology sizes to sweep.
    pub sizes: Vec<usize>,
    /// Group sizes to sweep.
    pub group_sizes: Vec<usize>,
    /// Number of senders for the union-of-SPT column.
    pub senders: usize,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            sizes: vec![50, 100, 200],
            group_sizes: vec![2, 4, 8, 16, 32, 64],
            senders: 8,
            seeds: (0..10).collect(),
        }
    }
}

impl Params {
    /// Small preset for tests/benches.
    pub fn quick() -> Self {
        Params { sizes: vec![40], group_sizes: vec![4, 16], senders: 4, seeds: vec![0, 1] }
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Report {
    let mut report = Report::new("S93-T2", "tree cost: shared tree vs per-source trees");
    let mut rows_json = Vec::new();

    for &n in &p.sizes {
        let mut table = Table::new([
            "group size",
            "cbt shared",
            "spt (1 source)",
            "spt union (all senders)",
            "cbt/spt",
            "union/cbt",
        ]);
        for &m in &p.group_sizes {
            if m > n {
                continue;
            }
            let mut cbt_c = 0.0;
            let mut spt_c = 0.0;
            let mut union_c = 0.0;
            // One trial per seed, fanned out; summed below in seed
            // order.
            let trials = crate::parallel::run_trials(&p.seeds, |&seed| {
                let g = generate::waxman(generate::WaxmanParams { n, ..Default::default() }, seed);
                let ap = AllPairs::compute(&g);
                let mut wl = Workload::new(&g, seed.wrapping_add(2000));
                let members = wl.members(m);
                let senders = wl.senders_from(&members, p.senders);
                let core = ap.medoid(&members).expect("connected");

                let shared = cbt_shared_tree(&g, core, &members);

                // Single-source SPT from the first sender.
                let t0 = source_tree(&g, senders[0], &members);

                // Union of all senders' trees (distinct edges).
                let mut union = Graph::with_nodes(g.node_count());
                let distinct: std::collections::BTreeSet<_> = senders.iter().copied().collect();
                for s in distinct {
                    for (a, b, w) in source_tree(&g, s, &members).edges() {
                        union.add_edge(a, b, w);
                    }
                }
                (tree_cost(&shared) as f64, tree_cost(&t0) as f64, tree_cost(&union) as f64)
            });
            for (c, s0, u) in trials {
                cbt_c += c;
                spt_c += s0;
                union_c += u;
            }
            let k = p.seeds.len() as f64;
            let (cbt_c, spt_c, union_c) = (cbt_c / k, spt_c / k, union_c / k);
            table.row([
                m.to_string(),
                f(cbt_c),
                f(spt_c),
                f(union_c),
                f(cbt_c / spt_c),
                f(union_c / cbt_c),
            ]);
            rows_json.push(json!({
                "n": n, "group_size": m,
                "cbt": cbt_c, "spt": spt_c, "union": union_c,
            }));
        }
        report.table(format!("tree cost, Waxman n={n}, {} senders", p.senders), table);
    }

    report.json = json!({
        "params": {"sizes": p.sizes, "group_sizes": p.group_sizes, "senders": p.senders},
        "rows": rows_json,
    });
    report.finding(
        "The shared tree costs within a small factor of a single source tree, while the union \
         of per-source trees (what source-based schemes collectively install) grows well beyond \
         it as senders multiply.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_tree_cheaper_than_union() {
        let r = run(&Params::quick());
        for row in r.json["rows"].as_array().unwrap() {
            let cbt = row["cbt"].as_f64().unwrap();
            let union = row["union"].as_f64().unwrap();
            assert!(union >= cbt, "union {union} < cbt {cbt}?");
        }
    }

    #[test]
    fn shared_tree_within_factor_of_spt() {
        let r = run(&Params::quick());
        for row in r.json["rows"].as_array().unwrap() {
            let cbt = row["cbt"].as_f64().unwrap();
            let spt = row["spt"].as_f64().unwrap();
            assert!(cbt <= spt * 2.0, "shared tree unreasonably expensive: {cbt} vs {spt}");
        }
    }
}
