//! Experiment implementations. Each module exposes `run(...) -> Report`
//! with a `Params::default()` matching DESIGN.md's index, plus a
//! `quick()` preset that the integration tests and benches use.

pub mod dataplane;
pub mod delay;
pub mod explore;
pub mod groupscale;
pub mod latency;
pub mod multicore;
pub mod netscale;
pub mod overhead;
pub mod placement;
pub mod shardscale;
pub mod spec;
pub mod state;
pub mod traffic;
pub mod treecost;
