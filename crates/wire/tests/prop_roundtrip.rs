//! Property-based tests: every wire format must (a) round-trip any valid
//! value and (b) reject any single-byte corruption of its checksummed
//! region — this is exactly the guarantee the simulator's fault
//! injection relies on (experiment Spec-E7 in DESIGN.md).

use cbt_wire::{
    control::ECHO_AGGREGATE, igmp::RpCoreReport, AckSubcode, Addr, CbtControlHeader, CbtDataHeader,
    CbtDataPacket, ControlMessage, DataPacket, GroupId, IgmpMessage, JoinSubcode,
};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Addr> {
    // Avoid class-D/E so unicast fields stay unicast.
    (0u32..0xE000_0000).prop_map(Addr)
}

fn arb_group() -> impl Strategy<Value = GroupId> {
    (0u32..0x0FFF_FFFF)
        .prop_map(|low| GroupId::new(Addr(0xE000_0000 | low)).expect("class-D by construction"))
}

fn arb_cores() -> impl Strategy<Value = Vec<Addr>> {
    proptest::collection::vec(arb_addr(), 0..=8)
}

fn arb_join_subcode() -> impl Strategy<Value = JoinSubcode> {
    prop_oneof![
        Just(JoinSubcode::ActiveJoin),
        Just(JoinSubcode::RejoinActive),
        Just(JoinSubcode::RejoinNactive),
    ]
}

fn arb_ack_subcode() -> impl Strategy<Value = AckSubcode> {
    prop_oneof![
        Just(AckSubcode::Normal),
        Just(AckSubcode::ProxyAck),
        Just(AckSubcode::RejoinNactive),
    ]
}

prop_compose! {
    fn arb_control()(
        which in 0u8..8,
        join_sub in arb_join_subcode(),
        ack_sub in arb_ack_subcode(),
        group in arb_group(),
        origin in arb_addr(),
        target in arb_addr(),
        cores in arb_cores(),
        mask in proptest::option::of(arb_addr()),
    ) -> ControlMessage {
        match which {
            0 => ControlMessage::JoinRequest {
                subcode: join_sub, group, origin, target_core: target, cores,
            },
            1 => ControlMessage::JoinAck {
                subcode: ack_sub, group, origin, target_core: target, cores,
            },
            2 => ControlMessage::JoinNack { group, origin, target_core: target },
            3 => ControlMessage::QuitRequest { group, origin },
            4 => ControlMessage::QuitAck { group, origin },
            5 => ControlMessage::FlushTree { group, origin },
            6 => ControlMessage::EchoRequest { group, origin, group_mask: mask },
            _ => ControlMessage::EchoReply { group, origin, group_mask: mask },
        }
    }
}

proptest! {
    #[test]
    fn control_round_trips(msg in arb_control()) {
        let bytes = msg.encode().unwrap();
        prop_assert_eq!(ControlMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn control_rejects_any_corruption(msg in arb_control(), byte in 0usize..64, bit in 0u8..8) {
        let bytes = msg.encode().unwrap();
        let byte = byte % bytes.len();
        let mut corrupted = bytes.clone();
        corrupted[byte] ^= 1 << bit;
        // Either the decode errors, or — if a flip somehow produced a
        // different *valid* message — it must not silently equal the
        // original. (One's-complement checksums detect all 1-bit flips,
        // so decode should in fact always error.)
        if let Ok(other) = ControlMessage::decode(&corrupted) { prop_assert_ne!(other, msg) }
    }

    #[test]
    fn control_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = ControlMessage::decode(&bytes);
    }

    #[test]
    fn data_header_round_trips(
        group in arb_group(),
        core in arb_addr(),
        origin in arb_addr(),
        ttl in any::<u8>(),
        on_tree in prop_oneof![Just(0x00u8), Just(0xffu8)],
        flow in any::<u32>(),
    ) {
        let mut h = CbtDataHeader::new(group, core, origin, ttl);
        h.on_tree = on_tree;
        h.flow_id = flow;
        let bytes = h.encode();
        prop_assert_eq!(CbtDataHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn data_header_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = CbtDataHeader::decode(&bytes);
    }

    #[test]
    fn control_header_raw_round_trips(
        typ in 1u8..=8,
        code in 0u8..=2,
        group in arb_group(),
        origin in arb_addr(),
        target in arb_addr(),
        cores in arb_cores(),
    ) {
        // Echo messages interpret code specially; restrict accordingly.
        let code = if typ >= 7 { if code == 1 { ECHO_AGGREGATE } else { 0 } } else { code };
        let h = CbtControlHeader { typ, code, group, origin, target_core: target, cores };
        let bytes = h.encode().unwrap();
        prop_assert_eq!(CbtControlHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn igmp_round_trips(
        group in arb_group(),
        version in 1u8..=3,
        cores in proptest::collection::vec(arb_addr(), 1..=5),
        idx_seed in any::<u8>(),
        max_resp in any::<u8>(),
        general in any::<bool>(),
    ) {
        let idx = (idx_seed as usize % cores.len()) as u8;
        let msgs = vec![
            IgmpMessage::Query {
                group: if general { None } else { Some(group) },
                max_resp_tenths: max_resp,
            },
            IgmpMessage::Report { version, group },
            IgmpMessage::Leave { group },
            IgmpMessage::RpCore(RpCoreReport {
                group,
                code: 1,
                target_core_index: idx,
                cores: cores.clone(),
            }),
            IgmpMessage::TreeJoined { group, core: cores[0] },
        ];
        for msg in msgs {
            let bytes = msg.encode();
            prop_assert_eq!(IgmpMessage::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn igmp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = IgmpMessage::decode(&bytes);
    }

    #[test]
    fn data_packet_full_encap_cycle(
        group in arb_group(),
        src in arb_addr(),
        core in arb_addr(),
        hop_src in arb_addr(),
        hop_dst in arb_addr(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // host sends native -> DR encapsulates -> unicast hop ->
        // unwrap -> decapsulate for delivery.
        let native = DataPacket::new(src, group, ttl, payload.clone());
        let enc = CbtDataPacket::encapsulate(&native, core);
        let wire = enc.wrap_unicast(hop_src, hop_dst, None);
        let (outer, back) = CbtDataPacket::unwrap_outer(&wire).unwrap();
        prop_assert_eq!(outer.src, hop_src);
        prop_assert_eq!(outer.dst, hop_dst);
        prop_assert_eq!(&back, &enc);
        let delivered = back.decapsulate_for_delivery().unwrap();
        prop_assert_eq!(delivered.payload, payload);
        prop_assert_eq!(delivered.src, src);
        prop_assert_eq!(delivered.ttl, 1);
    }
}
