//! A realistic (if option-free) IPv4 header codec.
//!
//! The simulator and the live runtime move whole IP datagrams around so
//! that encapsulation behaviour (spec §5: outer IP header, TTL
//! handling, tunnels) is exercised byte-for-byte rather than modelled.

use crate::addr::Addr;
use crate::checksum::{internet_checksum, verify_checksum};
use crate::error::WireError;
use crate::Result;

/// Size of the option-free IPv4 header.
pub const IPV4_HEADER_LEN: usize = 20;

/// Maximum TTL; the spec uses MAX_TTL for tunnels of unknown length (§5).
pub const MAX_TTL: u8 = 255;

/// IP protocol numbers this stack knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum IpProto {
    /// IGMP (protocol 2).
    Igmp = 2,
    /// CBT (protocol 7 — the actual IANA assignment). Used for CBT-mode
    /// encapsulated data; hosts do not recognise it and discard such
    /// multicasts, exactly the behaviour §5 relies on.
    Cbt = 7,
    /// UDP (protocol 17) carrying CBT control messages (§3).
    Udp = 17,
    /// IP-in-IP (protocol 4), used when native-mode branches cross
    /// non-CBT-capable routers (§4).
    IpIp = 4,
}

impl IpProto {
    /// Decodes a protocol number.
    pub fn from_wire(v: u8) -> Result<Self> {
        Ok(match v {
            2 => IpProto::Igmp,
            7 => IpProto::Cbt,
            17 => IpProto::Udp,
            4 => IpProto::IpIp,
            got => return Err(WireError::UnknownType { what: "ip protocol", got }),
        })
    }
}

/// An option-free IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Addr,
    /// Destination address (unicast or class-D multicast).
    pub dst: Addr,
    /// Total datagram length (header + payload).
    pub total_len: u16,
    /// Identification field (used only for human-readable traces here;
    /// fragmentation is not modelled).
    pub ident: u16,
}

impl Ipv4Header {
    /// Builds a header for a payload of `payload_len` bytes.
    pub fn new(src: Addr, dst: Addr, proto: IpProto, ttl: u8, payload_len: usize) -> Self {
        Ipv4Header {
            ttl,
            proto,
            src,
            dst,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
            ident: 0,
        }
    }

    /// Serializes the header with a fresh header checksum.
    pub fn encode(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut b = [0u8; IPV4_HEADER_LEN];
        b[0] = (4 << 4) | 5; // version 4, IHL 5 words
        b[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        b[4..6].copy_from_slice(&self.ident.to_be_bytes());
        b[8] = self.ttl;
        b[9] = self.proto as u8;
        // b[10..12] checksum, below.
        b[12..16].copy_from_slice(&self.src.0.to_be_bytes());
        b[16..20].copy_from_slice(&self.dst.0.to_be_bytes());
        let ck = internet_checksum(&b);
        b[10..12].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Parses and validates a header from the front of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        const WHAT: &str = "ipv4 header";
        if bytes.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated {
                what: WHAT,
                needed: IPV4_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let b = &bytes[..IPV4_HEADER_LEN];
        if b[0] >> 4 != 4 {
            return Err(WireError::BadVersion { what: WHAT, got: b[0] >> 4 });
        }
        if b[0] & 0x0f != 5 {
            return Err(WireError::BadLength { what: WHAT, got: (b[0] & 0x0f) as usize });
        }
        if !verify_checksum(b) {
            return Err(WireError::BadChecksum { what: WHAT });
        }
        let total_len = u16::from_be_bytes([b[2], b[3]]);
        if (total_len as usize) < IPV4_HEADER_LEN {
            return Err(WireError::BadLength { what: WHAT, got: total_len as usize });
        }
        Ok(Ipv4Header {
            ttl: b[8],
            proto: IpProto::from_wire(b[9])?,
            src: Addr(u32::from_be_bytes([b[12], b[13], b[14], b[15]])),
            dst: Addr(u32::from_be_bytes([b[16], b[17], b[18], b[19]])),
            total_len,
            ident: u16::from_be_bytes([b[4], b[5]]),
        })
    }

    /// Length of the payload according to `total_len`.
    pub fn payload_len(&self) -> usize {
        self.total_len as usize - IPV4_HEADER_LEN
    }
}

/// Builds a complete datagram: header + payload.
pub fn build_datagram(src: Addr, dst: Addr, proto: IpProto, ttl: u8, payload: &[u8]) -> Vec<u8> {
    let hdr = Ipv4Header::new(src, dst, proto, ttl, payload.len());
    let mut out = Vec::with_capacity(IPV4_HEADER_LEN + payload.len());
    out.extend_from_slice(&hdr.encode());
    out.extend_from_slice(payload);
    out
}

/// Splits a datagram into its validated header and payload slice.
pub fn split_datagram(bytes: &[u8]) -> Result<(Ipv4Header, &[u8])> {
    let hdr = Ipv4Header::decode(bytes)?;
    let end = hdr.total_len as usize;
    if bytes.len() < end {
        return Err(WireError::Truncated { what: "ipv4 datagram", needed: end, got: bytes.len() });
    }
    Ok((hdr, &bytes[IPV4_HEADER_LEN..end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = Ipv4Header::new(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(224, 1, 2, 3),
            IpProto::Udp,
            64,
            100,
        );
        let back = Ipv4Header::decode(&h.encode()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.payload_len(), 100);
    }

    #[test]
    fn datagram_round_trip() {
        let payload = b"multicast hello";
        let dg = build_datagram(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(239, 1, 0, 0),
            IpProto::Cbt,
            MAX_TTL,
            payload,
        );
        let (hdr, body) = split_datagram(&dg).unwrap();
        assert_eq!(body, payload);
        assert_eq!(hdr.proto, IpProto::Cbt);
        assert_eq!(hdr.ttl, MAX_TTL);
    }

    #[test]
    fn datagram_honours_total_len_with_trailing_padding() {
        let mut dg = build_datagram(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(10, 0, 0, 2),
            IpProto::Udp,
            1,
            b"abc",
        );
        dg.extend_from_slice(&[0u8; 9]); // link-layer padding
        let (_, body) = split_datagram(&dg).unwrap();
        assert_eq!(body, b"abc");
    }

    #[test]
    fn corruption_rejected() {
        let dg = build_datagram(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(10, 0, 0, 2),
            IpProto::Udp,
            1,
            b"abc",
        );
        for i in 0..IPV4_HEADER_LEN {
            let mut c = dg.clone();
            c[i] ^= 0x10;
            assert!(Ipv4Header::decode(&c).is_err(), "byte {i}");
        }
    }

    #[test]
    fn protocol_numbers_are_iana() {
        assert_eq!(IpProto::Igmp as u8, 2);
        assert_eq!(IpProto::IpIp as u8, 4);
        assert_eq!(IpProto::Cbt as u8, 7);
        assert_eq!(IpProto::Udp as u8, 17);
    }

    #[test]
    fn truncated_datagram_rejected() {
        let dg = build_datagram(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(10, 0, 0, 2),
            IpProto::Udp,
            1,
            b"abcdef",
        );
        assert!(split_datagram(&dg[..dg.len() - 1]).is_err());
    }
}
