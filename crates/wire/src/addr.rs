//! Addresses and group identifiers.
//!
//! CBT was specified for IPv4; the spec's tie-breakers ("lowest-addressed
//! router wins") and the subnet-mask arithmetic used by proxy-ack
//! detection (§2.6) both operate on 32-bit addresses, so [`Addr`] wraps a
//! `u32` in network order and keeps ordinary integer ordering.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A 32-bit IPv4-style unicast or multicast address.
///
/// Ordering is numeric, which is exactly the ordering the spec's
/// "lowest-addressed" election rules require.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u32);

/// The `224.0.0.1` *all-systems* group: every multicast-capable host and
/// router listens here. Used for `DR_ADVERTISEMENT`-style notifications
/// in the -02 draft and host-visible announcements.
pub const ALL_SYSTEMS: Addr = Addr::from_octets(224, 0, 0, 1);

/// The `224.0.0.2` *all-routers* group (IGMP leave messages go here).
pub const ALL_ROUTERS: Addr = Addr::from_octets(224, 0, 0, 2);

/// The `224.0.0.7` *all-CBT-routers* group used by the CBT drafts for
/// router-to-router LAN announcements.
pub const ALL_CBT_ROUTERS: Addr = Addr::from_octets(224, 0, 0, 7);

impl Addr {
    /// The all-zero address, used as a NULL field value on the wire.
    pub const NULL: Addr = Addr(0);

    /// Builds an address from dotted-quad octets at compile time.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four dotted-quad octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// True for class-D (multicast) addresses, `224.0.0.0/4`.
    pub const fn is_multicast(self) -> bool {
        (self.0 >> 28) == 0b1110
    }

    /// True for the all-zero NULL value.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Applies a subnet mask, yielding the subnet number.
    ///
    /// Section 2.6 uses exactly this operation to detect that a join-ack
    /// is one hop away from the join's originating subnet.
    pub const fn masked(self, mask: Addr) -> Addr {
        Addr(self.0 & mask.0)
    }

    /// True if `self` and `other` fall in the same subnet under `mask`.
    pub const fn same_subnet(self, other: Addr, mask: Addr) -> bool {
        self.0 & mask.0 == other.0 & mask.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Ipv4Addr> for Addr {
    fn from(ip: Ipv4Addr) -> Self {
        Addr(u32::from(ip))
    }
}

impl From<Addr> for Ipv4Addr {
    fn from(a: Addr) -> Self {
        Ipv4Addr::from(a.0)
    }
}

impl FromStr for Addr {
    type Err = std::net::AddrParseError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        Ipv4Addr::from_str(s).map(Addr::from)
    }
}

/// A multicast group identity — a class-D [`Addr`] with the invariant
/// enforced at construction.
///
/// The spec's FIB (Fig. 4) and every control message key state by
/// "group identifier"; using a distinct type keeps unicast addresses and
/// group addresses from being confused anywhere in the engine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(Addr);

impl GroupId {
    /// Wraps a class-D address. Returns `None` for non-multicast input.
    pub fn new(addr: Addr) -> Option<Self> {
        addr.is_multicast().then_some(GroupId(addr))
    }

    /// Convenience constructor for tests and examples: `239.1.x.y`
    /// administratively-scoped groups numbered from 0.
    pub const fn numbered(n: u16) -> Self {
        GroupId(Addr::from_octets(239, 1, (n >> 8) as u8, n as u8))
    }

    /// The underlying class-D address.
    pub const fn addr(self) -> Addr {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_round_trip() {
        let a = Addr::from_octets(10, 1, 2, 3);
        assert_eq!(a.octets(), [10, 1, 2, 3]);
        assert_eq!(a.to_string(), "10.1.2.3");
    }

    #[test]
    fn ordering_is_numeric_lowest_address_wins() {
        // §2.3: "yield querier duty to the new router iff the new router
        // is lower-addressed" — ordering must be plain numeric.
        let low = Addr::from_octets(10, 0, 0, 1);
        let high = Addr::from_octets(10, 0, 0, 2);
        assert!(low < high);
        assert_eq!(low.min(high), low);
    }

    #[test]
    fn multicast_detection() {
        assert!(ALL_SYSTEMS.is_multicast());
        assert!(ALL_ROUTERS.is_multicast());
        assert!(ALL_CBT_ROUTERS.is_multicast());
        assert!(Addr::from_octets(239, 255, 255, 255).is_multicast());
        assert!(!Addr::from_octets(223, 255, 255, 255).is_multicast());
        assert!(!Addr::from_octets(240, 0, 0, 0).is_multicast());
        assert!(!Addr::from_octets(10, 0, 0, 1).is_multicast());
    }

    #[test]
    fn subnet_mask_arithmetic() {
        // §5: "arrival interface subnetmask bitwise ANDed with the
        // packet's source IP address equals the arrival interface's
        // subnet number" — the local-origin check.
        let mask = Addr::from_octets(255, 255, 255, 0);
        let src = Addr::from_octets(192, 168, 4, 77);
        let subnet = Addr::from_octets(192, 168, 4, 0);
        assert_eq!(src.masked(mask), subnet);
        assert!(src.same_subnet(Addr::from_octets(192, 168, 4, 1), mask));
        assert!(!src.same_subnet(Addr::from_octets(192, 168, 5, 1), mask));
    }

    #[test]
    fn group_id_rejects_unicast() {
        assert!(GroupId::new(Addr::from_octets(10, 0, 0, 1)).is_none());
        assert!(GroupId::new(Addr::from_octets(224, 1, 1, 1)).is_some());
    }

    #[test]
    fn numbered_groups_are_distinct_and_multicast() {
        for n in [0u16, 1, 255, 256, 65535] {
            let g = GroupId::numbered(n);
            assert!(g.addr().is_multicast(), "{g}");
        }
        assert_ne!(GroupId::numbered(1), GroupId::numbered(2));
        assert_ne!(GroupId::numbered(255), GroupId::numbered(256));
    }

    #[test]
    fn ipv4addr_conversions() {
        let std_ip: Ipv4Addr = "172.16.254.9".parse().unwrap();
        let a = Addr::from(std_ip);
        assert_eq!(Ipv4Addr::from(a), std_ip);
        let parsed: Addr = "172.16.254.9".parse().unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn null_addr() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::from_octets(0, 0, 0, 1).is_null());
    }
}
