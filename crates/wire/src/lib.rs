//! # cbt-wire — wire formats for Core Based Trees (CBT) multicast
//!
//! Byte-exact encode/decode of every packet format defined in
//! `draft-ietf-idmr-cbt-spec-03` section 8, plus the IGMP messages CBT
//! depends on (including the IGMPv3 `RP/Core-Report` proposed in the
//! spec's appendix) and simplified-but-realistic IPv4/UDP shells used by
//! the simulator and the live tokio runtime.
//!
//! The crate is deliberately free of any I/O or protocol *logic*: it only
//! converts between typed Rust values and bytes, validating versions,
//! lengths and 16-bit one's-complement checksums on the way in. The
//! protocol engine lives in the `cbt` crate and consumes these types.
//!
//! ## Layout fidelity and resolved ambiguities
//!
//! The Internet-Draft leaves a few fields "T.B.D."; this implementation
//! resolves them as follows (documented here and in `DESIGN.md`):
//!
//! * **CBT data header (Fig. 7)** — the `on-tree|unused` byte is encoded
//!   as a full octet carrying `0x00` (off-tree) or `0xff` (on-tree),
//!   matching the values the spec text uses in section 7. The
//!   `flow identifier` and `security fields` words are carried verbatim
//!   (zero by default), giving a fixed 32-byte header.
//! * **CBT control header (Fig. 8)** — the `Resource Reservation` and
//!   `security` words are each encoded as two all-zero 32-bit words.
//!   `# cores` counts the trailing core-address list (0..=8 supported;
//!   the spec recommends implementations use no more than ~3).
//! * **Echo aggregation (Fig. 9)** — an aggregated echo re-purposes the
//!   `# cores` octet as the `aggregate` flag (`0xff` aggregated, `0x00`
//!   single-group) and the word after the group identifier as the group
//!   mask, exactly as drawn in the figure.
//! * **IP protocol numbers** — CBT-mode data packets use IP protocol 7,
//!   which is the IANA assignment for CBT. Control messages travel in
//!   UDP (protocol 17) on ports 7777/7778 per section 3.
//!
//! ## Example
//!
//! ```
//! use cbt_wire::{Addr, ControlMessage, GroupId, JoinSubcode};
//!
//! let join = ControlMessage::JoinRequest {
//!     subcode: JoinSubcode::ActiveJoin,
//!     group: GroupId::numbered(1),
//!     origin: Addr::from_octets(10, 1, 0, 1),
//!     target_core: Addr::from_octets(10, 255, 0, 4),
//!     cores: vec![Addr::from_octets(10, 255, 0, 4)],
//! };
//! let bytes = join.encode().unwrap(); // checksummed §8.2 layout
//! assert_eq!(ControlMessage::decode(&bytes).unwrap(), join);
//!
//! // Corruption anywhere is caught by the one's-complement checksum.
//! let mut bad = bytes.clone();
//! bad[9] ^= 0x10;
//! assert!(ControlMessage::decode(&bad).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod checksum;
pub mod control;
pub mod data;
pub mod error;
pub mod header;
pub mod igmp;
pub mod ipv4;
pub mod legacy;
pub mod udp;

pub use addr::{Addr, GroupId, ALL_CBT_ROUTERS, ALL_ROUTERS, ALL_SYSTEMS};
pub use control::{AckSubcode, ControlMessage, ControlType, JoinSubcode};
pub use data::{CbtDataPacket, DataPacket, EncapMode};
pub use error::WireError;
pub use header::{CbtControlHeader, CbtDataHeader, CBT_VERSION};
pub use igmp::{IgmpMessage, IgmpType, RpCoreReport};
pub use ipv4::{IpProto, Ipv4Header};
pub use legacy::{LegacyMessage, LegacyType};
pub use udp::{UdpHeader, CBT_AUX_PORT, CBT_PRIMARY_PORT};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, WireError>;
