//! Typed view of CBT control messages (spec §8.3, §8.4).
//!
//! [`ControlMessage`] is what the protocol engine produces and consumes;
//! it round-trips through the raw [`CbtControlHeader`] byte format.

use crate::addr::{Addr, GroupId};
use crate::error::WireError;
use crate::header::CbtControlHeader;
use crate::Result;

/// The six primary (§8.3) and two auxiliary (§8.4) CBT control message
/// types, with their on-wire type numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ControlType {
    /// Establish the sender and intermediate routers on the tree.
    JoinRequest = 1,
    /// Acknowledgement creating a tree branch on its reverse path.
    JoinAck = 2,
    /// Negative acknowledgement: the join did not succeed.
    JoinNack = 3,
    /// Child asks parent to remove it from the tree.
    QuitRequest = 4,
    /// Parent confirms the quit.
    QuitAck = 5,
    /// Parent tears down a whole downstream branch.
    FlushTree = 6,
    /// Keepalive from child to parent (§8.4).
    EchoRequest = 7,
    /// Keepalive reply from parent to child (§8.4).
    EchoReply = 8,
}

impl ControlType {
    /// Decodes the on-wire type number.
    pub fn from_wire(v: u8) -> Result<Self> {
        Ok(match v {
            1 => ControlType::JoinRequest,
            2 => ControlType::JoinAck,
            3 => ControlType::JoinNack,
            4 => ControlType::QuitRequest,
            5 => ControlType::QuitAck,
            6 => ControlType::FlushTree,
            7 => ControlType::EchoRequest,
            8 => ControlType::EchoReply,
            got => return Err(WireError::UnknownType { what: "cbt control", got }),
        })
    }

    /// True for the two auxiliary (keepalive) message types.
    pub fn is_auxiliary(self) -> bool {
        matches!(self, ControlType::EchoRequest | ControlType::EchoReply)
    }
}

/// JOIN-REQUEST subcodes (§8.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum JoinSubcode {
    /// Sent by a router with **no** children for the group (code 0).
    ActiveJoin = 0,
    /// Sent by a router with at least one child — a re-join after a
    /// failure or reconfiguration (code 1).
    RejoinActive = 1,
    /// Loop-detection form: converted from `RejoinActive` by the first
    /// on-tree router and forwarded parent-ward (code 2).
    RejoinNactive = 2,
}

impl JoinSubcode {
    /// Decodes the on-wire subcode.
    pub fn from_wire(v: u8) -> Result<Self> {
        Ok(match v {
            0 => JoinSubcode::ActiveJoin,
            1 => JoinSubcode::RejoinActive,
            2 => JoinSubcode::RejoinNactive,
            got => return Err(WireError::UnknownType { what: "join subcode", got }),
        })
    }
}

/// JOIN-ACK subcodes (§8.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AckSubcode {
    /// Ordinary acknowledgement from a core or on-tree router (code 0).
    Normal = 0,
    /// Final-LAN-hop acknowledgement: the sender becomes the group's
    /// G-DR and the receiving D-DR keeps no FIB entry (§2.6, code 1).
    ProxyAck = 1,
    /// Sent by the primary core directly to the router that converted a
    /// rejoin to NACTIVE (code 2).
    RejoinNactive = 2,
}

impl AckSubcode {
    /// Decodes the on-wire subcode.
    pub fn from_wire(v: u8) -> Result<Self> {
        Ok(match v {
            0 => AckSubcode::Normal,
            1 => AckSubcode::ProxyAck,
            2 => AckSubcode::RejoinNactive,
            got => return Err(WireError::UnknownType { what: "join-ack subcode", got }),
        })
    }
}

/// Marker value of the `# cores` octet in an aggregated echo (Fig. 9).
pub const ECHO_AGGREGATE: u8 = 0xff;

/// A fully-typed CBT control message.
///
/// Every variant carries `group` and `origin`; variants only carry the
/// further fields the spec says are processed for that type (§8.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// JOIN-REQUEST: processed hop-by-hop toward `target_core`.
    JoinRequest {
        /// Which flavour of join (§8.3.1).
        subcode: JoinSubcode,
        /// Group being joined.
        group: GroupId,
        /// Router (DR) that originated the join. Unchanged when an
        /// ACTIVE_REJOIN is converted to NACTIVE (§6.3).
        origin: Addr,
        /// The core this join is steering toward.
        target_core: Addr,
        /// Ordered core list, primary first. Carried by *all* join types
        /// so a re-started core can learn its own status (§6.2).
        cores: Vec<Addr>,
    },
    /// JOIN-ACK: retraces the join, instantiating the branch.
    JoinAck {
        /// Ack flavour (§8.3.1).
        subcode: AckSubcode,
        /// Group being acknowledged.
        group: GroupId,
        /// Originator of the join being acknowledged.
        origin: Addr,
        /// Actual core affiliation of the terminating router (§8.3), or
        /// for `RejoinNactive` acks the converting router's address.
        target_core: Addr,
        /// Full core list ("the full list of core addresses is carried
        /// in a JOIN-ACK", §8.3).
        cores: Vec<Addr>,
    },
    /// JOIN-NACK: the join failed.
    JoinNack {
        /// Group whose join failed.
        group: GroupId,
        /// Originator of the failed join.
        origin: Addr,
        /// Core the failed join had targeted.
        target_core: Addr,
    },
    /// QUIT-REQUEST from child to parent.
    QuitRequest {
        /// Group being quit.
        group: GroupId,
        /// The quitting child router.
        origin: Addr,
    },
    /// QUIT-ACK from parent to child.
    QuitAck {
        /// Group whose quit is confirmed.
        group: GroupId,
        /// The parent sending the confirmation.
        origin: Addr,
    },
    /// FLUSH-TREE from parent down a whole branch.
    FlushTree {
        /// Group whose branch is being torn down.
        group: GroupId,
        /// The router that initiated the flush.
        origin: Addr,
    },
    /// CBT-ECHO-REQUEST keepalive, child → parent (§8.4).
    EchoRequest {
        /// Group covered (or low end of an aggregated range).
        group: GroupId,
        /// The child sending the keepalive.
        origin: Addr,
        /// Group-range mask when aggregated, else `None` (Fig. 9).
        group_mask: Option<Addr>,
    },
    /// CBT-ECHO-REPLY keepalive, parent → child (§8.4).
    EchoReply {
        /// Group covered (or low end of an aggregated range).
        group: GroupId,
        /// The parent replying.
        origin: Addr,
        /// Group-range mask when aggregated, else `None` (Fig. 9).
        group_mask: Option<Addr>,
    },
}

impl ControlMessage {
    /// The message's [`ControlType`].
    pub fn control_type(&self) -> ControlType {
        match self {
            ControlMessage::JoinRequest { .. } => ControlType::JoinRequest,
            ControlMessage::JoinAck { .. } => ControlType::JoinAck,
            ControlMessage::JoinNack { .. } => ControlType::JoinNack,
            ControlMessage::QuitRequest { .. } => ControlType::QuitRequest,
            ControlMessage::QuitAck { .. } => ControlType::QuitAck,
            ControlMessage::FlushTree { .. } => ControlType::FlushTree,
            ControlMessage::EchoRequest { .. } => ControlType::EchoRequest,
            ControlMessage::EchoReply { .. } => ControlType::EchoReply,
        }
    }

    /// The group every control message carries.
    pub fn group(&self) -> GroupId {
        match *self {
            ControlMessage::JoinRequest { group, .. }
            | ControlMessage::JoinAck { group, .. }
            | ControlMessage::JoinNack { group, .. }
            | ControlMessage::QuitRequest { group, .. }
            | ControlMessage::QuitAck { group, .. }
            | ControlMessage::FlushTree { group, .. }
            | ControlMessage::EchoRequest { group, .. }
            | ControlMessage::EchoReply { group, .. } => group,
        }
    }

    /// The originating address every control message carries.
    pub fn origin(&self) -> Addr {
        match *self {
            ControlMessage::JoinRequest { origin, .. }
            | ControlMessage::JoinAck { origin, .. }
            | ControlMessage::JoinNack { origin, .. }
            | ControlMessage::QuitRequest { origin, .. }
            | ControlMessage::QuitAck { origin, .. }
            | ControlMessage::FlushTree { origin, .. }
            | ControlMessage::EchoRequest { origin, .. }
            | ControlMessage::EchoReply { origin, .. } => origin,
        }
    }

    /// True if this message travels on the primary control port (7777);
    /// echo keepalives travel on the auxiliary port (7778), §3.
    pub fn is_primary(&self) -> bool {
        !self.control_type().is_auxiliary()
    }

    /// Lowers the typed message to the raw on-wire header.
    pub fn to_header(&self) -> CbtControlHeader {
        let typ = self.control_type() as u8;
        match self {
            ControlMessage::JoinRequest { subcode, group, origin, target_core, cores } => {
                CbtControlHeader {
                    typ,
                    code: *subcode as u8,
                    group: *group,
                    origin: *origin,
                    target_core: *target_core,
                    cores: cores.clone(),
                }
            }
            ControlMessage::JoinAck { subcode, group, origin, target_core, cores } => {
                CbtControlHeader {
                    typ,
                    code: *subcode as u8,
                    group: *group,
                    origin: *origin,
                    target_core: *target_core,
                    cores: cores.clone(),
                }
            }
            ControlMessage::JoinNack { group, origin, target_core } => CbtControlHeader {
                typ,
                code: 0,
                group: *group,
                origin: *origin,
                target_core: *target_core,
                cores: Vec::new(),
            },
            ControlMessage::QuitRequest { group, origin }
            | ControlMessage::QuitAck { group, origin }
            | ControlMessage::FlushTree { group, origin } => CbtControlHeader {
                typ,
                code: 0,
                group: *group,
                origin: *origin,
                target_core: Addr::NULL,
                cores: Vec::new(),
            },
            ControlMessage::EchoRequest { group, origin, group_mask }
            | ControlMessage::EchoReply { group, origin, group_mask } => {
                // Fig. 9: the "# cores" octet becomes the aggregate flag
                // and the word after the group id carries the mask. We
                // reuse `target_core` as that mask word — it occupies the
                // corresponding wire position in this implementation's
                // fixed field order and is NULL when not aggregated.
                CbtControlHeader {
                    typ,
                    code: if group_mask.is_some() { ECHO_AGGREGATE } else { 0 },
                    group: *group,
                    origin: *origin,
                    target_core: group_mask.unwrap_or(Addr::NULL),
                    cores: Vec::new(),
                }
            }
        }
    }

    /// Raises a raw header back to the typed message.
    pub fn from_header(h: &CbtControlHeader) -> Result<Self> {
        let typ = ControlType::from_wire(h.typ)?;
        Ok(match typ {
            ControlType::JoinRequest => ControlMessage::JoinRequest {
                subcode: JoinSubcode::from_wire(h.code)?,
                group: h.group,
                origin: h.origin,
                target_core: h.target_core,
                cores: h.cores.clone(),
            },
            ControlType::JoinAck => ControlMessage::JoinAck {
                subcode: AckSubcode::from_wire(h.code)?,
                group: h.group,
                origin: h.origin,
                target_core: h.target_core,
                cores: h.cores.clone(),
            },
            ControlType::JoinNack => ControlMessage::JoinNack {
                group: h.group,
                origin: h.origin,
                target_core: h.target_core,
            },
            ControlType::QuitRequest => {
                ControlMessage::QuitRequest { group: h.group, origin: h.origin }
            }
            ControlType::QuitAck => ControlMessage::QuitAck { group: h.group, origin: h.origin },
            ControlType::FlushTree => {
                ControlMessage::FlushTree { group: h.group, origin: h.origin }
            }
            ControlType::EchoRequest | ControlType::EchoReply => {
                let group_mask = match h.code {
                    0 => None,
                    ECHO_AGGREGATE => Some(h.target_core),
                    got => return Err(WireError::UnknownType { what: "echo aggregate", got }),
                };
                if typ == ControlType::EchoRequest {
                    ControlMessage::EchoRequest { group: h.group, origin: h.origin, group_mask }
                } else {
                    ControlMessage::EchoReply { group: h.group, origin: h.origin, group_mask }
                }
            }
        })
    }

    /// Serializes straight to bytes (header encode).
    ///
    /// # Errors
    /// Returns [`WireError::TooManyCores`] when the message's core
    /// list exceeds [`crate::header::MAX_CORES`].
    pub fn encode(&self) -> Result<Vec<u8>> {
        self.to_header().encode()
    }

    /// Serializes into `buf`, replacing its contents. Hot send paths
    /// keep one scratch buffer alive and call this per message instead
    /// of allocating a fresh `Vec` via [`ControlMessage::encode`].
    ///
    /// # Errors
    /// Returns [`WireError::TooManyCores`] (leaving `buf` empty) when
    /// the message's core list exceeds [`crate::header::MAX_CORES`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<()> {
        self.to_header().encode_into(buf)
    }

    /// Parses straight from bytes (header decode + typing).
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        Self::from_header(&CbtControlHeader::decode(bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> GroupId {
        GroupId::numbered(42)
    }

    fn cores() -> Vec<Addr> {
        vec![Addr::from_octets(10, 0, 0, 4), Addr::from_octets(10, 0, 0, 9)]
    }

    fn all_samples() -> Vec<ControlMessage> {
        let origin = Addr::from_octets(10, 1, 0, 1);
        let core = Addr::from_octets(10, 0, 0, 4);
        vec![
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin,
                target_core: core,
                cores: cores(),
            },
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::RejoinActive,
                group: g(),
                origin,
                target_core: core,
                cores: cores(),
            },
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::RejoinNactive,
                group: g(),
                origin,
                target_core: core,
                cores: cores(),
            },
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin,
                target_core: core,
                cores: cores(),
            },
            ControlMessage::JoinAck {
                subcode: AckSubcode::ProxyAck,
                group: g(),
                origin,
                target_core: core,
                cores: cores(),
            },
            ControlMessage::JoinAck {
                subcode: AckSubcode::RejoinNactive,
                group: g(),
                origin,
                target_core: core,
                cores: cores(),
            },
            ControlMessage::JoinNack { group: g(), origin, target_core: core },
            ControlMessage::QuitRequest { group: g(), origin },
            ControlMessage::QuitAck { group: g(), origin },
            ControlMessage::FlushTree { group: g(), origin },
            ControlMessage::EchoRequest { group: g(), origin, group_mask: None },
            ControlMessage::EchoRequest {
                group: g(),
                origin,
                group_mask: Some(Addr::from_octets(255, 255, 255, 0)),
            },
            ControlMessage::EchoReply { group: g(), origin, group_mask: None },
            ControlMessage::EchoReply {
                group: g(),
                origin,
                group_mask: Some(Addr::from_octets(255, 255, 0, 0)),
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in all_samples() {
            let bytes = msg.encode().unwrap();
            let back = ControlMessage::decode(&bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_the_buffer() {
        // One scratch buffer across every message shape: each call must
        // leave exactly the bytes `encode` would have produced, even
        // when the previous message was longer (stale-tail hazard).
        let mut buf = Vec::new();
        let mut samples = all_samples();
        samples.reverse(); // longest core lists first exercises shrink
        for msg in samples {
            msg.encode_into(&mut buf).unwrap();
            assert_eq!(buf, msg.encode().unwrap());
            assert_eq!(ControlMessage::decode(&buf).unwrap(), msg);
        }
    }

    #[test]
    fn oversized_core_list_is_rejected_not_truncated() {
        // Pin the >255-core hazard: the on-wire count is one octet, so
        // a 300-core join would have wrapped to 44 before this became
        // a typed error.
        let msg = ControlMessage::JoinRequest {
            subcode: JoinSubcode::ActiveJoin,
            group: g(),
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: Addr::from_octets(10, 255, 0, 4),
            cores: (0..300u32).map(Addr).collect(),
        };
        assert_eq!(msg.encode(), Err(WireError::TooManyCores { got: 300 }));
        let mut buf = vec![0xaa; 4];
        assert_eq!(msg.encode_into(&mut buf), Err(WireError::TooManyCores { got: 300 }));
        assert!(buf.is_empty(), "a failed encode must not leave stale bytes behind");
    }

    #[test]
    fn type_numbers_match_spec() {
        // §8.3: JOIN-REQUEST (type 1) ... FLUSH-TREE (type 6);
        // §8.4: CBT-ECHO-REQUEST (type 7), CBT-ECHO-REPLY (type 8).
        assert_eq!(ControlType::JoinRequest as u8, 1);
        assert_eq!(ControlType::JoinAck as u8, 2);
        assert_eq!(ControlType::JoinNack as u8, 3);
        assert_eq!(ControlType::QuitRequest as u8, 4);
        assert_eq!(ControlType::QuitAck as u8, 5);
        assert_eq!(ControlType::FlushTree as u8, 6);
        assert_eq!(ControlType::EchoRequest as u8, 7);
        assert_eq!(ControlType::EchoReply as u8, 8);
    }

    #[test]
    fn subcode_numbers_match_spec() {
        assert_eq!(JoinSubcode::ActiveJoin as u8, 0);
        assert_eq!(JoinSubcode::RejoinActive as u8, 1);
        assert_eq!(JoinSubcode::RejoinNactive as u8, 2);
        assert_eq!(AckSubcode::Normal as u8, 0);
        assert_eq!(AckSubcode::ProxyAck as u8, 1);
        assert_eq!(AckSubcode::RejoinNactive as u8, 2);
    }

    #[test]
    fn port_selection_follows_section_3() {
        for msg in all_samples() {
            let aux = matches!(
                msg,
                ControlMessage::EchoRequest { .. } | ControlMessage::EchoReply { .. }
            );
            assert_eq!(msg.is_primary(), !aux);
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut h = ControlMessage::QuitRequest { group: g(), origin: Addr::NULL }.to_header();
        h.typ = 99;
        let bytes = h.encode().unwrap();
        assert!(matches!(
            ControlMessage::decode(&bytes),
            Err(WireError::UnknownType { got: 99, .. })
        ));
    }

    #[test]
    fn unknown_subcode_rejected() {
        let mut h =
            ControlMessage::JoinNack { group: g(), origin: Addr::NULL, target_core: Addr::NULL }
                .to_header();
        h.typ = ControlType::JoinRequest as u8;
        h.code = 7;
        assert!(ControlMessage::decode(&h.encode().unwrap()).is_err());
    }

    #[test]
    fn accessors_are_consistent() {
        for msg in all_samples() {
            assert_eq!(msg.group(), g());
            assert_eq!(msg.to_header().group, g());
            assert_eq!(msg.origin(), msg.to_header().origin);
        }
    }
}
