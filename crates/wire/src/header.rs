//! The two CBT headers: the data-packet header (spec Fig. 7) and the
//! control-packet header (spec Fig. 8).
//!
//! Both are encoded big-endian in 32-bit rows exactly as drawn in the
//! draft. See the crate docs for how the draft's "T.B.D." fields are
//! resolved.

use crate::addr::{Addr, GroupId};
use crate::checksum::{internet_checksum, verify_checksum};
use crate::error::WireError;
use crate::Result;

/// CBT protocol version implemented here ("this release specifies
/// version 1", §8.1).
pub const CBT_VERSION: u8 = 1;

/// Value of the data header's `type` field for a data payload.
pub const DATA_TYPE_DATA: u8 = 0;
/// Value of the data header's `type` field for control information
/// carried inside a CBT header (unused by this implementation but kept
/// for wire compatibility).
pub const DATA_TYPE_CONTROL: u8 = 1;

/// `on-tree` field value meaning the packet has not yet reached the tree.
pub const OFF_TREE: u8 = 0x00;
/// `on-tree` field value meaning the packet is spanning the tree (§7).
pub const ON_TREE: u8 = 0xff;

/// Size in bytes of the fixed CBT data header.
pub const CBT_DATA_HEADER_LEN: usize = 32;

/// The CBT data-packet header (spec §8.1, Fig. 7).
///
/// ```text
///  0               1               2               3
///  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
/// +-------+-------+---------------+---------------+---------------+
/// | vers  |unused |     type      |  hdr length   | on-tree       |
/// +-------+-------+---------------+---------------+---------------+
/// |           checksum            |    IP TTL     |    unused     |
/// +-------------------------------+---------------+---------------+
/// |                       group identifier                        |
/// +----------------------------------------------------------------
/// |                         core address                          |
/// +----------------------------------------------------------------
/// |                         packet origin                         |
/// +----------------------------------------------------------------
/// |                     flow identifier (T.B.D)                   |
/// +----------------------------------------------------------------
/// |                    security fields (T.B.D)                    |
/// |                                                               |
/// +----------------------------------------------------------------
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbtDataHeader {
    /// Payload kind: [`DATA_TYPE_DATA`] or [`DATA_TYPE_CONTROL`].
    pub typ: u8,
    /// Whether the packet has reached the tree ([`ON_TREE`]) or not
    /// ([`OFF_TREE`]). Once set it is non-changing (§8.1).
    pub on_tree: u8,
    /// TTL gleaned from the originating IP header; decremented by each
    /// CBT router the packet traverses (§5, §8.1).
    pub ip_ttl: u8,
    /// Multicast group the packet belongs to.
    pub group: GroupId,
    /// Core address inserted by the originating host (§8.1): used by an
    /// off-tree DR to unicast the packet toward the tree.
    pub core: Addr,
    /// Source address of the originating end-system.
    pub origin: Addr,
    /// Flow identifier (T.B.D in the draft; carried verbatim).
    pub flow_id: u32,
    /// Security fields (T.B.D in the draft; carried verbatim).
    pub security: u32,
}

impl CbtDataHeader {
    /// Builds a fresh off-tree data header as the encapsulating DR next
    /// to the origin host would (§5).
    pub fn new(group: GroupId, core: Addr, origin: Addr, ip_ttl: u8) -> Self {
        CbtDataHeader {
            typ: DATA_TYPE_DATA,
            on_tree: OFF_TREE,
            ip_ttl,
            group,
            core,
            origin,
            flow_id: 0,
            security: 0,
        }
    }

    /// True once the first on-tree router has marked the packet (§7).
    pub fn is_on_tree(&self) -> bool {
        self.on_tree == ON_TREE
    }

    /// Serializes the header (32 bytes) with a freshly computed checksum.
    pub fn encode(&self) -> [u8; CBT_DATA_HEADER_LEN] {
        let mut b = [0u8; CBT_DATA_HEADER_LEN];
        b[0] = CBT_VERSION << 4;
        b[1] = self.typ;
        b[2] = CBT_DATA_HEADER_LEN as u8;
        b[3] = self.on_tree;
        // b[4..6] checksum, filled below.
        b[6] = self.ip_ttl;
        // b[7] unused.
        b[8..12].copy_from_slice(&self.group.addr().0.to_be_bytes());
        b[12..16].copy_from_slice(&self.core.0.to_be_bytes());
        b[16..20].copy_from_slice(&self.origin.0.to_be_bytes());
        b[20..24].copy_from_slice(&self.flow_id.to_be_bytes());
        b[24..28].copy_from_slice(&self.security.to_be_bytes());
        // b[28..32] reserved tail of the security block, zero.
        let ck = internet_checksum(&b);
        b[4..6].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Parses and validates a header from the front of `bytes`.
    ///
    /// Checks version, advertised header length, checksum and that the
    /// group identifier is class-D.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        const WHAT: &str = "cbt data header";
        if bytes.len() < CBT_DATA_HEADER_LEN {
            return Err(WireError::Truncated {
                what: WHAT,
                needed: CBT_DATA_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let b = &bytes[..CBT_DATA_HEADER_LEN];
        let vers = b[0] >> 4;
        if vers != CBT_VERSION {
            return Err(WireError::BadVersion { what: WHAT, got: vers });
        }
        if b[2] as usize != CBT_DATA_HEADER_LEN {
            return Err(WireError::BadLength { what: WHAT, got: b[2] as usize });
        }
        if !verify_checksum(b) {
            return Err(WireError::BadChecksum { what: WHAT });
        }
        let on_tree = b[3];
        if on_tree != ON_TREE && on_tree != OFF_TREE {
            return Err(WireError::BadField { what: WHAT, why: "on-tree must be 0x00 or 0xff" });
        }
        let group_addr = Addr(u32::from_be_bytes([b[8], b[9], b[10], b[11]]));
        let group = GroupId::new(group_addr).ok_or(WireError::BadField {
            what: WHAT,
            why: "group identifier is not a class-D address",
        })?;
        Ok(CbtDataHeader {
            typ: b[1],
            on_tree,
            ip_ttl: b[6],
            group,
            core: Addr(u32::from_be_bytes([b[12], b[13], b[14], b[15]])),
            origin: Addr(u32::from_be_bytes([b[16], b[17], b[18], b[19]])),
            flow_id: u32::from_be_bytes([b[20], b[21], b[22], b[23]]),
            security: u32::from_be_bytes([b[24], b[25], b[26], b[27]]),
        })
    }
}

/// Maximum number of core addresses a control packet may carry.
///
/// The -02 draft fixed the list at five; -03 made it counted. We accept
/// up to eight on decode and never emit more than eight; the spec
/// recommends implementations use no more than about three.
pub const MAX_CORES: usize = 8;

/// Length of the fixed portion of the control header (everything up to
/// and including the target core address, plus the trailing reservation
/// and security words).
const CONTROL_FIXED_LEN: usize = 20;
/// Trailing Resource-Reservation (2 words) + security (2 words) block.
const CONTROL_TRAILER_LEN: usize = 16;

/// The CBT control-packet header (spec §8.2, Fig. 8).
///
/// This is the entire on-wire representation of every primary and
/// auxiliary control message — the message *is* the header; which fields
/// beyond `group identifier` are meaningful depends on `type`/`code`
/// (§8.2: "only certain fields beyond group identifier are processed for
/// the different control messages").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbtControlHeader {
    /// Control message type (JOIN-REQUEST = 1 ... CBT-ECHO-REPLY = 8).
    pub typ: u8,
    /// Subcode of the message type.
    pub code: u8,
    /// Multicast group the message concerns.
    pub group: GroupId,
    /// Source address of the originating end-system/router.
    pub origin: Addr,
    /// Desired/actual core affiliation of the message.
    pub target_core: Addr,
    /// Ordered list of the group's cores, primary first (§1: "joins
    /// carry an ordered list of core routers").
    pub cores: Vec<Addr>,
}

impl CbtControlHeader {
    /// Total encoded length for a message carrying `n_cores` addresses.
    pub fn encoded_len(n_cores: usize) -> usize {
        CONTROL_FIXED_LEN + 4 * n_cores + CONTROL_TRAILER_LEN
    }

    /// Serializes the control message with a freshly computed checksum.
    ///
    /// # Errors
    /// Returns [`WireError::TooManyCores`] if `self.cores.len()`
    /// exceeds [`MAX_CORES`] — the 8-bit on-wire count would otherwise
    /// silently truncate the list.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut b = Vec::new();
        self.encode_into(&mut b)?;
        Ok(b)
    }

    /// Serializes into `buf`, replacing its contents. The buffer's
    /// capacity is reused across calls, so a send path that encodes
    /// many messages through one scratch buffer allocates only until
    /// the buffer has grown to the largest message seen.
    ///
    /// # Errors
    /// Returns [`WireError::TooManyCores`] (leaving `buf` empty) if
    /// `self.cores.len()` exceeds [`MAX_CORES`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<()> {
        if self.cores.len() > MAX_CORES {
            buf.clear();
            return Err(WireError::TooManyCores { got: self.cores.len() });
        }
        let len = Self::encoded_len(self.cores.len());
        buf.clear();
        buf.resize(len, 0);
        let b = &mut buf[..];
        b[0] = CBT_VERSION << 4;
        b[1] = self.typ;
        b[2] = self.code;
        b[3] = self.cores.len() as u8;
        b[4..6].copy_from_slice(&(len as u16).to_be_bytes());
        // b[6..8] checksum, filled below.
        b[8..12].copy_from_slice(&self.group.addr().0.to_be_bytes());
        b[12..16].copy_from_slice(&self.origin.0.to_be_bytes());
        b[16..20].copy_from_slice(&self.target_core.0.to_be_bytes());
        for (i, core) in self.cores.iter().enumerate() {
            let off = CONTROL_FIXED_LEN + 4 * i;
            b[off..off + 4].copy_from_slice(&core.0.to_be_bytes());
        }
        // Trailing 16 bytes: reservation + security, all-zero (T.B.D).
        let ck = internet_checksum(b);
        b[6..8].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }

    /// Parses and validates a control message from `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        const WHAT: &str = "cbt control header";
        let min = Self::encoded_len(0);
        if bytes.len() < min {
            return Err(WireError::Truncated { what: WHAT, needed: min, got: bytes.len() });
        }
        let vers = bytes[0] >> 4;
        if vers != CBT_VERSION {
            return Err(WireError::BadVersion { what: WHAT, got: vers });
        }
        let n_cores = bytes[3] as usize;
        if n_cores > MAX_CORES {
            return Err(WireError::BadLength { what: WHAT, got: n_cores });
        }
        let advertised = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        let expected = Self::encoded_len(n_cores);
        if advertised != expected {
            return Err(WireError::BadLength { what: WHAT, got: advertised });
        }
        if bytes.len() < expected {
            return Err(WireError::Truncated { what: WHAT, needed: expected, got: bytes.len() });
        }
        let b = &bytes[..expected];
        if !verify_checksum(b) {
            return Err(WireError::BadChecksum { what: WHAT });
        }
        let group_addr = Addr(u32::from_be_bytes([b[8], b[9], b[10], b[11]]));
        let group = GroupId::new(group_addr).ok_or(WireError::BadField {
            what: WHAT,
            why: "group identifier is not a class-D address",
        })?;
        let mut cores = Vec::with_capacity(n_cores);
        for i in 0..n_cores {
            let off = CONTROL_FIXED_LEN + 4 * i;
            cores.push(Addr(u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])));
        }
        Ok(CbtControlHeader {
            typ: b[1],
            code: b[2],
            group,
            origin: Addr(u32::from_be_bytes([b[12], b[13], b[14], b[15]])),
            target_core: Addr(u32::from_be_bytes([b[16], b[17], b[18], b[19]])),
            cores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> GroupId {
        GroupId::numbered(7)
    }

    #[test]
    fn data_header_round_trip() {
        let h = CbtDataHeader::new(
            group(),
            Addr::from_octets(10, 0, 0, 4),
            Addr::from_octets(192, 168, 1, 5),
            64,
        );
        let bytes = h.encode();
        assert_eq!(bytes.len(), CBT_DATA_HEADER_LEN);
        let back = CbtDataHeader::decode(&bytes).unwrap();
        assert_eq!(back, h);
        assert!(!back.is_on_tree());
    }

    #[test]
    fn data_header_on_tree_round_trip() {
        let mut h = CbtDataHeader::new(group(), Addr::NULL, Addr::from_octets(1, 2, 3, 4), 9);
        h.on_tree = ON_TREE;
        let back = CbtDataHeader::decode(&h.encode()).unwrap();
        assert!(back.is_on_tree());
    }

    #[test]
    fn data_header_rejects_corruption() {
        let h = CbtDataHeader::new(group(), Addr::NULL, Addr::from_octets(1, 2, 3, 4), 9);
        let mut bytes = h.encode();
        bytes[9] ^= 0x40;
        assert!(matches!(CbtDataHeader::decode(&bytes), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn data_header_rejects_truncation() {
        let h = CbtDataHeader::new(group(), Addr::NULL, Addr::from_octets(1, 2, 3, 4), 9);
        let bytes = h.encode();
        for cut in 0..CBT_DATA_HEADER_LEN {
            assert!(CbtDataHeader::decode(&bytes[..cut]).is_err(), "accepted {cut} bytes");
        }
    }

    #[test]
    fn data_header_rejects_bad_version() {
        let h = CbtDataHeader::new(group(), Addr::NULL, Addr::from_octets(1, 2, 3, 4), 9);
        let mut bytes = h.encode();
        bytes[0] = 2 << 4;
        // Re-checksum so only the version is wrong.
        bytes[4] = 0;
        bytes[5] = 0;
        let ck = internet_checksum(&bytes);
        bytes[4..6].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(CbtDataHeader::decode(&bytes), Err(WireError::BadVersion { got: 2, .. })));
    }

    #[test]
    fn data_header_rejects_unicast_group() {
        let h = CbtDataHeader::new(group(), Addr::NULL, Addr::from_octets(1, 2, 3, 4), 9);
        let mut bytes = h.encode();
        bytes[8] = 10; // 10.x group address: not class-D
        bytes[4] = 0;
        bytes[5] = 0;
        let ck = internet_checksum(&bytes);
        bytes[4..6].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(CbtDataHeader::decode(&bytes), Err(WireError::BadField { .. })));
    }

    fn sample_control(n_cores: usize) -> CbtControlHeader {
        CbtControlHeader {
            typ: 1,
            code: 0,
            group: group(),
            origin: Addr::from_octets(10, 1, 1, 1),
            target_core: Addr::from_octets(10, 0, 0, 4),
            cores: (0..n_cores).map(|i| Addr::from_octets(10, 0, 0, 4 + i as u8)).collect(),
        }
    }

    #[test]
    fn control_round_trip_all_core_counts() {
        for n in 0..=MAX_CORES {
            let msg = sample_control(n);
            let bytes = msg.encode().unwrap();
            assert_eq!(bytes.len(), CbtControlHeader::encoded_len(n));
            let back = CbtControlHeader::decode(&bytes).unwrap();
            assert_eq!(back, msg, "n_cores = {n}");
        }
    }

    #[test]
    fn control_encode_rejects_more_than_max_cores() {
        // 9 cores (just over MAX_CORES) and 300 cores (past the 8-bit
        // count field, where the old cast wrapped) both error.
        for n in [MAX_CORES + 1, 300] {
            let mut msg = sample_control(0);
            msg.cores = (0..n as u32).map(Addr).collect();
            assert_eq!(msg.encode(), Err(WireError::TooManyCores { got: n }));
        }
    }

    #[test]
    fn control_rejects_core_count_mismatch() {
        let msg = sample_control(2);
        let mut bytes = msg.encode().unwrap();
        bytes[3] = 3; // lie about the count; length now inconsistent
        bytes[6] = 0;
        bytes[7] = 0;
        let ck = internet_checksum(&bytes);
        bytes[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(CbtControlHeader::decode(&bytes), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn control_rejects_flipped_bits_everywhere() {
        let bytes = sample_control(3).encode().unwrap();
        for byte in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[byte] ^= 0x01;
            assert!(
                CbtControlHeader::decode(&corrupted).is_err(),
                "corruption at byte {byte} went unnoticed"
            );
        }
    }

    #[test]
    fn control_trailing_bytes_are_ignored() {
        // Decoders take their length from the header so a UDP payload
        // with padding still parses.
        let msg = sample_control(1);
        let mut bytes = msg.encode().unwrap();
        bytes.extend_from_slice(&[0xaa; 7]);
        assert_eq!(CbtControlHeader::decode(&bytes).unwrap(), msg);
    }
}
