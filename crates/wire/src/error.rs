//! Decode-side error type.

use std::fmt;

/// Everything that can go wrong while parsing a CBT, IGMP, IPv4 or UDP
/// packet off the wire.
///
/// Decoders never panic on hostile input; they return one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes were available than the format requires.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed for the fixed part (or the advertised length).
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// What was being decoded.
        what: &'static str,
    },
    /// A version field held an unsupported value.
    BadVersion {
        /// What was being decoded.
        what: &'static str,
        /// The value on the wire.
        got: u8,
    },
    /// A type/code field held a value this implementation does not know.
    UnknownType {
        /// What was being decoded.
        what: &'static str,
        /// The value on the wire.
        got: u8,
    },
    /// A length or count field was internally inconsistent.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        got: usize,
    },
    /// A field held a value that violates an invariant (e.g. a non-
    /// multicast group identifier).
    BadField {
        /// What was being decoded.
        what: &'static str,
        /// Human-readable description of the violation.
        why: &'static str,
    },
    /// An encode was asked to carry more cores than the format's
    /// 8-bit count field (and §8.2's bound) allows. Encode-side: the
    /// wire never carries such a message.
    TooManyCores {
        /// The core-list length that was rejected.
        got: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: need {needed} bytes, have {got}")
            }
            WireError::BadChecksum { what } => write!(f, "bad checksum in {what}"),
            WireError::BadVersion { what, got } => {
                write!(f, "unsupported {what} version {got}")
            }
            WireError::UnknownType { what, got } => {
                write!(f, "unknown {what} type {got:#04x}")
            }
            WireError::BadLength { what, got } => {
                write!(f, "inconsistent length {got} in {what}")
            }
            WireError::BadField { what, why } => write!(f, "bad field in {what}: {why}"),
            WireError::TooManyCores { got } => {
                write!(f, "core list too long to encode: {got} cores")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated { what: "cbt control header", needed: 32, got: 4 };
        let s = e.to_string();
        assert!(s.contains("cbt control header"));
        assert!(s.contains("32"));
        assert!(s.contains('4'));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&WireError::BadChecksum { what: "x" });
    }
}
