//! IGMP message formats as CBT consumes them, including the IGMPv3
//! `RP/Core-Report` proposed in the spec's appendix (Fig. 10).
//!
//! The spec assumes IGMPv3 between hosts and routers (§1) but requires
//! backwards compatibility with v1/v2 hosts (§2.4), so all three report
//! generations plus the v2 leave message are encoded here.

use crate::addr::{Addr, GroupId};
use crate::checksum::{internet_checksum, verify_checksum};
use crate::error::WireError;
use crate::Result;

/// IGMP message type numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum IgmpType {
    /// Membership query, general or group-specific (0x11).
    MembershipQuery = 0x11,
    /// IGMPv1 membership report (0x12).
    ReportV1 = 0x12,
    /// IGMPv2 membership report (0x16).
    ReportV2 = 0x16,
    /// IGMPv2 leave-group (0x17), multicast to all-routers (§2.7).
    LeaveGroup = 0x17,
    /// IGMPv3 membership report (0x22).
    ReportV3 = 0x22,
    /// The RP/Core-Report from the spec's appendix. The draft proposes
    /// amending the IGMPv3 PIM RP-Report; 0x23 is the experimental
    /// number this implementation uses.
    RpCoreReport = 0x23,
    /// Tree-joined notification multicast across a subnet once the DR's
    /// join has been acknowledged ("it is proposed that IGMP group
    /// multicasts a notification ... indicating the delivery tree has
    /// been joined successfully", §2.5). Experimental number 0x24.
    TreeJoined = 0x24,
}

impl IgmpType {
    /// Decodes the on-wire type number.
    pub fn from_wire(v: u8) -> Result<Self> {
        Ok(match v {
            0x11 => IgmpType::MembershipQuery,
            0x12 => IgmpType::ReportV1,
            0x16 => IgmpType::ReportV2,
            0x17 => IgmpType::LeaveGroup,
            0x22 => IgmpType::ReportV3,
            0x23 => IgmpType::RpCoreReport,
            0x24 => IgmpType::TreeJoined,
            got => return Err(WireError::UnknownType { what: "igmp", got }),
        })
    }
}

/// Code value distinguishing a CBT core report from a PIM RP report in
/// the amended message (appendix: "a new code value to distinguish PIM
/// RP reports from CBT Core reports").
pub const RP_CORE_CODE_CBT: u8 = 1;
/// Code value for PIM rendezvous-point reports.
pub const RP_CORE_CODE_PIM: u8 = 0;

/// The RP/Core-Report body (appendix Fig. 10, with the CBT amendments:
/// the reserved field becomes `target core`, an index into the list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpCoreReport {
    /// The group the cores serve.
    pub group: GroupId,
    /// `RP_CORE_CODE_CBT` or `RP_CORE_CODE_PIM`.
    pub code: u8,
    /// Index of the target core within `cores` — the core a join should
    /// steer toward first.
    pub target_core_index: u8,
    /// Ordered core (RP) addresses, primary first.
    pub cores: Vec<Addr>,
}

impl RpCoreReport {
    /// The target core's address, if the index is in range.
    pub fn target_core(&self) -> Option<Addr> {
        self.cores.get(self.target_core_index as usize).copied()
    }

    /// The primary core (first listed).
    pub fn primary_core(&self) -> Option<Addr> {
        self.cores.first().copied()
    }
}

/// A typed IGMP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IgmpMessage {
    /// Membership query. `group == None` is a general query; a
    /// group-specific query carries the group (§2.7).
    Query {
        /// Group queried, or `None` for a general query.
        group: Option<GroupId>,
        /// Maximum response time in tenths of a second (v2/v3 field).
        max_resp_tenths: u8,
    },
    /// Host membership report (any of the three generations).
    Report {
        /// Which IGMP generation the reporting host runs.
        version: u8,
        /// Group being reported.
        group: GroupId,
    },
    /// IGMPv2 leave-group.
    Leave {
        /// Group being left.
        group: GroupId,
    },
    /// The appendix's RP/Core-Report.
    RpCore(RpCoreReport),
    /// DR's tree-joined notification (§2.5 proposal).
    TreeJoined {
        /// Group whose tree has been joined.
        group: GroupId,
        /// Actual core affiliation of the new branch.
        core: Addr,
    },
}

impl IgmpMessage {
    /// The message's wire type.
    pub fn igmp_type(&self) -> IgmpType {
        match self {
            IgmpMessage::Query { .. } => IgmpType::MembershipQuery,
            IgmpMessage::Report { version: 1, .. } => IgmpType::ReportV1,
            IgmpMessage::Report { version: 2, .. } => IgmpType::ReportV2,
            IgmpMessage::Report { .. } => IgmpType::ReportV3,
            IgmpMessage::Leave { .. } => IgmpType::LeaveGroup,
            IgmpMessage::RpCore(_) => IgmpType::RpCoreReport,
            IgmpMessage::TreeJoined { .. } => IgmpType::TreeJoined,
        }
    }

    /// Serializes the message.
    ///
    /// Basic messages use the classic 8-byte IGMP layout
    /// (type, code, checksum, group). The RP/Core-Report and TreeJoined
    /// extensions append their extra words, per Fig. 10.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; 8];
        b[0] = self.igmp_type() as u8;
        match self {
            IgmpMessage::Query { group, max_resp_tenths } => {
                b[1] = *max_resp_tenths;
                let g = group.map(|g| g.addr()).unwrap_or(Addr::NULL);
                b[4..8].copy_from_slice(&g.0.to_be_bytes());
            }
            IgmpMessage::Report { group, .. } | IgmpMessage::Leave { group } => {
                b[4..8].copy_from_slice(&group.addr().0.to_be_bytes());
            }
            IgmpMessage::RpCore(r) => {
                b[1] = r.code;
                b[4..8].copy_from_slice(&r.group.addr().0.to_be_bytes());
                // Version(8) | target-core index (8, ex-Reserved) | #RPs (16)
                let mut ext = vec![0u8; 4];
                ext[0] = 3; // IGMP version of the amendment
                ext[1] = r.target_core_index;
                ext[2..4].copy_from_slice(&(r.cores.len() as u16).to_be_bytes());
                b.extend_from_slice(&ext);
                for c in &r.cores {
                    b.extend_from_slice(&c.0.to_be_bytes());
                }
            }
            IgmpMessage::TreeJoined { group, core } => {
                b[4..8].copy_from_slice(&group.addr().0.to_be_bytes());
                b.extend_from_slice(&core.0.to_be_bytes());
            }
        }
        let ck = internet_checksum(&b);
        b[2..4].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Parses and validates a message.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        const WHAT: &str = "igmp message";
        if bytes.len() < 8 {
            return Err(WireError::Truncated { what: WHAT, needed: 8, got: bytes.len() });
        }
        let typ = IgmpType::from_wire(bytes[0])?;
        let fixed_len = match typ {
            IgmpType::RpCoreReport => {
                if bytes.len() < 12 {
                    return Err(WireError::Truncated { what: WHAT, needed: 12, got: bytes.len() });
                }
                let n = u16::from_be_bytes([bytes[10], bytes[11]]) as usize;
                12 + 4 * n
            }
            IgmpType::TreeJoined => 12,
            _ => 8,
        };
        if bytes.len() < fixed_len {
            return Err(WireError::Truncated { what: WHAT, needed: fixed_len, got: bytes.len() });
        }
        let b = &bytes[..fixed_len];
        if !verify_checksum(b) {
            return Err(WireError::BadChecksum { what: WHAT });
        }
        let group_word = Addr(u32::from_be_bytes([b[4], b[5], b[6], b[7]]));
        let require_group = |what: &'static str| {
            GroupId::new(group_word)
                .ok_or(WireError::BadField { what, why: "group field is not class-D" })
        };
        Ok(match typ {
            IgmpType::MembershipQuery => IgmpMessage::Query {
                group: if group_word.is_null() { None } else { Some(require_group(WHAT)?) },
                max_resp_tenths: b[1],
            },
            IgmpType::ReportV1 => IgmpMessage::Report { version: 1, group: require_group(WHAT)? },
            IgmpType::ReportV2 => IgmpMessage::Report { version: 2, group: require_group(WHAT)? },
            IgmpType::ReportV3 => IgmpMessage::Report { version: 3, group: require_group(WHAT)? },
            IgmpType::LeaveGroup => IgmpMessage::Leave { group: require_group(WHAT)? },
            IgmpType::RpCoreReport => {
                let n = u16::from_be_bytes([b[10], b[11]]) as usize;
                let mut cores = Vec::with_capacity(n);
                for i in 0..n {
                    let off = 12 + 4 * i;
                    cores.push(Addr(u32::from_be_bytes([
                        b[off],
                        b[off + 1],
                        b[off + 2],
                        b[off + 3],
                    ])));
                }
                let target_core_index = b[9];
                if !cores.is_empty() && target_core_index as usize >= cores.len() {
                    return Err(WireError::BadField {
                        what: WHAT,
                        why: "target core index out of range",
                    });
                }
                IgmpMessage::RpCore(RpCoreReport {
                    group: require_group(WHAT)?,
                    code: b[1],
                    target_core_index,
                    cores,
                })
            }
            IgmpType::TreeJoined => IgmpMessage::TreeJoined {
                group: require_group(WHAT)?,
                core: Addr(u32::from_be_bytes([b[8], b[9], b[10], b[11]])),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> GroupId {
        GroupId::numbered(9)
    }

    fn samples() -> Vec<IgmpMessage> {
        vec![
            IgmpMessage::Query { group: None, max_resp_tenths: 100 },
            IgmpMessage::Query { group: Some(g()), max_resp_tenths: 10 },
            IgmpMessage::Report { version: 1, group: g() },
            IgmpMessage::Report { version: 2, group: g() },
            IgmpMessage::Report { version: 3, group: g() },
            IgmpMessage::Leave { group: g() },
            IgmpMessage::RpCore(RpCoreReport {
                group: g(),
                code: RP_CORE_CODE_CBT,
                target_core_index: 1,
                cores: vec![Addr::from_octets(10, 0, 0, 4), Addr::from_octets(10, 0, 0, 9)],
            }),
            IgmpMessage::RpCore(RpCoreReport {
                group: g(),
                code: RP_CORE_CODE_PIM,
                target_core_index: 0,
                cores: vec![],
            }),
            IgmpMessage::TreeJoined { group: g(), core: Addr::from_octets(10, 0, 0, 4) },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in samples() {
            let bytes = msg.encode();
            assert_eq!(IgmpMessage::decode(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn igmp_type_numbers_are_standard() {
        assert_eq!(IgmpType::MembershipQuery as u8, 0x11);
        assert_eq!(IgmpType::ReportV1 as u8, 0x12);
        assert_eq!(IgmpType::ReportV2 as u8, 0x16);
        assert_eq!(IgmpType::LeaveGroup as u8, 0x17);
        assert_eq!(IgmpType::ReportV3 as u8, 0x22);
    }

    #[test]
    fn general_query_has_null_group() {
        let bytes = IgmpMessage::Query { group: None, max_resp_tenths: 0 }.encode();
        assert_eq!(&bytes[4..8], &[0, 0, 0, 0]);
    }

    #[test]
    fn rp_core_report_exposes_target_and_primary() {
        let r = RpCoreReport {
            group: g(),
            code: RP_CORE_CODE_CBT,
            target_core_index: 1,
            cores: vec![Addr::from_octets(10, 0, 0, 4), Addr::from_octets(10, 0, 0, 9)],
        };
        assert_eq!(r.primary_core(), Some(Addr::from_octets(10, 0, 0, 4)));
        assert_eq!(r.target_core(), Some(Addr::from_octets(10, 0, 0, 9)));
    }

    #[test]
    fn rp_core_report_rejects_out_of_range_index() {
        let r = IgmpMessage::RpCore(RpCoreReport {
            group: g(),
            code: RP_CORE_CODE_CBT,
            target_core_index: 0,
            cores: vec![Addr::from_octets(10, 0, 0, 4)],
        });
        let mut bytes = r.encode();
        bytes[9] = 5; // index 5 of a 1-entry list
        bytes[2] = 0;
        bytes[3] = 0;
        let ck = internet_checksum(&bytes);
        bytes[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(IgmpMessage::decode(&bytes), Err(WireError::BadField { .. })));
    }

    #[test]
    fn corruption_rejected() {
        for msg in samples() {
            let bytes = msg.encode();
            for i in 0..bytes.len() {
                let mut c = bytes.clone();
                c[i] ^= 0x08;
                assert!(IgmpMessage::decode(&c).is_err(), "{msg:?} byte {i}");
            }
        }
    }

    #[test]
    fn truncation_rejected() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(IgmpMessage::decode(&bytes[..cut]).is_err(), "{msg:?} cut {cut}");
            }
        }
    }
}
