//! The Internet checksum (RFC 1071): 16-bit one's-complement of the
//! one's-complement sum.
//!
//! The CBT data and control headers, the IPv4 header and the IGMP
//! messages all use this same algorithm ("the 16-bit one's complement of
//! the one's complement ... calculated across all fields", spec §8.1).

/// Computes the Internet checksum over `data`.
///
/// Odd-length input is virtually padded with one zero byte, per RFC 1071.
/// The returned value is ready to be stored in a header whose checksum
/// field was zero while summing.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Verifies data whose checksum field is *included* in `data`.
///
/// A correctly checksummed buffer sums (with its embedded checksum) to
/// `0xffff`; equivalently the folded sum's complement is zero.
pub fn verify_checksum(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xffff
}

/// One's-complement 16-bit sum with end-around carry folding.
fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for pair in &mut chunks {
        sum += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_worked_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> fold -> ddf2
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn zero_buffer_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn verify_accepts_own_output() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x54, 0xde, 0xad, 0x40, 0x00, 0x40, 0x01, 0, 0];
        let ck = internet_checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = ck as u8;
        assert!(verify_checksum(&data));
    }

    #[test]
    fn verify_rejects_single_bit_flip() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x54, 0xde, 0xad, 0x40, 0x00, 0x40, 0x01, 0, 0];
        let ck = internet_checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = ck as u8;
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(!verify_checksum(&corrupted), "flip at byte {byte} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn odd_length_padding() {
        // Trailing odd byte is treated as the high octet of a zero-padded
        // word.
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn empty_input() {
        // An empty buffer sums to zero, so its checksum is !0 = 0xffff —
        // and a buffer containing no checksum field never verifies.
        assert_eq!(internet_checksum(&[]), 0xffff);
        assert!(!verify_checksum(&[]));
    }
}
