//! Data packets in both forwarding modes.
//!
//! * **Native mode** (§4): ordinary IP multicast datagrams; no extra
//!   headers. Used inside pure-CBT clouds.
//! * **CBT mode** (§5, Fig. 6): `encaps IP hdr | CBT hdr | original IP
//!   hdr | data`, used across tunnels and mixed clouds. The inner IP
//!   header is untouched until final native delivery, when its TTL is
//!   set to one (§5).

use crate::addr::{Addr, GroupId};
use crate::error::WireError;
use crate::header::{CbtDataHeader, CBT_DATA_HEADER_LEN};
use crate::ipv4::{build_datagram, split_datagram, IpProto, Ipv4Header, MAX_TTL};
use crate::Result;

/// UDP port multicast application payloads ride on in examples, tests
/// and the simulator (any non-CBT port would do).
pub const APP_PORT: u16 = 9999;

/// Which encapsulation a data packet currently wears.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncapMode {
    /// Plain IP multicast (native mode, §4).
    Native,
    /// CBT-header encapsulated (CBT mode, §5).
    CbtMode,
}

/// A native-mode multicast data packet: the original IP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// Originating end-system.
    pub src: Addr,
    /// Destination group.
    pub group: GroupId,
    /// Remaining time-to-live.
    pub ttl: u8,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl DataPacket {
    /// Builds a fresh multicast datagram as an end-system would.
    pub fn new(src: Addr, group: GroupId, ttl: u8, payload: impl Into<Vec<u8>>) -> Self {
        DataPacket { src, group, ttl, payload: payload.into() }
    }

    /// Serializes to a complete IP datagram. The application payload
    /// rides in a real UDP shell on [`APP_PORT`] — CBT does not care
    /// what applications send, but carrying honest headers end-to-end
    /// lets the trace classify every frame unambiguously.
    pub fn encode(&self) -> Vec<u8> {
        let udp = crate::udp::UdpHeader::wrap(APP_PORT, APP_PORT, &self.payload);
        build_datagram(self.src, self.group.addr(), IpProto::Udp, self.ttl, &udp)
    }

    /// Parses a native multicast datagram.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let (hdr, body) = split_datagram(bytes)?;
        let group = GroupId::new(hdr.dst).ok_or(WireError::BadField {
            what: "native data packet",
            why: "destination is not a multicast group",
        })?;
        let (_, payload) = crate::udp::UdpHeader::unwrap(body)?;
        Ok(DataPacket { src: hdr.src, group, ttl: hdr.ttl, payload: payload.to_vec() })
    }
}

/// A CBT-mode packet: the CBT header plus the original datagram, ready
/// to be wrapped in an outer IP header per hop/tunnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbtDataPacket {
    /// The CBT header (Fig. 7) — carries group, origin, core and the
    /// on-tree flag.
    pub cbt: CbtDataHeader,
    /// The untouched original datagram (inner IP header + data).
    pub inner: Vec<u8>,
}

impl CbtDataPacket {
    /// Encapsulates a native packet as the DR adjacent to the origin
    /// does (§5): the CBT header TTL is gleaned from the original IP
    /// header; the packet starts off-tree.
    pub fn encapsulate(native: &DataPacket, core: Addr) -> Self {
        let cbt = CbtDataHeader::new(native.group, core, native.src, native.ttl);
        CbtDataPacket { cbt, inner: native.encode() }
    }

    /// Recovers the original native packet for final delivery, setting
    /// the inner TTL to one as §5 requires ("the TTL value of the
    /// original IP header is set to one before forwarding" onto member
    /// subnets).
    pub fn decapsulate_for_delivery(&self) -> Result<DataPacket> {
        let mut native = DataPacket::decode(&self.inner)?;
        native.ttl = 1;
        Ok(native)
    }

    /// Serializes as the payload of an outer IP datagram: CBT header
    /// followed by the inner datagram.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CBT_DATA_HEADER_LEN + self.inner.len());
        out.extend_from_slice(&self.cbt.encode());
        out.extend_from_slice(&self.inner);
        out
    }

    /// Parses a CBT-mode payload (CBT header + inner datagram).
    pub fn decode_payload(bytes: &[u8]) -> Result<Self> {
        let cbt = CbtDataHeader::decode(bytes)?;
        let inner = bytes[CBT_DATA_HEADER_LEN..].to_vec();
        // Validate the inner datagram eagerly so corruption is caught at
        // the first CBT router, not at delivery time.
        let (inner_hdr, _) = split_datagram(&inner)?;
        if GroupId::new(inner_hdr.dst) != Some(cbt.group) {
            return Err(WireError::BadField {
                what: "cbt data packet",
                why: "inner destination group disagrees with CBT header",
            });
        }
        Ok(CbtDataPacket { cbt, inner })
    }

    /// Wraps in the outer IP header for one unicast hop or tunnel
    /// (CBT unicasting, §5). `tunnel_ttl` is the configured tunnel
    /// length, or `MAX_TTL` when unknown.
    pub fn wrap_unicast(&self, src: Addr, dst: Addr, tunnel_ttl: Option<u8>) -> Vec<u8> {
        build_datagram(
            src,
            dst,
            IpProto::Cbt,
            tunnel_ttl.unwrap_or(MAX_TTL),
            &self.encode_payload(),
        )
    }

    /// Wraps in an outer IP header addressed to the *group* (CBT
    /// multicasting, §5): used when a parent or several children share
    /// one multi-access interface. Hosts discard these because the outer
    /// protocol is CBT, not UDP.
    pub fn wrap_multicast(&self, src: Addr) -> Vec<u8> {
        build_datagram(src, self.cbt.group.addr(), IpProto::Cbt, 1, &self.encode_payload())
    }

    /// Unwraps an outer datagram produced by [`Self::wrap_unicast`] or
    /// [`Self::wrap_multicast`].
    pub fn unwrap_outer(bytes: &[u8]) -> Result<(Ipv4Header, Self)> {
        let (outer, payload) = split_datagram(bytes)?;
        if outer.proto != IpProto::Cbt {
            return Err(WireError::BadField {
                what: "cbt outer header",
                why: "outer protocol is not CBT",
            });
        }
        Ok((outer, Self::decode_payload(payload)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{OFF_TREE, ON_TREE};

    fn native() -> DataPacket {
        DataPacket::new(Addr::from_octets(192, 168, 10, 7), GroupId::numbered(3), 64, b"hi".to_vec())
    }

    #[test]
    fn native_round_trip() {
        let p = native();
        assert_eq!(DataPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn native_rejects_unicast_destination() {
        let dg = build_datagram(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(10, 0, 0, 2),
            IpProto::Udp,
            4,
            b"x",
        );
        assert!(DataPacket::decode(&dg).is_err());
    }

    #[test]
    fn encapsulation_preserves_inner_and_gleans_ttl() {
        let p = native();
        let core = Addr::from_octets(10, 0, 0, 4);
        let enc = CbtDataPacket::encapsulate(&p, core);
        assert_eq!(enc.cbt.ip_ttl, 64, "CBT TTL gleaned from original IP header (§8.1)");
        assert_eq!(enc.cbt.group, p.group);
        assert_eq!(enc.cbt.origin, p.src);
        assert_eq!(enc.cbt.core, core);
        assert_eq!(enc.cbt.on_tree, OFF_TREE);
        assert_eq!(DataPacket::decode(&enc.inner).unwrap(), p);
    }

    #[test]
    fn payload_round_trip() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let back = CbtDataPacket::decode_payload(&enc.encode_payload()).unwrap();
        assert_eq!(back, enc);
    }

    #[test]
    fn unicast_wrap_round_trip_uses_cbt_protocol() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let wire =
            enc.wrap_unicast(Addr::from_octets(10, 1, 0, 1), Addr::from_octets(10, 2, 0, 1), Some(3));
        let (outer, back) = CbtDataPacket::unwrap_outer(&wire).unwrap();
        assert_eq!(outer.proto, IpProto::Cbt);
        assert_eq!(outer.ttl, 3, "outer TTL is the configured tunnel length (§5)");
        assert_eq!(back, enc);
    }

    #[test]
    fn unicast_wrap_defaults_to_max_ttl() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let wire =
            enc.wrap_unicast(Addr::from_octets(10, 1, 0, 1), Addr::from_octets(10, 2, 0, 1), None);
        let (outer, _) = CbtDataPacket::unwrap_outer(&wire).unwrap();
        assert_eq!(outer.ttl, MAX_TTL);
    }

    #[test]
    fn multicast_wrap_targets_group() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let wire = enc.wrap_multicast(Addr::from_octets(10, 1, 0, 1));
        let (outer, _) = CbtDataPacket::unwrap_outer(&wire).unwrap();
        assert_eq!(outer.dst, GroupId::numbered(3).addr());
        assert!(outer.dst.is_multicast());
    }

    #[test]
    fn delivery_sets_inner_ttl_to_one() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let delivered = enc.decapsulate_for_delivery().unwrap();
        assert_eq!(delivered.ttl, 1);
        assert_eq!(delivered.payload, b"hi");
    }

    #[test]
    fn on_tree_flag_survives_the_wire() {
        let mut enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        enc.cbt.on_tree = ON_TREE;
        let wire = enc.wrap_unicast(Addr::from_octets(1, 1, 1, 1), Addr::from_octets(2, 2, 2, 2), None);
        let (_, back) = CbtDataPacket::unwrap_outer(&wire).unwrap();
        assert!(back.cbt.is_on_tree());
    }

    #[test]
    fn group_mismatch_between_headers_rejected() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let mut cbt = enc.cbt;
        cbt.group = GroupId::numbered(99); // disagree with inner datagram
        let bad = CbtDataPacket { cbt, inner: enc.inner };
        assert!(CbtDataPacket::decode_payload(&bad.encode_payload()).is_err());
    }

    #[test]
    fn non_cbt_outer_protocol_rejected() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let wire = build_datagram(
            Addr::from_octets(1, 1, 1, 1),
            Addr::from_octets(2, 2, 2, 2),
            IpProto::Udp,
            9,
            &enc.encode_payload(),
        );
        assert!(CbtDataPacket::unwrap_outer(&wire).is_err());
    }
}
