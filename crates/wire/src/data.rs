//! Data packets in both forwarding modes.
//!
//! * **Native mode** (§4): ordinary IP multicast datagrams; no extra
//!   headers. Used inside pure-CBT clouds.
//! * **CBT mode** (§5, Fig. 6): `encaps IP hdr | CBT hdr | original IP
//!   hdr | data`, used across tunnels and mixed clouds. The inner IP
//!   header is untouched until final native delivery, when its TTL is
//!   set to one (§5).
//!
//! Payloads are refcounted [`Bytes`]: cloning a packet for per-branch
//! fan-out shares the application bytes instead of copying them, and
//! [`DataPacket::decode_bytes`] parses straight out of a received frame
//! without copying the payload at all.

use crate::addr::{Addr, GroupId};
use crate::checksum::internet_checksum;
use crate::error::WireError;
use crate::header::{CbtDataHeader, CBT_DATA_HEADER_LEN};
use crate::ipv4::{split_datagram, IpProto, Ipv4Header, IPV4_HEADER_LEN, MAX_TTL};
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use crate::Result;
use bytes::Bytes;

/// UDP port multicast application payloads ride on in examples, tests
/// and the simulator (any non-CBT port would do).
pub const APP_PORT: u16 = 9999;

/// Which encapsulation a data packet currently wears.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncapMode {
    /// Plain IP multicast (native mode, §4).
    Native,
    /// CBT-header encapsulated (CBT mode, §5).
    CbtMode,
}

/// A native-mode multicast data packet: the original IP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// Originating end-system.
    pub src: Addr,
    /// Destination group.
    pub group: GroupId,
    /// Remaining time-to-live.
    pub ttl: u8,
    /// Application payload (refcounted; clones share the allocation).
    pub payload: Bytes,
}

impl DataPacket {
    /// Builds a fresh multicast datagram as an end-system would.
    pub fn new(src: Addr, group: GroupId, ttl: u8, payload: impl Into<Bytes>) -> Self {
        DataPacket { src, group, ttl, payload: payload.into() }
    }

    /// Serializes to a complete IP datagram. The application payload
    /// rides in a real UDP shell on [`APP_PORT`] — CBT does not care
    /// what applications send, but carrying honest headers end-to-end
    /// lets the trace classify every frame unambiguously.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Serializes into `buf`, replacing its contents — IP header, UDP
    /// shell and payload in one pass, with no intermediate buffers.
    /// Hot send paths keep one scratch buffer alive and call this per
    /// packet instead of allocating twice via [`DataPacket::encode`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        let udp_len = UDP_HEADER_LEN + self.payload.len();
        let hdr = Ipv4Header::new(self.src, self.group.addr(), IpProto::Udp, self.ttl, udp_len);
        buf.reserve(IPV4_HEADER_LEN + udp_len);
        buf.extend_from_slice(&hdr.encode());
        let u = buf.len();
        buf.extend_from_slice(&APP_PORT.to_be_bytes());
        buf.extend_from_slice(&APP_PORT.to_be_bytes());
        buf.extend_from_slice(&(udp_len as u16).to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum, patched below
        buf.extend_from_slice(&self.payload);
        let ck = internet_checksum(&buf[u..]);
        buf[u + 6..u + 8].copy_from_slice(&ck.to_be_bytes());
    }

    /// Parses and validates a native multicast datagram, returning the
    /// header plus the payload as a subslice of `bytes`.
    fn decode_parts(bytes: &[u8]) -> Result<(Ipv4Header, GroupId, &[u8])> {
        let (hdr, body) = split_datagram(bytes)?;
        let group = GroupId::new(hdr.dst).ok_or(WireError::BadField {
            what: "native data packet",
            why: "destination is not a multicast group",
        })?;
        let (_, payload) = UdpHeader::unwrap(body)?;
        Ok((hdr, group, payload))
    }

    /// Parses a native multicast datagram (copies the payload).
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let (hdr, group, payload) = Self::decode_parts(bytes)?;
        Ok(DataPacket {
            src: hdr.src,
            group,
            ttl: hdr.ttl,
            payload: Bytes::copy_from_slice(payload),
        })
    }

    /// Parses a native multicast datagram out of a refcounted frame:
    /// the payload is a zero-copy view into `frame`'s allocation.
    pub fn decode_bytes(frame: &Bytes) -> Result<Self> {
        let (hdr, group, payload) = Self::decode_parts(frame)?;
        let off = payload.as_ptr() as usize - frame.as_ptr() as usize;
        Ok(DataPacket {
            src: hdr.src,
            group,
            ttl: hdr.ttl,
            payload: frame.slice(off..off + payload.len()),
        })
    }
}

/// A CBT-mode packet: the CBT header plus the original datagram, ready
/// to be wrapped in an outer IP header per hop/tunnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbtDataPacket {
    /// The CBT header (Fig. 7) — carries group, origin, core and the
    /// on-tree flag.
    pub cbt: CbtDataHeader,
    /// The untouched original datagram (inner IP header + data),
    /// refcounted so per-branch clones share one allocation.
    pub inner: Bytes,
}

impl CbtDataPacket {
    /// Encapsulates a native packet as the DR adjacent to the origin
    /// does (§5): the CBT header TTL is gleaned from the original IP
    /// header; the packet starts off-tree.
    pub fn encapsulate(native: &DataPacket, core: Addr) -> Self {
        let cbt = CbtDataHeader::new(native.group, core, native.src, native.ttl);
        CbtDataPacket { cbt, inner: Bytes::from(native.encode()) }
    }

    /// Recovers the original native packet for final delivery, setting
    /// the inner TTL to one as §5 requires ("the TTL value of the
    /// original IP header is set to one before forwarding" onto member
    /// subnets). Zero-copy: the returned payload views `self.inner`.
    pub fn decapsulate_for_delivery(&self) -> Result<DataPacket> {
        let mut native = DataPacket::decode_bytes(&self.inner)?;
        native.ttl = 1;
        Ok(native)
    }

    /// Serializes as the payload of an outer IP datagram: CBT header
    /// followed by the inner datagram.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CBT_DATA_HEADER_LEN + self.inner.len());
        out.extend_from_slice(&self.cbt.encode());
        out.extend_from_slice(&self.inner);
        out
    }

    /// Parses a CBT-mode payload (CBT header + inner datagram), copying
    /// the inner datagram out of `bytes`.
    pub fn decode_payload(bytes: &[u8]) -> Result<Self> {
        let cbt = Self::decode_payload_header(bytes)?;
        Ok(CbtDataPacket { cbt, inner: Bytes::copy_from_slice(&bytes[CBT_DATA_HEADER_LEN..]) })
    }

    /// Parses a CBT-mode payload out of a refcounted buffer: the inner
    /// datagram is a zero-copy view into `payload`'s allocation.
    pub fn decode_payload_bytes(payload: &Bytes) -> Result<Self> {
        let cbt = Self::decode_payload_header(payload)?;
        Ok(CbtDataPacket { cbt, inner: payload.slice(CBT_DATA_HEADER_LEN..) })
    }

    /// Shared validation: CBT header plus eager inner-datagram checks so
    /// corruption is caught at the first CBT router, not at delivery.
    fn decode_payload_header(bytes: &[u8]) -> Result<CbtDataHeader> {
        let cbt = CbtDataHeader::decode(bytes)?;
        let (inner_hdr, _) = split_datagram(&bytes[CBT_DATA_HEADER_LEN..])?;
        if GroupId::new(inner_hdr.dst) != Some(cbt.group) {
            return Err(WireError::BadField {
                what: "cbt data packet",
                why: "inner destination group disagrees with CBT header",
            });
        }
        Ok(cbt)
    }

    /// Wraps in the outer IP header for one unicast hop or tunnel
    /// (CBT unicasting, §5). `tunnel_ttl` is the configured tunnel
    /// length, or `MAX_TTL` when unknown.
    pub fn wrap_unicast(&self, src: Addr, dst: Addr, tunnel_ttl: Option<u8>) -> Vec<u8> {
        let mut out = Vec::new();
        self.wrap_unicast_into(src, dst, tunnel_ttl, &mut out);
        out
    }

    /// [`Self::wrap_unicast`] into a reusable buffer: outer IP header,
    /// CBT header and inner datagram written in one pass.
    pub fn wrap_unicast_into(
        &self,
        src: Addr,
        dst: Addr,
        tunnel_ttl: Option<u8>,
        buf: &mut Vec<u8>,
    ) {
        self.wrap_into(src, dst, tunnel_ttl.unwrap_or(MAX_TTL), buf);
    }

    /// Wraps in an outer IP header addressed to the *group* (CBT
    /// multicasting, §5): used when a parent or several children share
    /// one multi-access interface. Hosts discard these because the outer
    /// protocol is CBT, not UDP.
    pub fn wrap_multicast(&self, src: Addr) -> Vec<u8> {
        let mut out = Vec::new();
        self.wrap_multicast_into(src, &mut out);
        out
    }

    /// [`Self::wrap_multicast`] into a reusable buffer.
    pub fn wrap_multicast_into(&self, src: Addr, buf: &mut Vec<u8>) {
        self.wrap_into(src, self.cbt.group.addr(), 1, buf);
    }

    fn wrap_into(&self, src: Addr, dst: Addr, ttl: u8, buf: &mut Vec<u8>) {
        buf.clear();
        let payload_len = CBT_DATA_HEADER_LEN + self.inner.len();
        let hdr = Ipv4Header::new(src, dst, IpProto::Cbt, ttl, payload_len);
        buf.reserve(IPV4_HEADER_LEN + payload_len);
        buf.extend_from_slice(&hdr.encode());
        buf.extend_from_slice(&self.cbt.encode());
        buf.extend_from_slice(&self.inner);
    }

    /// Unwraps an outer datagram produced by [`Self::wrap_unicast`] or
    /// [`Self::wrap_multicast`].
    pub fn unwrap_outer(bytes: &[u8]) -> Result<(Ipv4Header, Self)> {
        let (outer, payload) = split_datagram(bytes)?;
        if outer.proto != IpProto::Cbt {
            return Err(WireError::BadField {
                what: "cbt outer header",
                why: "outer protocol is not CBT",
            });
        }
        Ok((outer, Self::decode_payload(payload)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{OFF_TREE, ON_TREE};
    use crate::ipv4::build_datagram;

    fn native() -> DataPacket {
        DataPacket::new(
            Addr::from_octets(192, 168, 10, 7),
            GroupId::numbered(3),
            64,
            b"hi".to_vec(),
        )
    }

    #[test]
    fn native_round_trip() {
        let p = native();
        assert_eq!(DataPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_the_buffer() {
        // One scratch buffer across packets of shrinking size: every
        // call must leave exactly the bytes `encode` would, with no
        // stale tail from the previous, longer packet.
        let mut buf = Vec::new();
        for len in [900usize, 64, 3, 0] {
            let p = DataPacket::new(
                Addr::from_octets(10, 0, 0, 1),
                GroupId::numbered(7),
                9,
                vec![0xabu8; len],
            );
            p.encode_into(&mut buf);
            assert_eq!(buf, p.encode());
            assert_eq!(DataPacket::decode(&buf).unwrap(), p);
        }
    }

    #[test]
    fn decode_bytes_is_zero_copy() {
        let p = native();
        let frame = Bytes::from(p.encode());
        let back = DataPacket::decode_bytes(&frame).unwrap();
        assert_eq!(back, p);
        assert!(
            back.payload.shares_allocation_with(&frame),
            "payload must view the frame, not copy it"
        );
    }

    #[test]
    fn native_rejects_unicast_destination() {
        let dg = build_datagram(
            Addr::from_octets(10, 0, 0, 1),
            Addr::from_octets(10, 0, 0, 2),
            IpProto::Udp,
            4,
            b"x",
        );
        assert!(DataPacket::decode(&dg).is_err());
    }

    #[test]
    fn encapsulation_preserves_inner_and_gleans_ttl() {
        let p = native();
        let core = Addr::from_octets(10, 0, 0, 4);
        let enc = CbtDataPacket::encapsulate(&p, core);
        assert_eq!(enc.cbt.ip_ttl, 64, "CBT TTL gleaned from original IP header (§8.1)");
        assert_eq!(enc.cbt.group, p.group);
        assert_eq!(enc.cbt.origin, p.src);
        assert_eq!(enc.cbt.core, core);
        assert_eq!(enc.cbt.on_tree, OFF_TREE);
        assert_eq!(DataPacket::decode(&enc.inner).unwrap(), p);
    }

    #[test]
    fn payload_round_trip() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let back = CbtDataPacket::decode_payload(&enc.encode_payload()).unwrap();
        assert_eq!(back, enc);
    }

    #[test]
    fn decode_payload_bytes_is_zero_copy() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let payload = Bytes::from(enc.encode_payload());
        let back = CbtDataPacket::decode_payload_bytes(&payload).unwrap();
        assert_eq!(back, enc);
        assert!(back.inner.shares_allocation_with(&payload));
        // And delivery out of that view allocates nothing either.
        let delivered = back.decapsulate_for_delivery().unwrap();
        assert!(delivered.payload.shares_allocation_with(&payload));
    }

    #[test]
    fn wrap_into_matches_wrap_and_reuses_the_buffer() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let a = Addr::from_octets(10, 1, 0, 1);
        let b = Addr::from_octets(10, 2, 0, 1);
        let mut buf = vec![0xee; 2000]; // dirty, oversized scratch
        enc.wrap_unicast_into(a, b, Some(3), &mut buf);
        assert_eq!(buf, enc.wrap_unicast(a, b, Some(3)));
        enc.wrap_multicast_into(a, &mut buf);
        assert_eq!(buf, enc.wrap_multicast(a));
    }

    #[test]
    fn unicast_wrap_round_trip_uses_cbt_protocol() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let wire = enc.wrap_unicast(
            Addr::from_octets(10, 1, 0, 1),
            Addr::from_octets(10, 2, 0, 1),
            Some(3),
        );
        let (outer, back) = CbtDataPacket::unwrap_outer(&wire).unwrap();
        assert_eq!(outer.proto, IpProto::Cbt);
        assert_eq!(outer.ttl, 3, "outer TTL is the configured tunnel length (§5)");
        assert_eq!(back, enc);
    }

    #[test]
    fn unicast_wrap_defaults_to_max_ttl() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let wire =
            enc.wrap_unicast(Addr::from_octets(10, 1, 0, 1), Addr::from_octets(10, 2, 0, 1), None);
        let (outer, _) = CbtDataPacket::unwrap_outer(&wire).unwrap();
        assert_eq!(outer.ttl, MAX_TTL);
    }

    #[test]
    fn multicast_wrap_targets_group() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let wire = enc.wrap_multicast(Addr::from_octets(10, 1, 0, 1));
        let (outer, _) = CbtDataPacket::unwrap_outer(&wire).unwrap();
        assert_eq!(outer.dst, GroupId::numbered(3).addr());
        assert!(outer.dst.is_multicast());
    }

    #[test]
    fn delivery_sets_inner_ttl_to_one() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let delivered = enc.decapsulate_for_delivery().unwrap();
        assert_eq!(delivered.ttl, 1);
        assert_eq!(delivered.payload, b"hi");
    }

    #[test]
    fn on_tree_flag_survives_the_wire() {
        let mut enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        enc.cbt.on_tree = ON_TREE;
        let wire =
            enc.wrap_unicast(Addr::from_octets(1, 1, 1, 1), Addr::from_octets(2, 2, 2, 2), None);
        let (_, back) = CbtDataPacket::unwrap_outer(&wire).unwrap();
        assert!(back.cbt.is_on_tree());
    }

    #[test]
    fn group_mismatch_between_headers_rejected() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let mut cbt = enc.cbt;
        cbt.group = GroupId::numbered(99); // disagree with inner datagram
        let bad = CbtDataPacket { cbt, inner: enc.inner };
        assert!(CbtDataPacket::decode_payload(&bad.encode_payload()).is_err());
    }

    #[test]
    fn non_cbt_outer_protocol_rejected() {
        let enc = CbtDataPacket::encapsulate(&native(), Addr::from_octets(10, 0, 0, 4));
        let wire = build_datagram(
            Addr::from_octets(1, 1, 1, 1),
            Addr::from_octets(2, 2, 2, 2),
            IpProto::Udp,
            9,
            &enc.encode_payload(),
        );
        assert!(CbtDataPacket::unwrap_outer(&wire).is_err());
    }
}
