//! The June-1995 (-02) message set, kept as a compatibility layer.
//!
//! The -03 authors' note explains the streamlining: "six message types
//! have been eliminated from the previous version of the protocol".
//! The -02 draft's group-initiation and DR-election machinery used a
//! host-driven handshake:
//!
//! * `CORE_NOTIFICATION` / `CORE_NOTIFICATION_ACK` — the group
//!   initiator told each elected core its rank; the acks confirmed, and
//!   the secondary cores then built the core tree;
//! * `DR_SOLICITATION` / `DR_ADV_NOTIFICATION` / `DR_ADVERTISEMENT` —
//!   hosts solicited a designated router per group; candidate routers
//!   tie-broke by lowest address and advertised the winner;
//! * `TAG_REPORT` — the joining host told the elected DR to join;
//! * `HOST_JOIN_ACK` — the DR's LAN-wide success notification;
//! * `CORE_PING` / `PING_REPLY` — core reachability probes before a
//!   re-join.
//!
//! In -03 all of this folded into IGMP (querier = D-DR, RP/Core-Report
//! carries the core list, TreeJoined replaces HOST_JOIN_ACK) and the
//! join itself (cores learn their role from the carried core list;
//! reachability probing became try-join-with-timeout). This module
//! encodes the -02 messages over the same control-header layout so
//! that captures of a mixed -02/-03 deployment decode, and so the
//! migration tests can state the correspondence precisely.
//!
//! Type numbers: the surviving -02 text assigns none; this
//! implementation uses 16.. to stay clear of the -03 range (1..=8).

use crate::addr::{Addr, GroupId};
use crate::error::WireError;
use crate::header::CbtControlHeader;
use crate::Result;

/// On-wire type numbers for the -02 message set (implementation-
/// assigned; see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LegacyType {
    /// Group initiator → each elected core: "you are core rank N".
    CoreNotification = 16,
    /// Core → initiator: acceptance.
    CoreNotificationAck = 17,
    /// Host → all-CBT-routers: "who is my best next hop to this core?"
    DrSolicitation = 18,
    /// Router → all-CBT-routers: tie-breaker claim before advertising.
    DrAdvNotification = 19,
    /// Winning router → all-systems: "I am the DR".
    DrAdvertisement = 20,
    /// Host → DR: join the tree for me.
    TagReport = 21,
    /// DR → LAN (group multicast): tree joined successfully.
    HostJoinAck = 22,
    /// Router → core: are you reachable? (pre-rejoin probe).
    CorePing = 23,
    /// Core → router: yes.
    PingReply = 24,
}

impl LegacyType {
    /// Decodes the type number.
    pub fn from_wire(v: u8) -> Result<Self> {
        Ok(match v {
            16 => LegacyType::CoreNotification,
            17 => LegacyType::CoreNotificationAck,
            18 => LegacyType::DrSolicitation,
            19 => LegacyType::DrAdvNotification,
            20 => LegacyType::DrAdvertisement,
            21 => LegacyType::TagReport,
            22 => LegacyType::HostJoinAck,
            23 => LegacyType::CorePing,
            24 => LegacyType::PingReply,
            got => return Err(WireError::UnknownType { what: "cbt -02 legacy", got }),
        })
    }
}

/// A typed -02 auxiliary message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegacyMessage {
    /// CORE_NOTIFICATION: tells `target_core` it serves `group`, and
    /// carries the full ranked core list (primary first).
    CoreNotification {
        /// The group being initiated.
        group: GroupId,
        /// The initiating host.
        origin: Addr,
        /// The core being notified.
        target_core: Addr,
        /// The ranked core list.
        cores: Vec<Addr>,
    },
    /// CORE_NOTIFICATION_ACK: acceptance from a core.
    CoreNotificationAck {
        /// The group.
        group: GroupId,
        /// The accepting core.
        origin: Addr,
    },
    /// DR_SOLICITATION: "the host wishes a join sent to this core".
    DrSolicitation {
        /// The group to be joined.
        group: GroupId,
        /// The soliciting host.
        origin: Addr,
        /// The core the join should target.
        target_core: Addr,
    },
    /// DR_ADV_NOTIFICATION: a candidate's tie-breaker claim (lowest
    /// source address wins, -02 §2.2).
    DrAdvNotification {
        /// The group concerned.
        group: GroupId,
        /// The claiming router.
        origin: Addr,
        /// The core the claim is about.
        target_core: Addr,
    },
    /// DR_ADVERTISEMENT: the election winner announces itself.
    DrAdvertisement {
        /// The group concerned.
        group: GroupId,
        /// The elected DR.
        origin: Addr,
    },
    /// TAG_REPORT: host → DR, "join this group for me toward this core".
    TagReport {
        /// The group to join.
        group: GroupId,
        /// The requesting host.
        origin: Addr,
        /// The desired core.
        target_core: Addr,
    },
    /// HOST_JOIN_ACK: LAN-wide success notification with the actual
    /// core affiliation.
    HostJoinAck {
        /// The joined group.
        group: GroupId,
        /// The DR announcing success.
        origin: Addr,
        /// Actual core affiliation of the new branch.
        target_core: Addr,
    },
    /// CBT_CORE_PING: reachability probe carrying the core list (-02
    /// §5.2 used it for core re-start discovery too).
    CorePing {
        /// The group concerned.
        group: GroupId,
        /// The probing router.
        origin: Addr,
        /// The probed core.
        target_core: Addr,
        /// The group's core list (how a restarted core re-learned its
        /// role under -02).
        cores: Vec<Addr>,
    },
    /// CBT_PING_REPLY.
    PingReply {
        /// The group concerned.
        group: GroupId,
        /// The replying core.
        origin: Addr,
    },
}

impl LegacyMessage {
    /// The message's wire type.
    pub fn legacy_type(&self) -> LegacyType {
        match self {
            LegacyMessage::CoreNotification { .. } => LegacyType::CoreNotification,
            LegacyMessage::CoreNotificationAck { .. } => LegacyType::CoreNotificationAck,
            LegacyMessage::DrSolicitation { .. } => LegacyType::DrSolicitation,
            LegacyMessage::DrAdvNotification { .. } => LegacyType::DrAdvNotification,
            LegacyMessage::DrAdvertisement { .. } => LegacyType::DrAdvertisement,
            LegacyMessage::TagReport { .. } => LegacyType::TagReport,
            LegacyMessage::HostJoinAck { .. } => LegacyType::HostJoinAck,
            LegacyMessage::CorePing { .. } => LegacyType::CorePing,
            LegacyMessage::PingReply { .. } => LegacyType::PingReply,
        }
    }

    /// The -03 mechanism that replaced this message (the authors'-note
    /// correspondence, used in docs and migration tests).
    pub fn superseded_by(&self) -> &'static str {
        match self {
            LegacyMessage::CoreNotification { .. } | LegacyMessage::CoreNotificationAck { .. } => {
                "core list carried in every JOIN-REQUEST (§6.2) + external core advertisement (§2.1)"
            }
            LegacyMessage::DrSolicitation { .. }
            | LegacyMessage::DrAdvNotification { .. }
            | LegacyMessage::DrAdvertisement { .. } => {
                "IGMP querier election doubling as D-DR election (§2.3)"
            }
            LegacyMessage::TagReport { .. } => "IGMP membership report + RP/Core-Report (§2.2)",
            LegacyMessage::HostJoinAck { .. } => "IGMP tree-joined notification (§2.5)",
            LegacyMessage::CorePing { .. } | LegacyMessage::PingReply { .. } => {
                "join retransmission with PEND-JOIN-TIMEOUT core fallback (§6.1, §9)"
            }
        }
    }

    fn to_header(&self) -> CbtControlHeader {
        let typ = self.legacy_type() as u8;
        let (group, origin, target_core, cores) = match self {
            LegacyMessage::CoreNotification { group, origin, target_core, cores } => {
                (*group, *origin, *target_core, cores.clone())
            }
            LegacyMessage::CorePing { group, origin, target_core, cores } => {
                (*group, *origin, *target_core, cores.clone())
            }
            LegacyMessage::CoreNotificationAck { group, origin }
            | LegacyMessage::DrAdvertisement { group, origin }
            | LegacyMessage::PingReply { group, origin } => {
                (*group, *origin, Addr::NULL, Vec::new())
            }
            LegacyMessage::DrSolicitation { group, origin, target_core }
            | LegacyMessage::DrAdvNotification { group, origin, target_core }
            | LegacyMessage::TagReport { group, origin, target_core }
            | LegacyMessage::HostJoinAck { group, origin, target_core } => {
                (*group, *origin, *target_core, Vec::new())
            }
        };
        CbtControlHeader { typ, code: 0, group, origin, target_core, cores }
    }

    /// Serialises over the standard control-header layout.
    ///
    /// # Errors
    /// Returns [`WireError::TooManyCores`] when a core-carrying
    /// variant exceeds the header's [`crate::header::MAX_CORES`].
    pub fn encode(&self) -> Result<Vec<u8>> {
        self.to_header().encode()
    }

    /// Parses a legacy message.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let h = CbtControlHeader::decode(bytes)?;
        let typ = LegacyType::from_wire(h.typ)?;
        Ok(match typ {
            LegacyType::CoreNotification => LegacyMessage::CoreNotification {
                group: h.group,
                origin: h.origin,
                target_core: h.target_core,
                cores: h.cores,
            },
            LegacyType::CoreNotificationAck => {
                LegacyMessage::CoreNotificationAck { group: h.group, origin: h.origin }
            }
            LegacyType::DrSolicitation => LegacyMessage::DrSolicitation {
                group: h.group,
                origin: h.origin,
                target_core: h.target_core,
            },
            LegacyType::DrAdvNotification => LegacyMessage::DrAdvNotification {
                group: h.group,
                origin: h.origin,
                target_core: h.target_core,
            },
            LegacyType::DrAdvertisement => {
                LegacyMessage::DrAdvertisement { group: h.group, origin: h.origin }
            }
            LegacyType::TagReport => LegacyMessage::TagReport {
                group: h.group,
                origin: h.origin,
                target_core: h.target_core,
            },
            LegacyType::HostJoinAck => LegacyMessage::HostJoinAck {
                group: h.group,
                origin: h.origin,
                target_core: h.target_core,
            },
            LegacyType::CorePing => LegacyMessage::CorePing {
                group: h.group,
                origin: h.origin,
                target_core: h.target_core,
                cores: h.cores,
            },
            LegacyType::PingReply => LegacyMessage::PingReply { group: h.group, origin: h.origin },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> GroupId {
        GroupId::numbered(4)
    }

    fn samples() -> Vec<LegacyMessage> {
        let host = Addr::from_octets(10, 1, 0, 100);
        let core = Addr::from_octets(10, 255, 0, 4);
        let core2 = Addr::from_octets(10, 255, 0, 9);
        vec![
            LegacyMessage::CoreNotification {
                group: g(),
                origin: host,
                target_core: core,
                cores: vec![core, core2],
            },
            LegacyMessage::CoreNotificationAck { group: g(), origin: core },
            LegacyMessage::DrSolicitation { group: g(), origin: host, target_core: core },
            LegacyMessage::DrAdvNotification {
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core,
            },
            LegacyMessage::DrAdvertisement { group: g(), origin: Addr::from_octets(10, 1, 0, 1) },
            LegacyMessage::TagReport { group: g(), origin: host, target_core: core },
            LegacyMessage::HostJoinAck {
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core,
            },
            LegacyMessage::CorePing {
                group: g(),
                origin: Addr::from_octets(10, 255, 0, 1),
                target_core: core,
                cores: vec![core, core2],
            },
            LegacyMessage::PingReply { group: g(), origin: core },
        ]
    }

    #[test]
    fn all_legacy_messages_round_trip() {
        for msg in samples() {
            let bytes = msg.encode().unwrap();
            assert_eq!(LegacyMessage::decode(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn legacy_numbers_do_not_collide_with_v03() {
        for msg in samples() {
            let t = msg.legacy_type() as u8;
            assert!(t >= 16, "{t} clashes with the -03 range 1..=8");
            // And the -03 decoder rejects them rather than mis-typing.
            assert!(crate::ControlMessage::decode(&msg.encode().unwrap()).is_err());
        }
    }

    #[test]
    fn every_legacy_message_names_its_successor() {
        for msg in samples() {
            let s = msg.superseded_by();
            assert!(s.contains('§'), "successor cites a -03 section: {s}");
        }
    }

    #[test]
    fn core_notification_carries_ranked_list() {
        let msg = &samples()[0];
        let LegacyMessage::CoreNotification { cores, .. } =
            LegacyMessage::decode(&msg.encode().unwrap()).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(cores.len(), 2);
        assert_eq!(cores[0], Addr::from_octets(10, 255, 0, 4), "primary listed first");
    }

    #[test]
    fn corruption_rejected() {
        let bytes = samples()[0].encode().unwrap();
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] ^= 0x04;
            assert!(LegacyMessage::decode(&c).is_err(), "byte {i}");
        }
    }
}
