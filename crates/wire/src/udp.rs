//! Minimal UDP shell for CBT control messages (spec §3).
//!
//! "CBT primary and auxiliary control packets travel inside UDP
//! datagrams": primary messages on port 7777, auxiliary (echo) messages
//! on port 7778. The checksum here is computed over the UDP header and
//! payload only (the simulator does not model the IP pseudo-header; the
//! live runtime delegates to the kernel's real UDP).

use crate::checksum::internet_checksum;
use crate::error::WireError;
use crate::Result;

/// UDP port for CBT primary control messages (§3).
pub const CBT_PRIMARY_PORT: u16 = 7777;
/// UDP port for CBT auxiliary control messages (§3).
pub const CBT_AUX_PORT: u16 = 7778;

/// Size of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Header + payload length.
    pub length: u16,
}

impl UdpHeader {
    /// Wraps `payload` in a UDP datagram between the given ports.
    pub fn wrap(src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
        let length = (UDP_HEADER_LEN + payload.len()) as u16;
        let mut out = vec![0u8; UDP_HEADER_LEN + payload.len()];
        out[0..2].copy_from_slice(&src_port.to_be_bytes());
        out[2..4].copy_from_slice(&dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&length.to_be_bytes());
        out[UDP_HEADER_LEN..].copy_from_slice(payload);
        let ck = internet_checksum(&out);
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Splits a datagram into header and payload, validating length and
    /// checksum.
    pub fn unwrap(bytes: &[u8]) -> Result<(UdpHeader, &[u8])> {
        const WHAT: &str = "udp datagram";
        if bytes.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated {
                what: WHAT,
                needed: UDP_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let length = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if length < UDP_HEADER_LEN {
            return Err(WireError::BadLength { what: WHAT, got: length });
        }
        if bytes.len() < length {
            return Err(WireError::Truncated { what: WHAT, needed: length, got: bytes.len() });
        }
        if !crate::checksum::verify_checksum(&bytes[..length]) {
            return Err(WireError::BadChecksum { what: WHAT });
        }
        let hdr = UdpHeader {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            length: length as u16,
        };
        Ok((hdr, &bytes[UDP_HEADER_LEN..length]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dg = UdpHeader::wrap(CBT_PRIMARY_PORT, CBT_PRIMARY_PORT, b"join!");
        let (hdr, payload) = UdpHeader::unwrap(&dg).unwrap();
        assert_eq!(hdr.src_port, CBT_PRIMARY_PORT);
        assert_eq!(hdr.dst_port, CBT_PRIMARY_PORT);
        assert_eq!(payload, b"join!");
    }

    #[test]
    fn aux_port_round_trip() {
        let dg = UdpHeader::wrap(CBT_AUX_PORT, CBT_AUX_PORT, b"echo");
        let (hdr, _) = UdpHeader::unwrap(&dg).unwrap();
        assert_eq!(hdr.dst_port, CBT_AUX_PORT);
    }

    #[test]
    fn empty_payload() {
        let dg = UdpHeader::wrap(1, 2, b"");
        let (hdr, payload) = UdpHeader::unwrap(&dg).unwrap();
        assert_eq!(hdr.length as usize, UDP_HEADER_LEN);
        assert!(payload.is_empty());
    }

    #[test]
    fn corruption_rejected() {
        let dg = UdpHeader::wrap(CBT_PRIMARY_PORT, CBT_PRIMARY_PORT, b"payload bytes");
        for i in 0..dg.len() {
            let mut c = dg.clone();
            c[i] ^= 0x02;
            assert!(UdpHeader::unwrap(&c).is_err(), "byte {i}");
        }
    }

    #[test]
    fn trailing_padding_ignored() {
        let mut dg = UdpHeader::wrap(5, 6, b"xy");
        dg.push(0xee);
        let (_, payload) = UdpHeader::unwrap(&dg).unwrap();
        assert_eq!(payload, b"xy");
    }

    #[test]
    fn ports_match_section_3() {
        assert_eq!(CBT_PRIMARY_PORT, 7777);
        assert_eq!(CBT_AUX_PORT, 7778);
    }
}
