//! JSON deployment descriptions for the `cbtd` binary: a topology, a
//! core list, and a script of host actions — enough to stand up a live
//! CBT network from a file.
//!
//! ```json
//! {
//!   "routers": ["R0", "R1", "R2"],
//!   "lans": [
//!     {"name": "S0", "routers": ["R0"], "hosts": ["alice"]},
//!     {"name": "S1", "routers": ["R2"], "hosts": ["bob"]}
//!   ],
//!   "links": [["R0", "R1"], ["R1", "R2"]],
//!   "group": 1,
//!   "cores": ["R1"],
//!   "script": [
//!     {"at_ms": 100,  "host": "alice", "do": "join"},
//!     {"at_ms": 100,  "host": "bob",   "do": "join"},
//!     {"at_ms": 2000, "host": "bob",   "do": "send", "payload": "hello"}
//!   ]
//! }
//! ```

use cbt_topology::{HostId, NetworkBuilder, NetworkSpec, RouterId};
use serde::Deserialize;
use std::collections::HashMap;

/// One LAN in the description.
#[derive(Debug, Clone, Deserialize)]
pub struct LanConfig {
    /// LAN name.
    pub name: String,
    /// Attached router names (attach order = address order = election
    /// order).
    #[serde(default)]
    pub routers: Vec<String>,
    /// Host names living on the LAN.
    #[serde(default)]
    pub hosts: Vec<String>,
}

/// One scripted host action.
#[derive(Debug, Clone, Deserialize)]
pub struct ScriptStep {
    /// When, in milliseconds from start.
    pub at_ms: u64,
    /// Which host acts.
    pub host: String,
    /// `"join"`, `"leave"` or `"send"`.
    #[serde(rename = "do")]
    pub action: String,
    /// Payload for `"send"`.
    #[serde(default)]
    pub payload: String,
}

/// A whole deployment description.
#[derive(Debug, Clone, Deserialize)]
pub struct Deployment {
    /// Router names.
    pub routers: Vec<String>,
    /// LAN segments.
    pub lans: Vec<LanConfig>,
    /// Point-to-point links as name pairs (cost 1).
    #[serde(default)]
    pub links: Vec<(String, String)>,
    /// Group number (maps to `239.1.x.y`).
    pub group: u16,
    /// Core router names, primary first.
    pub cores: Vec<String>,
    /// Host actions.
    #[serde(default)]
    pub script: Vec<ScriptStep>,
}

/// A parsed deployment bound to its built network.
pub struct BuiltDeployment {
    /// The network.
    pub net: NetworkSpec,
    /// Router name → id.
    pub routers: HashMap<String, RouterId>,
    /// Host name → id.
    pub hosts: HashMap<String, HostId>,
    /// The original description (script, group, cores).
    pub config: Deployment,
}

/// Errors from parsing/validating a deployment.
#[derive(Debug)]
pub enum ConfigError {
    /// Invalid JSON.
    Json(serde_json::Error),
    /// A name was referenced but never declared, or declared twice.
    BadReference(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "invalid deployment JSON: {e}"),
            ConfigError::BadReference(m) => write!(f, "bad reference: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl Deployment {
    /// Parses a deployment from JSON text.
    pub fn from_json(text: &str) -> Result<Deployment, ConfigError> {
        serde_json::from_str(text).map_err(ConfigError::Json)
    }

    /// Builds the network and name maps, validating every reference.
    pub fn build(self) -> Result<BuiltDeployment, ConfigError> {
        let mut b = NetworkBuilder::new();
        let mut routers = HashMap::new();
        for name in &self.routers {
            if routers.insert(name.clone(), b.router(name.clone())).is_some() {
                return Err(ConfigError::BadReference(format!("duplicate router '{name}'")));
            }
        }
        let mut hosts = HashMap::new();
        for lan in &self.lans {
            let id = b.lan(lan.name.clone());
            for r in &lan.routers {
                let Some(rid) = routers.get(r) else {
                    return Err(ConfigError::BadReference(format!(
                        "LAN '{}' references unknown router '{r}'",
                        lan.name
                    )));
                };
                b.attach(id, *rid);
            }
            for h in &lan.hosts {
                if hosts.insert(h.clone(), b.host(h.clone(), id)).is_some() {
                    return Err(ConfigError::BadReference(format!("duplicate host '{h}'")));
                }
            }
        }
        for (x, y) in &self.links {
            let (Some(a), Some(bb)) = (routers.get(x), routers.get(y)) else {
                return Err(ConfigError::BadReference(format!(
                    "link references unknown router '{x}' or '{y}'"
                )));
            };
            b.link(*a, *bb, 1);
        }
        for c in &self.cores {
            if !routers.contains_key(c) {
                return Err(ConfigError::BadReference(format!("unknown core router '{c}'")));
            }
        }
        for s in &self.script {
            if !hosts.contains_key(&s.host) {
                return Err(ConfigError::BadReference(format!(
                    "script references unknown host '{}'",
                    s.host
                )));
            }
            if !matches!(s.action.as_str(), "join" | "leave" | "send") {
                return Err(ConfigError::BadReference(format!(
                    "unknown action '{}' (join|leave|send)",
                    s.action
                )));
            }
        }
        let net = b.build();
        Ok(BuiltDeployment { net, routers, hosts, config: self })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"{
        "routers": ["R0", "R1", "R2"],
        "lans": [
            {"name": "S0", "routers": ["R0"], "hosts": ["alice"]},
            {"name": "S1", "routers": ["R2"], "hosts": ["bob"]}
        ],
        "links": [["R0", "R1"], ["R1", "R2"]],
        "group": 1,
        "cores": ["R1"],
        "script": [
            {"at_ms": 100, "host": "alice", "do": "join"},
            {"at_ms": 2000, "host": "bob", "do": "send", "payload": "hi"}
        ]
    }"#;

    #[test]
    fn demo_parses_and_builds() {
        let d = Deployment::from_json(DEMO).unwrap();
        let built = d.build().unwrap();
        assert_eq!(built.net.routers.len(), 3);
        assert_eq!(built.net.hosts.len(), 2);
        assert_eq!(built.net.links.len(), 2);
        assert!(built.routers.contains_key("R1"));
        assert!(built.hosts.contains_key("bob"));
        assert_eq!(built.config.script.len(), 2);
        assert!(built.net.router_graph().is_connected());
    }

    #[test]
    fn unknown_router_in_lan_rejected() {
        let bad = DEMO.replace("\"routers\": [\"R0\"],", "\"routers\": [\"R9\"],");
        match Deployment::from_json(&bad).unwrap().build() {
            Err(e) => assert!(e.to_string().contains("R9")),
            Ok(_) => panic!("unknown router accepted"),
        }
    }

    #[test]
    fn unknown_core_rejected() {
        let bad = DEMO.replace("\"cores\": [\"R1\"]", "\"cores\": [\"R7\"]");
        assert!(Deployment::from_json(&bad).unwrap().build().is_err());
    }

    #[test]
    fn unknown_action_rejected() {
        let bad = DEMO.replace("\"do\": \"join\"", "\"do\": \"dance\"");
        assert!(Deployment::from_json(&bad).unwrap().build().is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let bad = DEMO.replace("[\"R0\", \"R1\", \"R2\"]", "[\"R0\", \"R0\", \"R2\"]");
        assert!(Deployment::from_json(&bad).unwrap().build().is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(Deployment::from_json("{"), Err(ConfigError::Json(_))));
    }
}
