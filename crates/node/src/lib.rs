//! # cbt-node — the CBT engine on a live tokio runtime
//!
//! The same sans-I/O machinery that runs under the deterministic
//! simulator ([`cbt::RouterNode`], [`cbt::HostApp`] — both implement
//! `cbt_netsim::SimNode`) driven by **wall-clock** tokio tasks instead
//! of a virtual event queue:
//!
//! * every router and host is its own task;
//! * frames move over an in-process [`fabric`] of mpsc channels that
//!   reproduces the link/LAN semantics (broadcast fan-out, link-layer
//!   unicast filtering) — or over **real UDP sockets** on loopback via
//!   [`udp`];
//! * timers are `tokio::time::sleep_until` against the node's own
//!   `next_wakeup()`, so `tokio::time::pause()` makes tests instant.
//!
//! This is the "multi-node control-plane simulation" deployment shape:
//! one process, N concurrent routers, the actual protocol timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
#[cfg(feature = "live")]
pub mod fabric;
#[cfg(feature = "live")]
pub mod live;
#[cfg(feature = "live")]
pub mod udp;

pub use config::Deployment;
#[cfg(feature = "live")]
pub use fabric::Fabric;
#[cfg(feature = "live")]
pub use live::{LiveNet, RouterSnapshot};
