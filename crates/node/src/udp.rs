//! Real-socket transport: the same fabric semantics carried over UDP
//! sockets on loopback.
//!
//! Every entity binds one `tokio::net::UdpSocket`; a transmission is
//! resolved to its recipients exactly like the channel fabric, then
//! sent as a real datagram `[iface_be32 | link_src_be32 | frame]` to
//! each recipient's socket, where a pump task feeds it into the node's
//! inbox (the link_src word plays the role of the Ethernet source MAC). The CBT
//! control messages inside are the byte-exact §8 formats riding in the
//! §3 UDP shells — so a packet capture of loopback during a test shows
//! genuine CBT traffic.

use crate::fabric::RxFrame;
use cbt_netsim::{Entity, Transmit};
use cbt_topology::{Attachment, HostId, IfIndex, NetworkSpec, RouterId};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::mpsc;
use tokio::task::JoinHandle;

/// The UDP-backed fabric.
pub struct UdpFabric {
    net: Arc<NetworkSpec>,
    /// Each entity's bound socket (send side).
    sockets: HashMap<Entity, Arc<UdpSocket>>,
    /// Each entity's socket address (receive side).
    peers: HashMap<Entity, SocketAddr>,
    pumps: Vec<JoinHandle<()>>,
}

impl UdpFabric {
    /// Binds one loopback socket per entity and starts pump tasks that
    /// forward received datagrams into the returned inboxes.
    pub async fn bind(
        net: Arc<NetworkSpec>,
    ) -> std::io::Result<(Arc<Self>, HashMap<Entity, mpsc::UnboundedReceiver<RxFrame>>)> {
        let mut sockets = HashMap::new();
        let mut peers = HashMap::new();
        let mut rxs = HashMap::new();
        let mut pumps = Vec::new();
        let entities: Vec<Entity> = (0..net.routers.len())
            .map(|i| Entity::Router(RouterId(i as u32)))
            .chain((0..net.hosts.len()).map(|i| Entity::Host(HostId(i as u32))))
            .collect();
        for e in entities {
            let socket = Arc::new(UdpSocket::bind("127.0.0.1:0").await?);
            peers.insert(e, socket.local_addr()?);
            let (tx, rx) = mpsc::unbounded_channel();
            rxs.insert(e, rx);
            let pump_socket = socket.clone();
            pumps.push(tokio::spawn(async move {
                let mut buf = vec![0u8; 65536];
                loop {
                    let Ok((len, _)) = pump_socket.recv_from(&mut buf).await else { break };
                    if len < 8 {
                        continue;
                    }
                    let iface =
                        IfIndex(u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]));
                    let link_src = cbt_wire::Addr(u32::from_be_bytes([
                        buf[4], buf[5], buf[6], buf[7],
                    ]));
                    if tx.send(RxFrame { iface, link_src, frame: buf[8..len].to_vec() }).is_err()
                    {
                        break;
                    }
                }
            }));
            sockets.insert(e, socket);
        }
        Ok((Arc::new(UdpFabric { net, sockets, peers, pumps }), rxs))
    }

    /// Dispatches one transmission — fabric resolution, UDP delivery.
    pub async fn dispatch(&self, from: Entity, t: &Transmit) {
        let Some(sock) = self.sockets.get(&from) else { return };
        let link_src = self.link_src_of(from, t.iface);
        for (to, iface) in self.recipients(from, t) {
            let Some(peer) = self.peers.get(&to) else { continue };
            let mut dgram = Vec::with_capacity(8 + t.frame.len());
            dgram.extend_from_slice(&iface.0.to_be_bytes());
            dgram.extend_from_slice(&link_src.0.to_be_bytes());
            dgram.extend_from_slice(&t.frame);
            let _ = sock.send_to(&dgram, peer).await;
        }
    }

    /// The sender's address on the transmitting medium.
    fn link_src_of(&self, from: Entity, iface: IfIndex) -> cbt_wire::Addr {
        match from {
            Entity::Router(r) => self
                .net
                .routers
                .get(r.0 as usize)
                .and_then(|s| s.iface(iface))
                .map(|i| i.addr)
                .unwrap_or(cbt_wire::Addr::NULL),
            Entity::Host(h) => self
                .net
                .hosts
                .get(h.0 as usize)
                .map(|s| s.addr)
                .unwrap_or(cbt_wire::Addr::NULL),
        }
    }

    /// Who receives this transmission, and on which of their ifaces.
    fn recipients(&self, from: Entity, t: &Transmit) -> Vec<(Entity, IfIndex)> {
        let mut out = Vec::new();
        let medium = match from {
            Entity::Router(r) => {
                self.net.routers.get(r.0 as usize).and_then(|s| s.iface(t.iface)).map(|i| i.attachment)
            }
            Entity::Host(h) => self
                .net
                .hosts
                .get(h.0 as usize)
                .filter(|_| t.iface == IfIndex(0))
                .map(|s| Attachment::Lan(s.lan)),
        };
        match medium {
            Some(Attachment::Lan(lan)) => {
                let lan_spec = &self.net.lans[lan.0 as usize];
                for &r in &lan_spec.routers {
                    if Entity::Router(r) == from {
                        continue;
                    }
                    if let Some((rx_iface, rx_spec)) =
                        self.net.routers[r.0 as usize].iface_on_lan(lan)
                    {
                        if t.link_dst.is_some_and(|d| d != rx_spec.addr) {
                            continue;
                        }
                        out.push((Entity::Router(r), rx_iface));
                    }
                }
                for &h in &lan_spec.hosts {
                    if Entity::Host(h) == from {
                        continue;
                    }
                    if t.link_dst.is_some_and(|d| d != self.net.hosts[h.0 as usize].addr) {
                        continue;
                    }
                    out.push((Entity::Host(h), IfIndex(0)));
                }
            }
            Some(Attachment::Link { link, peer }) => {
                let peer_iface = self.net.routers[peer.0 as usize]
                    .ifaces
                    .iter()
                    .position(|pi| matches!(pi.attachment, Attachment::Link { link: l, .. } if l == link));
                if let Some(idx) = peer_iface {
                    out.push((Entity::Router(peer), IfIndex(idx as u32)));
                }
            }
            None => {}
        }
        out
    }

    /// Stops the pump tasks.
    pub fn shutdown(&self) {
        for p in &self.pumps {
            p.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::NetworkBuilder;
    use cbt_wire::{Addr, ControlMessage, GroupId, JoinSubcode, UdpHeader, CBT_PRIMARY_PORT};

    fn pair() -> Arc<NetworkSpec> {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        b.link(r0, r1, 1);
        Arc::new(b.build())
    }

    /// A genuine CBT JOIN_REQUEST crosses a real UDP socket pair and
    /// decodes byte-exactly on the other side.
    #[tokio::test]
    async fn join_request_over_real_sockets() {
        let net = pair();
        let (fabric, mut rxs) = UdpFabric::bind(net.clone()).await.unwrap();

        let join = ControlMessage::JoinRequest {
            subcode: JoinSubcode::ActiveJoin,
            group: GroupId::numbered(3),
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: Addr::from_octets(10, 255, 0, 1),
            cores: vec![Addr::from_octets(10, 255, 0, 1)],
        };
        // Wrap exactly as the router adapter does: §3 UDP shell inside
        // an IP datagram.
        let udp = UdpHeader::wrap(CBT_PRIMARY_PORT, CBT_PRIMARY_PORT, &join.encode());
        let frame = cbt_wire::ipv4::build_datagram(
            Addr::from_octets(172, 31, 0, 1),
            Addr::from_octets(172, 31, 0, 2),
            cbt_wire::IpProto::Udp,
            64,
            &udp,
        );
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame };
        fabric.dispatch(Entity::Router(RouterId(0)), &t).await;

        let rx = rxs.get_mut(&Entity::Router(RouterId(1))).unwrap();
        let got = tokio::time::timeout(std::time::Duration::from_secs(5), rx.recv())
            .await
            .expect("datagram within 5s")
            .expect("channel open");
        assert_eq!(got.iface, IfIndex(0));
        let (hdr, body) = cbt_wire::ipv4::split_datagram(&got.frame).unwrap();
        assert_eq!(hdr.proto, cbt_wire::IpProto::Udp);
        let (udp_hdr, payload) = UdpHeader::unwrap(body).unwrap();
        assert_eq!(udp_hdr.dst_port, CBT_PRIMARY_PORT);
        assert_eq!(ControlMessage::decode(payload).unwrap(), join);
        fabric.shutdown();
    }

    #[tokio::test]
    async fn lan_unicast_filtering_over_udp() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let lan = b.lan("S0");
        b.attach(lan, r0);
        b.attach(lan, r1);
        b.attach(lan, r2);
        let net = Arc::new(b.build());
        let r1_addr = net.routers[1].ifaces[0].addr;
        let (fabric, mut rxs) = UdpFabric::bind(net.clone()).await.unwrap();
        let t = Transmit { iface: IfIndex(0), link_dst: Some(r1_addr), frame: vec![0, 1, 2, 3, 4] };
        fabric.dispatch(Entity::Router(r0), &t).await;
        // R1 receives...
        let rx1 = rxs.get_mut(&Entity::Router(r1)).unwrap();
        let got = tokio::time::timeout(std::time::Duration::from_secs(5), rx1.recv())
            .await
            .expect("delivered")
            .expect("open");
        assert_eq!(got.frame, vec![0, 1, 2, 3, 4]);
        // ...R2 does not (give the network a moment, then check empty).
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        assert!(rxs.get_mut(&Entity::Router(r2)).unwrap().try_recv().is_err());
        fabric.shutdown();
    }
}
