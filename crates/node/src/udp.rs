//! Real-socket transport: the same fabric semantics carried over UDP
//! sockets on loopback.
//!
//! Every entity binds one `tokio::net::UdpSocket`; a transmission is
//! resolved to its recipients exactly like the channel fabric, then
//! sent as a real datagram `[iface_be32 | link_src_be32 | frame]` to
//! each recipient's socket, where a pump task feeds it into the node's
//! inbox (the link_src word plays the role of the Ethernet source MAC). The CBT
//! control messages inside are the byte-exact §8 formats riding in the
//! §3 UDP shells — so a packet capture of loopback during a test shows
//! genuine CBT traffic.
//!
//! Data-plane properties (see DESIGN.md "Data-plane architecture"):
//! - the send side encodes each outbound datagram **once** into a
//!   reused buffer and patches only the 4-byte iface preamble per
//!   recipient; [`UdpFabric::dispatch_batch`] extends that reuse
//!   across a whole outbox drain and issues the sends as one
//!   synchronous burst (no await between datagrams);
//! - the pump drains every datagram already queued on the socket per
//!   wakeup (batch receive into one reused scratch buffer) instead of
//!   taking a task wakeup per packet;
//! - node inboxes are bounded; overflow is dropped and counted, and
//!   malformed datagrams shorter than the 8-byte preamble are counted
//!   in [`UdpStats::short_datagrams`] instead of vanishing silently.

use crate::fabric::{entities_of, steer_frame, DataPlaneConfig, RxFrame, Steer};
use cbt_netsim::{Bytes, Entity, Transmit};
use cbt_obs::{AtomicDropCounters, DropCounters, DropReason};
use cbt_topology::{Attachment, IfIndex, NetworkSpec};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::mpsc;
use tokio::task::JoinHandle;

/// How many datagrams a pump drains per socket wakeup before yielding.
const PUMP_BATCH: usize = 64;

/// Cumulative transport counters, shared by every pump of a fabric.
/// Drops are attributed to the **receiving node** under the shared
/// [`DropReason`] taxonomy: a truncated preamble counts as
/// [`DropReason::DecodeError`], a full inbox as
/// [`DropReason::InboxOverflow`].
#[derive(Default)]
pub struct UdpCounters {
    datagrams_rx: AtomicU64,
    node_drops: HashMap<Entity, AtomicDropCounters>,
}

/// A point-in-time snapshot of [`UdpCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpStats {
    /// Well-formed datagrams delivered into node inboxes.
    pub datagrams_rx: u64,
    /// Datagrams shorter than the 8-byte `[iface|link_src]` preamble
    /// (including zero-length), dropped at the pump (sum of
    /// [`DropReason::DecodeError`] over every node).
    pub short_datagrams: u64,
    /// Well-formed datagrams dropped because the node's bounded inbox
    /// was full (sum of [`DropReason::InboxOverflow`] over every node).
    pub dropped_overflow: u64,
}

impl UdpCounters {
    /// Builds the counter set with one taxonomy row per entity.
    fn for_net(net: &NetworkSpec) -> Self {
        UdpCounters {
            datagrams_rx: AtomicU64::new(0),
            node_drops: entities_of(net)
                .into_iter()
                .map(|e| (e, AtomicDropCounters::default()))
                .collect(),
        }
    }
    /// One node's transport-level drop taxonomy.
    pub fn node_drops(&self, e: Entity) -> DropCounters {
        self.node_drops.get(&e).map(|d| d.snapshot()).unwrap_or_default()
    }
    /// The fleet-wide drop taxonomy (sum over every node).
    pub fn drops_total(&self) -> DropCounters {
        let mut out = DropCounters::default();
        for d in self.node_drops.values() {
            out.merge(&d.snapshot());
        }
        out
    }
    /// Snapshots the counters.
    pub fn snapshot(&self) -> UdpStats {
        let drops = self.drops_total();
        UdpStats {
            datagrams_rx: self.datagrams_rx.load(Ordering::Relaxed),
            short_datagrams: drops.get(DropReason::DecodeError),
            dropped_overflow: drops.get(DropReason::InboxOverflow),
        }
    }
}

/// The UDP-backed fabric.
pub struct UdpFabric {
    net: Arc<NetworkSpec>,
    /// Each entity's bound socket (send side).
    sockets: HashMap<Entity, Arc<UdpSocket>>,
    /// Each entity's socket address (receive side).
    peers: HashMap<Entity, SocketAddr>,
    counters: Arc<UdpCounters>,
    pumps: Vec<JoinHandle<()>>,
}

impl UdpFabric {
    /// Binds one loopback socket per entity and starts pump tasks that
    /// forward received datagrams into the returned inboxes (default
    /// data-plane config).
    pub async fn bind(
        net: Arc<NetworkSpec>,
    ) -> std::io::Result<(Arc<Self>, HashMap<Entity, mpsc::Receiver<RxFrame>>)> {
        UdpFabric::bind_with(net, DataPlaneConfig::default()).await
    }

    /// Binds with explicit data-plane tuning (one inbox per entity —
    /// the unsharded shape).
    pub async fn bind_with(
        net: Arc<NetworkSpec>,
        dp: DataPlaneConfig,
    ) -> std::io::Result<(Arc<Self>, HashMap<Entity, mpsc::Receiver<RxFrame>>)> {
        let (fabric, rxs) = UdpFabric::bind_sharded(net, dp, 1).await?;
        let rxs =
            rxs.into_iter().map(|(e, mut v)| (e, v.pop().expect("one inbox per entity"))).collect();
        Ok((fabric, rxs))
    }

    /// Binds with `shards` inboxes per **router** (hosts keep one);
    /// each router still owns a single socket, whose pump steers every
    /// datagram to the shard owning its group
    /// ([`steer_frame`](crate::fabric::steer_frame)).
    pub async fn bind_sharded(
        net: Arc<NetworkSpec>,
        dp: DataPlaneConfig,
        shards: usize,
    ) -> std::io::Result<(Arc<Self>, HashMap<Entity, Vec<mpsc::Receiver<RxFrame>>>)> {
        let shards = shards.max(1);
        let mut sockets = HashMap::new();
        let mut peers = HashMap::new();
        let mut rxs = HashMap::new();
        let mut pumps = Vec::new();
        let counters = Arc::new(UdpCounters::for_net(&net));
        for e in entities_of(&net) {
            let n = match e {
                Entity::Router(_) => shards,
                Entity::Host(_) => 1,
            };
            let socket = Arc::new(UdpSocket::bind("127.0.0.1:0").await?);
            peers.insert(e, socket.local_addr()?);
            let (txs, rx): (Vec<_>, Vec<_>) =
                (0..n).map(|_| mpsc::channel(dp.inbox_capacity.max(1))).unzip();
            rxs.insert(e, rx);
            pumps.push(tokio::spawn(pump(socket.clone(), txs, counters.clone(), e)));
            sockets.insert(e, socket);
        }
        Ok((Arc::new(UdpFabric { net, sockets, peers, counters, pumps }), rxs))
    }

    /// Transport counters (shared across all pumps).
    pub fn counters(&self) -> &Arc<UdpCounters> {
        &self.counters
    }

    /// Dispatches one transmission — fabric resolution, UDP delivery.
    /// The datagram is encoded once; only the 4-byte iface preamble is
    /// patched per recipient.
    pub async fn dispatch(&self, from: Entity, t: &Transmit) {
        let mut dgram = Vec::new();
        self.dispatch_buffered(from, t, &mut dgram).await;
    }

    /// Dispatches an entire outbox drain as one burst, reusing a
    /// single encode buffer across every transmission and recipient.
    pub async fn dispatch_batch(&self, from: Entity, transmits: &[Transmit]) {
        let mut dgram = Vec::new();
        for t in transmits {
            self.dispatch_buffered(from, t, &mut dgram).await;
        }
    }

    /// The shared dispatch body: encode `[iface|link_src|frame]` once
    /// into `dgram`, patch the iface word per recipient, send. Sends
    /// go through the socket's synchronous path (UDP on loopback does
    /// not block), so a whole batch leaves without yielding.
    async fn dispatch_buffered(&self, from: Entity, t: &Transmit, dgram: &mut Vec<u8>) {
        let Some(sock) = self.sockets.get(&from) else { return };
        let link_src = self.link_src_of(from, t.iface);
        dgram.clear();
        dgram.extend_from_slice(&[0, 0, 0, 0]);
        dgram.extend_from_slice(&link_src.0.to_be_bytes());
        dgram.extend_from_slice(&t.frame);
        for (to, iface) in self.recipients(from, t) {
            let Some(peer) = self.peers.get(&to) else { continue };
            dgram[0..4].copy_from_slice(&iface.0.to_be_bytes());
            if sock.try_send_to(dgram, *peer).is_err() {
                // Loopback UDP virtually never blocks; fall back to the
                // awaiting path if it does rather than drop the frame.
                let _ = sock.send_to(&dgram[..], *peer).await;
            }
        }
    }

    /// The sender's address on the transmitting medium.
    fn link_src_of(&self, from: Entity, iface: IfIndex) -> cbt_wire::Addr {
        match from {
            Entity::Router(r) => self
                .net
                .routers
                .get(r.0 as usize)
                .and_then(|s| s.iface(iface))
                .map(|i| i.addr)
                .unwrap_or(cbt_wire::Addr::NULL),
            Entity::Host(h) => {
                self.net.hosts.get(h.0 as usize).map(|s| s.addr).unwrap_or(cbt_wire::Addr::NULL)
            }
        }
    }

    /// Who receives this transmission, and on which of their ifaces.
    fn recipients(&self, from: Entity, t: &Transmit) -> Vec<(Entity, IfIndex)> {
        let mut out = Vec::new();
        let medium = match from {
            Entity::Router(r) => self
                .net
                .routers
                .get(r.0 as usize)
                .and_then(|s| s.iface(t.iface))
                .map(|i| i.attachment),
            Entity::Host(h) => self
                .net
                .hosts
                .get(h.0 as usize)
                .filter(|_| t.iface == IfIndex(0))
                .map(|s| Attachment::Lan(s.lan)),
        };
        match medium {
            Some(Attachment::Lan(lan)) => {
                let lan_spec = &self.net.lans[lan.0 as usize];
                for &r in &lan_spec.routers {
                    if Entity::Router(r) == from {
                        continue;
                    }
                    if let Some((rx_iface, rx_spec)) =
                        self.net.routers[r.0 as usize].iface_on_lan(lan)
                    {
                        if t.link_dst.is_some_and(|d| d != rx_spec.addr) {
                            continue;
                        }
                        out.push((Entity::Router(r), rx_iface));
                    }
                }
                for &h in &lan_spec.hosts {
                    if Entity::Host(h) == from {
                        continue;
                    }
                    if t.link_dst.is_some_and(|d| d != self.net.hosts[h.0 as usize].addr) {
                        continue;
                    }
                    out.push((Entity::Host(h), IfIndex(0)));
                }
            }
            Some(Attachment::Link { link, peer }) => {
                let peer_iface = self.net.routers[peer.0 as usize].ifaces.iter().position(
                    |pi| matches!(pi.attachment, Attachment::Link { link: l, .. } if l == link),
                );
                if let Some(idx) = peer_iface {
                    out.push((Entity::Router(peer), IfIndex(idx as u32)));
                }
            }
            None => {}
        }
        out
    }

    /// Stops the pump tasks.
    pub fn shutdown(&self) {
        for p in &self.pumps {
            p.abort();
        }
    }
}

/// The receive pump: await one datagram, then drain everything else
/// already queued on the socket (up to [`PUMP_BATCH`]) before yielding.
/// One 64 KiB scratch buffer is reused for every read; each frame is
/// copied out at its exact size into a refcounted [`Bytes`].
async fn pump(
    socket: Arc<UdpSocket>,
    txs: Vec<mpsc::Sender<RxFrame>>,
    counters: Arc<UdpCounters>,
    me: Entity,
) {
    let drops = counters.node_drops.get(&me).expect("every entity has a taxonomy row");
    let mut buf = vec![0u8; 65536];
    'outer: loop {
        let Ok((len, _)) = socket.recv_from(&mut buf).await else { break };
        if !pump_one(&buf[..len], &txs, &counters.datagrams_rx, drops) {
            break;
        }
        // Batch: drain whatever else already arrived, without paying a
        // task wakeup per datagram.
        let mut drained = 1;
        while drained < PUMP_BATCH {
            let Ok((len, _)) = socket.try_recv_from(&mut buf) else { break };
            drained += 1;
            if !pump_one(&buf[..len], &txs, &counters.datagrams_rx, drops) {
                break 'outer;
            }
        }
    }
}

/// Parses, steers and enqueues one received datagram. Returns false
/// when every inbox receiver is gone (pump should exit).
fn pump_one(
    dgram: &[u8],
    txs: &[mpsc::Sender<RxFrame>],
    rx_total: &AtomicU64,
    drops: &AtomicDropCounters,
) -> bool {
    if dgram.len() < 8 {
        drops.bump(DropReason::DecodeError);
        return true;
    }
    let iface = IfIndex(u32::from_be_bytes([dgram[0], dgram[1], dgram[2], dgram[3]]));
    let link_src = cbt_wire::Addr(u32::from_be_bytes([dgram[4], dgram[5], dgram[6], dgram[7]]));
    let frame = Bytes::from(dgram[8..].to_vec());
    // Single-inbox entities (hosts, or shards = 1) skip the peek.
    let steer = if txs.len() == 1 { Steer::One(0) } else { steer_frame(&frame, txs.len()) };
    match steer {
        Steer::One(k) => enqueue(&txs[k], RxFrame { iface, link_src, frame }, rx_total, drops),
        Steer::All => {
            let mut any_open = false;
            for tx in txs {
                let rx = RxFrame { iface, link_src, frame: frame.clone() };
                any_open |= enqueue(tx, rx, rx_total, drops);
            }
            any_open
        }
    }
}

/// Enqueues into one shard inbox; false when that receiver is gone.
fn enqueue(
    tx: &mpsc::Sender<RxFrame>,
    rx: RxFrame,
    rx_total: &AtomicU64,
    drops: &AtomicDropCounters,
) -> bool {
    match tx.try_send(rx) {
        Ok(()) => {
            rx_total.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(mpsc::error::TrySendError::Full(_)) => {
            drops.bump(DropReason::InboxOverflow);
            true
        }
        Err(mpsc::error::TrySendError::Closed(_)) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::{NetworkBuilder, RouterId};
    use cbt_wire::{Addr, ControlMessage, GroupId, JoinSubcode, UdpHeader, CBT_PRIMARY_PORT};

    fn pair() -> Arc<NetworkSpec> {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        b.link(r0, r1, 1);
        Arc::new(b.build())
    }

    fn frame(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// A genuine CBT JOIN_REQUEST crosses a real UDP socket pair and
    /// decodes byte-exactly on the other side.
    #[tokio::test]
    async fn join_request_over_real_sockets() {
        let net = pair();
        let (fabric, mut rxs) = UdpFabric::bind(net.clone()).await.unwrap();

        let join = ControlMessage::JoinRequest {
            subcode: JoinSubcode::ActiveJoin,
            group: GroupId::numbered(3),
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: Addr::from_octets(10, 255, 0, 1),
            cores: vec![Addr::from_octets(10, 255, 0, 1)],
        };
        // Wrap exactly as the router adapter does: §3 UDP shell inside
        // an IP datagram.
        let udp = UdpHeader::wrap(CBT_PRIMARY_PORT, CBT_PRIMARY_PORT, &join.encode().unwrap());
        let frame = cbt_wire::ipv4::build_datagram(
            Addr::from_octets(172, 31, 0, 1),
            Addr::from_octets(172, 31, 0, 2),
            cbt_wire::IpProto::Udp,
            64,
            &udp,
        );
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: Bytes::from(frame) };
        fabric.dispatch(Entity::Router(RouterId(0)), &t).await;

        let rx = rxs.get_mut(&Entity::Router(RouterId(1))).unwrap();
        let got = tokio::time::timeout(std::time::Duration::from_secs(5), rx.recv())
            .await
            .expect("datagram within 5s")
            .expect("channel open");
        assert_eq!(got.iface, IfIndex(0));
        let (hdr, body) = cbt_wire::ipv4::split_datagram(&got.frame).unwrap();
        assert_eq!(hdr.proto, cbt_wire::IpProto::Udp);
        let (udp_hdr, payload) = UdpHeader::unwrap(body).unwrap();
        assert_eq!(udp_hdr.dst_port, CBT_PRIMARY_PORT);
        assert_eq!(ControlMessage::decode(payload).unwrap(), join);
        assert_eq!(fabric.counters().snapshot().datagrams_rx, 1);
        fabric.shutdown();
    }

    #[tokio::test]
    async fn lan_unicast_filtering_over_udp() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let lan = b.lan("S0");
        b.attach(lan, r0);
        b.attach(lan, r1);
        b.attach(lan, r2);
        let net = Arc::new(b.build());
        let r1_addr = net.routers[1].ifaces[0].addr;
        let (fabric, mut rxs) = UdpFabric::bind(net.clone()).await.unwrap();
        let t =
            Transmit { iface: IfIndex(0), link_dst: Some(r1_addr), frame: frame(&[0, 1, 2, 3, 4]) };
        fabric.dispatch(Entity::Router(r0), &t).await;
        // R1 receives...
        let rx1 = rxs.get_mut(&Entity::Router(r1)).unwrap();
        let got = tokio::time::timeout(std::time::Duration::from_secs(5), rx1.recv())
            .await
            .expect("delivered")
            .expect("open");
        assert_eq!(got.frame, vec![0, 1, 2, 3, 4]);
        // ...R2 does not (give the network a moment, then check empty).
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        assert!(rxs.get_mut(&Entity::Router(r2)).unwrap().try_recv().is_err());
        fabric.shutdown();
    }

    /// Datagrams shorter than the `[iface|link_src]` preamble —
    /// including zero-length ones — are dropped and counted, never
    /// delivered.
    #[tokio::test]
    async fn short_datagrams_are_counted_and_dropped() {
        let net = pair();
        let (fabric, mut rxs) = UdpFabric::bind(net.clone()).await.unwrap();
        let r1_peer = fabric.peers[&Entity::Router(RouterId(1))];
        let raw = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(&[], r1_peer).unwrap(); // zero-length
        raw.send_to(&[1, 2, 3], r1_peer).unwrap(); // 3 < 8
        raw.send_to(&[0; 7], r1_peer).unwrap(); // 7 < 8
                                                // An 8-byte datagram is a valid (empty) frame and must pass.
        raw.send_to(&[0; 8], r1_peer).unwrap();
        let rx = rxs.get_mut(&Entity::Router(RouterId(1))).unwrap();
        let got = tokio::time::timeout(std::time::Duration::from_secs(5), rx.recv())
            .await
            .expect("the valid frame arrives")
            .expect("open");
        assert!(got.frame.is_empty());
        let stats = fabric.counters().snapshot();
        assert_eq!(stats.short_datagrams, 3, "{stats:?}");
        assert_eq!(stats.datagrams_rx, 1);
        fabric.shutdown();
    }

    /// Per-node drop taxonomy over real sockets: one node's inbox is
    /// overwhelmed with well-formed datagrams while malformed ones
    /// arrive interleaved. Every drop lands in **that node's** taxonomy
    /// row with an exact per-reason count — 6 `InboxOverflow` (10 valid
    /// datagrams into a capacity-4 inbox that nobody drains) and 3
    /// `DecodeError` (truncated preambles) — and the other node's row
    /// stays zero. The counts are deterministic regardless of how the
    /// pump interleaves the two kinds: short datagrams never consume
    /// inbox capacity, and loopback delivers in order.
    #[tokio::test]
    async fn per_node_overflow_has_exact_reason_counts() {
        let net = pair();
        let dp = DataPlaneConfig { inbox_capacity: 4, ..Default::default() };
        let (fabric, _rxs) = UdpFabric::bind_with(net.clone(), dp).await.unwrap();
        let r1 = Entity::Router(RouterId(1));
        let r1_peer = fabric.peers[&r1];
        let raw = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        for _ in 0..10 {
            raw.send_to(&[0; 8], r1_peer).unwrap(); // valid (empty frame)
        }
        for _ in 0..3 {
            raw.send_to(&[1, 2, 3], r1_peer).unwrap(); // 3 < 8: truncated
        }
        // Wait until the pump has accounted for all 13 datagrams.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let accounted = fabric.counters().snapshot().datagrams_rx
                + fabric.counters().node_drops(r1).total();
            if accounted >= 13 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "pump stalled at {accounted}/13");
            tokio::time::sleep(std::time::Duration::from_millis(10)).await;
        }
        let drops = fabric.counters().node_drops(r1);
        assert_eq!(drops.get(DropReason::InboxOverflow), 6, "exact overflow count");
        assert_eq!(drops.get(DropReason::DecodeError), 3, "exact truncation count");
        assert_eq!(drops.total(), 9, "no other reason was bumped");
        assert_eq!(fabric.counters().snapshot().datagrams_rx, 4, "inbox capacity accepted");
        assert_eq!(
            fabric.counters().node_drops(Entity::Router(RouterId(0))).total(),
            0,
            "drops are attributed, not smeared fabric-wide"
        );
        fabric.shutdown();
    }

    /// Many concurrent senders blasting one receiver: every frame that
    /// is delivered arrives intact (correct preamble parse, exact
    /// payload, exact link_src), interleaving never corrupts a
    /// datagram, and the transport's own queues lose nothing (the only
    /// loss channel is the kernel's UDP receive buffer, which is why
    /// the floor below is 90% rather than 100%).
    #[tokio::test]
    async fn concurrent_senders_deliver_intact_frames() {
        const SENDERS: usize = 8;
        const PER_SENDER: usize = 50;
        let mut b = NetworkBuilder::new();
        let hub = b.router("HUB");
        let lan = b.lan("S0");
        b.attach(lan, hub);
        for i in 0..SENDERS {
            let r = b.router(&format!("TX{i}"));
            b.attach(lan, r);
        }
        let net = Arc::new(b.build());
        let (fabric, mut rxs) = UdpFabric::bind(net.clone()).await.unwrap();
        let hub_addr = net.routers[0].ifaces[0].addr;

        let mut handles = Vec::new();
        for s in 0..SENDERS {
            let fabric = fabric.clone();
            handles.push(tokio::spawn(async move {
                let me = Entity::Router(RouterId((s + 1) as u32));
                for n in 0..PER_SENDER {
                    // Payload encodes (sender, seq) so the receiver can
                    // verify integrity per frame.
                    let mut payload = vec![s as u8, n as u8];
                    payload.resize(64, 0xAB);
                    let t = Transmit {
                        iface: IfIndex(0),
                        link_dst: Some(hub_addr),
                        frame: Bytes::from(payload),
                    };
                    fabric.dispatch(me, &t).await;
                    // Pace the blast so the kernel's receive buffer is
                    // the bottleneck only under pathological load.
                    if n % 4 == 3 {
                        tokio::time::sleep(std::time::Duration::from_millis(1)).await;
                    }
                }
            }));
        }
        for h in handles {
            h.await.unwrap();
        }

        let total = (SENDERS * PER_SENDER) as u64;
        let rx = rxs.get_mut(&Entity::Router(RouterId(0))).unwrap();
        let mut got = 0u64;
        // Drain until everything sent is accounted for, or the socket
        // has gone quiet (kernel-level UDP loss).
        loop {
            let stats = fabric.counters().snapshot();
            if got + stats.dropped_overflow >= total {
                break;
            }
            let Ok(f) =
                tokio::time::timeout(std::time::Duration::from_millis(500), rx.recv()).await
            else {
                break;
            };
            let f = f.expect("open");
            assert_eq!(f.frame.len(), 64, "frame intact");
            let (s, n) = (f.frame[0] as usize, f.frame[1] as usize);
            assert!(s < SENDERS && n < PER_SENDER, "valid (sender, seq)");
            assert!(f.frame[2..].iter().all(|&b| b == 0xAB), "payload intact");
            assert_eq!(f.link_src, net.routers[s + 1].ifaces[0].addr, "preamble intact");
            got += 1;
        }
        let stats = fabric.counters().snapshot();
        assert_eq!(stats.short_datagrams, 0, "no frame was corrupted in flight");
        assert_eq!(got, stats.datagrams_rx, "transport accounting matches deliveries");
        assert!(
            got + stats.dropped_overflow >= total * 9 / 10,
            "≥90% accounted for (got {got}, overflow {}, total {total})",
            stats.dropped_overflow
        );
        fabric.shutdown();
    }

    /// A sharded UDP bind steers each datagram to the inbox of the
    /// shard owning its group, from a single socket per router.
    #[tokio::test]
    async fn sharded_bind_steers_datagrams_by_group() {
        let net = pair();
        let (fabric, mut rxs) =
            UdpFabric::bind_sharded(net.clone(), DataPlaneConfig::default(), 4).await.unwrap();
        let g = GroupId::numbered(9);
        let own = cbt::shard_of(g, 4);
        let join = ControlMessage::JoinRequest {
            subcode: JoinSubcode::ActiveJoin,
            group: g,
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: Addr::from_octets(10, 255, 0, 1),
            cores: vec![Addr::from_octets(10, 255, 0, 1)],
        };
        let udp = UdpHeader::wrap(CBT_PRIMARY_PORT, CBT_PRIMARY_PORT, &join.encode().unwrap());
        let frame = cbt_wire::ipv4::build_datagram(
            Addr::from_octets(172, 31, 0, 1),
            Addr::from_octets(172, 31, 0, 2),
            cbt_wire::IpProto::Udp,
            64,
            &udp,
        );
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: Bytes::from(frame) };
        fabric.dispatch(Entity::Router(RouterId(0)), &t).await;

        let shard_rxs = rxs.get_mut(&Entity::Router(RouterId(1))).unwrap();
        let got = tokio::time::timeout(std::time::Duration::from_secs(5), shard_rxs[own].recv())
            .await
            .expect("owner shard gets the datagram")
            .expect("open");
        let (_, body) = cbt_wire::ipv4::split_datagram(&got.frame).unwrap();
        let (_, payload) = UdpHeader::unwrap(body).unwrap();
        assert_eq!(ControlMessage::decode(payload).unwrap(), join);
        for (k, rx) in shard_rxs.iter_mut().enumerate() {
            if k != own {
                assert!(rx.try_recv().is_err(), "shard {k} does not own group {g}");
            }
        }
        fabric.shutdown();
    }

    /// `dispatch_batch` sends a whole outbox drain in one burst, and
    /// every frame of the batch arrives.
    #[tokio::test]
    async fn batch_dispatch_delivers_every_frame() {
        let net = pair();
        let (fabric, mut rxs) = UdpFabric::bind(net.clone()).await.unwrap();
        let batch: Vec<Transmit> = (0..20u8)
            .map(|i| Transmit { iface: IfIndex(0), link_dst: None, frame: frame(&[i; 16]) })
            .collect();
        fabric.dispatch_batch(Entity::Router(RouterId(0)), &batch).await;
        let rx = rxs.get_mut(&Entity::Router(RouterId(1))).unwrap();
        for i in 0..20u8 {
            let got = tokio::time::timeout(std::time::Duration::from_secs(5), rx.recv())
                .await
                .expect("frame within 5s")
                .expect("open");
            assert_eq!(got.frame, vec![i; 16], "in-order loopback delivery");
        }
        fabric.shutdown();
    }
}
