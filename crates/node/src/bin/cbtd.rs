//! `cbtd` — stand up a live CBT deployment from a JSON description.
//!
//! ```text
//! cbtd <deployment.json> [--duration-secs N] [--shards N]
//! ```
//!
//! Every router and host in the file becomes a tokio task; the script's
//! joins/leaves/sends run at their wall-clock offsets; at the end the
//! tool prints each router's tree state and each host's deliveries.
//! See `examples/topologies/demo.json` for the schema.
//!
//! `--shards N` (or `CBT_SHARDS=N`; default: available cores) splits
//! every router's group space over N engine shards, each its own tokio
//! task — one `cbtd` node then scales with cores instead of serialising
//! all groups through one task.

use cbt::parallelism::NODE_SHARDS;
use cbt::CbtConfig;
use cbt_node::config::Deployment;
use cbt_node::LiveNet;
use cbt_wire::GroupId;
use std::time::Duration;

#[tokio::main]
async fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: cbtd <deployment.json> [--duration-secs N] [--shards N]");
        std::process::exit(2);
    };
    let duration = args
        .iter()
        .position(|a| a == "--duration-secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5);
    let shards_flag = match args
        .iter()
        .position(|a| a == NODE_SHARDS.flag_name())
        .map(|i| args.get(i + 1).map_or_else(String::new, |v| v.clone()))
        .map(|v| NODE_SHARDS.parse_flag(&v))
        .transpose()
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Flag > CBT_SHARDS > available cores — same precedence and error
    // shape as the eval runner's --jobs.
    let shards = match NODE_SHARDS.resolve(shards_flag) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let built = match Deployment::from_json(&text).and_then(|d| d.build()) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    let group = GroupId::numbered(built.config.group);
    let cores: Vec<_> =
        built.config.cores.iter().map(|c| built.net.router_addr(built.routers[c])).collect();
    println!(
        "cbtd: {} routers, {} LANs, {} links, group {group}, cores {:?}, {shards} shard(s)",
        built.net.routers.len(),
        built.net.lans.len(),
        built.net.links.len(),
        built.config.cores,
    );

    let cfg = CbtConfig { shards, ..CbtConfig::fast() };
    let live = LiveNet::spawn(built.net.clone(), cfg);

    // Drive the script.
    let mut steps = built.config.script.clone();
    steps.sort_by_key(|s| s.at_ms);
    let start = tokio::time::Instant::now();
    for step in &steps {
        tokio::time::sleep_until(start + Duration::from_millis(step.at_ms)).await;
        let h = built.hosts[&step.host];
        match step.action.as_str() {
            "join" => {
                println!("[{:>6} ms] {} joins {group}", step.at_ms, step.host);
                live.host_join(h, group, cores.clone());
            }
            "leave" => {
                println!("[{:>6} ms] {} leaves {group}", step.at_ms, step.host);
                live.host_leave(h, group);
            }
            "send" => {
                println!("[{:>6} ms] {} sends {:?}", step.at_ms, step.host, step.payload);
                live.host_send(h, group, step.payload.clone().into_bytes(), 32);
            }
            _ => unreachable!("validated at build"),
        }
    }

    tokio::time::sleep_until(start + Duration::from_secs(duration)).await;

    println!("\ntree state after {duration}s:");
    let mut names: Vec<_> = built.routers.keys().cloned().collect();
    names.sort();
    let mut fleet = cbt_obs::ObsSnapshot { router: "fleet".into(), ..Default::default() };
    let mut per_router = Vec::new();
    for name in names {
        let r = built.routers[&name];
        match live.router_snapshot(r, group).await {
            Ok(snap) => {
                println!(
                    "  {name}: on_tree={} parent={} children={}",
                    snap.on_tree,
                    snap.parent.map(|a| a.to_string()).unwrap_or_else(|| "—".into()),
                    snap.children.len(),
                );
                let mut obs = snap.obs;
                obs.router = name.clone();
                fleet.merge(&obs);
                per_router.push(obs);
            }
            Err(e) => println!("  {name}: unavailable ({e})"),
        }
    }

    println!("\ncounters:");
    for obs in &per_router {
        for line in obs.to_text().lines() {
            println!("  {line}");
        }
    }
    println!("\ncounters (json):");
    print!("[");
    for (i, obs) in per_router.iter().enumerate() {
        if i > 0 {
            print!(",");
        }
        print!("{}", obs.to_json());
    }
    println!("]");
    println!("fleet: {}", fleet.to_json());
    println!("\ndeliveries:");
    let mut hnames: Vec<_> = built.hosts.keys().cloned().collect();
    hnames.sort();
    for name in hnames {
        match live.host_received(built.hosts[&name]).await {
            Ok(got) => println!(
                "  {name}: {} packet(s) {:?}",
                got.len(),
                got.iter()
                    .map(|d| String::from_utf8_lossy(&d.payload).into_owned())
                    .collect::<Vec<_>>()
            ),
            Err(e) => println!("  {name}: unavailable ({e})"),
        }
    }
    live.shutdown();
}
