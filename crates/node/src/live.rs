//! The live deployment: one tokio task per router/host, wall-clock
//! timers, command/query channels for the application layer.
//!
//! The node task loops are the live data plane's hot path: each wakeup
//! drains up to [`DataPlaneConfig::rx_batch`] queued frames through
//! the engine before flushing the outbox, and the outbox is drained
//! into a reused scratch buffer ([`Outbox::drain_into`]) so steady
//! state forwards without per-wakeup allocations.

use crate::fabric::{DataPlaneConfig, Fabric, FabricCounters, FabricStats, RxFrame};
use cbt::{CbtConfig, HostApp, RouterNode, SharedRib};
use cbt_netsim::{Entity, Outbox, SimNode, SimTime, Transmit};
use cbt_topology::{HostId, NetworkSpec, RouterId};
use cbt_wire::{Addr, GroupId};
use std::collections::HashMap;
use std::sync::Arc;
use tokio::sync::{mpsc, oneshot};
use tokio::task::JoinHandle;
use tokio::time::{Duration, Instant};

/// Commands the application layer sends to a host task.
enum HostCmd {
    Join { group: GroupId, cores: Vec<Addr> },
    Leave { group: GroupId },
    Send { group: GroupId, payload: Vec<u8>, ttl: u8 },
    SendBurst { group: GroupId, payloads: Vec<Vec<u8>>, ttl: u8 },
    Received { resp: oneshot::Sender<Vec<cbt::Delivery>> },
    ReceivedCount { resp: oneshot::Sender<usize> },
}

/// Queries for a router task.
enum RouterCmd {
    Snapshot { group: GroupId, resp: oneshot::Sender<RouterSnapshot> },
}

/// A point-in-time view of one router's state for a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterSnapshot {
    /// Is the router on-tree for the group?
    pub on_tree: bool,
    /// Parent address, if any.
    pub parent: Option<Addr>,
    /// Child addresses.
    pub children: Vec<Addr>,
    /// Behaviour counters.
    pub stats: cbt::RouterStats,
    /// Full observability snapshot: drop taxonomy, per-group protocol
    /// counters, latency histograms. [`LiveNet::router_snapshot`] folds
    /// the fabric's transport-level drops for this node (inbox
    /// overflow) into `obs.drops` so one snapshot covers both layers.
    pub obs: cbt_obs::ObsSnapshot,
}

/// Why a [`LiveNet`] query could not be answered.
///
/// A query hitting a dead task is a real failure (the router or host
/// task panicked or was shut down) and must surface as an error — the
/// old API swallowed it into an empty answer, which made panicked
/// router tasks look like healthy silent ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveError {
    /// The deployment has no node with that id.
    UnknownNode,
    /// The node's task is gone: it panicked, or the deployment was
    /// shut down.
    NodeDead,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::UnknownNode => write!(f, "no such node in this deployment"),
            LiveError::NodeDead => write!(f, "node task is dead (panicked or shut down)"),
        }
    }
}

impl std::error::Error for LiveError {}

/// A running multi-node CBT deployment.
///
/// With `cfg.shards > 1` every router runs as N independent tokio
/// tasks, each owning one engine shard ([`cbt::ShardedRouter`] slice);
/// the fabric steers each frame to the shard owning its group, so the
/// shard tasks never contend on engine state.
pub struct LiveNet {
    /// The network being run.
    pub net: Arc<NetworkSpec>,
    epoch: Instant,
    host_cmds: HashMap<HostId, mpsc::UnboundedSender<HostCmd>>,
    /// One command channel per shard task, index = shard.
    router_cmds: HashMap<RouterId, Vec<mpsc::UnboundedSender<RouterCmd>>>,
    counters: Arc<FabricCounters>,
    tasks: Vec<JoinHandle<()>>,
}

impl LiveNet {
    /// Spawns every router and host of `net` as tokio tasks, with the
    /// default (batched, zero-copy) data plane.
    pub fn spawn(net: NetworkSpec, cfg: CbtConfig) -> LiveNet {
        LiveNet::spawn_with(net, cfg, DataPlaneConfig::default())
    }

    /// Spawns with explicit data-plane tuning (the `dataplane`
    /// experiment uses this to measure legacy vs batched in the same
    /// harness).
    pub fn spawn_with(net: NetworkSpec, cfg: CbtConfig, dp: DataPlaneConfig) -> LiveNet {
        let shards = cfg.shards.max(1);
        let net = Arc::new(net);
        let epoch = Instant::now();
        let (_rib, make_rib) = SharedRib::build(net.clone());
        let (fabric, mut rxs) = Fabric::with_shards(net.clone(), dp, shards);
        let counters = fabric.counters().clone();

        let mut tasks = Vec::new();
        let mut router_cmds = HashMap::new();
        for i in 0..net.routers.len() {
            let me = RouterId(i as u32);
            let shard_rxs = rxs.remove(&Entity::Router(me)).expect("inbox");
            let mut cmd_txs = Vec::with_capacity(shards);
            for (k, rx) in shard_rxs.into_iter().enumerate() {
                let node = RouterNode::new_shard_slice(
                    &net,
                    me,
                    cfg.clone(),
                    make_rib(me),
                    SimTime::ZERO,
                    k,
                    shards,
                );
                let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
                cmd_txs.push(cmd_tx);
                tasks.push(tokio::spawn(router_task(
                    node,
                    Entity::Router(me),
                    fabric.clone(),
                    rx,
                    cmd_rx,
                    epoch,
                    dp,
                )));
            }
            router_cmds.insert(me, cmd_txs);
        }
        let mut host_cmds = HashMap::new();
        for (i, h) in net.hosts.iter().enumerate() {
            let hid = HostId(i as u32);
            let app = HostApp::new(h.addr, 3, cfg.igmp);
            let rx = rxs
                .remove(&Entity::Host(hid))
                .and_then(|mut v| v.pop())
                .expect("one inbox per host");
            let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
            host_cmds.insert(hid, cmd_tx);
            tasks.push(tokio::spawn(host_task(
                app,
                Entity::Host(hid),
                fabric.clone(),
                rx,
                cmd_rx,
                epoch,
                dp,
            )));
        }
        LiveNet { net, epoch, host_cmds, router_cmds, counters, tasks }
    }

    /// Tells a host application to join a group.
    pub fn host_join(&self, h: HostId, group: GroupId, cores: Vec<Addr>) {
        let _ = self.host_cmds[&h].send(HostCmd::Join { group, cores });
    }

    /// Tells a host application to leave a group.
    pub fn host_leave(&self, h: HostId, group: GroupId) {
        let _ = self.host_cmds[&h].send(HostCmd::Leave { group });
    }

    /// Tells a host to transmit a multicast payload.
    pub fn host_send(&self, h: HostId, group: GroupId, payload: impl Into<Vec<u8>>, ttl: u8) {
        let _ = self.host_cmds[&h].send(HostCmd::Send { group, payload: payload.into(), ttl });
    }

    /// Tells a host to transmit a burst of multicast payloads as one
    /// coalesced command: the host task queues them all, then pays one
    /// timer dispatch and one outbox flush for the whole burst instead
    /// of one per packet.
    pub fn host_send_burst(&self, h: HostId, group: GroupId, payloads: Vec<Vec<u8>>, ttl: u8) {
        let _ = self.host_cmds[&h].send(HostCmd::SendBurst { group, payloads, ttl });
    }

    /// Fetches everything a host has received so far. Errs when the
    /// host is unknown or its task has died.
    pub async fn host_received(&self, h: HostId) -> Result<Vec<cbt::Delivery>, LiveError> {
        let cmds = self.host_cmds.get(&h).ok_or(LiveError::UnknownNode)?;
        let (tx, rx) = oneshot::channel();
        cmds.send(HostCmd::Received { resp: tx }).map_err(|_| LiveError::NodeDead)?;
        rx.await.map_err(|_| LiveError::NodeDead)
    }

    /// How many deliveries a host has received so far — O(1) on the
    /// host task, unlike [`host_received`](LiveNet::host_received)
    /// which clones the whole delivery log (load generators poll this
    /// in a loop; cloning megabytes through the receiving task would
    /// perturb the very data plane being measured).
    pub async fn host_received_count(&self, h: HostId) -> Result<usize, LiveError> {
        let cmds = self.host_cmds.get(&h).ok_or(LiveError::UnknownNode)?;
        let (tx, rx) = oneshot::channel();
        cmds.send(HostCmd::ReceivedCount { resp: tx }).map_err(|_| LiveError::NodeDead)?;
        rx.await.map_err(|_| LiveError::NodeDead)
    }

    /// Snapshots a router's per-group protocol state. Errs when the
    /// router is unknown or any of its shard tasks has died.
    ///
    /// Under sharding the per-group tree fields (`on_tree`, `parent`,
    /// `children`) come from the shard that owns the group, while
    /// `stats` and `obs` are merged across every shard — the answer is
    /// indistinguishable from an unsharded router's for event-driven
    /// counters.
    pub async fn router_snapshot(
        &self,
        r: RouterId,
        group: GroupId,
    ) -> Result<RouterSnapshot, LiveError> {
        let cmds = self.router_cmds.get(&r).ok_or(LiveError::UnknownNode)?;
        let owner = cbt::shard_of(group, cmds.len());
        let mut snaps = Vec::with_capacity(cmds.len());
        for cmd in cmds {
            let (tx, rx) = oneshot::channel();
            cmd.send(RouterCmd::Snapshot { group, resp: tx }).map_err(|_| LiveError::NodeDead)?;
            snaps.push(rx.await.map_err(|_| LiveError::NodeDead)?);
        }
        // The owning shard's answer carries the tree fields; fold the
        // other shards' counters in.
        let mut snap = snaps.swap_remove(owner);
        for other in &snaps {
            snap.stats.merge(&other.stats);
            snap.obs.merge(&other.obs);
        }
        // Transport-level drops (bounded-inbox overflow) happen in the
        // fabric, outside the engine; fold this node's row in so the
        // snapshot covers every layer.
        snap.obs.drops.merge(&self.counters.node_drops(Entity::Router(r)));
        Ok(snap)
    }

    /// Fabric delivery counters (frames enqueued / dropped on
    /// overflow), cumulative over the deployment's lifetime.
    pub fn fabric_stats(&self) -> FabricStats {
        self.counters.snapshot()
    }

    /// Time since the deployment started, as the nodes' virtual clock.
    pub fn now(&self) -> SimTime {
        instant_to_sim(self.epoch, Instant::now())
    }

    /// Stops every task.
    pub fn shutdown(&self) {
        for t in &self.tasks {
            t.abort();
        }
    }
}

fn instant_to_sim(epoch: Instant, at: Instant) -> SimTime {
    SimTime::from_micros(at.duration_since(epoch).as_micros() as u64)
}

fn sim_to_instant(epoch: Instant, at: SimTime) -> Instant {
    epoch + Duration::from_micros(at.micros())
}

async fn router_task(
    mut node: RouterNode,
    me: Entity,
    fabric: Arc<Fabric>,
    mut rx: mpsc::Receiver<RxFrame>,
    mut cmds: mpsc::UnboundedReceiver<RouterCmd>,
    epoch: Instant,
    dp: DataPlaneConfig,
) {
    let mut out = Outbox::new();
    let mut txs: Vec<Transmit> = Vec::new();
    loop {
        let wake = node.next_wakeup().map(|t| sim_to_instant(epoch, t));
        tokio::select! {
            biased;
            cmd = cmds.recv() => {
                let Some(cmd) = cmd else { break };
                match cmd {
                    RouterCmd::Snapshot { group, resp } => {
                        let e = node.engine();
                        let _ = resp.send(RouterSnapshot {
                            on_tree: e.is_on_tree(group),
                            parent: e.parent_of(group),
                            children: e.children_of(group),
                            stats: e.stats(),
                            obs: e.obs_snapshot(),
                        });
                    }
                }
            }
            frame = rx.recv() => {
                let Some(f) = frame else { break };
                let now = instant_to_sim(epoch, Instant::now());
                node.on_packet(now, f.iface, f.link_src, &f.frame, &mut out);
                // Batch: run every frame already queued through the
                // engine before flushing, so a burst pays one wakeup
                // and one outbox flush, not one per packet.
                let mut n = 1;
                while n < dp.rx_batch {
                    let Ok(f) = rx.try_recv() else { break };
                    node.on_packet(now, f.iface, f.link_src, &f.frame, &mut out);
                    n += 1;
                }
            }
            _ = sleep_maybe(wake) => {
                let now = instant_to_sim(epoch, Instant::now());
                node.on_timer(now, &mut out);
            }
        }
        out.drain_into(&mut txs);
        for t in txs.drain(..) {
            fabric.dispatch(me, &t);
        }
    }
}

async fn host_task(
    mut app: HostApp,
    me: Entity,
    fabric: Arc<Fabric>,
    mut rx: mpsc::Receiver<RxFrame>,
    mut cmds: mpsc::UnboundedReceiver<HostCmd>,
    epoch: Instant,
    dp: DataPlaneConfig,
) {
    let mut out = Outbox::new();
    let mut txs: Vec<Transmit> = Vec::new();
    loop {
        let wake = app.next_wakeup().map(|t| sim_to_instant(epoch, t));
        tokio::select! {
            biased;
            cmd = cmds.recv() => {
                let Some(cmd) = cmd else { break };
                let now = instant_to_sim(epoch, Instant::now());
                match cmd {
                    HostCmd::Join { group, cores } => {
                        app.join_at(now, group, cores);
                        app.on_timer(now, &mut out);
                    }
                    HostCmd::Leave { group } => {
                        app.leave_at(now, group);
                        app.on_timer(now, &mut out);
                    }
                    HostCmd::Send { group, payload, ttl } => {
                        app.send_at(now, group, payload, ttl);
                        app.on_timer(now, &mut out);
                    }
                    HostCmd::SendBurst { group, payloads, ttl } => {
                        for payload in payloads {
                            app.send_at(now, group, payload, ttl);
                        }
                        app.on_timer(now, &mut out);
                    }
                    HostCmd::Received { resp } => {
                        let _ = resp.send(app.received().to_vec());
                    }
                    HostCmd::ReceivedCount { resp } => {
                        let _ = resp.send(app.received().len());
                    }
                }
            }
            frame = rx.recv() => {
                let Some(f) = frame else { break };
                let now = instant_to_sim(epoch, Instant::now());
                app.on_packet(now, f.iface, f.link_src, &f.frame, &mut out);
                let mut n = 1;
                while n < dp.rx_batch {
                    let Ok(f) = rx.try_recv() else { break };
                    app.on_packet(now, f.iface, f.link_src, &f.frame, &mut out);
                    n += 1;
                }
            }
            _ = sleep_maybe(wake) => {
                let now = instant_to_sim(epoch, Instant::now());
                app.on_timer(now, &mut out);
            }
        }
        out.drain_into(&mut txs);
        for t in txs.drain(..) {
            fabric.dispatch(me, &t);
        }
    }
}

/// Sleeps until `deadline` — or forever when the node has no timer.
async fn sleep_maybe(deadline: Option<Instant>) {
    match deadline {
        Some(d) => tokio::time::sleep_until(d).await,
        None => std::future::pending().await,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::NetworkBuilder;

    fn chain() -> (NetworkSpec, RouterId, RouterId, RouterId, HostId, HostId) {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let s0 = b.lan("S0");
        b.attach(s0, r0);
        let a = b.host("A", s0);
        b.link(r0, r1, 1);
        b.link(r1, r2, 1);
        let s1 = b.lan("S1");
        b.attach(s1, r2);
        let bb = b.host("B", s1);
        (b.build(), r0, r1, r2, a, bb)
    }

    /// The live runtime reaches the same protocol fixpoint as the
    /// deterministic simulator on the same topology.
    #[tokio::test(start_paused = true)]
    async fn live_join_and_delivery() {
        let (net, r0, r1, _r2, a, bb) = chain();
        let core = net.router_addr(r1);
        let group = GroupId::numbered(5);
        let live = LiveNet::spawn(net, CbtConfig::fast());

        live.host_join(a, group, vec![core]);
        live.host_join(bb, group, vec![core]);
        tokio::time::sleep(Duration::from_secs(3)).await;

        let snap = live.router_snapshot(r0, group).await.expect("snapshot");
        assert!(snap.on_tree, "R0 joined under wall-clock timers: {snap:?}");
        assert!(snap.parent.is_some());

        live.host_send(bb, group, b"live!".to_vec(), 16);
        tokio::time::sleep(Duration::from_secs(1)).await;
        let got = live.host_received(a).await.expect("host alive");
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].payload, b"live!");
        assert!(live.fabric_stats().delivered > 0);
        assert_eq!(live.fabric_stats().dropped_overflow, 0);
        live.shutdown();
    }

    /// Keepalives flow and teardown works in wall-clock time.
    #[tokio::test(start_paused = true)]
    async fn live_leave_triggers_teardown() {
        let (net, r0, r1, _r2, a, _bb) = chain();
        let core = net.router_addr(r1);
        let group = GroupId::numbered(6);
        let live = LiveNet::spawn(net, CbtConfig::fast());
        live.host_join(a, group, vec![core]);
        tokio::time::sleep(Duration::from_secs(3)).await;
        assert!(live.router_snapshot(r0, group).await.unwrap().on_tree);

        live.host_leave(a, group);
        tokio::time::sleep(Duration::from_secs(10)).await;
        let snap = live.router_snapshot(r0, group).await.unwrap();
        assert!(!snap.on_tree, "quit after leave: {snap:?}");
        assert!(snap.stats.quits_sent >= 1);
        live.shutdown();
    }

    /// Echo keepalives are actually exchanged over the live fabric.
    #[tokio::test(start_paused = true)]
    async fn live_echoes_flow() {
        let (net, r0, r1, _r2, a, _bb) = chain();
        let core = net.router_addr(r1);
        let group = GroupId::numbered(7);
        let live = LiveNet::spawn(net, CbtConfig::fast());
        live.host_join(a, group, vec![core]);
        // fast echo interval = 3 s; run 12 s.
        tokio::time::sleep(Duration::from_secs(12)).await;
        let snap = live.router_snapshot(r0, group).await.unwrap();
        assert!(snap.stats.echo_requests_sent >= 2, "{snap:?}");
        assert_eq!(snap.stats.parent_failures, 0, "parent stayed alive");
        live.shutdown();
    }

    /// The legacy (copy-per-recipient, wake-per-packet) data plane is
    /// still a correct data plane — the experiment baseline must pass
    /// the same end-to-end delivery check as the batched one.
    #[tokio::test(start_paused = true)]
    async fn legacy_data_plane_still_delivers() {
        let (net, _r0, r1, _r2, a, bb) = chain();
        let core = net.router_addr(r1);
        let group = GroupId::numbered(8);
        let live = LiveNet::spawn_with(net, CbtConfig::fast(), DataPlaneConfig::legacy());
        live.host_join(a, group, vec![core]);
        live.host_join(bb, group, vec![core]);
        tokio::time::sleep(Duration::from_secs(3)).await;
        live.host_send(bb, group, b"legacy".to_vec(), 16);
        tokio::time::sleep(Duration::from_secs(1)).await;
        let got = live.host_received(a).await.expect("host alive");
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].payload, b"legacy");
        live.shutdown();
    }

    /// The sharded live plane — four shard tasks per router, frames
    /// steered by group — reaches the same join/delivery fixpoint as
    /// the single-task deployment.
    #[tokio::test(start_paused = true)]
    async fn sharded_live_join_and_delivery() {
        let (net, r0, r1, _r2, a, bb) = chain();
        let core = net.router_addr(r1);
        let group = GroupId::numbered(5);
        let cfg = CbtConfig { shards: 4, ..CbtConfig::fast() };
        let live = LiveNet::spawn(net, cfg);

        live.host_join(a, group, vec![core]);
        live.host_join(bb, group, vec![core]);
        tokio::time::sleep(Duration::from_secs(3)).await;

        let snap = live.router_snapshot(r0, group).await.expect("snapshot");
        assert!(snap.on_tree, "R0 joined across shard tasks: {snap:?}");
        assert!(snap.parent.is_some());

        live.host_send(bb, group, b"sharded".to_vec(), 16);
        tokio::time::sleep(Duration::from_secs(1)).await;
        let got = live.host_received(a).await.expect("host alive");
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].payload, b"sharded");
        assert_eq!(live.fabric_stats().dropped_overflow, 0);
        live.shutdown();
    }

    /// Groups owned by different shards join, deliver and tear down
    /// independently, and the merged snapshot sees all of them.
    #[tokio::test(start_paused = true)]
    async fn sharded_groups_are_independent() {
        let (net, r0, r1, _r2, a, bb) = chain();
        let core = net.router_addr(r1);
        // numbered(0) and numbered(1) live on different shards of 4
        // (pinned by the shard.rs golden test).
        let (ga, gb) = (GroupId::numbered(0), GroupId::numbered(1));
        assert_ne!(cbt::shard_of(ga, 4), cbt::shard_of(gb, 4));
        let cfg = CbtConfig { shards: 4, ..CbtConfig::fast() };
        let live = LiveNet::spawn(net, cfg);

        live.host_join(a, ga, vec![core]);
        live.host_join(a, gb, vec![core]);
        live.host_join(bb, ga, vec![core]);
        live.host_join(bb, gb, vec![core]);
        tokio::time::sleep(Duration::from_secs(3)).await;
        for g in [ga, gb] {
            let snap = live.router_snapshot(r0, g).await.expect("snapshot");
            assert!(snap.on_tree, "{g}: {snap:?}");
        }

        live.host_send(bb, ga, b"to-a".to_vec(), 16);
        live.host_send(bb, gb, b"to-b".to_vec(), 16);
        tokio::time::sleep(Duration::from_secs(1)).await;
        let got = live.host_received(a).await.expect("host alive");
        assert_eq!(got.len(), 2, "both groups delivered: {got:?}");

        // Leaving one group must not disturb the other shard's tree.
        live.host_leave(a, ga);
        live.host_leave(bb, ga);
        tokio::time::sleep(Duration::from_secs(10)).await;
        let snap_a = live.router_snapshot(r0, ga).await.unwrap();
        let snap_b = live.router_snapshot(r0, gb).await.unwrap();
        assert!(!snap_a.on_tree, "left group torn down: {snap_a:?}");
        assert!(snap_b.on_tree, "other shard's tree untouched: {snap_b:?}");
        // The merged stats see both shards' activity: the quit that
        // tore ga down and the joins from both groups.
        assert!(snap_b.stats.quits_sent >= 1, "merged stats span shards: {:?}", snap_b.stats);
        assert!(snap_b.stats.joins_originated >= 2, "{:?}", snap_b.stats);
        live.shutdown();
    }

    /// Dead tasks surface as errors instead of empty answers — a
    /// panicked router must not look like a healthy silent one.
    #[tokio::test(start_paused = true)]
    async fn queries_after_shutdown_fail_loudly() {
        let (net, r0, r1, _r2, a, _bb) = chain();
        let _ = r1;
        let group = GroupId::numbered(9);
        let live = LiveNet::spawn(net, CbtConfig::fast());
        tokio::time::sleep(Duration::from_millis(10)).await;
        live.shutdown();
        tokio::task::yield_now().await;
        assert_eq!(live.host_received(a).await, Err(LiveError::NodeDead));
        assert_eq!(live.router_snapshot(r0, group).await, Err(LiveError::NodeDead));
        // Unknown ids are distinguished from dead tasks.
        assert_eq!(live.router_snapshot(RouterId(99), group).await, Err(LiveError::UnknownNode));
    }
}
