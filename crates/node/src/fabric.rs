//! The in-process frame fabric: who receives what a node transmits.
//!
//! Mirrors the delivery semantics of `cbt_netsim::World` (LAN broadcast
//! with link-layer unicast filtering, p2p peer delivery) but pushes
//! frames into per-entity tokio mpsc channels instead of an event
//! queue.
//!
//! Data-plane properties (see DESIGN.md "Data-plane architecture"):
//! - **Zero-copy fan-out** — a [`Transmit`] already owns its frame as
//!   refcounted [`Bytes`]; delivery clones the handle per recipient
//!   (a refcount bump), never the payload. The optional legacy mode
//!   (`DataPlaneConfig::copy_per_recipient`) re-materializes each
//!   recipient's copy the way the pre-batching fabric did, so the
//!   `dataplane` experiment can measure both paths in one harness.
//! - **Bounded inboxes** — every node inbox is a bounded channel; when
//!   a receiver falls behind, frames are dropped and counted instead
//!   of growing an unbounded queue (a real router sheds load, it does
//!   not OOM).

use cbt::shard_of;
use cbt_netsim::{Bytes, Entity, Transmit};
use cbt_obs::{AtomicDropCounters, DropCounters, DropReason};
use cbt_topology::{Attachment, HostId, IfIndex, NetworkSpec, RouterId};
use cbt_wire::ipv4::IPV4_HEADER_LEN;
use cbt_wire::{Addr, GroupId, IgmpMessage, IpProto, CBT_AUX_PORT, CBT_PRIMARY_PORT};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::sync::mpsc;

/// Where a received frame should go within a sharded router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steer {
    /// Exactly one shard owns this frame's group (or it is group-less
    /// housekeeping / transit traffic, which shard 0 owns).
    One(usize),
    /// Every shard must see the frame (general IGMP queries: each
    /// shard's election replica has to observe the querier).
    All,
}

/// Decides which shard(s) of an `n`-shard router a raw frame belongs
/// to, by peeking at the wire bytes **without** decoding the payload —
/// this runs once per delivered frame on the live hot path.
///
/// The classification mirrors `RouterNode::on_packet`:
/// - CBT-mode data (IP proto 7): group id sits at bytes 8..12 of the
///   CBT header (spec Fig. 7), i.e. right after the 20-byte IP header.
/// - CBT control (UDP to a CBT port): group id sits at bytes 8..12 of
///   the control header (spec Fig. 8), after IP + 8-byte UDP headers.
/// - Native-mode data (UDP to any other port, multicast destination):
///   the group **is** the destination address.
/// - IGMP: decoded (it is tiny and off the data path); a general
///   query carries no group and fans out to every shard, everything
///   else steers by its group.
/// - Anything else — unicast transit, truncated or malformed frames —
///   goes to shard 0, whose engine owns group-less work and counts
///   decode failures exactly as an unsharded router would.
pub fn steer_frame(frame: &[u8], shards: usize) -> Steer {
    if shards <= 1 {
        return Steer::One(0);
    }
    if frame.len() < IPV4_HEADER_LEN {
        return Steer::One(0);
    }
    let group_at = |off: usize| -> Option<GroupId> {
        let b = frame.get(off..off + 4)?;
        GroupId::new(Addr(u32::from_be_bytes([b[0], b[1], b[2], b[3]])))
    };
    let steer_group = |g: Option<GroupId>| match g {
        Some(g) => Steer::One(shard_of(g, shards)),
        None => Steer::One(0),
    };
    match frame[9] {
        p if p == IpProto::Cbt as u8 => steer_group(group_at(IPV4_HEADER_LEN + 8)),
        p if p == IpProto::Igmp as u8 => match IgmpMessage::decode(&frame[IPV4_HEADER_LEN..]) {
            Ok(IgmpMessage::Query { group: None, .. }) => Steer::All,
            Ok(IgmpMessage::Query { group: Some(g), .. })
            | Ok(IgmpMessage::Report { group: g, .. })
            | Ok(IgmpMessage::Leave { group: g })
            | Ok(IgmpMessage::TreeJoined { group: g, .. }) => Steer::One(shard_of(g, shards)),
            Ok(IgmpMessage::RpCore(r)) => Steer::One(shard_of(r.group, shards)),
            Err(_) => Steer::One(0),
        },
        p if p == IpProto::Udp as u8 => {
            let Some(port) = frame.get(IPV4_HEADER_LEN + 2..IPV4_HEADER_LEN + 4) else {
                return Steer::One(0);
            };
            let dst_port = u16::from_be_bytes([port[0], port[1]]);
            if dst_port == CBT_PRIMARY_PORT || dst_port == CBT_AUX_PORT {
                steer_group(group_at(IPV4_HEADER_LEN + 8 + 8))
            } else {
                // Native data: destination address is the group.
                steer_group(group_at(16))
            }
        }
        _ => Steer::One(0),
    }
}

/// Enumerates every entity of a network, in the fabric's canonical
/// order (routers first, then hosts).
pub(crate) fn entities_of(net: &NetworkSpec) -> Vec<Entity> {
    (0..net.routers.len())
        .map(|i| Entity::Router(RouterId(i as u32)))
        .chain((0..net.hosts.len()).map(|i| Entity::Host(HostId(i as u32))))
        .collect()
}

/// A frame as delivered to a node: which interface it arrived on and
/// who (at the link layer) sent it. The frame bytes are a refcounted
/// handle shared with every other recipient of the same transmission.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// Arrival interface (0 for hosts).
    pub iface: IfIndex,
    /// Link-layer sender (their address on the shared medium).
    pub link_src: cbt_wire::Addr,
    /// The datagram.
    pub frame: Bytes,
}

/// Tuning knobs for the live data plane, shared by the channel fabric,
/// the UDP fabric and the node task loops.
#[derive(Debug, Clone, Copy)]
pub struct DataPlaneConfig {
    /// Bounded inbox capacity per node; beyond it frames are dropped
    /// and counted ([`FabricStats::dropped_overflow`]).
    pub inbox_capacity: usize,
    /// How many queued frames a node task drains per wakeup before
    /// flushing its outbox (1 = wake-per-packet, the legacy behavior).
    pub rx_batch: usize,
    /// Copy the frame per recipient instead of fanning out refcounted
    /// handles — the pre-batching behavior, kept as a measurable
    /// baseline for the `dataplane` experiment.
    pub copy_per_recipient: bool,
}

impl Default for DataPlaneConfig {
    fn default() -> Self {
        DataPlaneConfig { inbox_capacity: 2048, rx_batch: 64, copy_per_recipient: false }
    }
}

impl DataPlaneConfig {
    /// The pre-batching data plane: per-recipient frame copies and
    /// one inbox frame handled per task wakeup.
    pub fn legacy() -> Self {
        DataPlaneConfig { inbox_capacity: 1024, rx_batch: 1, copy_per_recipient: true }
    }
}

/// Live counters for fabric delivery. All counters are cumulative.
/// Drops are tallied **per receiving node** under the shared
/// [`DropReason`] taxonomy rather than as one fabric-wide
/// `dropped_overflow` total, so a single overwhelmed inbox is
/// attributable.
#[derive(Default)]
pub struct FabricCounters {
    delivered: AtomicU64,
    node_drops: HashMap<Entity, AtomicDropCounters>,
}

/// A point-in-time snapshot of [`FabricCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricStats {
    /// Frames enqueued into recipient inboxes.
    pub delivered: u64,
    /// Frames dropped because a recipient's bounded inbox was full
    /// (sum of [`DropReason::InboxOverflow`] over every node).
    pub dropped_overflow: u64,
}

impl FabricCounters {
    /// Builds the counter set with one taxonomy row per entity.
    pub(crate) fn for_net(net: &NetworkSpec) -> Self {
        FabricCounters {
            delivered: AtomicU64::new(0),
            node_drops: entities_of(net)
                .into_iter()
                .map(|e| (e, AtomicDropCounters::default()))
                .collect(),
        }
    }
    pub(crate) fn count_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_dropped(&self, to: Entity) {
        if let Some(d) = self.node_drops.get(&to) {
            d.bump(DropReason::InboxOverflow);
        }
    }
    /// One node's transport-level drop taxonomy.
    pub fn node_drops(&self, e: Entity) -> DropCounters {
        self.node_drops.get(&e).map(|d| d.snapshot()).unwrap_or_default()
    }
    /// The fleet-wide drop taxonomy (sum over every node).
    pub fn drops_total(&self) -> DropCounters {
        let mut out = DropCounters::default();
        for d in self.node_drops.values() {
            out.merge(&d.snapshot());
        }
        out
    }
    /// Snapshots the counters.
    pub fn snapshot(&self) -> FabricStats {
        FabricStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped_overflow: self.drops_total().get(DropReason::InboxOverflow),
        }
    }
}

/// Shared dispatch fabric.
///
/// With sharding enabled ([`Fabric::with_shards`]) every router has
/// one bounded inbox **per shard**; [`Fabric::deliver`] peeks at each
/// frame ([`steer_frame`]) and enqueues it on the owning shard's
/// channel only — no cross-shard locks, no shared queue. Hosts always
/// have exactly one inbox, and a 1-inbox entity skips the peek
/// entirely, so the unsharded path is byte-for-byte the old one.
pub struct Fabric {
    net: Arc<NetworkSpec>,
    inboxes: HashMap<Entity, Vec<mpsc::Sender<RxFrame>>>,
    counters: Arc<FabricCounters>,
    copy_per_recipient: bool,
}

impl Fabric {
    /// Builds the fabric (default data-plane config) and one bounded
    /// inbox per entity. Returns the fabric plus the receive ends, to
    /// hand to each node's task.
    pub fn new(net: Arc<NetworkSpec>) -> (Arc<Self>, HashMap<Entity, mpsc::Receiver<RxFrame>>) {
        Fabric::with_config(net, DataPlaneConfig::default())
    }

    /// Builds the fabric with explicit data-plane tuning (one inbox
    /// per entity — the unsharded shape).
    pub fn with_config(
        net: Arc<NetworkSpec>,
        dp: DataPlaneConfig,
    ) -> (Arc<Self>, HashMap<Entity, mpsc::Receiver<RxFrame>>) {
        let (fabric, rxs) = Fabric::with_shards(net, dp, 1);
        let rxs =
            rxs.into_iter().map(|(e, mut v)| (e, v.pop().expect("one inbox per entity"))).collect();
        (fabric, rxs)
    }

    /// Builds the fabric with `shards` bounded inboxes per **router**
    /// (hosts keep one). Receive ends come back as a `Vec` per entity,
    /// index = shard, to hand to each shard's task.
    pub fn with_shards(
        net: Arc<NetworkSpec>,
        dp: DataPlaneConfig,
        shards: usize,
    ) -> (Arc<Self>, HashMap<Entity, Vec<mpsc::Receiver<RxFrame>>>) {
        let shards = shards.max(1);
        let mut inboxes = HashMap::new();
        let mut rxs = HashMap::new();
        let cap = dp.inbox_capacity.max(1);
        for i in 0..net.routers.len() {
            let (txs, rx): (Vec<_>, Vec<_>) = (0..shards).map(|_| mpsc::channel(cap)).unzip();
            inboxes.insert(Entity::Router(RouterId(i as u32)), txs);
            rxs.insert(Entity::Router(RouterId(i as u32)), rx);
        }
        for i in 0..net.hosts.len() {
            let (tx, rx) = mpsc::channel(cap);
            inboxes.insert(Entity::Host(HostId(i as u32)), vec![tx]);
            rxs.insert(Entity::Host(HostId(i as u32)), vec![rx]);
        }
        let counters = Arc::new(FabricCounters::for_net(&net));
        let fabric = Fabric { net, inboxes, counters, copy_per_recipient: dp.copy_per_recipient };
        (Arc::new(fabric), rxs)
    }

    /// Delivery counters (shared across all dispatches).
    pub fn counters(&self) -> &Arc<FabricCounters> {
        &self.counters
    }

    /// Dispatches one transmission from `from` to everyone it reaches.
    /// The frame is encoded exactly once (by the sender, into the
    /// `Transmit`); recipients share the allocation.
    pub fn dispatch(&self, from: Entity, t: &Transmit) {
        match self.medium_of(from, t.iface) {
            Some(Attachment::Lan(lan)) => {
                let link_src = match from {
                    Entity::Router(r) => self
                        .net
                        .routers
                        .get(r.0 as usize)
                        .and_then(|s| s.iface_on_lan(lan))
                        .map(|(_, i)| i.addr)
                        .unwrap_or(cbt_wire::Addr::NULL),
                    Entity::Host(h) => self
                        .net
                        .hosts
                        .get(h.0 as usize)
                        .map(|s| s.addr)
                        .unwrap_or(cbt_wire::Addr::NULL),
                };
                let lan_spec = &self.net.lans[lan.0 as usize];
                for &r in &lan_spec.routers {
                    if Entity::Router(r) == from {
                        continue;
                    }
                    let Some((rx_iface, rx_spec)) =
                        self.net.routers[r.0 as usize].iface_on_lan(lan)
                    else {
                        continue;
                    };
                    if t.link_dst.is_some_and(|d| d != rx_spec.addr) {
                        continue;
                    }
                    self.deliver(Entity::Router(r), rx_iface, link_src, &t.frame);
                }
                for &h in &lan_spec.hosts {
                    if Entity::Host(h) == from {
                        continue;
                    }
                    if t.link_dst.is_some_and(|d| d != self.net.hosts[h.0 as usize].addr) {
                        continue;
                    }
                    self.deliver(Entity::Host(h), IfIndex(0), link_src, &t.frame);
                }
            }
            Some(Attachment::Link { link, peer }) => {
                let Entity::Router(r) = from else { return };
                let link_src = self
                    .net
                    .routers
                    .get(r.0 as usize)
                    .and_then(|s| s.iface(t.iface))
                    .map(|i| i.addr)
                    .unwrap_or(cbt_wire::Addr::NULL);
                let peer_iface = self.net.routers[peer.0 as usize].ifaces.iter().position(
                    |pi| matches!(pi.attachment, Attachment::Link { link: l, .. } if l == link),
                );
                if let Some(idx) = peer_iface {
                    self.deliver(Entity::Router(peer), IfIndex(idx as u32), link_src, &t.frame);
                }
            }
            None => {}
        }
    }

    fn medium_of(&self, from: Entity, iface: IfIndex) -> Option<Attachment> {
        match from {
            Entity::Router(r) => Some(self.net.routers.get(r.0 as usize)?.iface(iface)?.attachment),
            Entity::Host(h) => {
                let spec = self.net.hosts.get(h.0 as usize)?;
                (iface == IfIndex(0)).then_some(Attachment::Lan(spec.lan))
            }
        }
    }

    fn deliver(&self, to: Entity, iface: IfIndex, link_src: cbt_wire::Addr, frame: &Bytes) {
        let Some(txs) = self.inboxes.get(&to) else { return };
        // Fast path: clone the refcounted handle. Legacy path: deep
        // copy per recipient, as the pre-batching fabric did.
        let frame =
            if self.copy_per_recipient { Bytes::from(frame.to_vec()) } else { frame.clone() };
        // Single-inbox entities (hosts, or shards = 1) skip the peek.
        if txs.len() == 1 {
            self.enqueue(&txs[0], to, RxFrame { iface, link_src, frame });
            return;
        }
        match steer_frame(&frame, txs.len()) {
            Steer::One(k) => self.enqueue(&txs[k], to, RxFrame { iface, link_src, frame }),
            Steer::All => {
                for tx in txs {
                    self.enqueue(tx, to, RxFrame { iface, link_src, frame: frame.clone() });
                }
            }
        }
    }

    fn enqueue(&self, tx: &mpsc::Sender<RxFrame>, to: Entity, rx: RxFrame) {
        match tx.try_send(rx) {
            Ok(()) => self.counters.count_delivered(),
            Err(mpsc::error::TrySendError::Full(_)) => self.counters.count_dropped(to),
            // A closed inbox means that node shut down; fine.
            Err(mpsc::error::TrySendError::Closed(_)) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::NetworkBuilder;
    use cbt_wire::Addr;

    fn lan_pair() -> (Arc<NetworkSpec>, RouterId, RouterId, HostId) {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let lan = b.lan("S0");
        b.attach(lan, r0);
        b.attach(lan, r1);
        let h = b.host("H", lan);
        (Arc::new(b.build()), r0, r1, h)
    }

    fn frame(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    #[tokio::test]
    async fn lan_broadcast_reaches_everyone() {
        let (net, r0, r1, h) = lan_pair();
        let (fabric, mut rxs) = Fabric::new(net);
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: frame(&[1, 2, 3]) };
        fabric.dispatch(Entity::Router(r0), &t);
        assert!(rxs.get_mut(&Entity::Router(r1)).unwrap().try_recv().is_ok());
        assert!(rxs.get_mut(&Entity::Host(h)).unwrap().try_recv().is_ok());
        assert!(rxs.get_mut(&Entity::Router(r0)).unwrap().try_recv().is_err(), "no self-delivery");
        assert_eq!(fabric.counters().snapshot().delivered, 2);
    }

    #[tokio::test]
    async fn link_dst_filters_lan_unicast() {
        let (net, r0, r1, h) = lan_pair();
        let r1_addr = net.routers[r1.0 as usize].ifaces[0].addr;
        let (fabric, mut rxs) = Fabric::new(net);
        let t = Transmit { iface: IfIndex(0), link_dst: Some(r1_addr), frame: frame(&[9]) };
        fabric.dispatch(Entity::Router(r0), &t);
        assert!(rxs.get_mut(&Entity::Router(r1)).unwrap().try_recv().is_ok());
        assert!(rxs.get_mut(&Entity::Host(h)).unwrap().try_recv().is_err(), "filtered");
    }

    #[tokio::test]
    async fn p2p_reaches_the_peer_iface() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        b.link(r0, r1, 1);
        let net = Arc::new(b.build());
        let (fabric, mut rxs) = Fabric::new(net);
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: frame(&[7]) };
        fabric.dispatch(Entity::Router(r0), &t);
        let got = rxs.get_mut(&Entity::Router(r1)).unwrap().try_recv().unwrap();
        assert_eq!(got.iface, IfIndex(0));
        assert_eq!(got.frame, vec![7]);
    }

    #[tokio::test]
    async fn unknown_iface_is_silently_dropped() {
        let (net, r0, ..) = lan_pair();
        let (fabric, _rxs) = Fabric::new(net);
        let t = Transmit { iface: IfIndex(42), link_dst: None, frame: frame(&[0]) };
        fabric.dispatch(Entity::Router(r0), &t); // must not panic
        let _ = Addr::NULL;
    }

    /// LAN fan-out shares one allocation across recipients instead of
    /// copying the frame per inbox.
    #[tokio::test]
    async fn fanout_shares_the_frame_allocation() {
        let (net, r0, r1, h) = lan_pair();
        let (fabric, mut rxs) = Fabric::new(net);
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: frame(&[5; 64]) };
        fabric.dispatch(Entity::Router(r0), &t);
        let a = rxs.get_mut(&Entity::Router(r1)).unwrap().try_recv().unwrap();
        let b = rxs.get_mut(&Entity::Host(h)).unwrap().try_recv().unwrap();
        assert!(a.frame.shares_allocation_with(&t.frame), "handle, not copy");
        assert!(b.frame.shares_allocation_with(&t.frame), "handle, not copy");
    }

    /// Legacy mode really does copy (the measurable baseline).
    #[tokio::test]
    async fn legacy_mode_copies_per_recipient() {
        let (net, r0, r1, _) = lan_pair();
        let (fabric, mut rxs) = Fabric::with_config(net, DataPlaneConfig::legacy());
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: frame(&[5; 64]) };
        fabric.dispatch(Entity::Router(r0), &t);
        let a = rxs.get_mut(&Entity::Router(r1)).unwrap().try_recv().unwrap();
        assert_eq!(a.frame, t.frame);
        assert!(!a.frame.shares_allocation_with(&t.frame), "legacy copies");
    }

    /// Every frame class the live plane carries steers to the shard
    /// that owns its group — the same `shard_of` the engines use — by
    /// peeking at wire bytes only.
    #[test]
    fn steering_matches_group_ownership() {
        use cbt_wire::{ipv4::build_datagram, ControlMessage, DataPacket, JoinSubcode, UdpHeader};
        let g = GroupId::numbered(9);
        let own = Steer::One(shard_of(g, 4));
        let src = Addr::from_octets(10, 1, 0, 1);
        let dst = Addr::from_octets(172, 31, 0, 2);

        // Native-mode data: the destination address is the group.
        let native = DataPacket::new(src, g, 16, vec![0u8; 8]).encode();
        assert_eq!(steer_frame(&native, 4), own);
        assert_eq!(steer_frame(&native, 1), Steer::One(0), "unsharded short-circuits");

        // CBT control: group at bytes 8..12 of the §8 control header.
        let join = ControlMessage::JoinRequest {
            subcode: JoinSubcode::ActiveJoin,
            group: g,
            origin: src,
            target_core: dst,
            cores: vec![dst],
        };
        let udp = UdpHeader::wrap(CBT_PRIMARY_PORT, CBT_PRIMARY_PORT, &join.encode().unwrap());
        let ctl = build_datagram(src, dst, IpProto::Udp, 64, &udp);
        assert_eq!(steer_frame(&ctl, 4), own);

        // CBT-mode data: group at bytes 8..12 of the Fig. 7 header.
        let encap =
            cbt_wire::CbtDataPacket::encapsulate(&DataPacket::new(src, g, 16, vec![1u8]), dst);
        let cbt = encap.wrap_unicast(src, dst, None);
        assert_eq!(steer_frame(&cbt, 4), own);

        // Group-carrying IGMP: steers by the decoded group.
        let report = build_datagram(
            src,
            g.addr(),
            IpProto::Igmp,
            1,
            &IgmpMessage::Report { version: 2, group: g }.encode(),
        );
        assert_eq!(steer_frame(&report, 4), own);
    }

    /// General IGMP queries carry no group and must reach every
    /// shard's election replica; group-less or unparseable traffic
    /// belongs to shard 0.
    #[test]
    fn general_queries_fan_out_and_groupless_goes_to_shard_zero() {
        use cbt_wire::ipv4::build_datagram;
        let src = Addr::from_octets(10, 1, 0, 1);
        let query = build_datagram(
            src,
            cbt_wire::ALL_SYSTEMS,
            IpProto::Igmp,
            1,
            &IgmpMessage::Query { group: None, max_resp_tenths: 100 }.encode(),
        );
        assert_eq!(steer_frame(&query, 4), Steer::All);
        assert_eq!(steer_frame(&query, 1), Steer::One(0), "one shard needs no fan-out");

        // Unicast transit UDP (not a CBT port, unicast dst).
        let transit = build_datagram(
            src,
            Addr::from_octets(172, 31, 0, 9),
            IpProto::Udp,
            64,
            &cbt_wire::UdpHeader::wrap(9000, 9000, b"app"),
        );
        assert_eq!(steer_frame(&transit, 4), Steer::One(0));

        // Runt frames (shorter than an IP header) and garbage.
        assert_eq!(steer_frame(&[0u8; 7], 4), Steer::One(0));
        assert_eq!(steer_frame(&[0xFFu8; 64], 4), Steer::One(0));
    }

    /// Sharded delivery enqueues a group's frames on exactly one shard
    /// inbox and fans a general query out to all of them.
    #[tokio::test]
    async fn sharded_delivery_steers_to_the_owning_inbox() {
        use cbt_wire::{ipv4::build_datagram, DataPacket};
        let (net, r0, r1, _h) = lan_pair();
        let (fabric, mut rxs) = Fabric::with_shards(net, DataPlaneConfig::default(), 4);
        let g = GroupId::numbered(9);
        let own = match steer_frame(
            &DataPacket::new(Addr::from_octets(10, 1, 0, 1), g, 16, vec![0u8]).encode(),
            4,
        ) {
            Steer::One(k) => k,
            Steer::All => unreachable!("data frames steer to one shard"),
        };
        let data = DataPacket::new(Addr::from_octets(10, 1, 0, 1), g, 16, vec![0u8]).encode();
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: Bytes::from(data) };
        fabric.dispatch(Entity::Router(r0), &t);
        let shard_rxs = rxs.get_mut(&Entity::Router(r1)).unwrap();
        for (k, rx) in shard_rxs.iter_mut().enumerate() {
            assert_eq!(rx.try_recv().is_ok(), k == own, "only shard {own} owns group {g}");
        }

        let query = build_datagram(
            Addr::from_octets(10, 1, 0, 1),
            cbt_wire::ALL_SYSTEMS,
            IpProto::Igmp,
            1,
            &IgmpMessage::Query { group: None, max_resp_tenths: 100 }.encode(),
        );
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: Bytes::from(query) };
        fabric.dispatch(Entity::Router(r0), &t);
        let shard_rxs = rxs.get_mut(&Entity::Router(r1)).unwrap();
        for rx in shard_rxs.iter_mut() {
            assert!(rx.try_recv().is_ok(), "general query reaches every shard");
        }
    }

    /// A full bounded inbox sheds frames and counts the overflow.
    #[tokio::test]
    async fn overflow_is_dropped_and_counted() {
        let (net, r0, r1, _) = lan_pair();
        let r1_addr = net.routers[r1.0 as usize].ifaces[0].addr;
        let dp = DataPlaneConfig { inbox_capacity: 4, ..Default::default() };
        let (fabric, mut rxs) = Fabric::with_config(net, dp);
        let t = Transmit { iface: IfIndex(0), link_dst: Some(r1_addr), frame: frame(&[1]) };
        for _ in 0..10 {
            fabric.dispatch(Entity::Router(r0), &t);
        }
        let stats = fabric.counters().snapshot();
        assert_eq!(stats.delivered, 4, "inbox capacity");
        assert_eq!(stats.dropped_overflow, 6, "excess counted, not queued");
        // The drops are attributed to the overwhelmed node, under the
        // right taxonomy bucket — not smeared over the fabric.
        let r1_drops = fabric.counters().node_drops(Entity::Router(r1));
        assert_eq!(r1_drops.get(DropReason::InboxOverflow), 6);
        assert_eq!(r1_drops.total(), 6, "nothing else counted against R1");
        assert_eq!(fabric.counters().node_drops(Entity::Router(r0)).total(), 0);
        // The receiver still drains the accepted frames.
        let rx = rxs.get_mut(&Entity::Router(r1)).unwrap();
        for _ in 0..4 {
            assert!(rx.try_recv().is_ok());
        }
        assert!(rx.try_recv().is_err());
    }
}
