//! The in-process frame fabric: who receives what a node transmits.
//!
//! Mirrors the delivery semantics of `cbt_netsim::World` (LAN broadcast
//! with link-layer unicast filtering, p2p peer delivery) but pushes
//! frames into per-entity tokio mpsc channels instead of an event
//! queue.

use cbt_netsim::{Entity, Transmit};
use cbt_topology::{Attachment, HostId, IfIndex, NetworkSpec, RouterId};
use std::collections::HashMap;
use std::sync::Arc;
use tokio::sync::mpsc;

/// A frame as delivered to a node: which interface it arrived on and
/// who (at the link layer) sent it.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// Arrival interface (0 for hosts).
    pub iface: IfIndex,
    /// Link-layer sender (their address on the shared medium).
    pub link_src: cbt_wire::Addr,
    /// The datagram.
    pub frame: Vec<u8>,
}

/// Shared dispatch fabric.
pub struct Fabric {
    net: Arc<NetworkSpec>,
    inboxes: HashMap<Entity, mpsc::UnboundedSender<RxFrame>>,
}

impl Fabric {
    /// Builds the fabric and one inbox per entity. Returns the fabric
    /// plus the receive ends, to hand to each node's task.
    pub fn new(net: Arc<NetworkSpec>) -> (Arc<Self>, HashMap<Entity, mpsc::UnboundedReceiver<RxFrame>>) {
        let mut inboxes = HashMap::new();
        let mut rxs = HashMap::new();
        for i in 0..net.routers.len() {
            let (tx, rx) = mpsc::unbounded_channel();
            inboxes.insert(Entity::Router(RouterId(i as u32)), tx);
            rxs.insert(Entity::Router(RouterId(i as u32)), rx);
        }
        for i in 0..net.hosts.len() {
            let (tx, rx) = mpsc::unbounded_channel();
            inboxes.insert(Entity::Host(HostId(i as u32)), tx);
            rxs.insert(Entity::Host(HostId(i as u32)), rx);
        }
        (Arc::new(Fabric { net, inboxes }), rxs)
    }

    /// Dispatches one transmission from `from` to everyone it reaches.
    pub fn dispatch(&self, from: Entity, t: &Transmit) {
        match self.medium_of(from, t.iface) {
            Some(Attachment::Lan(lan)) => {
                let link_src = match from {
                    Entity::Router(r) => self
                        .net
                        .routers
                        .get(r.0 as usize)
                        .and_then(|s| s.iface_on_lan(lan))
                        .map(|(_, i)| i.addr)
                        .unwrap_or(cbt_wire::Addr::NULL),
                    Entity::Host(h) => self
                        .net
                        .hosts
                        .get(h.0 as usize)
                        .map(|s| s.addr)
                        .unwrap_or(cbt_wire::Addr::NULL),
                };
                let lan_spec = &self.net.lans[lan.0 as usize];
                for &r in &lan_spec.routers {
                    if Entity::Router(r) == from {
                        continue;
                    }
                    let Some((rx_iface, rx_spec)) =
                        self.net.routers[r.0 as usize].iface_on_lan(lan)
                    else {
                        continue;
                    };
                    if t.link_dst.is_some_and(|d| d != rx_spec.addr) {
                        continue;
                    }
                    self.deliver(Entity::Router(r), rx_iface, link_src, &t.frame);
                }
                for &h in &lan_spec.hosts {
                    if Entity::Host(h) == from {
                        continue;
                    }
                    if t.link_dst.is_some_and(|d| d != self.net.hosts[h.0 as usize].addr) {
                        continue;
                    }
                    self.deliver(Entity::Host(h), IfIndex(0), link_src, &t.frame);
                }
            }
            Some(Attachment::Link { link, peer }) => {
                let Entity::Router(r) = from else { return };
                let link_src = self
                    .net
                    .routers
                    .get(r.0 as usize)
                    .and_then(|s| s.iface(t.iface))
                    .map(|i| i.addr)
                    .unwrap_or(cbt_wire::Addr::NULL);
                let peer_iface = self.net.routers[peer.0 as usize]
                    .ifaces
                    .iter()
                    .position(|pi| matches!(pi.attachment, Attachment::Link { link: l, .. } if l == link));
                if let Some(idx) = peer_iface {
                    self.deliver(Entity::Router(peer), IfIndex(idx as u32), link_src, &t.frame);
                }
            }
            None => {}
        }
    }

    fn medium_of(&self, from: Entity, iface: IfIndex) -> Option<Attachment> {
        match from {
            Entity::Router(r) => {
                Some(self.net.routers.get(r.0 as usize)?.iface(iface)?.attachment)
            }
            Entity::Host(h) => {
                let spec = self.net.hosts.get(h.0 as usize)?;
                (iface == IfIndex(0)).then_some(Attachment::Lan(spec.lan))
            }
        }
    }

    fn deliver(&self, to: Entity, iface: IfIndex, link_src: cbt_wire::Addr, frame: &[u8]) {
        if let Some(tx) = self.inboxes.get(&to) {
            // A closed inbox means that node shut down; fine.
            let _ = tx.send(RxFrame { iface, link_src, frame: frame.to_vec() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::NetworkBuilder;
    use cbt_wire::Addr;

    fn lan_pair() -> (Arc<NetworkSpec>, RouterId, RouterId, HostId) {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let lan = b.lan("S0");
        b.attach(lan, r0);
        b.attach(lan, r1);
        let h = b.host("H", lan);
        (Arc::new(b.build()), r0, r1, h)
    }

    #[tokio::test]
    async fn lan_broadcast_reaches_everyone() {
        let (net, r0, r1, h) = lan_pair();
        let (fabric, mut rxs) = Fabric::new(net);
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: vec![1, 2, 3] };
        fabric.dispatch(Entity::Router(r0), &t);
        assert!(rxs.get_mut(&Entity::Router(r1)).unwrap().try_recv().is_ok());
        assert!(rxs.get_mut(&Entity::Host(h)).unwrap().try_recv().is_ok());
        assert!(
            rxs.get_mut(&Entity::Router(r0)).unwrap().try_recv().is_err(),
            "no self-delivery"
        );
    }

    #[tokio::test]
    async fn link_dst_filters_lan_unicast() {
        let (net, r0, r1, h) = lan_pair();
        let r1_addr = net.routers[r1.0 as usize].ifaces[0].addr;
        let (fabric, mut rxs) = Fabric::new(net);
        let t = Transmit { iface: IfIndex(0), link_dst: Some(r1_addr), frame: vec![9] };
        fabric.dispatch(Entity::Router(r0), &t);
        assert!(rxs.get_mut(&Entity::Router(r1)).unwrap().try_recv().is_ok());
        assert!(rxs.get_mut(&Entity::Host(h)).unwrap().try_recv().is_err(), "filtered");
    }

    #[tokio::test]
    async fn p2p_reaches_the_peer_iface() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        b.link(r0, r1, 1);
        let net = Arc::new(b.build());
        let (fabric, mut rxs) = Fabric::new(net);
        let t = Transmit { iface: IfIndex(0), link_dst: None, frame: vec![7] };
        fabric.dispatch(Entity::Router(r0), &t);
        let got = rxs.get_mut(&Entity::Router(r1)).unwrap().try_recv().unwrap();
        assert_eq!(got.iface, IfIndex(0));
        assert_eq!(got.frame, vec![7]);
    }

    #[tokio::test]
    async fn unknown_iface_is_silently_dropped() {
        let (net, r0, ..) = lan_pair();
        let (fabric, _rxs) = Fabric::new(net);
        let t = Transmit { iface: IfIndex(42), link_dst: None, frame: vec![0] };
        fabric.dispatch(Entity::Router(r0), &t); // must not panic
        let _ = Addr::NULL;
    }
}
