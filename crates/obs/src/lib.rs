//! Observability layer for the CBT reproduction.
//!
//! Every layer of the stack — the sans-I/O engine in `cbt`, the live
//! node runtime in `cbt-node`, the deterministic simulator in
//! `cbt-netsim` — reports into the plain-data structures defined here:
//!
//! * a closed **drop-reason taxonomy** ([`DropReason`]) so a discarded
//!   packet is never silent: every discard site names its reason and
//!   bumps a counter;
//! * per-router, per-group **protocol counters** ([`ProtocolCounters`],
//!   keyed by [`CtlKind`]) for joins, acks, nacks, quits, echoes and
//!   flush-tree traffic in both directions;
//! * log2-bucketed **latency histograms** ([`Histogram`]) for join
//!   round-trips and timer-wheel wakeup lag, in microseconds;
//! * a cheap [`RouterObs::snapshot`] producing an [`ObsSnapshot`] with
//!   text and JSON exporters that `cbt-eval` embeds in its reports and
//!   `cbtd` prints on demand.
//!
//! Everything on the forward path is a fixed-size array add on a plain
//! struct — no locks, no heap allocation — so the zero-allocs/packet
//! invariant asserted by the `dataplane` bench holds with counters
//! enabled. The per-group map is touched only on the control path.
//! The live plane, which counts from multiple threads, uses
//! [`AtomicDropCounters`] (relaxed adds on cache-resident atomics).
//!
//! This crate is dependency-free by design: the JSON exporter is
//! hand-rolled (the output is validated against the vendored parser in
//! `cbt-eval` and by the CI schema smoke step).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a data or control packet was discarded. Closed taxonomy: every
/// discard site in the tree maps onto exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum DropReason {
    /// TTL/hop-limit reached the boundary (§5: decremented to zero, or
    /// arrived too low to travel further).
    TtlExpired = 0,
    /// No forwarding state for the packet's group (off-tree arrival at
    /// an off-tree router, no route toward any core).
    NoFibEntry = 1,
    /// A bounded inbox/channel was full (live plane back-pressure).
    InboxOverflow = 2,
    /// The wire checksum did not verify.
    ChecksumBad = 3,
    /// The frame failed to parse for any reason other than checksum.
    DecodeError = 4,
    /// The packet violated a scope rule: a §7 parent/child arrival
    /// check, or a locally originated packet this router is not
    /// responsible for.
    ScopeBoundary = 5,
}

impl DropReason {
    /// Number of variants (array sizing).
    pub const COUNT: usize = 6;

    /// Every variant, in counter-index order.
    pub const ALL: [DropReason; DropReason::COUNT] = [
        DropReason::TtlExpired,
        DropReason::NoFibEntry,
        DropReason::InboxOverflow,
        DropReason::ChecksumBad,
        DropReason::DecodeError,
        DropReason::ScopeBoundary,
    ];

    /// Stable name used by both exporters.
    pub const fn as_str(self) -> &'static str {
        match self {
            DropReason::TtlExpired => "TtlExpired",
            DropReason::NoFibEntry => "NoFibEntry",
            DropReason::InboxOverflow => "InboxOverflow",
            DropReason::ChecksumBad => "ChecksumBad",
            DropReason::DecodeError => "DecodeError",
            DropReason::ScopeBoundary => "ScopeBoundary",
        }
    }
}

/// Fixed-size drop counters for single-threaded owners (the engine,
/// the simulator). Bumping is an array add — safe on the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounters([u64; DropReason::COUNT]);

impl DropCounters {
    pub const fn new() -> Self {
        DropCounters([0; DropReason::COUNT])
    }

    #[inline]
    pub fn bump(&mut self, reason: DropReason) {
        self.0[reason as usize] += 1;
    }

    #[inline]
    pub fn get(&self, reason: DropReason) -> u64 {
        self.0[reason as usize]
    }

    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    pub fn merge(&mut self, other: &DropCounters) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// `(reason, count)` pairs in taxonomy order, zeros included.
    pub fn iter(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        DropReason::ALL.iter().map(move |&r| (r, self.get(r)))
    }
}

/// Drop counters shared across the live plane's threads. Relaxed adds:
/// the values are monotone statistics, not synchronization.
#[derive(Debug, Default)]
pub struct AtomicDropCounters([AtomicU64; DropReason::COUNT]);

impl AtomicDropCounters {
    pub const fn new() -> Self {
        AtomicDropCounters([
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ])
    }

    #[inline]
    pub fn bump(&self, reason: DropReason) {
        self.0[reason as usize].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, reason: DropReason, n: u64) {
        self.0[reason as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self, reason: DropReason) -> u64 {
        self.0[reason as usize].load(Ordering::Relaxed)
    }

    /// Plain-data copy of the current values.
    pub fn snapshot(&self) -> DropCounters {
        let mut out = DropCounters::new();
        for r in DropReason::ALL {
            out.0[r as usize] = self.get(r);
        }
        out
    }
}

/// Which tree invariant a post-run check found violated. Closed
/// taxonomy mirroring the exploration harness' checker: every verdict
/// line in a counterexample names exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum InvariantKind {
    /// A parent chain revisited a router: the FIB encodes a forwarding
    /// loop (§6.3 is supposed to break these).
    ForwardingLoop = 0,
    /// A router names a parent that does not list it as a child (or
    /// vice versa) at quiescence.
    ParentChildAsymmetry = 1,
    /// A member host's LAN has no attached on-tree router with an
    /// acyclic path to a core.
    MemberDetached = 2,
    /// Hard state (FIB entry, pending join/quit) lingering for a group
    /// with no members anywhere after teardown settled.
    OrphanedState = 3,
    /// Observability counters contradict the injected faults (e.g.
    /// checksum-failure drops with zero corrupted frames).
    ObsInconsistent = 4,
}

impl InvariantKind {
    /// Number of variants (array sizing).
    pub const COUNT: usize = 5;

    /// Every variant, in counter-index order.
    pub const ALL: [InvariantKind; InvariantKind::COUNT] = [
        InvariantKind::ForwardingLoop,
        InvariantKind::ParentChildAsymmetry,
        InvariantKind::MemberDetached,
        InvariantKind::OrphanedState,
        InvariantKind::ObsInconsistent,
    ];

    /// Stable name used by both exporters and the counterexample
    /// format.
    pub const fn as_str(self) -> &'static str {
        match self {
            InvariantKind::ForwardingLoop => "ForwardingLoop",
            InvariantKind::ParentChildAsymmetry => "ParentChildAsymmetry",
            InvariantKind::MemberDetached => "MemberDetached",
            InvariantKind::OrphanedState => "OrphanedState",
            InvariantKind::ObsInconsistent => "ObsInconsistent",
        }
    }

    /// Inverse of [`InvariantKind::as_str`].
    pub fn from_str_opt(s: &str) -> Option<InvariantKind> {
        InvariantKind::ALL.iter().copied().find(|k| k.as_str() == s)
    }
}

/// Fixed-size invariant-violation counters, one per
/// [`InvariantKind`]. Bumped by the checker, not the forward path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvariantCounters([u64; InvariantKind::COUNT]);

impl InvariantCounters {
    pub const fn new() -> Self {
        InvariantCounters([0; InvariantKind::COUNT])
    }

    #[inline]
    pub fn bump(&mut self, kind: InvariantKind) {
        self.0[kind as usize] += 1;
    }

    #[inline]
    pub fn get(&self, kind: InvariantKind) -> u64 {
        self.0[kind as usize]
    }

    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    pub fn merge(&mut self, other: &InvariantCounters) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// `(kind, count)` pairs in taxonomy order, zeros included.
    pub fn iter(&self) -> impl Iterator<Item = (InvariantKind, u64)> + '_ {
        InvariantKind::ALL.iter().map(move |&k| (k, self.get(k)))
    }
}

/// CBT control-message classes, for per-group protocol accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum CtlKind {
    JoinRequest = 0,
    JoinAck = 1,
    JoinNack = 2,
    QuitRequest = 3,
    QuitAck = 4,
    EchoRequest = 5,
    EchoReply = 6,
    FlushTree = 7,
}

impl CtlKind {
    pub const COUNT: usize = 8;

    pub const ALL: [CtlKind; CtlKind::COUNT] = [
        CtlKind::JoinRequest,
        CtlKind::JoinAck,
        CtlKind::JoinNack,
        CtlKind::QuitRequest,
        CtlKind::QuitAck,
        CtlKind::EchoRequest,
        CtlKind::EchoReply,
        CtlKind::FlushTree,
    ];

    /// Stable snake_case name used by both exporters.
    pub const fn as_str(self) -> &'static str {
        match self {
            CtlKind::JoinRequest => "join_request",
            CtlKind::JoinAck => "join_ack",
            CtlKind::JoinNack => "join_nack",
            CtlKind::QuitRequest => "quit_request",
            CtlKind::QuitAck => "quit_ack",
            CtlKind::EchoRequest => "echo_request",
            CtlKind::EchoReply => "echo_reply",
            CtlKind::FlushTree => "flush_tree",
        }
    }
}

/// Sent/received counts per control-message class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolCounters {
    sent: [u64; CtlKind::COUNT],
    received: [u64; CtlKind::COUNT],
}

impl ProtocolCounters {
    pub const fn new() -> Self {
        ProtocolCounters { sent: [0; CtlKind::COUNT], received: [0; CtlKind::COUNT] }
    }

    #[inline]
    pub fn bump_sent(&mut self, kind: CtlKind) {
        self.sent[kind as usize] += 1;
    }

    #[inline]
    pub fn bump_received(&mut self, kind: CtlKind) {
        self.received[kind as usize] += 1;
    }

    pub fn sent(&self, kind: CtlKind) -> u64 {
        self.sent[kind as usize]
    }

    pub fn received(&self, kind: CtlKind) -> u64 {
        self.received[kind as usize]
    }

    pub fn total(&self) -> u64 {
        self.sent.iter().chain(self.received.iter()).sum()
    }

    pub fn merge(&mut self, other: &ProtocolCounters) {
        for (a, b) in self.sent.iter_mut().zip(other.sent.iter()) {
            *a += b;
        }
        for (a, b) in self.received.iter_mut().zip(other.received.iter()) {
            *a += b;
        }
    }
}

/// Log2-bucketed latency histogram (microseconds). Bucket `i` holds
/// samples in `[2^(i-1), 2^i)` (bucket 0 holds zero); recording is a
/// couple of integer ops, no allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub const BUCKETS: usize = 32;

    pub const fn new() -> Self {
        Histogram { buckets: [0; Histogram::BUCKETS], count: 0, sum: 0, max: 0 }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(Histogram::BUCKETS - 1)
        }
    }

    #[inline]
    pub fn record(&mut self, value_us: u64) {
        self.buckets[Self::bucket_index(value_us)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value_us);
        self.max = self.max.max(value_us);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0..=1.0`); 0 when empty. Resolution is a factor of two —
    /// good enough to spot orders of magnitude, which is what the
    /// wakeup-lag and join-RTT questions need.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Per-router observability state: the single struct a router owns and
/// bumps from its forward/control/timer paths.
#[derive(Debug, Clone, Default)]
pub struct RouterObs {
    /// Data-plane discards by reason.
    pub drops: DropCounters,
    /// Data packets forwarded (transit or fan-out; one per handled
    /// packet that produced at least one send).
    pub data_forwarded: u64,
    /// Data packets delivered to a locally attached member LAN.
    pub data_delivered: u64,
    /// Router-wide control counters (sum over groups).
    pub ctl: ProtocolCounters,
    /// Per-group control counters, keyed by the group address' u32.
    /// Touched only on the control path.
    pub groups: BTreeMap<u32, ProtocolCounters>,
    /// JOIN_REQUEST → JOIN_ACK round-trip, µs, at the joining router.
    pub join_rtt_us: Histogram,
    /// Timer-wheel wakeup lag (fire time minus deadline), µs.
    pub timer_lag_us: Histogram,
    /// Tree-invariant violations attributed to this router by the
    /// post-run checker (zero in a healthy run).
    pub invariants: InvariantCounters,
}

impl RouterObs {
    pub fn new() -> Self {
        RouterObs::default()
    }

    /// Counts a sent control message, router-wide and per-group.
    pub fn ctl_sent(&mut self, group: u32, kind: CtlKind) {
        self.ctl.bump_sent(kind);
        self.groups.entry(group).or_default().bump_sent(kind);
    }

    /// Counts a received control message, router-wide and per-group.
    pub fn ctl_received(&mut self, group: u32, kind: CtlKind) {
        self.ctl.bump_received(kind);
        self.groups.entry(group).or_default().bump_received(kind);
    }

    /// Counts a discard. Hot-path safe.
    #[inline]
    pub fn drop_packet(&mut self, reason: DropReason) {
        self.drops.bump(reason);
    }

    /// Cheap plain-data snapshot for export.
    pub fn snapshot(&self, router: &str) -> ObsSnapshot {
        ObsSnapshot {
            router: router.to_string(),
            drops: self.drops,
            data_forwarded: self.data_forwarded,
            data_delivered: self.data_delivered,
            ctl: self.ctl,
            groups: self.groups.clone(),
            join_rtt_us: self.join_rtt_us.clone(),
            timer_lag_us: self.timer_lag_us.clone(),
            invariants: self.invariants,
        }
    }

    /// Counts an invariant violation attributed to this router.
    pub fn invariant_violated(&mut self, kind: InvariantKind) {
        self.invariants.bump(kind);
    }
}

/// Exportable snapshot of one router's counters — or, after
/// [`ObsSnapshot::merge`], an aggregate over many routers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Label: a router name, or an aggregate tag like `"fleet"`.
    pub router: String,
    pub drops: DropCounters,
    pub data_forwarded: u64,
    pub data_delivered: u64,
    pub ctl: ProtocolCounters,
    pub groups: BTreeMap<u32, ProtocolCounters>,
    pub join_rtt_us: Histogram,
    pub timer_lag_us: Histogram,
    pub invariants: InvariantCounters,
}

/// Formats a group address u32 as a dotted quad.
fn group_str(g: u32) -> String {
    let b = g.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// Minimal JSON string escaping (labels are router names, but be
/// correct anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_protocol(out: &mut String, p: &ProtocolCounters) {
    out.push_str("{\"sent\":{");
    for (i, k) in CtlKind::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", k.as_str(), p.sent(*k));
    }
    out.push_str("},\"received\":{");
    for (i, k) in CtlKind::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", k.as_str(), p.received(*k));
    }
    out.push_str("}}");
}

fn json_histogram(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"max\":{}}}",
        h.count(),
        h.sum(),
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.99),
        h.max()
    );
}

impl ObsSnapshot {
    /// Folds another snapshot into this one (fleet-wide aggregation).
    pub fn merge(&mut self, other: &ObsSnapshot) {
        self.drops.merge(&other.drops);
        self.data_forwarded += other.data_forwarded;
        self.data_delivered += other.data_delivered;
        self.ctl.merge(&other.ctl);
        for (g, p) in &other.groups {
            self.groups.entry(*g).or_default().merge(p);
        }
        self.join_rtt_us.merge(&other.join_rtt_us);
        self.timer_lag_us.merge(&other.timer_lag_us);
        self.invariants.merge(&other.invariants);
    }

    /// JSON export. All six drop reasons are always present (zeros
    /// included) so consumers never need existence checks; group keys
    /// are dotted-quad strings.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(out, "{{\"router\":\"{}\",\"drops\":{{", json_escape(&self.router));
        for (i, (r, n)) in self.drops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", r.as_str(), n);
        }
        let _ = write!(
            out,
            "}},\"data_forwarded\":{},\"data_delivered\":{},\"control\":",
            self.data_forwarded, self.data_delivered
        );
        json_protocol(&mut out, &self.ctl);
        out.push_str(",\"groups\":[");
        for (i, (g, p)) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"group\":\"{}\",\"control\":", group_str(*g));
            json_protocol(&mut out, p);
            out.push('}');
        }
        out.push_str("],\"join_rtt_us\":");
        json_histogram(&mut out, &self.join_rtt_us);
        out.push_str(",\"timer_lag_us\":");
        json_histogram(&mut out, &self.timer_lag_us);
        out.push_str(",\"invariants\":{");
        for (i, (k, n)) in self.invariants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", k.as_str(), n);
        }
        out.push_str("}}");
        out
    }

    /// Human-readable export (`cbtd` prints this at shutdown).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[obs] router {}", self.router);
        let _ = writeln!(
            out,
            "  data: forwarded={} delivered={} dropped={}",
            self.data_forwarded,
            self.data_delivered,
            self.drops.total()
        );
        for (r, n) in self.drops.iter() {
            let _ = writeln!(out, "    drop {:<14} {}", r.as_str(), n);
        }
        let _ = writeln!(out, "  control ({} groups):", self.groups.len());
        for k in CtlKind::ALL {
            let _ = writeln!(
                out,
                "    {:<13} sent={} received={}",
                k.as_str(),
                self.ctl.sent(k),
                self.ctl.received(k)
            );
        }
        let _ = writeln!(
            out,
            "  join_rtt_us: count={} mean={:.1} p50={} p99={} max={}",
            self.join_rtt_us.count(),
            self.join_rtt_us.mean(),
            self.join_rtt_us.quantile(0.50),
            self.join_rtt_us.quantile(0.99),
            self.join_rtt_us.max()
        );
        let _ = writeln!(
            out,
            "  timer_lag_us: count={} mean={:.1} p50={} p99={} max={}",
            self.timer_lag_us.count(),
            self.timer_lag_us.mean(),
            self.timer_lag_us.quantile(0.50),
            self.timer_lag_us.quantile(0.99),
            self.timer_lag_us.max()
        );
        if self.invariants.total() > 0 {
            let _ = writeln!(out, "  invariant violations:");
            for (k, n) in self.invariants.iter() {
                if n > 0 {
                    let _ = writeln!(out, "    {:<22} {}", k.as_str(), n);
                }
            }
        }
        out
    }
}

/// Counters for the scalable unicast routing layer: on-demand SPF
/// cache behaviour and the incremental-repair economics (how many
/// nodes each repair touched vs. what a full recompute would settle).
///
/// Standalone and mergeable like every other counter set here; the
/// RIB owns one and experiments export it next to [`ObsSnapshot`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpfStats {
    /// Full single-destination SPF runs (cache misses + invalidations).
    pub full_runs: u64,
    /// Nodes settled across all full runs.
    pub nodes_settled_full: u64,
    /// Incremental repair invocations (one per cached tree per phase).
    pub repairs: u64,
    /// Nodes touched across all incremental repairs.
    pub nodes_touched_incremental: u64,
    /// Failure-delta batches applied in place.
    pub apply_batches: u64,
    /// On-demand tree cache hits.
    pub cache_hits: u64,
    /// On-demand tree cache misses.
    pub cache_misses: u64,
    /// LRU evictions from the tree cache.
    pub cache_evictions: u64,
    /// Distribution of nodes touched per incremental repair.
    pub touched_per_repair: Histogram,
}

impl SpfStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        SpfStats::default()
    }

    /// Records one full SPF run settling `settled` nodes.
    pub fn record_full(&mut self, settled: u64) {
        self.full_runs += 1;
        self.nodes_settled_full += settled;
    }

    /// Records one incremental repair touching `touched` nodes.
    pub fn record_repair(&mut self, touched: u64) {
        self.repairs += 1;
        self.nodes_touched_incremental += touched;
        self.touched_per_repair.record(touched);
    }

    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &SpfStats) {
        self.full_runs += other.full_runs;
        self.nodes_settled_full += other.nodes_settled_full;
        self.repairs += other.repairs;
        self.nodes_touched_incremental += other.nodes_touched_incremental;
        self.apply_batches += other.apply_batches;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.touched_per_repair.merge(&other.touched_per_repair);
    }

    /// JSON object fragment (experiments embed this under `"spf"`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"full_runs\":{},\"nodes_settled_full\":{},\"repairs\":{},\
             \"nodes_touched_incremental\":{},\"apply_batches\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"touched_per_repair\":",
            self.full_runs,
            self.nodes_settled_full,
            self.repairs,
            self.nodes_touched_incremental,
            self.apply_batches,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
        );
        json_histogram(&mut out, &self.touched_per_repair);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spf_stats_record_merge_and_json() {
        let mut a = SpfStats::new();
        a.record_full(100);
        a.record_repair(3);
        a.record_repair(5);
        a.apply_batches = 1;
        a.cache_hits = 7;
        a.cache_misses = 2;
        assert_eq!(a.full_runs, 1);
        assert_eq!(a.repairs, 2);
        assert_eq!(a.nodes_touched_incremental, 8);
        let mut b = SpfStats::new();
        b.record_repair(10);
        b.cache_evictions = 4;
        b.merge(&a);
        assert_eq!(b.repairs, 3);
        assert_eq!(b.nodes_touched_incremental, 18);
        assert_eq!(b.cache_hits, 7);
        assert_eq!(b.cache_evictions, 4);
        assert_eq!(b.touched_per_repair.count(), 3);
        let json = b.to_json();
        for key in [
            "\"full_runs\":1",
            "\"repairs\":3",
            "\"nodes_touched_incremental\":18",
            "\"cache_evictions\":4",
            "\"touched_per_repair\":{\"count\":3",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn drop_counters_roundtrip() {
        let mut c = DropCounters::new();
        c.bump(DropReason::TtlExpired);
        c.bump(DropReason::TtlExpired);
        c.bump(DropReason::ScopeBoundary);
        assert_eq!(c.get(DropReason::TtlExpired), 2);
        assert_eq!(c.get(DropReason::ScopeBoundary), 1);
        assert_eq!(c.get(DropReason::ChecksumBad), 0);
        assert_eq!(c.total(), 3);
        let mut d = DropCounters::new();
        d.bump(DropReason::TtlExpired);
        d.merge(&c);
        assert_eq!(d.get(DropReason::TtlExpired), 3);
    }

    #[test]
    fn atomic_counters_snapshot() {
        let a = AtomicDropCounters::new();
        a.bump(DropReason::InboxOverflow);
        a.add(DropReason::DecodeError, 5);
        let s = a.snapshot();
        assert_eq!(s.get(DropReason::InboxOverflow), 1);
        assert_eq!(s.get(DropReason::DecodeError), 5);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1004);
        assert_eq!(h.max(), 1000);
        // p25 → the zero sample; p100 → bucket containing 1000.
        assert_eq!(h.quantile(0.25), 0);
        assert_eq!(h.quantile(1.0), 1024);
        // Giant values clamp into the last bucket instead of indexing
        // out of bounds.
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 60);
        assert_eq!(a.max(), 30);
    }

    #[test]
    fn per_group_counters() {
        let mut o = RouterObs::new();
        o.ctl_sent(0xE0000101, CtlKind::JoinRequest);
        o.ctl_sent(0xE0000101, CtlKind::JoinRequest);
        o.ctl_received(0xE0000101, CtlKind::JoinAck);
        o.ctl_sent(0xE0000202, CtlKind::QuitRequest);
        assert_eq!(o.ctl.sent(CtlKind::JoinRequest), 2);
        assert_eq!(o.ctl.received(CtlKind::JoinAck), 1);
        let g = o.groups.get(&0xE0000101).unwrap();
        assert_eq!(g.sent(CtlKind::JoinRequest), 2);
        assert_eq!(g.received(CtlKind::JoinAck), 1);
        assert_eq!(g.sent(CtlKind::QuitRequest), 0);
        assert_eq!(o.groups.len(), 2);
    }

    #[test]
    fn snapshot_merge_aggregates() {
        let mut a = RouterObs::new();
        a.drop_packet(DropReason::TtlExpired);
        a.ctl_sent(1, CtlKind::EchoRequest);
        a.join_rtt_us.record(100);
        let mut b = RouterObs::new();
        b.drop_packet(DropReason::TtlExpired);
        b.drop_packet(DropReason::NoFibEntry);
        b.ctl_received(1, CtlKind::EchoRequest);
        let mut fleet = a.snapshot("A");
        fleet.router = "fleet".into();
        fleet.merge(&b.snapshot("B"));
        assert_eq!(fleet.drops.get(DropReason::TtlExpired), 2);
        assert_eq!(fleet.drops.get(DropReason::NoFibEntry), 1);
        let g = fleet.groups.get(&1).unwrap();
        assert_eq!(g.sent(CtlKind::EchoRequest), 1);
        assert_eq!(g.received(CtlKind::EchoRequest), 1);
        assert_eq!(fleet.join_rtt_us.count(), 1);
    }

    /// Deterministic xorshift64* — this crate is dependency-free, so
    /// the property tests bring their own randomness.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F491_4F6CDD1D)
        }
    }

    /// A randomized snapshot built through the same recording APIs the
    /// engine uses. Histogram samples are raw u64s (saturation included
    /// in the property), counter bumps are bounded so u64 sums cannot
    /// overflow across three-way merges.
    fn random_snapshot(rng: &mut XorShift) -> ObsSnapshot {
        let mut o = RouterObs::new();
        for _ in 0..(rng.next() % 24) {
            let r = DropReason::ALL[(rng.next() % DropReason::COUNT as u64) as usize];
            o.drop_packet(r);
        }
        o.data_forwarded = rng.next() % (1 << 32);
        o.data_delivered = rng.next() % (1 << 32);
        for _ in 0..(rng.next() % 16) {
            let g = 0xE000_0000 | (rng.next() as u32 % 8);
            let k = CtlKind::ALL[(rng.next() % CtlKind::COUNT as u64) as usize];
            if rng.next().is_multiple_of(2) {
                o.ctl_sent(g, k);
            } else {
                o.ctl_received(g, k);
            }
        }
        for _ in 0..(rng.next() % 8) {
            o.join_rtt_us.record(rng.next());
            o.timer_lag_us.record(rng.next() % 1_000_000);
        }
        for _ in 0..(rng.next() % 8) {
            let k = InvariantKind::ALL[(rng.next() % InvariantKind::COUNT as u64) as usize];
            o.invariant_violated(k);
        }
        o.snapshot("agg")
    }

    /// Merged-then-compared with the `router` label held fixed: the
    /// label names the aggregate and is deliberately not merged.
    fn merged(a: &ObsSnapshot, b: &ObsSnapshot) -> ObsSnapshot {
        let mut out = a.clone();
        out.merge(b);
        out
    }

    /// Shard/fleet aggregation folds snapshots in whatever order the
    /// tasks answer, so `merge` must be commutative.
    #[test]
    fn merge_is_commutative() {
        let mut rng = XorShift(0x1DEA_5EED_0BAD_F00D);
        for _ in 0..64 {
            let a = random_snapshot(&mut rng);
            let b = random_snapshot(&mut rng);
            assert_eq!(merged(&a, &b), merged(&b, &a));
        }
    }

    /// ...and associative: folding shard-by-shard must equal folding
    /// pre-merged halves (histogram `sum` saturates, but saturating
    /// addition of unsigned values is `min(true sum, u64::MAX)`, which
    /// keeps both properties).
    #[test]
    fn merge_is_associative() {
        let mut rng = XorShift(0xFEED_FACE_CAFE_BEEF);
        for _ in 0..64 {
            let a = random_snapshot(&mut rng);
            let b = random_snapshot(&mut rng);
            let c = random_snapshot(&mut rng);
            assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        }
    }

    /// Saturation edge explicitly: a histogram driven to the `sum`
    /// ceiling merges to the same aggregate from either side.
    #[test]
    fn merge_saturated_histograms_stay_commutative() {
        let mut a = ObsSnapshot { router: "agg".into(), ..Default::default() };
        let mut b = a.clone();
        a.join_rtt_us.record(u64::MAX);
        a.join_rtt_us.record(u64::MAX);
        b.join_rtt_us.record(7);
        let ab = merged(&a, &b);
        assert_eq!(ab, merged(&b, &a));
        assert_eq!(ab.join_rtt_us.sum(), u64::MAX);
        assert_eq!(ab.join_rtt_us.count(), 3);
    }

    #[test]
    fn json_contains_all_drop_reasons_even_when_zero() {
        let o = RouterObs::new();
        let j = o.snapshot("R1").to_json();
        for r in DropReason::ALL {
            assert!(j.contains(&format!("\"{}\":0", r.as_str())), "missing {} in {j}", r.as_str());
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn json_group_keys_are_dotted_quads() {
        let mut o = RouterObs::new();
        o.ctl_sent(0xE4000001, CtlKind::JoinRequest);
        let j = o.snapshot("R1").to_json();
        assert!(j.contains("\"group\":\"228.0.0.1\""), "{j}");
        assert!(j.contains("\"join_request\":1"), "{j}");
    }

    #[test]
    fn json_escapes_labels() {
        let o = RouterObs::new();
        let j = o.snapshot("r\"1\"\n").to_json();
        assert!(j.contains("\"router\":\"r\\\"1\\\"\\n\""), "{j}");
    }

    #[test]
    fn invariant_counters_roundtrip_and_export() {
        let mut o = RouterObs::new();
        o.invariant_violated(InvariantKind::ForwardingLoop);
        o.invariant_violated(InvariantKind::ForwardingLoop);
        o.invariant_violated(InvariantKind::OrphanedState);
        assert_eq!(o.invariants.get(InvariantKind::ForwardingLoop), 2);
        assert_eq!(o.invariants.total(), 3);
        let mut fleet = o.snapshot("A");
        fleet.merge(&o.snapshot("B"));
        assert_eq!(fleet.invariants.get(InvariantKind::ForwardingLoop), 4);
        let j = fleet.to_json();
        for k in InvariantKind::ALL {
            assert!(j.contains(&format!("\"{}\":", k.as_str())), "missing {} in {j}", k.as_str());
        }
        assert!(fleet.to_text().contains("ForwardingLoop"));
        assert_eq!(
            InvariantKind::from_str_opt("MemberDetached"),
            Some(InvariantKind::MemberDetached)
        );
        assert_eq!(InvariantKind::from_str_opt("nope"), None);
    }

    #[test]
    fn text_export_mentions_everything() {
        let mut o = RouterObs::new();
        o.drop_packet(DropReason::ChecksumBad);
        o.timer_lag_us.record(7);
        let t = o.snapshot("R9").to_text();
        assert!(t.contains("router R9"));
        assert!(t.contains("ChecksumBad"));
        assert!(t.contains("timer_lag_us: count=1"));
    }
}
