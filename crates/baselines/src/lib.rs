//! # cbt-baselines — the protocols CBT is measured against
//!
//! The SIGCOMM-'93 evaluation compares the shared tree against
//! *source-based* schemes. This crate implements those comparators over
//! the same graph substrate:
//!
//! * [`flood_prune`] — a DVMRP-style data-driven protocol: the first
//!   packet from a source is flooded along reverse-path-forwarding
//!   rules to the whole topology; routers with no interested downstream
//!   send prunes upstream. The result is a per-(source, group)
//!   shortest-path tree **plus prune state at every router the flood
//!   touched** — the O(S·G) state and topology-wide overhead the paper
//!   attacks.
//! * [`spt`] — the shortest-path-tree oracle: the per-source tree a
//!   converged DVMRP/MOSPF ends up with, without modelling the flood
//!   (used where only the final tree shape matters).
//! * [`star`] — naive unicast replication: the sender transmits one
//!   copy per member over unicast shortest paths. The pre-multicast
//!   baseline.
//!
//! All three are deterministic graph computations; the eval harness
//! runs them over the same seeded Waxman topologies as the CBT
//! simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flood_prune;
pub mod spt;
pub mod star;

pub use flood_prune::{flood_and_prune, FloodPruneOutcome};
pub use spt::{cbt_shared_tree, source_tree};
pub use star::unicast_star_loads;
