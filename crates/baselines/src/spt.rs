//! Shortest-path-tree constructions: the per-source oracle and the
//! graph-level prediction of the CBT shared tree.

use cbt_topology::{Graph, NodeId, ShortestPaths};

/// The converged per-(source, group) shortest-path tree: the union of
/// shortest paths from `source` to every member. This is what
/// DVMRP/MOSPF deliver along after pruning.
pub fn source_tree(g: &Graph, source: NodeId, members: &[NodeId]) -> Graph {
    let sp = ShortestPaths::dijkstra(g, source);
    sp.tree_spanning(g, members)
}

/// The CBT shared tree as graph-level prediction: every member router
/// joins toward `core` along unicast shortest paths, so the tree is the
/// union of member→core shortest paths (with the same deterministic
/// tie-breaking the protocol's RIB uses).
///
/// The `protocol_equivalence` integration test confirms the packet-level
/// protocol builds exactly this tree on the same topology.
pub fn cbt_shared_tree(g: &Graph, core: NodeId, members: &[NodeId]) -> Graph {
    let sp = ShortestPaths::dijkstra(g, core);
    sp.tree_spanning(g, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::generate;

    #[test]
    fn source_tree_spans_members_minimally() {
        let g = generate::grid(4, 4);
        let members = vec![NodeId(3), NodeId(12), NodeId(15)];
        let tree = source_tree(&g, NodeId(0), &members);
        assert!(tree.is_forest());
        // Every member is connected to the source within the tree.
        let sp = ShortestPaths::dijkstra(&tree, NodeId(0));
        for m in &members {
            assert!(sp.dist(*m).is_some(), "{m} attached");
            // Tree distance equals graph distance (shortest-path tree).
            let gd = ShortestPaths::dijkstra(&g, NodeId(0)).dist(*m);
            assert_eq!(sp.dist(*m), gd);
        }
    }

    #[test]
    fn shared_tree_differs_from_source_tree_in_general() {
        // On a ring, the tree from the core and the tree from a source
        // on the far side pick different edges.
        let g = generate::ring(8);
        let members = vec![NodeId(2), NodeId(6)];
        let shared = cbt_shared_tree(&g, NodeId(0), &members);
        let src = source_tree(&g, NodeId(4), &members);
        let se: Vec<_> = shared.edges().collect();
        let de: Vec<_> = src.edges().collect();
        assert_ne!(se, de);
    }

    #[test]
    fn empty_member_set_gives_empty_tree() {
        let g = generate::grid(3, 3);
        let tree = cbt_shared_tree(&g, NodeId(4), &[]);
        assert_eq!(tree.edge_count(), 0);
    }

    #[test]
    fn member_at_core_adds_no_edges() {
        let g = generate::grid(3, 3);
        let tree = cbt_shared_tree(&g, NodeId(4), &[NodeId(4)]);
        assert_eq!(tree.edge_count(), 0);
    }
}
