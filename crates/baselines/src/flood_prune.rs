//! DVMRP-style flood-and-prune, simulated at message granularity over
//! the graph.
//!
//! The model follows the classic truncated-reverse-path-broadcast
//! scheme the CBT drafts contrast themselves with:
//!
//! 1. the source's first packet is **flooded**: each router accepts the
//!    packet only on its RPF interface (the one on its shortest path
//!    back to the source) and re-sends it on every other interface;
//!    copies arriving on non-RPF interfaces are counted and dropped;
//! 2. routers whose subtree contains no members send **prune** messages
//!    up the RPF tree; prunes aggregate (a router prunes itself once
//!    all its RPF children have pruned and it has no local members);
//! 3. prune state ages out (`prune_lifetime`), after which the next
//!    packet re-floods — the steady-state overhead term.
//!
//! The outcome records the delivery tree, per-router state (forwarding
//! *plus* prune entries — off-tree routers pay too, which is the state
//! result of experiment S93-T1) and exact message counts.

use cbt_topology::{Graph, NodeId, ShortestPaths};
use std::collections::BTreeSet;

/// Everything one flood-prune cycle produces.
#[derive(Debug, Clone)]
pub struct FloodPruneOutcome {
    /// The post-prune delivery tree (a subgraph of the input).
    pub tree: Graph,
    /// Routers holding (source, group) forwarding state after pruning.
    pub forwarding_state: BTreeSet<NodeId>,
    /// Routers holding (source, group) *prune* state — every router the
    /// flood reached that is not on the delivery tree.
    pub prune_state: BTreeSet<NodeId>,
    /// Data copies transmitted during the flood (one per directed edge
    /// crossing).
    pub flood_messages: u64,
    /// Copies discarded by the RPF check.
    pub rpf_discards: u64,
    /// Prune messages sent.
    pub prune_messages: u64,
}

impl FloodPruneOutcome {
    /// Total state entries this (source, group) pair costs the network.
    pub fn total_state_entries(&self) -> usize {
        self.forwarding_state.len() + self.prune_state.len()
    }

    /// Total control+flood overhead messages of one cycle.
    pub fn total_messages(&self) -> u64 {
        self.flood_messages + self.prune_messages
    }
}

/// Runs one flood-and-prune cycle for `source` and the given members.
///
/// `members` contains the routers with directly attached group members
/// (the source itself may or may not be one).
pub fn flood_and_prune(g: &Graph, source: NodeId, members: &[NodeId]) -> FloodPruneOutcome {
    let n = g.node_count();
    let member_set: BTreeSet<NodeId> = members.iter().copied().collect();
    let sp = ShortestPaths::dijkstra(g, source);

    // --- Phase 1: RPF flood. ---
    // Each reachable router accepts exactly one copy (via its RPF
    // predecessor) and re-sends on all other interfaces.
    let mut flood_messages: u64 = 0;
    let mut rpf_discards: u64 = 0;
    let mut reached: Vec<bool> = vec![false; n];
    reached[source.idx()] = true;
    // The RPF tree: child lists by predecessor relation.
    let mut rpf_children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in g.nodes() {
        if v != source {
            if let Some(p) = sp.toward_root(v) {
                rpf_children[p.idx()].push(v);
                reached[v.idx()] = true;
            }
        }
    }
    // Message accounting: every reached router (incl. source) transmits
    // on each incident edge except its RPF-upstream one; the copy is
    // accepted if the receiving end's RPF points back at the sender,
    // otherwise discarded.
    for v in g.nodes() {
        if !reached[v.idx()] {
            continue;
        }
        let upstream = sp.toward_root(v);
        for (u, _) in g.neighbors(v) {
            if Some(u) == upstream {
                continue; // never send back up the RPF interface
            }
            flood_messages += 1;
            if sp.toward_root(u) != Some(v) {
                rpf_discards += 1;
            }
        }
    }

    // --- Phase 2: prune. ---
    // A router keeps forwarding state iff its RPF subtree contains a
    // member (or it is a member itself). Everyone else that was reached
    // prunes: one prune message up its RPF interface.
    let mut wanted: Vec<bool> = vec![false; n];
    // Post-order accumulation over the RPF tree.
    fn mark(
        v: NodeId,
        rpf_children: &Vec<Vec<NodeId>>,
        member_set: &BTreeSet<NodeId>,
        wanted: &mut Vec<bool>,
    ) -> bool {
        let mut any = member_set.contains(&v);
        for c in &rpf_children[v.idx()] {
            if mark(*c, rpf_children, member_set, wanted) {
                any = true;
            }
        }
        wanted[v.idx()] = any;
        any
    }
    mark(source, &rpf_children, &member_set, &mut wanted);

    let mut prune_messages: u64 = 0;
    let mut forwarding_state = BTreeSet::new();
    let mut prune_state = BTreeSet::new();
    for v in g.nodes() {
        if !reached[v.idx()] || v == source {
            continue;
        }
        if wanted[v.idx()] {
            forwarding_state.insert(v);
        } else {
            // One prune up the RPF interface. (Aggregation is modelled
            // by each router pruning exactly once.)
            prune_messages += 1;
            prune_state.insert(v);
        }
    }
    // The source holds state as long as anything below wants data.
    if wanted[source.idx()] || !forwarding_state.is_empty() {
        forwarding_state.insert(source);
    }

    // --- Delivery tree: RPF paths to members. ---
    let tree = sp.tree_spanning(g, members);

    FloodPruneOutcome {
        tree,
        forwarding_state,
        prune_state,
        flood_messages,
        rpf_discards,
        prune_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::generate;

    #[test]
    fn line_topology_counts() {
        // 0 — 1 — 2 — 3, source 0, member at 3.
        let g = generate::line(4);
        let out = flood_and_prune(&g, NodeId(0), &[NodeId(3)]);
        // Flood: each of 0,1,2 sends one copy downstream; 3 has no
        // further edge. 0→1, 1→2, 2→3 = 3 messages, no discards on a
        // line.
        assert_eq!(out.flood_messages, 3);
        assert_eq!(out.rpf_discards, 0);
        // Nobody prunes: everyone is on the path to the member.
        assert_eq!(out.prune_messages, 0);
        assert_eq!(out.tree.edge_count(), 3);
        assert_eq!(out.forwarding_state.len(), 4);
        assert!(out.prune_state.is_empty());
    }

    #[test]
    fn branch_without_members_prunes() {
        // Star with hub 0: spokes 1 (member), 2, 3.
        let g = generate::star(4);
        let out = flood_and_prune(&g, NodeId(0), &[NodeId(1)]);
        // Flood reaches all three spokes.
        assert_eq!(out.flood_messages, 3);
        // Spokes 2 and 3 prune.
        assert_eq!(out.prune_messages, 2);
        assert_eq!(out.prune_state.len(), 2);
        assert!(out.prune_state.contains(&NodeId(2)));
        assert!(out.prune_state.contains(&NodeId(3)));
        // Delivery tree is just hub—1.
        assert_eq!(out.tree.edge_count(), 1);
        assert_eq!(out.forwarding_state.len(), 2);
        assert_eq!(out.total_state_entries(), 4, "pruned routers still hold state");
    }

    #[test]
    fn ring_has_rpf_discards() {
        // On a ring, floods meet on the far side: some copies fail the
        // RPF check.
        let g = generate::ring(6);
        let out = flood_and_prune(&g, NodeId(0), &[NodeId(3)]);
        assert!(out.rpf_discards > 0, "flood met itself somewhere");
        assert!(out.flood_messages > out.rpf_discards);
        // Tree still delivers: 0..3 along one side (3 hops).
        assert_eq!(out.tree.total_weight(), 3);
    }

    #[test]
    fn members_everywhere_prune_nothing() {
        let g = generate::grid(3, 3);
        let members: Vec<NodeId> = g.nodes().collect();
        let out = flood_and_prune(&g, NodeId(4), &members);
        assert_eq!(out.prune_messages, 0);
        assert_eq!(out.forwarding_state.len(), 9);
        assert!(out.tree.is_forest());
        assert!(out.tree.is_connected());
    }

    #[test]
    fn no_members_prunes_everything() {
        let g = generate::grid(3, 3);
        let out = flood_and_prune(&g, NodeId(0), &[]);
        assert_eq!(out.forwarding_state.len(), 0);
        assert_eq!(out.prune_state.len(), 8, "all reached routers pruned");
        assert_eq!(out.tree.edge_count(), 0);
        // But the flood still cost messages — the data-driven tax CBT's
        // explicit joins avoid.
        assert!(out.flood_messages > 0);
    }

    #[test]
    fn flood_cost_scales_with_topology_not_membership() {
        let g = generate::waxman(generate::WaxmanParams { n: 60, ..Default::default() }, 11);
        let small = flood_and_prune(&g, NodeId(0), &[NodeId(1)]);
        let members: Vec<NodeId> = (1..30).map(NodeId).collect();
        let large = flood_and_prune(&g, NodeId(0), &members);
        assert_eq!(
            small.flood_messages, large.flood_messages,
            "flooding touches the whole topology regardless of membership"
        );
        assert!(small.prune_messages > large.prune_messages);
    }
}
