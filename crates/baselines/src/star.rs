//! Naive unicast replication ("star"): the sender transmits one copy
//! per member over the unicast shortest path — the pre-multicast
//! baseline the '93 paper's introduction motivates against.

use cbt_topology::{Graph, NodeId, ShortestPaths};
use std::collections::BTreeMap;

/// Per-edge packet loads when `source` unicasts one packet to each of
/// `members`. Keys are `(a, b)` with `a < b` (undirected load).
pub fn unicast_star_loads(
    g: &Graph,
    source: NodeId,
    members: &[NodeId],
) -> BTreeMap<(NodeId, NodeId), u64> {
    let sp = ShortestPaths::dijkstra(g, source);
    let mut loads: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for &m in members {
        if m == source {
            continue;
        }
        let Some(path) = sp.path_to_root(m) else { continue };
        for hop in path.windows(2) {
            let (a, b) = if hop[0] < hop[1] { (hop[0], hop[1]) } else { (hop[1], hop[0]) };
            *loads.entry((a, b)).or_default() += 1;
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::generate;

    #[test]
    fn line_loads_accumulate_near_source() {
        // 0 — 1 — 2 — 3, members 2 and 3: edge 0–1 carries 2 copies.
        let g = generate::line(4);
        let loads = unicast_star_loads(&g, NodeId(0), &[NodeId(2), NodeId(3)]);
        assert_eq!(loads[&(NodeId(0), NodeId(1))], 2);
        assert_eq!(loads[&(NodeId(1), NodeId(2))], 2);
        assert_eq!(loads[&(NodeId(2), NodeId(3))], 1);
    }

    #[test]
    fn source_as_member_costs_nothing() {
        let g = generate::line(3);
        let loads = unicast_star_loads(&g, NodeId(0), &[NodeId(0)]);
        assert!(loads.is_empty());
    }

    #[test]
    fn total_load_equals_sum_of_distances() {
        let g = generate::grid(4, 4);
        let members: Vec<NodeId> = vec![NodeId(3), NodeId(12), NodeId(15), NodeId(5)];
        let loads = unicast_star_loads(&g, NodeId(0), &members);
        let total: u64 = loads.values().sum();
        let sp = ShortestPaths::dijkstra(&g, NodeId(0));
        let expect: u64 = members.iter().map(|m| sp.dist(*m).unwrap()).sum();
        assert_eq!(total, expect, "each copy pays its full path length");
    }

    #[test]
    fn star_always_costs_at_least_tree() {
        // The multicast tree sends once per edge; the star sends once
        // per member per edge: star load ≥ tree cost, with equality
        // only in degenerate cases.
        let g = generate::waxman(Default::default(), 3);
        let members: Vec<NodeId> = (10..30).map(NodeId).collect();
        let star_total: u64 = unicast_star_loads(&g, NodeId(0), &members).values().sum();
        let tree = crate::spt::source_tree(&g, NodeId(0), &members);
        assert!(star_total >= tree.total_weight());
    }
}
