//! Summary statistics over f64 samples.

use serde::Serialize;

/// Mean / percentiles / extremes of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises samples. Returns a zeroed summary for empty input.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary { n: 0, mean: 0.0, min: 0.0, p50: 0.0, p95: 0.0, max: 0.0 };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let n = sorted.len();
        let pct = |p: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            sorted[idx.min(n - 1)]
        };
        Summary {
            n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            min: sorted[0],
            p50: pct(0.50),
            p95: pct(0.95),
            max: sorted[n - 1],
        }
    }

    /// Summarises integer samples.
    pub fn of_ints<I: IntoIterator<Item = u64>>(samples: I) -> Summary {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_are_order_free() {
        let a = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn p95_of_hundred() {
        let samples: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn int_helper() {
        let s = Summary::of_ints([2u64, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
    }
}
