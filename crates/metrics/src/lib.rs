//! # cbt-metrics — measurements behind every table and figure
//!
//! Pure functions from trees/graphs/member-sets to the numbers the
//! evaluation reports, plus a tiny fixed-width table renderer so the
//! harness prints paper-style rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod delay;
pub mod linkload;
pub mod stat;
pub mod table;

pub use chart::BarChart;
pub use delay::{delay_ratio_stats, tree_distances, DelayStats};
pub use linkload::{load_stats, shared_tree_loads, source_tree_loads, LoadStats};
pub use stat::Summary;
pub use table::Table;

use cbt_topology::Graph;

/// Tree cost: total edge weight of a delivery tree — the S93-T2 metric.
pub fn tree_cost(tree: &Graph) -> u64 {
    tree.total_weight()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::generate;

    #[test]
    fn tree_cost_is_total_weight() {
        let g = generate::line(5);
        assert_eq!(tree_cost(&g), 4);
    }
}
