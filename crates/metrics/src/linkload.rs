//! Link-load / traffic-concentration metrics (experiment S93-F2).
//!
//! On a CBT shared tree a packet from *any* sender traverses **every**
//! tree edge once (the tree is flooded bidirectionally), so with `k`
//! senders each edge carries `k` packets. Source trees spread the load:
//! each sender's packet only crosses its own tree. The shared tree's
//! higher maximum is the traffic-concentration cost the '93 paper
//! acknowledges.

use crate::stat::Summary;
use cbt_topology::{Graph, NodeId};
use serde::Serialize;
use std::collections::BTreeMap;

/// Per-edge loads plus their summary.
#[derive(Debug, Clone, Serialize)]
pub struct LoadStats {
    /// Summary over edges that carried anything.
    pub per_link: Summary,
    /// The single hottest link's load.
    pub max_link: u64,
    /// Total packet-hops.
    pub total: u64,
}

fn summarize(loads: &BTreeMap<(NodeId, NodeId), u64>) -> LoadStats {
    let values: Vec<u64> = loads.values().copied().collect();
    LoadStats {
        per_link: Summary::of_ints(values.iter().copied()),
        max_link: values.iter().copied().max().unwrap_or(0),
        total: values.iter().sum(),
    }
}

/// Load on each edge of a shared `tree` when each of `senders`
/// transmits one packet: every tree edge carries one copy per sender
/// whose packet reaches it (with a connected shared tree: all of them).
pub fn shared_tree_loads(tree: &Graph, senders: usize) -> LoadStats {
    let mut loads = BTreeMap::new();
    for (a, b, _) in tree.edges() {
        loads.insert((a, b), senders as u64);
    }
    summarize(&loads)
}

/// Combines per-source tree loads: each sender's packet crosses only
/// its own tree's edges.
pub fn source_tree_loads(trees: &[Graph]) -> LoadStats {
    let mut loads: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for tree in trees {
        for (a, b, _) in tree.edges() {
            *loads.entry((a, b)).or_default() += 1;
        }
    }
    summarize(&loads)
}

/// Summarises an arbitrary load map (e.g. from the unicast star
/// baseline or the packet trace).
pub fn load_stats(loads: &BTreeMap<(NodeId, NodeId), u64>) -> LoadStats {
    summarize(loads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::generate;
    use cbt_topology::ShortestPaths;

    #[test]
    fn shared_tree_concentrates() {
        // Line 0—1—2; tree = whole line; 5 senders ⇒ every edge load 5.
        let tree = generate::line(3);
        let stats = shared_tree_loads(&tree, 5);
        assert_eq!(stats.max_link, 5);
        assert_eq!(stats.total, 10);
        assert_eq!(stats.per_link.n, 2);
    }

    #[test]
    fn source_trees_spread() {
        // Ring of 4, members at 1 and 3; sources 0 and 2 use opposite
        // sides, so no edge carries more than... both trees include
        // edges to both members; count overlaps honestly.
        let g = generate::ring(4);
        let members = [NodeId(1), NodeId(3)];
        let t0 = ShortestPaths::dijkstra(&g, NodeId(0)).tree_spanning(&g, &members);
        let t2 = ShortestPaths::dijkstra(&g, NodeId(2)).tree_spanning(&g, &members);
        let spread = source_tree_loads(&[t0.clone(), t2]);
        let shared = shared_tree_loads(&t0, 2);
        assert!(
            spread.max_link <= shared.max_link,
            "source trees never concentrate more than the shared tree: {} vs {}",
            spread.max_link,
            shared.max_link
        );
    }

    #[test]
    fn empty_tree_is_zero() {
        let stats = shared_tree_loads(&Graph::new(), 10);
        assert_eq!(stats.max_link, 0);
        assert_eq!(stats.total, 0);
    }

    #[test]
    fn load_stats_passthrough() {
        let mut loads = BTreeMap::new();
        loads.insert((NodeId(0), NodeId(1)), 3u64);
        loads.insert((NodeId(1), NodeId(2)), 7u64);
        let s = load_stats(&loads);
        assert_eq!(s.max_link, 7);
        assert_eq!(s.total, 10);
    }
}
