//! Terminal bar charts, so figure-type experiments (S93-F1, S93-F2)
//! render as figures and not just tables.

use std::fmt::Write as _;

/// A horizontal bar chart: labelled series of non-negative values.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    rows: Vec<(String, f64)>,
    /// Unit suffix printed after each value.
    unit: String,
}

impl BarChart {
    /// Starts a chart.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart { title: title.into(), rows: Vec::new(), unit: String::new() }
    }

    /// Sets the unit suffix (e.g. `"x"`, `" pkts"`).
    pub fn unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = unit.into();
        self
    }

    /// Adds one labelled bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        assert!(value.is_finite() && value >= 0.0, "bars must be finite and non-negative");
        self.rows.push((label.into(), value));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no bars were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with bars scaled to `width` characters.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(8);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        if self.rows.is_empty() {
            out.push_str("  (no data)\n");
            return out;
        }
        let max = self.rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.rows {
            let filled =
                if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
            let _ = writeln!(
                out,
                "  {label:>label_w$}  {}{}  {value:.2}{}",
                "█".repeat(filled),
                " ".repeat(width - filled.min(width)),
                self.unit,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new("delay ratio vs group size").unit("x");
        c.bar("2", 1.0).bar("16", 1.5).bar("64", 2.0);
        let s = c.render(20);
        assert!(s.contains("delay ratio"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The max bar fills the width; the min is half of it.
        let count = |line: &str| line.matches('█').count();
        assert_eq!(count(lines[3]), 20, "max scales to full width");
        assert_eq!(count(lines[1]), 10, "half of max fills half");
        assert!(lines[3].contains("2.00x"));
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let mut c = BarChart::new("t");
        c.bar("a", 0.0).bar("b", 0.0);
        let s = c.render(10);
        assert!(!s.contains('█'));
    }

    #[test]
    fn empty_chart_says_so() {
        assert!(BarChart::new("x").render(10).contains("no data"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        BarChart::new("x").bar("a", f64::NAN);
    }

    #[test]
    fn labels_align() {
        let mut c = BarChart::new("t");
        c.bar("long label", 1.0).bar("s", 2.0);
        let s = c.render(10);
        let lines: Vec<&str> = s.lines().collect();
        // Both value columns start at the same offset.
        let pos = |l: &str| l.find('█').unwrap();
        assert_eq!(pos(lines[1]), pos(lines[2]));
    }
}
