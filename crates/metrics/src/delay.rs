//! Delay metrics (experiment S93-F1): member↔member path length over
//! the shared tree versus the unicast shortest path — the cost CBT pays
//! for shared trees, which the '93 paper bounds at roughly 2× on
//! average for well-placed cores.

use crate::stat::Summary;
use cbt_topology::{AllPairs, Graph, NodeId, ShortestPaths};
use serde::Serialize;

/// Delay-ratio statistics across all ordered member pairs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DelayStats {
    /// Ratios tree_dist / shortest_dist over distinct member pairs.
    pub ratio: Summary,
    /// Absolute tree distances (hops/weight).
    pub tree_dist: Summary,
    /// Absolute shortest-path distances.
    pub direct_dist: Summary,
}

/// Pairwise distances within a tree from each member.
///
/// Returns `None` if any member pair is disconnected in the tree.
pub fn tree_distances(tree: &Graph, members: &[NodeId]) -> Option<Vec<(NodeId, NodeId, u64)>> {
    let mut out = Vec::new();
    for (i, &a) in members.iter().enumerate() {
        let sp = ShortestPaths::dijkstra(tree, a);
        for &b in &members[i + 1..] {
            if a == b {
                continue;
            }
            out.push((a, b, sp.dist(b)?));
        }
    }
    Some(out)
}

/// Computes delay statistics for a shared `tree` spanning `members`
/// over underlying graph distances `ap`.
///
/// Pairs at zero direct distance (same router) are skipped.
pub fn delay_ratio_stats(tree: &Graph, ap: &AllPairs, members: &[NodeId]) -> Option<DelayStats> {
    let pairs = tree_distances(tree, members)?;
    let mut ratios = Vec::new();
    let mut tree_d = Vec::new();
    let mut direct_d = Vec::new();
    for (a, b, td) in pairs {
        let dd = ap.dist(a, b)?;
        if dd == 0 {
            continue;
        }
        ratios.push(td as f64 / dd as f64);
        tree_d.push(td as f64);
        direct_d.push(dd as f64);
    }
    Some(DelayStats {
        ratio: Summary::of(&ratios),
        tree_dist: Summary::of(&tree_d),
        direct_dist: Summary::of(&direct_d),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_topology::generate;

    /// On a ring with the core opposite two adjacent members, the
    /// shared tree detours: members 3 and 5 are 2 apart directly but
    /// 6 apart through a core at 0 on an 8-ring.
    #[test]
    fn ring_detour_ratio() {
        let g = generate::ring(8);
        let ap = AllPairs::compute(&g);
        let members = [NodeId(3), NodeId(5)];
        let core = NodeId(0);
        let sp = ShortestPaths::dijkstra(&g, core);
        let tree = sp.tree_spanning(&g, &members);
        let stats = delay_ratio_stats(&tree, &ap, &members).unwrap();
        assert_eq!(stats.direct_dist.max, 2.0);
        assert_eq!(stats.tree_dist.max, 6.0, "3→0 and 0→5, 3 hops each side");
        assert!((stats.ratio.max - 3.0).abs() < 1e-12);
    }

    /// A tree through a central core adds no delay on a star.
    #[test]
    fn star_core_is_free() {
        let g = generate::star(6);
        let ap = AllPairs::compute(&g);
        let members: Vec<NodeId> = (1..6).map(NodeId).collect();
        let sp = ShortestPaths::dijkstra(&g, NodeId(0));
        let tree = sp.tree_spanning(&g, &members);
        let stats = delay_ratio_stats(&tree, &ap, &members).unwrap();
        assert!((stats.ratio.mean - 1.0).abs() < 1e-12, "hub core ⇒ optimal paths");
    }

    #[test]
    fn disconnected_tree_reports_none() {
        let mut tree = Graph::with_nodes(4);
        tree.add_edge(NodeId(0), NodeId(1), 1);
        // Node 3 is not in the tree at all.
        assert!(tree_distances(&tree, &[NodeId(0), NodeId(3)]).is_none());
    }

    #[test]
    fn single_member_has_no_pairs() {
        let g = generate::line(3);
        let ap = AllPairs::compute(&g);
        let sp = ShortestPaths::dijkstra(&g, NodeId(0));
        let tree = sp.tree_spanning(&g, &[NodeId(2)]);
        let stats = delay_ratio_stats(&tree, &ap, &[NodeId(2)]).unwrap();
        assert_eq!(stats.ratio.n, 0);
    }
}
