//! A small fixed-width table renderer so the eval harness prints
//! paper-style rows that line up in a terminal.

use std::fmt::Write as _;

/// A text table: header + rows, auto-sized columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row. Shorter rows are padded with empty cells;
    /// longer ones panic (caller bug).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(r.len() <= self.header.len(), "row wider than header");
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:>w$}", cells[i], w = widths[i]);
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for EXPERIMENTS.md appendices / plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible evaluation precision.
pub fn f(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["group size", "cbt", "dvmrp"]);
        t.row(["2", "10", "100"]);
        t.row(["64", "10", "6400"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("group size"));
        assert!(lines[1].starts_with('-'));
        // Columns right-aligned: the "2" sits under the "e" of size.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('1'));
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn rejects_wide_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(["x", "note"]);
        t.row(["1", "hello, \"world\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    fn float_format() {
        assert_eq!(f(1.005), "1.00");
        assert_eq!(f(2.5), "2.50");
    }
}
