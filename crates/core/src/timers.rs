//! Hierarchical timer wheel: O(due) timer service for the engine.
//!
//! The scan-based engine recomputes `next_wakeup` and services timers
//! by walking the *entire* FIB (plus every pending-join, pending-quit
//! and deferred-reattach map) on every `on_timer` call. That is O(N)
//! per wakeup in resident group state — exactly the cost CBT's
//! per-group state model is supposed to avoid. This module provides a
//! classic hashed-and-hierarchical timing wheel (Varghese & Lauck)
//! keyed on [`SimTime`]:
//!
//! * [`TimerWheel`] — 4 levels × 64 slots, one level-0 tick ≈ 1 ms
//!   (`µs >> 10`), total in-wheel span 2³⁴ µs ≈ 4.77 h, with an
//!   overflow (`far`) list for deadlines beyond the horizon that is
//!   re-examined once per top-level slot boundary. Slots carry exact
//!   deadlines (never slot-rounded) plus a cached per-slot minimum, so
//!   `peek` is O(occupied slots) and exact, and `pop_due` is O(due
//!   entries + slots crossed).
//! * [`TimerService`] — a keyed façade with generation counters:
//!   re-arming or cancelling a key is O(log K) with *no* search of the
//!   wheel; superseded entries are filtered out lazily when their slot
//!   drains.
//!
//! Ordering contract: `pop_due` returns entries sorted by
//! `(deadline, insertion order)` — same-deadline entries pop FIFO —
//! so a deadline-driven engine can reproduce the scan-based engine's
//! deterministic service order bit-for-bit.

use cbt_netsim::SimTime;
use std::collections::BTreeMap;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of hierarchical levels.
const LEVELS: usize = 4;
/// log2 of microseconds per level-0 tick (1024 µs ≈ 1 ms).
const TICK_SHIFT: u32 = 10;
/// Ticks covered by the whole wheel (64⁴); beyond this entries go to
/// the `far` overflow list.
const SPAN_TICKS: u64 = (SLOTS as u64).pow(LEVELS as u32);

/// Sentinel for "no deadline" in the cached minima (µs).
const NO_MIN: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Entry<T> {
    deadline: SimTime,
    /// Global insertion sequence — ties on `deadline` break FIFO.
    seq: u64,
    token: T,
}

#[derive(Debug, Clone)]
struct Slot<T> {
    entries: Vec<Entry<T>>,
    /// Cached minimum deadline (µs) over `entries`; `NO_MIN` if empty.
    min_us: u64,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot { entries: Vec::new(), min_us: NO_MIN }
    }
}

/// A hierarchical timing wheel over [`SimTime`] deadlines.
///
/// Entries are stored with their *exact* deadline; the wheel geometry
/// only bounds how much work `pop_due` does per call. Popping at time
/// `now` returns every entry with `deadline <= now`, globally sorted
/// by `(deadline, insertion order)`.
#[derive(Debug, Clone)]
pub struct TimerWheel<T> {
    /// `LEVELS × SLOTS` slots, flattened (`level * SLOTS + slot`).
    levels: Vec<Slot<T>>,
    /// Per-level occupancy bitmask (bit = slot has entries).
    occ: [u64; LEVELS],
    /// Overflow entries beyond the wheel horizon.
    far: Vec<Entry<T>>,
    /// Cached minimum deadline (µs) over `far`.
    far_min_us: u64,
    /// Current tick: every entry with a strictly earlier tick has been
    /// popped or cascaded.
    cur: u64,
    /// Next insertion sequence number.
    seq: u64,
    /// Live entry count (including not-yet-filtered stale entries when
    /// used through [`TimerService`]).
    len: usize,
}

impl<T> TimerWheel<T> {
    /// New wheel positioned at `now`.
    pub fn new(now: SimTime) -> Self {
        TimerWheel {
            levels: (0..LEVELS * SLOTS).map(|_| Slot::default()).collect(),
            occ: [0; LEVELS],
            far: Vec::new(),
            far_min_us: NO_MIN,
            cur: now.micros() >> TICK_SHIFT,
            seq: 0,
            len: 0,
        }
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `token` to pop once `now >= deadline`. Past deadlines
    /// are fine: they land in the current slot and pop on the next
    /// `pop_due`.
    pub fn schedule(&mut self, deadline: SimTime, token: T) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.place(Entry { deadline, seq, token });
    }

    /// Files an entry into the level/slot its deadline maps to from
    /// the current tick. Also used by cascades, which re-file with the
    /// original deadline and sequence (self-healing: an entry filed
    /// into an aliased slot simply cascades again, never late).
    fn place(&mut self, e: Entry<T>) {
        let tick = (e.deadline.micros() >> TICK_SHIFT).max(self.cur);
        let delta = tick - self.cur;
        let mut level = LEVELS;
        for (l, span) in (0..LEVELS).map(|l| (l, (SLOTS as u64).pow(l as u32 + 1))) {
            if delta < span {
                level = l;
                break;
            }
        }
        if level == LEVELS {
            self.far_min_us = self.far_min_us.min(e.deadline.micros());
            self.far.push(e);
            return;
        }
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let s = &mut self.levels[level * SLOTS + slot];
        s.min_us = s.min_us.min(e.deadline.micros());
        s.entries.push(e);
        self.occ[level] |= 1 << slot;
    }

    /// Pops every entry with `deadline <= now`, sorted by
    /// `(deadline, insertion order)`.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<(SimTime, T)> {
        let now_tick = now.micros() >> TICK_SHIFT;
        let mut due: Vec<Entry<T>> = Vec::new();

        // Advance the wheel, fully draining every slot strictly before
        // `now_tick`. Empty stretches are skipped via the occupancy
        // mask; every 64-tick boundary is landed on exactly so higher
        // levels cascade down.
        while self.cur < now_tick {
            let slot = (self.cur & (SLOTS as u64 - 1)) as usize;
            if self.occ[0] & (1 << slot) != 0 {
                let s = &mut self.levels[slot];
                due.append(&mut s.entries);
                s.min_us = NO_MIN;
                self.occ[0] &= !(1 << slot);
            }
            let block_base = self.cur & !(SLOTS as u64 - 1);
            let boundary = block_base + SLOTS as u64;
            // Next occupied level-0 slot in this block, if any. Bits
            // below the current slot index belong to the *next* block.
            let mask = if slot == SLOTS - 1 { 0 } else { self.occ[0] & (!0u64 << (slot + 1)) };
            let next_occ =
                if mask != 0 { block_base + mask.trailing_zeros() as u64 } else { u64::MAX };
            self.cur = boundary.min(next_occ).min(now_tick);
            if self.cur == boundary {
                self.cascade();
            }
        }

        // Partially drain the slot for `now_tick` itself: only entries
        // at or before `now` (deadlines are exact, ticks are coarse).
        let slot = (self.cur & (SLOTS as u64 - 1)) as usize;
        if self.occ[0] & (1 << slot) != 0 {
            let s = &mut self.levels[slot];
            let mut i = 0;
            while i < s.entries.len() {
                if s.entries[i].deadline <= now {
                    due.push(s.entries.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if s.entries.is_empty() {
                s.min_us = NO_MIN;
                self.occ[0] &= !(1 << slot);
            } else {
                s.min_us = s.entries.iter().map(|e| e.deadline.micros()).min().unwrap_or(NO_MIN);
            }
        }

        self.len -= due.len();
        due.sort_by_key(|e| (e.deadline, e.seq));
        due.into_iter().map(|e| (e.deadline, e.token)).collect()
    }

    /// Cascades higher levels down. Called exactly when `self.cur` is
    /// a multiple of 64: level *l* drains its newly current slot when
    /// `cur` is a multiple of 64^l, and the far list is re-examined at
    /// top-level slot boundaries (once per 64³ ticks).
    fn cascade(&mut self) {
        for level in 1..LEVELS {
            let width = SLOT_BITS * level as u32;
            if self.cur & ((1u64 << width) - 1) != 0 {
                return;
            }
            let slot = ((self.cur >> width) & (SLOTS as u64 - 1)) as usize;
            if self.occ[level] & (1 << slot) != 0 {
                let entries = std::mem::take(&mut self.levels[level * SLOTS + slot].entries);
                self.levels[level * SLOTS + slot].min_us = NO_MIN;
                self.occ[level] &= !(1 << slot);
                for e in entries {
                    self.place(e);
                }
            }
        }
        // Reaching here means cur is a multiple of 64^(LEVELS-1).
        if !self.far.is_empty() {
            let moved: Vec<Entry<T>> = {
                let cur = self.cur;
                let (near, far): (Vec<_>, Vec<_>) =
                    std::mem::take(&mut self.far).into_iter().partition(|e| {
                        (e.deadline.micros() >> TICK_SHIFT).saturating_sub(cur) < SPAN_TICKS
                    });
                self.far = far;
                near
            };
            self.far_min_us = self.far.iter().map(|e| e.deadline.micros()).min().unwrap_or(NO_MIN);
            for e in moved {
                self.place(e);
            }
        }
    }

    /// Exact earliest deadline over all stored entries, in O(occupied
    /// slots): cached per-slot minima, not slot-granularity rounding.
    pub fn peek(&self) -> Option<SimTime> {
        let mut best = self.far_min_us;
        for level in 0..LEVELS {
            let mut occ = self.occ[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                best = best.min(self.levels[level * SLOTS + slot].min_us);
            }
        }
        (best != NO_MIN).then(|| SimTime::from_micros(best))
    }

    /// A token achieving [`peek`](Self::peek)'s deadline, or `None` if
    /// the wheel is empty. When several entries share the minimum
    /// deadline an arbitrary one is returned.
    pub fn peek_entry(&self) -> Option<(SimTime, &T)> {
        let best = self.peek()?.micros();
        if self.far_min_us == best {
            return self
                .far
                .iter()
                .find(|e| e.deadline.micros() == best)
                .map(|e| (e.deadline, &e.token));
        }
        for level in 0..LEVELS {
            let mut occ = self.occ[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let s = &self.levels[level * SLOTS + slot];
                if s.min_us == best {
                    return s
                        .entries
                        .iter()
                        .find(|e| e.deadline.micros() == best)
                        .map(|e| (e.deadline, &e.token));
                }
            }
        }
        None
    }
}

/// Per-key bookkeeping for [`TimerService`].
#[derive(Debug, Clone, Copy, Default)]
struct KeyState {
    /// Current generation. Wheel entries carrying an older generation
    /// are stale.
    gen: u64,
    /// Physical entries (valid + stale) still sitting in the wheel for
    /// this key. The key's state can be dropped only once this reaches
    /// zero — otherwise a later re-arm could restart the generation at
    /// a value an old in-wheel entry still carries.
    in_wheel: u32,
    /// Whether a valid (not superseded, not fired) deadline exists.
    armed: bool,
}

/// Keyed timer service with O(1) logical cancellation.
///
/// At most one *valid* deadline exists per key. `arm` supersedes any
/// previous deadline for the key and `cancel` disarms it — both by
/// bumping a per-key generation counter, never by searching the wheel.
/// Superseded ("stale") entries stay in the wheel until their slot
/// drains, at which point `pop_due` discards them; `peek` may therefore
/// report a stale (always conservative, never late) wakeup, which a
/// deadline-driven engine treats as a no-op wake.
///
/// Key state is reclaimed: once a key has fired or been cancelled *and*
/// its last physical wheel entry has drained, its map entry is removed,
/// so long-running churn over many keys (groups joining and tearing
/// down for the lifetime of a router) holds state proportional to the
/// *live* key set, not to every key ever seen. [`tracked_keys`]
/// (Self::tracked_keys) exposes the table size for regression tests.
#[derive(Debug, Clone)]
pub struct TimerService<K: Ord + Copy> {
    wheel: TimerWheel<(K, u64)>,
    keys: BTreeMap<K, KeyState>,
}

impl<K: Ord + Copy> TimerService<K> {
    /// New service positioned at `now`.
    pub fn new(now: SimTime) -> Self {
        TimerService { wheel: TimerWheel::new(now), keys: BTreeMap::new() }
    }

    /// Arms (or re-arms) `key` to fire at `deadline`, superseding any
    /// previously armed deadline for the key.
    pub fn arm(&mut self, key: K, deadline: SimTime) {
        let st = self.keys.entry(key).or_default();
        st.gen += 1;
        st.armed = true;
        st.in_wheel += 1;
        self.wheel.schedule(deadline, (key, st.gen));
    }

    /// Disarms `key` in O(log K): any in-wheel entry for it becomes
    /// stale and is discarded when its slot drains.
    pub fn cancel(&mut self, key: K) {
        if let Some(st) = self.keys.get_mut(&key) {
            st.gen += 1;
            st.armed = false;
            if st.in_wheel == 0 {
                self.keys.remove(&key);
            }
        }
    }

    /// Drops `key`'s state if it is fully drained: nothing armed and no
    /// physical entry left in the wheel.
    fn reclaim_if_drained(&mut self, key: K) {
        if let Some(st) = self.keys.get(&key) {
            if st.in_wheel == 0 && !st.armed {
                self.keys.remove(&key);
            }
        }
    }

    /// Pops every key whose valid deadline is `<= now`, sorted by
    /// `(deadline, arm order)`. Stale entries encountered along the
    /// way are dropped for good (the wheel self-compacts).
    pub fn pop_due(&mut self, now: SimTime) -> Vec<K> {
        self.pop_due_with_deadline(now).into_iter().map(|(k, _)| k).collect()
    }

    /// Like [`pop_due`](Self::pop_due), but pairs each fired key with
    /// the deadline it was armed for, so callers can measure wakeup lag
    /// (`now - deadline`).
    pub fn pop_due_with_deadline(&mut self, now: SimTime) -> Vec<(K, SimTime)> {
        let mut out = Vec::new();
        for (deadline, (k, gen)) in self.wheel.pop_due(now) {
            let Some(st) = self.keys.get_mut(&k) else { continue };
            st.in_wheel -= 1;
            if st.gen == gen {
                // Each generation has exactly one physical entry, so a
                // matching pop consumes the key's armed deadline.
                st.armed = false;
                out.push((k, deadline));
            }
            self.reclaim_if_drained(k);
        }
        out
    }

    /// Keys with live state (armed, or awaiting drain of stale wheel
    /// entries). Bounded by the live key set plus in-flight staleness —
    /// *not* monotone over the service's lifetime.
    pub fn tracked_keys(&self) -> usize {
        self.keys.len()
    }

    /// Earliest possibly-due instant. May be stale — i.e. earlier than
    /// the earliest *valid* deadline — but never later, so it is always
    /// a safe wakeup time. Call [`compact`](Self::compact) first when an
    /// *exact* wakeup is required.
    pub fn peek(&self) -> Option<SimTime> {
        self.wheel.peek()
    }

    /// Discards stale entries from the head of the wheel until the
    /// earliest stored entry is a valid one, making the next
    /// [`peek`](Self::peek) exact: it reports the earliest *valid*
    /// deadline, never a superseded or cancelled one. Amortised O(1)
    /// per arm/cancel — each stale entry is drained at most once —
    /// plus one O(occupied slots) head probe per call.
    pub fn compact(&mut self) {
        loop {
            let Some((t, &(k, gen))) = self.wheel.peek_entry() else { return };
            if self.keys.get(&k).is_some_and(|st| st.gen == gen) {
                return;
            }
            // The head is stale: drain every entry at its instant and
            // re-file the valid ones (their exact deadlines and the
            // engine's sorted service order are unaffected).
            for (td, e) in self.wheel.pop_due(t) {
                if self.keys.get(&e.0).is_some_and(|st| st.gen == e.1) {
                    self.wheel.schedule(td, e);
                } else {
                    if let Some(st) = self.keys.get_mut(&e.0) {
                        st.in_wheel -= 1;
                    }
                    self.reclaim_if_drained(e.0);
                }
            }
        }
    }

    /// Entries in the wheel, stale included.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// True when the wheel holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn us(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn pop_returns_exactly_the_due_entries() {
        let mut w = TimerWheel::new(SimTime::ZERO);
        w.schedule(t(5), "a");
        w.schedule(t(10), "b");
        w.schedule(t(15), "c");
        assert_eq!(w.len(), 3);
        assert!(w.pop_due(t(4)).is_empty());
        let due: Vec<_> = w.pop_due(t(10)).into_iter().map(|(_, v)| v).collect();
        assert_eq!(due, vec!["a", "b"]);
        assert_eq!(w.len(), 1);
        let due: Vec<_> = w.pop_due(t(100)).into_iter().map(|(_, v)| v).collect();
        assert_eq!(due, vec!["c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn peek_is_exact_not_slot_rounded() {
        let mut w = TimerWheel::new(SimTime::ZERO);
        // Deadlines that share a level-0 tick (1024 µs) still peek
        // exactly, and deep-level entries peek their true deadline.
        w.schedule(us(1500), 1);
        w.schedule(us(1400), 2);
        assert_eq!(w.peek(), Some(us(1400)));
        let mut w = TimerWheel::new(SimTime::ZERO);
        w.schedule(t(3600), 9); // level 3 territory
        assert_eq!(w.peek(), Some(t(3600)));
        assert!(w.pop_due(t(3599)).is_empty());
        assert_eq!(w.pop_due(t(3600)).len(), 1);
        assert_eq!(w.peek(), None);
    }

    #[test]
    fn cascade_across_every_level() {
        // One entry per level band plus the far list; each pops at its
        // exact deadline and never early, regardless of how many
        // cascades it crosses on the way down.
        let bands = [
            us(50 << TICK_SHIFT),         // level 0
            us(1_000 << TICK_SHIFT),      // level 1
            us(100_000 << TICK_SHIFT),    // level 2
            us(10_000_000 << TICK_SHIFT), // level 3
            us(20_000_000 << TICK_SHIFT), // far list (> 64^4 ticks)
        ];
        let mut w = TimerWheel::new(SimTime::ZERO);
        for (i, &d) in bands.iter().enumerate() {
            w.schedule(d, i);
        }
        assert_eq!(w.peek(), Some(bands[0]));
        for (i, &d) in bands.iter().enumerate() {
            assert!(
                w.pop_due(us(d.micros() - 1)).is_empty(),
                "band {i} popped one microsecond early"
            );
            let due = w.pop_due(d);
            assert_eq!(due.len(), 1, "band {i} must pop exactly at its deadline");
            assert_eq!(due[0], (d, i));
        }
        assert!(w.is_empty());
        assert_eq!(w.peek(), None);
    }

    #[test]
    fn same_deadline_pops_fifo() {
        let mut w = TimerWheel::new(SimTime::ZERO);
        for i in 0..16 {
            w.schedule(t(7), i);
        }
        // Interleave other deadlines to force a sort.
        w.schedule(t(3), 100);
        w.schedule(t(9), 101);
        let order: Vec<_> = w.pop_due(t(10)).into_iter().map(|(_, v)| v).collect();
        let mut expect: Vec<i32> = vec![100];
        expect.extend(0..16);
        expect.push(101);
        assert_eq!(order, expect, "ties must break by insertion order after the global sort");
    }

    #[test]
    fn reschedule_survives_partial_drain_of_current_slot() {
        // Two deadlines in the same level-0 tick: popping the earlier
        // must leave the later armed with a correct cached minimum.
        let mut w = TimerWheel::new(SimTime::ZERO);
        w.schedule(us(1100), "early");
        w.schedule(us(1900), "late");
        let due: Vec<_> = w.pop_due(us(1100)).into_iter().map(|(_, v)| v).collect();
        assert_eq!(due, vec!["early"]);
        assert_eq!(w.peek(), Some(us(1900)));
        let due: Vec<_> = w.pop_due(us(1900)).into_iter().map(|(_, v)| v).collect();
        assert_eq!(due, vec!["late"]);
    }

    #[test]
    fn service_arm_supersedes_and_cancel_disarms() {
        let mut s = TimerService::new(SimTime::ZERO);
        s.arm("echo", t(30));
        s.arm("echo", t(60)); // supersedes — the t(30) entry is stale
        assert!(s.pop_due(t(30)).is_empty(), "superseded deadline must not fire");
        assert_eq!(s.pop_due(t(60)), vec!["echo"]);

        s.arm("quit", t(90));
        s.cancel("quit");
        assert!(s.pop_due(t(100)).is_empty(), "cancelled key must not fire");
        assert!(s.is_empty(), "stale entries are discarded as their slots drain");

        // Cancel + re-arm: only the new deadline fires.
        s.arm("join", t(110));
        s.cancel("join");
        s.arm("join", t(120));
        assert!(s.pop_due(t(110)).is_empty());
        assert_eq!(s.pop_due(t(120)), vec!["join"]);
    }

    #[test]
    fn service_peek_is_conservative_never_late() {
        let mut s = TimerService::new(SimTime::ZERO);
        s.arm(1u32, t(10));
        s.arm(1u32, t(50));
        // Peek may report the stale t(10) entry — early is fine, late
        // is not.
        let p = s.peek().expect("armed service must peek");
        assert!(p <= t(50));
        // The spurious wake pops nothing and self-compacts the wheel.
        assert!(s.pop_due(p.max(t(10))).is_empty());
        assert_eq!(s.pop_due(t(50)), vec![1u32]);
    }

    #[test]
    fn service_orders_same_deadline_keys_by_arm_order() {
        let mut s = TimerService::new(SimTime::ZERO);
        s.arm(3u8, t(5));
        s.arm(1u8, t(5));
        s.arm(2u8, t(4));
        assert_eq!(s.pop_due(t(5)), vec![2, 3, 1]);
    }

    #[test]
    fn service_key_table_is_reclaimed_after_churn() {
        // The regression this pins: key state used to be immortal
        // ("entries are never removed"), so arming a timer for every
        // group ever seen leaked a map entry per group forever. After
        // fire-and-drain, the table must return to empty.
        let mut s = TimerService::new(SimTime::ZERO);
        for i in 0..10_000u64 {
            s.arm(i, t(i + 1));
            assert_eq!(s.pop_due(t(i + 1)), vec![i]);
        }
        assert_eq!(s.tracked_keys(), 0, "fired keys must not linger");
        assert!(s.is_empty());

        // Cancelled key: state persists only while its stale physical
        // entry is still in the wheel, and drains with it.
        s.arm(7u64, t(20_000));
        s.cancel(7u64);
        assert!(s.pop_due(t(30_000)).is_empty());
        assert_eq!(s.tracked_keys(), 0, "cancelled keys must drain with their wheel entries");

        // Heavy supersede churn on one key: one fire clears everything
        // once the stale entries' shared slot drains.
        for n in 0..100u64 {
            s.arm(3u64, t(40_000 + n));
        }
        assert_eq!(s.pop_due(t(50_000)), vec![3u64]);
        assert_eq!(s.tracked_keys(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn service_reclaim_is_safe_across_generation_restart() {
        // After reclamation a re-armed key restarts at generation 1.
        // That must never validate a leftover physical entry — which is
        // exactly why reclamation requires in_wheel == 0.
        let mut s = TimerService::new(SimTime::ZERO);
        s.arm("k", t(10));
        assert_eq!(s.pop_due(t(10)), vec!["k"]); // gen 1 fired + drained
        s.arm("k", t(20)); // fresh state, gen 1 again
        s.cancel("k");
        assert!(s.pop_due(t(30)).is_empty(), "stale gen-1 entry of the new life must not fire");
        s.arm("k", t(40));
        assert_eq!(s.pop_due(t(40)), vec!["k"]);
        assert_eq!(s.tracked_keys(), 0);
    }

    #[test]
    fn service_pop_with_deadline_reports_armed_instants() {
        let mut s = TimerService::new(SimTime::ZERO);
        s.arm(1u8, t(10));
        s.arm(2u8, t(15));
        // Woken late: both fire, each tagged with its own deadline.
        assert_eq!(s.pop_due_with_deadline(t(30)), vec![(1u8, t(10)), (2u8, t(15))]);
    }

    #[test]
    fn wheel_handles_past_deadlines_and_repeat_pops() {
        let mut w = TimerWheel::new(t(100));
        w.schedule(t(10), "stale-arm"); // deadline already past
        let due: Vec<_> = w.pop_due(t(100)).into_iter().map(|(_, v)| v).collect();
        assert_eq!(due, vec!["stale-arm"]);
        // Repeat pops at the same instant are harmless no-ops.
        assert!(w.pop_due(t(100)).is_empty());
        assert!(w.pop_due(t(100)).is_empty());
    }

    #[test]
    fn dense_random_deadlines_pop_in_global_order() {
        // A deterministic pseudo-random spray across all bands; popped
        // in chunks, the concatenation must be globally sorted and
        // complete.
        let mut w = TimerWheel::new(SimTime::ZERO);
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut deadlines = Vec::new();
        for i in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let d = us(x % (3 * 3600 * 1_000_000)); // up to 3 h
            deadlines.push((d, i));
            w.schedule(d, i);
        }
        let mut popped = Vec::new();
        for step in 1..=36 {
            popped.extend(w.pop_due(t(step * 300)));
        }
        popped.extend(w.pop_due(t(4 * 3600)));
        assert!(w.is_empty());
        let mut expect = deadlines.clone();
        expect.sort_by_key(|&(d, i)| (d, i));
        assert_eq!(popped, expect, "chunked pops must reconstruct the sorted deadline stream");
    }
}
