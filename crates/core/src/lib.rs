//! # cbt — the Core Based Trees multicast protocol engine
//!
//! A from-scratch implementation of the CBT protocol as specified in
//! `draft-ietf-idmr-cbt-spec-03` (the November 1995 revision supplied
//! with this reproduction; see `DESIGN.md` at the workspace root for
//! the relationship to the SIGCOMM '93 architecture paper).
//!
//! The centrepiece is [`engine::CbtRouter`]: a **sans-I/O** state
//! machine for one router. It consumes decoded control messages, IGMP
//! messages, data packets and timer ticks, and emits
//! [`events::RouterAction`]s (messages to send). It owns no sockets, no
//! clock and no threads, which is why the *same* engine runs under the
//! deterministic simulator (via [`sim::RouterNode`]) and under tokio
//! (via the `cbt-node` crate).
//!
//! What is implemented (spec section in brackets):
//!
//! * D-DR election riding on IGMP querier election (§2.3), and the
//!   group-specific DR (G-DR) via PROXY-ACK (§2.6);
//! * tree joining: ACTIVE_JOIN origination on first membership (§2.5),
//!   hop-by-hop forwarding, transient pending-join state with caching
//!   of concurrent joins, JOIN_ACK retrace, JOIN_NACK (§8.3);
//! * the on-demand core tree: non-primary cores joining the primary
//!   with REJOIN_ACTIVE (§1, 2.5), and core restart discovery from the
//!   core list carried in every join (§6.2);
//! * teardown: QUIT_REQUEST/QUIT_ACK with retries, FLUSH_TREE, and the
//!   periodic IFF-SCAN membership check (§2.7, 9);
//! * keepalives: CBT-ECHO request/reply, optional aggregation by group
//!   mask (§8.4), parent-failure detection and re-attachment with
//!   alternate-core fallback (§6.1), child expiry (§9);
//! * loop detection: ACTIVE_REJOIN → NACTIVE_REJOIN conversion, the
//!   parent-ward walk, primary-core termination with the direct
//!   REJOIN-NACTIVE ack, and the originator's QUIT on self-receipt
//!   [6.3, 8.3.1];
//! * data forwarding in native mode (§4) and CBT mode (§5) including the
//!   on-tree bit (§7), TTL rules, CBT unicast/multicast selection, and
//!   non-member sending through a core (§5.1, 5.3);
//! * every §9 default timer, all configurable via [`config::CbtConfig`].
//!
//! ## Example: a complete deployment in the deterministic simulator
//!
//! ```
//! use cbt::{CbtConfig, CbtWorld};
//! use cbt_netsim::{SimTime, WorldConfig};
//! use cbt_topology::NetworkBuilder;
//! use cbt_wire::GroupId;
//!
//! // receiver —[S0]— R0 —— R1(core) —— R2 —[S1]— sender
//! let mut b = NetworkBuilder::new();
//! let r0 = b.router("R0");
//! let r1 = b.router("R1");
//! let r2 = b.router("R2");
//! let s0 = b.lan("S0");
//! b.attach(s0, r0);
//! let receiver = b.host("A", s0);
//! b.link(r0, r1, 1);
//! b.link(r1, r2, 1);
//! let s1 = b.lan("S1");
//! b.attach(s1, r2);
//! let sender = b.host("B", s1);
//! let net = b.build();
//! let core = net.router_addr(r1);
//!
//! let group = GroupId::numbered(1);
//! let mut cw = CbtWorld::build(net, CbtConfig::fast(), WorldConfig::default());
//! cw.host(receiver).join_at(SimTime::from_secs(1), group, vec![core]);
//! cw.host(sender).join_at(SimTime::from_secs(1), group, vec![core]);
//! cw.host(sender).send_at(SimTime::from_secs(3), group, b"hi".to_vec(), 16);
//! cw.world.start();
//! cw.world.run_until(SimTime::from_secs(5));
//!
//! assert!(cw.router(r0).engine().is_on_tree(group));
//! assert_eq!(cw.host(receiver).received().len(), 1);
//! assert_eq!(cw.host(receiver).received()[0].payload, b"hi");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod events;
pub mod explore;
pub mod fib;
pub mod forward;
pub mod join;
pub mod keepalive;
pub mod parallelism;
pub mod pending;
pub mod shard;
pub mod sim;
pub mod teardown;
pub mod timers;

pub use config::CbtConfig;
pub use engine::{CbtRouter, ProtocolPhase, RouteLookup, SharedRib};
pub use events::{RouterAction, RouterStats};
pub use fib::{Fib, FibEntry, MAX_CHILDREN};
pub use parallelism::Parallelism;
pub use shard::{shard_of, ShardedRouter};
pub use sim::{CbtWorld, Delivery, HostApp, RouterNode};
