//! The CBT router engine: one sans-I/O state machine per router.
//!
//! Inputs arrive through `handle_control`, `handle_igmp`,
//! `handle_native_data`, `handle_cbt_data` and `on_timer`; every call
//! returns the [`RouterAction`]s to perform. The heavier protocol paths
//! live in sibling modules (`join`, `teardown`, `keepalive`,
//! `forward`) as further `impl CbtRouter` blocks.

use crate::config::CbtConfig;
use crate::events::{RouterAction, RouterStats};
use crate::fib::{Fib, GroupSlot};
use crate::pending::PendingJoins;
use crate::timers::TimerService;
use cbt_igmp::{GroupPresence, IgmpOut, PresenceEvent, QuerierElection};
use cbt_netsim::SimTime;
use cbt_obs::{CtlKind, ObsSnapshot, RouterObs};
use cbt_routing::{FailureSet, Hop, Rib};
use cbt_topology::{Attachment, IfIndex, LanId, NetworkSpec, RouterId};
use cbt_wire::{Addr, ControlMessage, GroupId, IgmpMessage};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The engine's window onto unicast routing: "best next hop toward this
/// address" (§2.5) — the only question CBT ever asks its IGP.
pub trait RouteLookup: Send {
    /// Resolve the next hop toward `dst`, or `None` if unreachable.
    fn hop_toward(&self, dst: Addr) -> Option<Hop>;
}

/// A [`RouteLookup`] over a shared, swappable [`Rib`] — the harness
/// recomputes the RIB on topology changes and every engine sees the
/// update immediately, like a converged IGP.
#[derive(Clone)]
pub struct SharedRib {
    net: Arc<NetworkSpec>,
    rib: Arc<RwLock<Rib>>,
    me: RouterId,
}

impl SharedRib {
    /// Builds the shared table set for a whole network.
    pub fn build(net: Arc<NetworkSpec>) -> (Arc<RwLock<Rib>>, impl Fn(RouterId) -> SharedRib) {
        let rib = Arc::new(RwLock::new(Rib::converged(&net)));
        let rib2 = rib.clone();
        let maker = move |me: RouterId| SharedRib { net: net.clone(), rib: rib2.clone(), me };
        (rib, maker)
    }

    /// Converges the shared RIB onto a new failure state. This is
    /// incremental: only cached shortest-path trees actually affected
    /// by the delta are repaired, and manual `set_override` entries
    /// survive unless they reference a failed element.
    pub fn recompute(net: &NetworkSpec, rib: &Arc<RwLock<Rib>>, failures: &FailureSet) {
        let _ = net;
        rib.write().apply_failures(failures);
    }
}

impl RouteLookup for SharedRib {
    fn hop_toward(&self, dst: Addr) -> Option<Hop> {
        self.rib.read().route(&self.net, self.me, dst)
    }
}

/// One interface as the engine sees it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IfaceInfo {
    /// My address on this interface.
    pub addr: Addr,
    /// Subnet number.
    pub subnet: Addr,
    /// Subnet mask.
    pub mask: Addr,
    /// `Some(lan)` for multi-access segments, `None` for p2p links.
    pub lan: Option<LanId>,
}

impl IfaceInfo {
    /// Is `a` an address on this interface's subnet?
    pub fn contains(&self, a: Addr) -> bool {
        a.same_subnet(self.subnet, self.mask)
    }
}

/// Per-LAN protocol state: querier election + membership presence.
pub(crate) struct LanState {
    pub election: QuerierElection,
    pub presence: GroupPresence,
}

/// A quit in flight (§2.7/§6.3: retried a small number of times, then
/// parent state is dropped unilaterally).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingQuit {
    pub parent_addr: Addr,
    pub parent_iface: IfIndex,
    pub retries_left: u32,
    pub next_send: SimTime,
}

/// Everything the engine schedules on the timer wheel. One key per
/// independent deadline; re-arming a key supersedes its previous entry
/// (generation counters inside [`TimerService`] make that O(1)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum TimerKind {
    /// IGMP querier election + membership presence on one LAN.
    Lan(IfIndex),
    /// Deferred re-attachment after a broken loop (§6.3 backoff).
    Reattach(GroupId),
    /// Pending-join retransmit / timeout / expiry (§9).
    PendingJoin(GroupId),
    /// Parent keepalive: next CBT-ECHO-REQUEST *or* echo-timeout
    /// failure, whichever is earlier (§9).
    Echo(GroupId),
    /// Pending-quit retransmit (§6.3).
    Quit(GroupId),
    /// The CHILD-ASSERT-INTERVAL liveness sweep (§9).
    ChildSweep,
    /// The IFF-SCAN-INTERVAL membership scan (§9).
    IffScan,
}

/// The engine's timer front-end: a [`TimerService`] when the wheel is
/// enabled, a transparent no-op when the legacy scan path is in force
/// (so call sites arm unconditionally and legacy mode pays nothing).
pub(crate) struct EngineTimers {
    svc: TimerService<TimerKind>,
    /// Mirrors `CbtConfig::timer_wheel`.
    pub(crate) enabled: bool,
}

impl EngineTimers {
    fn new(now: SimTime, enabled: bool) -> Self {
        EngineTimers { svc: TimerService::new(now), enabled }
    }

    /// (Re-)schedules `key` to fire at `deadline`.
    pub(crate) fn arm(&mut self, key: TimerKind, deadline: SimTime) {
        if self.enabled {
            self.svc.arm(key, deadline);
        }
    }

    /// Disarms `key`. Must be called wherever the state behind a timer
    /// is removed outside its own service routine: `next_wakeup` must
    /// be *exact* (the event loop's FIFO tie-break is part of the
    /// bit-identity contract), so no disarmed deadline may linger at
    /// the wheel head.
    pub(crate) fn cancel(&mut self, key: TimerKind) {
        if self.enabled {
            self.svc.cancel(key);
        }
    }

    fn pop_due_with_deadline(&mut self, now: SimTime) -> Vec<(TimerKind, SimTime)> {
        self.svc.pop_due_with_deadline(now)
    }

    fn peek(&self) -> Option<SimTime> {
        self.svc.peek()
    }

    /// Drains superseded/cancelled entries off the wheel head so the
    /// next `peek` reports the earliest *valid* deadline. Called at the
    /// end of every mutating engine entry point (`next_wakeup` itself
    /// takes `&self` and cannot).
    fn compact(&mut self) {
        if self.enabled {
            self.svc.compact();
        }
    }
}

/// The protocol state a router is in for one group, as the exploration
/// harness classifies it. Each reachable phase is a distinct place to
/// inject a fault: the §6.1/§9 machinery behaves differently in every
/// one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum ProtocolPhase {
    /// No state for the group at all.
    Idle = 0,
    /// A JOIN_REQUEST is in flight, awaiting its ack (§2.5, §9).
    PendingJoin = 1,
    /// On-tree with a live parent (or as a core), between keepalives.
    Attached = 2,
    /// On-tree but the parent's echo reply is overdue — the §6.1
    /// failure-detection window before re-attachment starts.
    EchoWait = 3,
    /// Quit/flush teardown in progress (§2.7/§6.3).
    Teardown = 4,
    /// Re-attachment campaign running: the upstream is unreachable and
    /// the router is between rejoin attempts (§6.1/§6.3).
    CoreUnreachable = 5,
}

impl ProtocolPhase {
    /// Number of variants (array sizing for coverage matrices).
    pub const COUNT: usize = 6;

    /// Every variant, in index order.
    pub const ALL: [ProtocolPhase; ProtocolPhase::COUNT] = [
        ProtocolPhase::Idle,
        ProtocolPhase::PendingJoin,
        ProtocolPhase::Attached,
        ProtocolPhase::EchoWait,
        ProtocolPhase::Teardown,
        ProtocolPhase::CoreUnreachable,
    ];

    /// Stable name used by coverage reports.
    pub const fn as_str(self) -> &'static str {
        match self {
            ProtocolPhase::Idle => "idle",
            ProtocolPhase::PendingJoin => "pending-join",
            ProtocolPhase::Attached => "attached",
            ProtocolPhase::EchoWait => "echo-wait",
            ProtocolPhase::Teardown => "teardown",
            ProtocolPhase::CoreUnreachable => "core-unreachable",
        }
    }
}

/// The CBT protocol engine for one router.
pub struct CbtRouter {
    pub(crate) me: RouterId,
    pub(crate) id_addr: Addr,
    pub(crate) my_addrs: BTreeSet<Addr>,
    pub(crate) ifaces: Vec<IfaceInfo>,
    pub(crate) cfg: CbtConfig,
    pub(crate) routes: Box<dyn RouteLookup>,
    pub(crate) lans: BTreeMap<IfIndex, LanState>,
    pub(crate) fib: Fib,
    pub(crate) pending: PendingJoins,
    pub(crate) pending_quits: BTreeMap<GroupId, PendingQuit>,
    /// LAN interfaces where this router is the group-specific DR —
    /// i.e. the tree's attachment point for that LAN (§2.6).
    pub(crate) gdr: BTreeSet<(IfIndex, GroupId)>,
    /// Groups on a LAN served by *another* router's branch (we were
    /// proxy-acked, §2.6): group → the G-DR's address.
    pub(crate) proxy_handled: BTreeMap<(IfIndex, GroupId), Addr>,
    /// Core lists learned from joins/acks/IGMP (§2.1 advertisements).
    pub(crate) core_knowledge: BTreeMap<GroupId, Vec<Addr>>,
    /// Re-attachments deferred after a broken loop (§6.3 "it then
    /// attempts to re-join again" — after a short backoff so stale
    /// routing gets a chance to converge): group → (when, core index).
    pub(crate) deferred_reattach: BTreeMap<GroupId, (SimTime, usize)>,
    /// When each group's re-attachment campaign began, for the §6.1
    /// RECONNECT-TIMEOUT budget: once exceeded, the subtree is flushed.
    pub(crate) reattach_started: BTreeMap<GroupId, SimTime>,
    pub(crate) next_child_sweep: SimTime,
    pub(crate) next_iff_scan: SimTime,
    /// Deadline-driven timer service (see [`TimerKind`]); inert when
    /// `cfg.timer_wheel` is off.
    pub(crate) timers: EngineTimers,
    /// Parent address → groups currently parented through it. Keyed on
    /// address alone (a neighbour is one keepalive peer no matter how
    /// many groups ride it), kept in both timer modes: the §8.4
    /// aggregate-echo refresh walks it instead of rescanning the FIB.
    pub(crate) parent_index: BTreeMap<Addr, BTreeSet<GroupId>>,
    /// Child-liveness deadlines: `(last_heard + CHILD-ASSERT-EXPIRE,
    /// group, child)`. Maintained only when the wheel is enabled; the
    /// sweep pops due tuples and re-checks against the FIB, so stale
    /// tuples for removed children are harmless.
    pub(crate) child_expiry: BTreeSet<(SimTime, GroupId, Addr)>,
    pub(crate) stats: RouterStats,
    /// Observability counters: the drop-reason taxonomy, per-group
    /// protocol counters and latency histograms every path reports
    /// into. Plain data — bumping is hot-path safe.
    pub(crate) obs: RouterObs,
    /// Data-plane memo: the last group's dense FIB slot plus the FIB
    /// generation it was resolved at. A burst of packets to one group
    /// pays the ordered FIB lookup once (see [`Fib::slot`]).
    pub(crate) data_slot_memo: Option<(GroupId, GroupSlot, u64)>,
    /// Reused per-packet scratch for native spanning (the distinct
    /// outgoing interfaces); capacity persists across packets so the
    /// steady-state forward path performs no heap allocation.
    pub(crate) scratch_ifaces: Vec<IfIndex>,
    /// Reused per-packet scratch for CBT spanning: (iface, neighbour)
    /// pairs, sorted by interface before emission.
    pub(crate) scratch_neighbors: Vec<(IfIndex, Addr)>,
}

impl CbtRouter {
    /// Builds the engine for router `me` of `net`, booting at `now`.
    pub fn new(
        net: &NetworkSpec,
        me: RouterId,
        cfg: CbtConfig,
        routes: Box<dyn RouteLookup>,
        now: SimTime,
    ) -> Self {
        let spec = &net.routers[me.0 as usize];
        let ifaces: Vec<IfaceInfo> = spec
            .ifaces
            .iter()
            .map(|i| IfaceInfo {
                addr: i.addr,
                subnet: i.subnet,
                mask: i.mask,
                lan: match i.attachment {
                    Attachment::Lan(l) => Some(l),
                    Attachment::Link { .. } => None,
                },
            })
            .collect();
        let mut my_addrs: BTreeSet<Addr> = ifaces.iter().map(|i| i.addr).collect();
        my_addrs.insert(spec.addr);
        let mut lans = BTreeMap::new();
        for (n, info) in ifaces.iter().enumerate() {
            if info.lan.is_some() {
                lans.insert(
                    IfIndex(n as u32),
                    LanState {
                        election: QuerierElection::new(info.addr, cfg.igmp, now),
                        presence: GroupPresence::new(cfg.igmp),
                    },
                );
            }
        }
        let timers = EngineTimers::new(now, cfg.timer_wheel);
        let mut r = CbtRouter {
            me,
            id_addr: spec.addr,
            my_addrs,
            ifaces,
            next_child_sweep: now + cfg.child_assert_interval,
            next_iff_scan: now + cfg.iff_scan_interval,
            cfg,
            routes,
            lans,
            fib: Fib::new(),
            pending: PendingJoins::new(),
            pending_quits: BTreeMap::new(),
            gdr: BTreeSet::new(),
            proxy_handled: BTreeMap::new(),
            core_knowledge: BTreeMap::new(),
            deferred_reattach: BTreeMap::new(),
            reattach_started: BTreeMap::new(),
            timers,
            parent_index: BTreeMap::new(),
            child_expiry: BTreeSet::new(),
            stats: RouterStats::default(),
            obs: RouterObs::new(),
            data_slot_memo: None,
            scratch_ifaces: Vec::new(),
            scratch_neighbors: Vec::new(),
        };
        r.timers.arm(TimerKind::ChildSweep, r.next_child_sweep);
        r.timers.arm(TimerKind::IffScan, r.next_iff_scan);
        for iface in r.lan_ifaces() {
            r.arm_lan(iface);
        }
        r
    }

    // ------------------------------------------------------------------
    // Identity / lookup helpers used across the protocol modules.
    // ------------------------------------------------------------------

    /// This router's id in the network spec.
    pub fn router_id(&self) -> RouterId {
        self.me
    }

    /// Stable identity address.
    pub fn id_addr(&self) -> Addr {
        self.id_addr
    }

    /// Is `a` one of my addresses (identity or interface)?
    pub fn is_my_addr(&self, a: Addr) -> bool {
        self.my_addrs.contains(&a)
    }

    pub(crate) fn iface(&self, i: IfIndex) -> Option<&IfaceInfo> {
        self.ifaces.get(i.0 as usize)
    }

    /// Data-plane FIB lookup through the memoised dense slot: a burst
    /// of packets to one group resolves the ordered index once; any
    /// FIB insert/remove (generation bump) invalidates the memo.
    pub(crate) fn fib_slot_cached(&mut self, group: GroupId) -> Option<GroupSlot> {
        let generation = self.fib.generation();
        if let Some((g, slot, seen)) = self.data_slot_memo {
            if g == group && seen == generation {
                return Some(slot);
            }
        }
        let slot = self.fib.slot(group)?;
        self.data_slot_memo = Some((group, slot, generation));
        Some(slot)
    }

    /// Am I the D-DR on LAN interface `i` right now?
    pub fn i_am_dr(&self, i: IfIndex, now: SimTime) -> bool {
        self.lans.get(&i).is_some_and(|l| l.election.i_am_dr(now))
    }

    /// Am I the group-specific DR for `group` on LAN interface `i`?
    pub fn is_gdr(&self, i: IfIndex, group: GroupId) -> bool {
        self.gdr.contains(&(i, group))
    }

    /// The FIB (read access for tests/metrics).
    pub fn fib(&self) -> &Fib {
        &self.fib
    }

    /// Is this router on-tree for `group`?
    pub fn is_on_tree(&self, group: GroupId) -> bool {
        self.fib.on_tree(group)
    }

    /// Parent address for `group`, if any.
    pub fn parent_of(&self, group: GroupId) -> Option<Addr> {
        self.fib.get(group)?.parent.map(|p| p.addr)
    }

    /// Child addresses for `group`.
    pub fn children_of(&self, group: GroupId) -> Vec<Addr> {
        self.fib.get(group).map(|e| e.children.iter().map(|c| c.addr).collect()).unwrap_or_default()
    }

    /// Is a join pending for `group`?
    pub fn has_pending_join(&self, group: GroupId) -> bool {
        self.pending.contains(group)
    }

    /// Classifies this router's per-group protocol state at `now` —
    /// the state-labelling hook the exploration harness' search
    /// frontier is built on. Precedence: active teardown and
    /// re-attachment campaigns are reported even while a (re)join is
    /// also pending, because those are the phases whose fault handling
    /// is under test.
    pub fn protocol_phase(&self, group: GroupId, now: SimTime) -> ProtocolPhase {
        if self.pending_quits.contains_key(&group) {
            return ProtocolPhase::Teardown;
        }
        if self.deferred_reattach.contains_key(&group) || self.reattach_started.contains_key(&group)
        {
            return ProtocolPhase::CoreUnreachable;
        }
        if self.pending.contains(group) {
            return ProtocolPhase::PendingJoin;
        }
        match self.fib.get(group) {
            Some(e) => match e.parent {
                Some(p) if now >= p.last_reply + self.cfg.echo_interval => ProtocolPhase::EchoWait,
                _ => ProtocolPhase::Attached,
            },
            None => ProtocolPhase::Idle,
        }
    }

    /// Does this router hold any *transient* per-group state — a
    /// pending join, an unacknowledged quit, or a re-attachment
    /// campaign? The exploration harness waits for the whole fleet to
    /// answer `false` before checking tree invariants, so legitimate
    /// in-flight transitions are never misread as violations.
    pub fn has_transient_state(&self, group: GroupId) -> bool {
        self.pending.contains(group)
            || self.pending_quits.contains_key(&group)
            || self.deferred_reattach.contains_key(&group)
            || self.reattach_started.contains_key(&group)
    }

    /// Behaviour counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Observability counters (drop taxonomy, per-group protocol
    /// counters, latency histograms).
    pub fn obs(&self) -> &RouterObs {
        &self.obs
    }

    /// Mutable observability access, for host layers (the simulator
    /// node, the live plane) that classify drops the engine never sees
    /// — decode failures, checksum rejections.
    pub fn obs_mut(&mut self) -> &mut RouterObs {
        &mut self.obs
    }

    /// Exportable snapshot of this router's counters, labelled with
    /// its router address.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        self.obs.snapshot(&self.id_addr.to_string())
    }

    /// The configuration in force.
    pub fn config(&self) -> &CbtConfig {
        &self.cfg
    }

    /// Cores known for `group`: learned knowledge first, then managed
    /// mappings (§2.4). Never longer than [`cbt_wire::header::MAX_CORES`]
    /// — anything past the encodable bound is dropped here so the
    /// engine can never construct a control message the wire rejects.
    pub fn cores_for(&self, group: GroupId) -> Option<Vec<Addr>> {
        self.core_knowledge
            .get(&group)
            .cloned()
            .or_else(|| self.cfg.managed_mappings.get(&group).cloned())
            .map(|mut c| {
                c.truncate(cbt_wire::header::MAX_CORES);
                c
            })
            .filter(|c| !c.is_empty())
    }

    /// Records a core list for a group, as the engine does when any
    /// message carrying one arrives. Public because harnesses use it to
    /// model out-of-band `<core, group>` advertisement (§2.1).
    ///
    /// Lists longer than [`cbt_wire::header::MAX_CORES`] are truncated
    /// (primary first, so the highest-ranked cores survive): the wire
    /// format cannot carry them, and rejecting here keeps every later
    /// encode infallible. Lists arriving off the wire already satisfy
    /// the bound — decode enforces it.
    pub fn learn_cores(&mut self, group: GroupId, cores: &[Addr]) {
        if !cores.is_empty() {
            let keep = cores.len().min(cbt_wire::header::MAX_CORES);
            self.core_knowledge.insert(group, cores[..keep].to_vec());
        }
    }

    /// Am I the primary core for this core list?
    pub(crate) fn i_am_primary(&self, cores: &[Addr]) -> bool {
        cores.first().is_some_and(|c| self.is_my_addr(*c))
    }

    /// Am I any core in this list?
    pub(crate) fn i_am_listed_core(&self, cores: &[Addr]) -> bool {
        cores.iter().any(|c| self.is_my_addr(*c))
    }

    /// LAN interfaces (with presence tables).
    pub(crate) fn lan_ifaces(&self) -> Vec<IfIndex> {
        self.lans.keys().copied().collect()
    }

    /// Does any directly connected LAN have members of `group` that
    /// *this* router is responsible for (G-DR)?
    pub(crate) fn serves_members(&self, group: GroupId) -> bool {
        self.lans.iter().any(|(i, l)| l.presence.has_members(group) && self.is_gdr(*i, group))
    }

    // ------------------------------------------------------------------
    // Input dispatch.
    // ------------------------------------------------------------------

    /// Handles a received CBT control message.
    pub fn handle_control(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        src: Addr,
        msg: ControlMessage,
    ) -> Vec<RouterAction> {
        let mut act = Vec::new();
        // A frame claiming to come from one of our own addresses is
        // spoofed or looped — no legitimate neighbour ever is us.
        if self.is_my_addr(src) {
            return act;
        }
        self.obs.ctl_received(msg.group().addr().0, ctl_kind(msg.control_type()));
        match msg {
            ControlMessage::JoinRequest { subcode, group, origin, target_core, cores } => {
                self.on_join_request(
                    now,
                    iface,
                    src,
                    subcode,
                    group,
                    origin,
                    target_core,
                    &cores,
                    &mut act,
                );
            }
            ControlMessage::JoinAck { subcode, group, origin, target_core, cores } => {
                self.on_join_ack(
                    now,
                    iface,
                    src,
                    subcode,
                    group,
                    origin,
                    target_core,
                    &cores,
                    &mut act,
                );
            }
            ControlMessage::JoinNack { group, .. } => {
                self.on_join_nack(now, iface, src, group, &mut act);
            }
            ControlMessage::QuitRequest { group, .. } => {
                self.on_quit_request(now, iface, src, group, &mut act);
            }
            ControlMessage::QuitAck { group, .. } => {
                self.on_quit_ack(group);
            }
            ControlMessage::FlushTree { group, .. } => {
                self.on_flush_tree(now, iface, src, group, &mut act);
            }
            ControlMessage::EchoRequest { group, group_mask, .. } => {
                self.on_echo_request(now, iface, src, group, group_mask, &mut act);
            }
            ControlMessage::EchoReply { group, group_mask, .. } => {
                self.on_echo_reply(now, iface, src, group, group_mask);
            }
        }
        self.timers.compact();
        act
    }

    /// Handles a received IGMP message on a LAN interface.
    pub fn handle_igmp(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        src: Addr,
        msg: IgmpMessage,
    ) -> Vec<RouterAction> {
        let mut act = Vec::new();
        // Core lists ride in RP/Core-Reports (§2.2); learn them even
        // when the matching membership report was lost in flight — the
        // IFF-scan retry path depends on this knowledge.
        if let IgmpMessage::RpCore(r) = &msg {
            self.learn_cores(r.group, &r.cores);
        }
        let Some(lan) = self.lans.get_mut(&iface) else { return act };
        if let IgmpMessage::Query { group: None, .. } = msg {
            lan.election.on_query_heard(src, now);
        }
        let i_am_querier = lan.election.is_querier(now);
        let (events, sends) = lan.presence.on_igmp(&msg, now, i_am_querier);
        for s in sends {
            act.push(RouterAction::SendIgmp { iface, dst: s.dst, msg: s.msg });
        }
        for ev in events {
            self.on_presence_event(now, iface, ev, &mut act);
        }
        // A late-arriving core list for a group whose membership is
        // already live (the earlier RP/Core-Report was lost): join now
        // instead of waiting for the IFF-scan safety net.
        if let IgmpMessage::RpCore(r) = &msg {
            let live = self.lans.get(&iface).is_some_and(|l| l.presence.has_members(r.group));
            let handled = self.fib.on_tree(r.group)
                || self.pending.contains(r.group)
                || self.proxy_handled.contains_key(&(iface, r.group));
            if live && !handled && self.i_am_dr(iface, now) {
                self.trigger_join(now, iface, r.group, r.target_core_index as usize, &mut act);
            }
        }
        // Reports and Leaves move this LAN's presence deadlines (and a
        // foreign query re-times the election): re-clock its wheel entry.
        self.arm_lan(iface);
        self.timers.compact();
        act
    }

    /// Reacts to membership appearing/disappearing on a LAN.
    pub(crate) fn on_presence_event(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        ev: PresenceEvent,
        act: &mut Vec<RouterAction>,
    ) {
        match ev {
            PresenceEvent::NewGroup { group, cores, target_core_index } => {
                self.learn_cores(group, &cores);
                // §2.5: the D-DR establishes the subnet on the tree.
                if self.i_am_dr(iface, now) {
                    self.trigger_join(now, iface, group, target_core_index, act);
                } else if self.fib.on_tree(group) {
                    // A non-DR router that already has a branch serving
                    // other subnets still becomes this LAN's forwarder
                    // if nobody else is (rare; keeps delivery total).
                    if !self.proxy_handled.contains_key(&(iface, group)) {
                        self.gdr.insert((iface, group));
                    }
                }
            }
            PresenceEvent::GroupExpired { group } => {
                self.gdr.remove(&(iface, group));
                self.proxy_handled.remove(&(iface, group));
                // §2.7: no members anywhere and no children ⇒ quit.
                self.maybe_quit(now, group, act);
            }
        }
    }

    /// Advances every timer that has come due.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<RouterAction> {
        if self.cfg.timer_wheel {
            self.on_timer_wheel(now)
        } else {
            self.on_timer_scan(now)
        }
    }

    /// Legacy timer service: scan every piece of state for due work.
    /// Kept as the O(groups) reference the wheel path must match
    /// bit-for-bit (`cfg.timer_wheel = false`).
    fn on_timer_scan(&mut self, now: SimTime) -> Vec<RouterAction> {
        let mut act = Vec::new();
        // IGMP querier duty + presence expiry per LAN.
        let lan_ids: Vec<IfIndex> = self.lans.keys().copied().collect();
        for iface in lan_ids {
            let (sends, events) = {
                let lan = self.lans.get_mut(&iface).expect("listed");
                let sends: Vec<IgmpOut> = lan.election.poll(now);
                let events = lan.presence.poll(now);
                (sends, events)
            };
            for s in sends {
                act.push(RouterAction::SendIgmp { iface, dst: s.dst, msg: s.msg });
            }
            for ev in events {
                self.on_presence_event(now, iface, ev, &mut act);
            }
        }
        self.service_deferred_reattach(now, &mut act);
        self.service_pending_joins(now, &mut act);
        self.service_keepalives(now, &mut act);
        self.service_pending_quits(now, &mut act);
        if now >= self.next_child_sweep {
            self.sweep_children(now, &mut act);
            self.next_child_sweep = now + self.cfg.child_assert_interval;
        }
        if now >= self.next_iff_scan {
            self.iff_scan(now, &mut act);
            self.next_iff_scan = now + self.cfg.iff_scan_interval;
        }
        act
    }

    /// Wheel-driven timer service: pop the due entries, bucket them by
    /// kind, then run the same seven phases in the same order as the
    /// scan path — but each phase visits only its due candidates.
    ///
    /// Every candidate is re-checked against the authoritative state
    /// (`pending`, `deferred_reattach`, the FIB…) before acting, so a
    /// stale or early entry degenerates to a no-op (plus a lazy re-arm
    /// where the true deadline moved later) and never produces an
    /// action the scan path would not.
    fn on_timer_wheel(&mut self, now: SimTime) -> Vec<RouterAction> {
        let mut act = Vec::new();
        let mut lan_due: BTreeSet<IfIndex> = BTreeSet::new();
        let mut reattach_due: BTreeSet<GroupId> = BTreeSet::new();
        let mut join_due: BTreeSet<GroupId> = BTreeSet::new();
        let mut echo_cand: BTreeSet<GroupId> = BTreeSet::new();
        let mut quit_due: BTreeSet<GroupId> = BTreeSet::new();
        let mut sweep_due = false;
        let mut scan_due = false;
        for (kind, deadline) in self.timers.pop_due_with_deadline(now) {
            // Wakeup lag: how far past its armed deadline each timer
            // actually fired. In the simulator this is 0 unless wakes
            // coalesce; under the live runtime it measures scheduling
            // latency.
            self.obs.timer_lag_us.record(now.since(deadline).micros());
            match kind {
                TimerKind::Lan(i) => {
                    lan_due.insert(i);
                }
                TimerKind::Reattach(g) => {
                    reattach_due.insert(g);
                }
                TimerKind::PendingJoin(g) => {
                    join_due.insert(g);
                }
                TimerKind::Echo(g) => {
                    echo_cand.insert(g);
                }
                TimerKind::Quit(g) => {
                    quit_due.insert(g);
                }
                TimerKind::ChildSweep => sweep_due = true,
                TimerKind::IffScan => scan_due = true,
            }
        }
        // Phase 1: IGMP querier duty + presence expiry per due LAN.
        for iface in lan_due {
            if !self.lans.contains_key(&iface) {
                continue;
            }
            let (sends, events) = {
                let lan = self.lans.get_mut(&iface).expect("checked");
                let sends: Vec<IgmpOut> = lan.election.poll(now);
                let events = lan.presence.poll(now);
                (sends, events)
            };
            for s in sends {
                act.push(RouterAction::SendIgmp { iface, dst: s.dst, msg: s.msg });
            }
            for ev in events {
                self.on_presence_event(now, iface, ev, &mut act);
            }
            self.arm_lan(iface);
        }
        // Phase 2: deferred re-attachments.
        for group in reattach_due {
            if self.deferred_reattach.get(&group).is_some_and(|(t, _)| *t <= now) {
                let (_, idx) = self.deferred_reattach.remove(&group).expect("checked");
                self.start_reattach(now, group, idx, &mut act);
            }
        }
        // Phase 3: pending-join retransmit/expiry.
        for group in join_due {
            if self.pending.get(group).is_some_and(|p| p.next_deadline() <= now) {
                self.service_pending_join_group(now, group, &mut act);
            }
        }
        // Phase 4: parent keepalives.
        self.service_keepalives_wheel(now, echo_cand, &mut act);
        // Phase 5: pending-quit retransmits.
        for group in quit_due {
            if self.pending_quits.get(&group).is_some_and(|q| q.next_send <= now) {
                self.service_pending_quit_group(now, group, &mut act);
            }
        }
        // Phase 6: child-liveness sweep (cadence-gated, like the scan).
        if sweep_due {
            if now >= self.next_child_sweep {
                self.sweep_children_wheel(now, &mut act);
                self.next_child_sweep = now + self.cfg.child_assert_interval;
            }
            self.timers.arm(TimerKind::ChildSweep, self.next_child_sweep);
        }
        // Phase 7: the IFF scan (inherently a membership-wide pass).
        if scan_due {
            if now >= self.next_iff_scan {
                self.iff_scan(now, &mut act);
                self.next_iff_scan = now + self.cfg.iff_scan_interval;
            }
            self.timers.arm(TimerKind::IffScan, self.next_iff_scan);
        }
        self.timers.compact();
        act
    }

    /// Earliest instant any internal timer wants service.
    ///
    /// With the wheel enabled this is a peek at the wheel head, and it
    /// is *exact*: every mutating entry point ends by compacting stale
    /// entries off the head, and every state removal cancels its key,
    /// so the head always carries the earliest valid deadline. This
    /// matters beyond efficiency — `netsim` breaks same-instant event
    /// ties in scheduling order, so a spurious early wake would
    /// reshuffle a router against its peers and break bit-identity
    /// with the scan engine.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        if self.cfg.timer_wheel {
            return self.timers.peek();
        }
        let mut earliest: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                earliest = Some(earliest.map_or(t, |e: SimTime| e.min(t)));
            }
        };
        for lan in self.lans.values() {
            consider(Some(lan.election.next_wakeup()));
            consider(lan.presence.next_wakeup());
        }
        consider(self.pending.next_wakeup());
        consider(self.deferred_reattach.values().map(|(t, _)| *t).min());
        consider(self.next_echo_deadline());
        consider(self.pending_quits.values().map(|q| q.next_send).min());
        consider(Some(self.next_child_sweep));
        consider(Some(self.next_iff_scan));
        earliest
    }

    // ------------------------------------------------------------------
    // Timer arming + index maintenance, shared by the protocol modules.
    // ------------------------------------------------------------------

    /// (Re-)clocks a LAN's wheel entry from its election + presence
    /// deadlines. Called wherever those deadlines can change: after
    /// every `handle_igmp` and after each phase-1 poll.
    pub(crate) fn arm_lan(&mut self, iface: IfIndex) {
        if !self.timers.enabled {
            return;
        }
        if let Some(lan) = self.lans.get(&iface) {
            let mut d = lan.election.next_wakeup();
            if let Some(p) = lan.presence.next_wakeup() {
                d = d.min(p);
            }
            self.timers.arm(TimerKind::Lan(iface), d);
        }
    }

    /// (Re-)clocks a group's keepalive entry: next echo *or* the echo-
    /// timeout failure instant, whichever comes first. No-op without a
    /// parent.
    pub(crate) fn arm_echo(&mut self, group: GroupId) {
        if !self.timers.enabled {
            return;
        }
        let Some(p) = self.fib.get(group).and_then(|e| e.parent) else { return };
        let d = p.next_echo.min(p.last_reply + self.cfg.echo_timeout);
        self.timers.arm(TimerKind::Echo(group), d);
    }

    /// Defers a re-attachment, keeping any earlier deferral (the map's
    /// `or_insert` semantics), and arms the wheel at the instant the
    /// map actually holds.
    pub(crate) fn defer_reattach(&mut self, group: GroupId, at: SimTime, core_index: usize) {
        let (t, _) = *self.deferred_reattach.entry(group).or_insert((at, core_index));
        self.timers.arm(TimerKind::Reattach(group), t);
    }

    /// Re-points `parent_index` after any mutation of a group's parent.
    /// `old` is the parent address captured *before* the mutation.
    pub(crate) fn reindex_parent(&mut self, group: GroupId, old: Option<Addr>) {
        let new = self.fib.get(group).and_then(|e| e.parent.map(|p| p.addr));
        if old == new {
            return;
        }
        if let Some(a) = old {
            if let Some(set) = self.parent_index.get_mut(&a) {
                set.remove(&group);
                if set.is_empty() {
                    self.parent_index.remove(&a);
                }
            }
        }
        if let Some(a) = new {
            self.parent_index.entry(a).or_default().insert(group);
        } else {
            // No parent ⇒ no keepalive deadline; the entry must not
            // linger or `next_wakeup` stops being exact.
            self.timers.cancel(TimerKind::Echo(group));
        }
    }

    /// Removes a group's FIB entry and keeps `parent_index` honest.
    /// Every `fib.remove` in the engine goes through here.
    pub(crate) fn remove_fib_entry(&mut self, group: GroupId) {
        let old = self.fib.get(group).and_then(|e| e.parent.map(|p| p.addr));
        self.fib.remove(group);
        self.reindex_parent(group, old);
    }

    // ------------------------------------------------------------------
    // Small shared emit helpers.
    // ------------------------------------------------------------------

    pub(crate) fn send_control(
        &mut self,
        act: &mut Vec<RouterAction>,
        iface: IfIndex,
        dst: Addr,
        msg: ControlMessage,
    ) {
        match msg.control_type() {
            cbt_wire::ControlType::JoinRequest => {}
            cbt_wire::ControlType::JoinAck => self.stats.acks_sent += 1,
            cbt_wire::ControlType::JoinNack => self.stats.nacks_sent += 1,
            cbt_wire::ControlType::QuitRequest => self.stats.quits_sent += 1,
            cbt_wire::ControlType::FlushTree => self.stats.flushes_sent += 1,
            cbt_wire::ControlType::EchoRequest => self.stats.echo_requests_sent += 1,
            cbt_wire::ControlType::EchoReply => self.stats.echo_replies_sent += 1,
            cbt_wire::ControlType::QuitAck => {}
        }
        self.obs.ctl_sent(msg.group().addr().0, ctl_kind(msg.control_type()));
        act.push(RouterAction::SendControl { iface, dst, msg });
    }
}

/// Maps a wire-level control type onto its observability class.
pub(crate) fn ctl_kind(t: cbt_wire::ControlType) -> CtlKind {
    match t {
        cbt_wire::ControlType::JoinRequest => CtlKind::JoinRequest,
        cbt_wire::ControlType::JoinAck => CtlKind::JoinAck,
        cbt_wire::ControlType::JoinNack => CtlKind::JoinNack,
        cbt_wire::ControlType::QuitRequest => CtlKind::QuitRequest,
        cbt_wire::ControlType::QuitAck => CtlKind::QuitAck,
        cbt_wire::ControlType::FlushTree => CtlKind::FlushTree,
        cbt_wire::ControlType::EchoRequest => CtlKind::EchoRequest,
        cbt_wire::ControlType::EchoReply => CtlKind::EchoReply,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Direct-drive harness: a single engine fed synthetic inputs, with
    //! a scripted route table — no simulator, no other routers.

    use super::*;
    use cbt_topology::NetworkBuilder;

    /// Scripted routes: dst addr → hop.
    pub struct ScriptRoutes(pub BTreeMap<Addr, Hop>);

    impl RouteLookup for ScriptRoutes {
        fn hop_toward(&self, dst: Addr) -> Option<Hop> {
            self.0.get(&dst).copied()
        }
    }

    /// A 3-interface router: if0 = LAN (10.1.0.x/24, my addr .1),
    /// if1 = p2p link "up" (172.31.0.0/30, my addr .1, peer .2),
    /// if2 = p2p link "down" (172.31.0.4/30, my addr .5, peer .6).
    pub fn engine(cfg: CbtConfig) -> CbtRouter {
        let mut b = NetworkBuilder::new();
        let me = b.router("ME");
        let up = b.router("UP");
        let down = b.router("DOWN");
        let lan = b.lan("S0");
        b.attach(lan, me);
        b.host("H", lan);
        b.link(me, up, 1);
        b.link(me, down, 1);
        let net = b.build();
        // Default script: everything unknown.
        CbtRouter::new(&net, me, cfg, Box::new(ScriptRoutes(BTreeMap::new())), SimTime::ZERO)
    }

    /// Replaces the whole scripted table.
    pub fn set_routes(r: &mut CbtRouter, map: BTreeMap<Addr, Hop>) {
        r.routes = Box::new(ScriptRoutes(map));
    }

    /// Upstream hop helper (out of if1 toward 172.31.0.2).
    pub fn up_hop() -> Hop {
        Hop {
            iface: IfIndex(1),
            router: RouterId(1),
            addr: Addr::from_octets(172, 31, 0, 2),
            dist: 1,
        }
    }

    /// Downstream neighbour address (on if2).
    pub fn down_addr() -> Addr {
        Addr::from_octets(172, 31, 0, 6)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn boot_state_is_clean() {
        let e = engine(CbtConfig::default());
        assert!(e.fib().is_empty());
        assert!(!e.has_pending_join(GroupId::numbered(1)));
        assert_eq!(e.stats(), RouterStats::default());
        assert!(e.is_my_addr(e.id_addr()));
        assert!(e.is_my_addr(Addr::from_octets(10, 1, 0, 1)), "LAN iface addr");
        assert!(e.is_my_addr(Addr::from_octets(172, 31, 0, 1)), "link iface addr");
        assert!(!e.is_my_addr(Addr::from_octets(9, 9, 9, 9)));
    }

    #[test]
    fn boot_sends_startup_igmp_queries() {
        let mut e = engine(CbtConfig::default());
        let act = e.on_timer(SimTime::ZERO);
        let queries: Vec<_> = act
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    RouterAction::SendIgmp { msg: IgmpMessage::Query { group: None, .. }, .. }
                )
            })
            .collect();
        assert_eq!(queries.len(), 1, "first start-up query fires at boot (§2.3)");
    }

    #[test]
    fn next_wakeup_exists_at_boot() {
        let e = engine(CbtConfig::default());
        assert!(e.next_wakeup().is_some(), "start-up queries are scheduled");
    }

    #[test]
    fn core_knowledge_prefers_learned_over_managed() {
        let g = GroupId::numbered(1);
        let managed = vec![Addr::from_octets(10, 255, 0, 9)];
        let learned = vec![Addr::from_octets(10, 255, 0, 3)];
        let mut e = engine(CbtConfig::default().with_mapping(g, managed.clone()));
        assert_eq!(e.cores_for(g), Some(managed));
        e.learn_cores(g, &learned);
        assert_eq!(e.cores_for(g), Some(learned));
        e.learn_cores(g, &[]);
        assert!(e.cores_for(g).is_some(), "empty list does not erase knowledge");
        assert_eq!(e.cores_for(GroupId::numbered(99)), None);
    }

    #[test]
    fn i_am_dr_on_sole_lan() {
        let e = engine(CbtConfig::default());
        assert!(e.i_am_dr(IfIndex(0), SimTime::ZERO), "only router on the LAN");
        assert!(!e.i_am_dr(IfIndex(1), SimTime::ZERO), "p2p links have no DR");
    }
}
