//! Shared "parallelism config" resolution.
//!
//! Two knobs in this workspace pick a worker count: the eval runner's
//! trial fan-out (`--jobs` / `CBT_EVAL_JOBS`) and the node's group-space
//! sharding (`--shards` / `CBT_SHARDS`). Both resolve through this one
//! helper so the precedence rules and the error messages are identical:
//!
//! 1. an explicit command-line flag wins,
//! 2. otherwise the environment variable,
//! 3. otherwise the configured default (available cores unless the call
//!    site pins something else, e.g. `1` for deterministic simulation).
//!
//! Invalid values — non-numeric, zero, negative — are rejected with the
//! same `"<name> expects a positive integer"` message whether they came
//! from the flag or the environment.

use std::thread;

/// One parallelism knob: a flag name, its environment fallback, and the
/// default used when neither is present.
#[derive(Debug, Clone, Copy)]
pub struct Parallelism {
    flag: &'static str,
    env: &'static str,
    /// `None` means "available cores".
    default: Option<usize>,
}

/// The eval runner's trial fan-out: `--jobs`, `CBT_EVAL_JOBS`, default
/// available cores.
pub const EVAL_JOBS: Parallelism = Parallelism::new("--jobs", "CBT_EVAL_JOBS");

/// The node's group-space shard count: `--shards`, `CBT_SHARDS`,
/// default available cores (`cbtd`); simulation configs pin the default
/// to 1 via [`Parallelism::with_default`] so replay stays deterministic
/// unless sharding is asked for.
pub const NODE_SHARDS: Parallelism = Parallelism::new("--shards", "CBT_SHARDS");

impl Parallelism {
    /// A knob resolving `flag`, then `env`, then available cores.
    pub const fn new(flag: &'static str, env: &'static str) -> Self {
        Parallelism { flag, env, default: None }
    }

    /// Pins the fallback default instead of available cores.
    pub const fn with_default(mut self, n: usize) -> Self {
        self.default = Some(n);
        self
    }

    /// The environment variable this knob reads.
    pub const fn env_var(&self) -> &'static str {
        self.env
    }

    /// The command-line flag this knob documents.
    pub const fn flag_name(&self) -> &'static str {
        self.flag
    }

    /// Parses a raw flag value (`--jobs 4` → `"4"`). Zero and garbage
    /// are errors; flags demand an explicit, valid worker count.
    pub fn parse_flag(&self, value: &str) -> Result<usize, String> {
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("{} expects a positive integer", self.flag)),
        }
    }

    /// Reads the environment variable: `Ok(None)` when unset,
    /// `Ok(Some(n))` when valid, and the same positive-integer error as
    /// a bad flag when set to garbage.
    pub fn from_env(&self) -> Result<Option<usize>, String> {
        match std::env::var(self.env) {
            Err(_) => Ok(None),
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(format!("{} expects a positive integer", self.env)),
            },
        }
    }

    /// The default when neither flag nor environment decide: the pinned
    /// default if one was configured, else available cores (min 1).
    pub fn default_value(&self) -> usize {
        self.default
            .unwrap_or_else(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// Full precedence resolution: explicit flag value > environment >
    /// default. Errors carry the offending knob's name.
    pub fn resolve(&self, flag_value: Option<usize>) -> Result<usize, String> {
        if let Some(n) = flag_value {
            if n >= 1 {
                return Ok(n);
            }
            return Err(format!("{} expects a positive integer", self.flag));
        }
        if let Some(n) = self.from_env()? {
            return Ok(n);
        }
        Ok(self.default_value())
    }

    /// Like [`resolve`](Self::resolve) but for call sites that cannot
    /// surface an error (e.g. `Default::default()` impls): an invalid
    /// environment value silently falls back to the default.
    pub fn resolve_lenient(&self) -> usize {
        self.from_env().ok().flatten().unwrap_or_else(|| self.default_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Knobs pointing at env vars no other test mutates: std::env is
    // process-global, so each test owns a unique variable name.
    const T1: Parallelism = Parallelism::new("--t1", "CBT_TEST_PAR_T1");
    const T2: Parallelism = Parallelism::new("--t2", "CBT_TEST_PAR_T2");
    const T3: Parallelism = Parallelism::new("--t3", "CBT_TEST_PAR_T3");

    #[test]
    fn flag_beats_env_beats_default() {
        std::env::set_var("CBT_TEST_PAR_T1", "3");
        assert_eq!(T1.resolve(Some(7)), Ok(7), "flag wins");
        assert_eq!(T1.resolve(None), Ok(3), "env next");
        std::env::remove_var("CBT_TEST_PAR_T1");
        assert_eq!(T1.with_default(2).resolve(None), Ok(2), "pinned default last");
        assert!(T1.resolve(None).unwrap() >= 1, "cores default is at least 1");
    }

    #[test]
    fn flag_and_env_share_the_error_shape() {
        assert_eq!(T2.parse_flag("0"), Err("--t2 expects a positive integer".into()));
        assert_eq!(T2.parse_flag("lots"), Err("--t2 expects a positive integer".into()));
        assert_eq!(T2.resolve(Some(0)), Err("--t2 expects a positive integer".into()));
        std::env::set_var("CBT_TEST_PAR_T2", "-1");
        assert_eq!(T2.resolve(None), Err("CBT_TEST_PAR_T2 expects a positive integer".into()));
        std::env::remove_var("CBT_TEST_PAR_T2");
    }

    #[test]
    fn lenient_resolution_never_fails() {
        std::env::set_var("CBT_TEST_PAR_T3", "junk");
        assert_eq!(T3.with_default(1).resolve_lenient(), 1, "bad env falls back");
        std::env::set_var("CBT_TEST_PAR_T3", "5");
        assert_eq!(T3.with_default(1).resolve_lenient(), 5);
        std::env::remove_var("CBT_TEST_PAR_T3");
    }

    #[test]
    fn real_knobs_are_wired_to_the_documented_names() {
        assert_eq!(EVAL_JOBS.flag_name(), "--jobs");
        assert_eq!(EVAL_JOBS.env_var(), "CBT_EVAL_JOBS");
        assert_eq!(NODE_SHARDS.flag_name(), "--shards");
        assert_eq!(NODE_SHARDS.env_var(), "CBT_SHARDS");
    }
}
