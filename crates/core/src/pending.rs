//! Transient pending-join state (§2.5).
//!
//! "For the period between any CBT-capable router forwarding (or
//! originating) a JOIN_REQUEST and receiving a JOIN_ACK the router is
//! not permitted to acknowledge any subsequent joins received for the
//! same group; rather, the router caches such joins till such time as
//! it has itself received a JOIN_ACK for the original join."

use cbt_netsim::SimTime;
use cbt_topology::IfIndex;
use cbt_wire::{Addr, GroupId, JoinSubcode};
use std::collections::BTreeMap;

/// Why this router has a join in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinReason {
    /// We are the D-DR and local membership triggered it (§2.5). The
    /// listed LAN interfaces want G-DR status once the ack arrives.
    LocalMembership {
        /// LAN interfaces whose membership triggered/joined the wait.
        trigger_lans: Vec<IfIndex>,
    },
    /// We are forwarding someone else's join (§2.5): remember the
    /// previous hop so the ack can retrace.
    Forwarded {
        /// Interface the join arrived on.
        from_iface: IfIndex,
        /// Previous-hop address.
        from_addr: Addr,
        /// The join's original subcode (ACTIVE_JOIN or REJOIN_ACTIVE).
        subcode: JoinSubcode,
    },
    /// We lost our parent and are re-attaching (§6.1), or we are a
    /// non-primary core joining the primary (§1, §2.5, §6.2).
    Reattach,
}

/// A join cached behind our own pending join (§2.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedJoin {
    /// Interface it arrived on.
    pub from_iface: IfIndex,
    /// Previous hop that sent it.
    pub from_addr: Addr,
    /// The join's origin field (needed for the proxy-ack test, §2.6).
    pub origin: Addr,
    /// Its subcode.
    pub subcode: JoinSubcode,
}

/// One in-flight join for one group.
#[derive(Debug, Clone)]
pub struct PendingJoin {
    /// Why it exists.
    pub reason: JoinReason,
    /// The join's `origin` field (ours, or the forwarded origin).
    pub origin: Addr,
    /// Core the current attempt targets.
    pub target_core: Addr,
    /// Full ordered core list carried in the join.
    pub cores: Vec<Addr>,
    /// Upstream hop the join went to: (iface, next-hop address).
    pub upstream: (IfIndex, Addr),
    /// Subcode of the join *we* sent upstream.
    pub sent_subcode: JoinSubcode,
    /// Joins cached while waiting (§2.5).
    pub cached: Vec<CachedJoin>,
    /// When the whole endeavour started (EXPIRE-PENDING-JOIN budget).
    pub started: SimTime,
    /// When the current core attempt started (PEND-JOIN-TIMEOUT budget).
    pub attempt_started: SimTime,
    /// Next retransmission instant (PEND-JOIN-INTERVAL).
    pub next_retransmit: SimTime,
    /// Which entry of `cores` the current attempt targets.
    pub core_index: usize,
}

impl PendingJoin {
    /// Earliest instant this pending join needs timer service.
    pub fn next_deadline(&self) -> SimTime {
        self.next_retransmit
    }
}

/// All pending joins, keyed by group (at most one per group, §2.5).
#[derive(Debug, Clone, Default)]
pub struct PendingJoins {
    joins: BTreeMap<GroupId, PendingJoin>,
}

impl PendingJoins {
    /// Empty set.
    pub fn new() -> Self {
        PendingJoins::default()
    }

    /// Is a join pending for `group`?
    pub fn contains(&self, group: GroupId) -> bool {
        self.joins.contains_key(&group)
    }

    /// Inserts a pending join; panics if one already exists for the
    /// group (callers must check first — a second trigger must cache or
    /// coalesce, never double-send).
    pub fn insert(&mut self, group: GroupId, join: PendingJoin) {
        let prev = self.joins.insert(group, join);
        assert!(prev.is_none(), "second pending join for {group}");
    }

    /// Read access.
    pub fn get(&self, group: GroupId) -> Option<&PendingJoin> {
        self.joins.get(&group)
    }

    /// Write access.
    pub fn get_mut(&mut self, group: GroupId) -> Option<&mut PendingJoin> {
        self.joins.get_mut(&group)
    }

    /// Removes and returns the pending join for `group`.
    pub fn remove(&mut self, group: GroupId) -> Option<PendingJoin> {
        self.joins.remove(&group)
    }

    /// Iterates (group, pending).
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &PendingJoin)> {
        self.joins.iter().map(|(g, p)| (*g, p))
    }

    /// Groups with a due retransmission/expiry check at `now`.
    pub fn due(&self, now: SimTime) -> Vec<GroupId> {
        self.joins.iter().filter(|(_, p)| p.next_deadline() <= now).map(|(g, _)| *g).collect()
    }

    /// Earliest deadline over all pending joins.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.joins.values().map(|p| p.next_deadline()).min()
    }

    /// Number of pending joins.
    pub fn len(&self) -> usize {
        self.joins.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u16) -> GroupId {
        GroupId::numbered(n)
    }

    fn pj(t0: u64) -> PendingJoin {
        PendingJoin {
            reason: JoinReason::LocalMembership { trigger_lans: vec![IfIndex(0)] },
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: Addr::from_octets(10, 255, 0, 3),
            cores: vec![Addr::from_octets(10, 255, 0, 3)],
            upstream: (IfIndex(1), Addr::from_octets(172, 31, 0, 2)),
            sent_subcode: JoinSubcode::ActiveJoin,
            cached: Vec::new(),
            started: SimTime::from_secs(t0),
            attempt_started: SimTime::from_secs(t0),
            next_retransmit: SimTime::from_secs(t0 + 10),
            core_index: 0,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut p = PendingJoins::new();
        assert!(p.is_empty());
        p.insert(g(1), pj(0));
        assert!(p.contains(g(1)));
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(g(1)).unwrap().core_index, 0);
        p.get_mut(g(1)).unwrap().core_index = 1;
        assert_eq!(p.remove(g(1)).unwrap().core_index, 1);
        assert!(p.remove(g(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "second pending join")]
    fn double_insert_panics() {
        let mut p = PendingJoins::new();
        p.insert(g(1), pj(0));
        p.insert(g(1), pj(5));
    }

    #[test]
    fn due_and_wakeup() {
        let mut p = PendingJoins::new();
        p.insert(g(1), pj(0)); // retransmit at t=10
        p.insert(g(2), pj(20)); // retransmit at t=30
        assert_eq!(p.next_wakeup(), Some(SimTime::from_secs(10)));
        assert!(p.due(SimTime::from_secs(9)).is_empty());
        assert_eq!(p.due(SimTime::from_secs(10)), vec![g(1)]);
        assert_eq!(p.due(SimTime::from_secs(31)), vec![g(1), g(2)]);
    }

    #[test]
    fn cached_joins_accumulate() {
        let mut p = PendingJoins::new();
        p.insert(g(1), pj(0));
        p.get_mut(g(1)).unwrap().cached.push(CachedJoin {
            from_iface: IfIndex(2),
            from_addr: Addr::from_octets(172, 31, 0, 6),
            origin: Addr::from_octets(10, 2, 0, 1),
            subcode: JoinSubcode::ActiveJoin,
        });
        assert_eq!(p.get(g(1)).unwrap().cached.len(), 1);
    }
}
