//! The Forwarding Information Base (spec §5, Fig. 4): per-group
//! parent/child state, one entry per group this router is on-tree for.
//!
//! "CBT routers create FIB entries whenever they send or receive a
//! JOIN_ACK (with the exception of a proxy-ack). The FIB describes the
//! parent-child relationships on a per-group basis" — plus, here, the
//! keepalive bookkeeping (last echo times) that §6.1/§9 hang off those
//! relationships.

use cbt_netsim::SimTime;
use cbt_topology::IfIndex;
use cbt_wire::{Addr, GroupId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Maximum children per group entry. Fig. 4's field widths "assume a
/// maximum of 16 directly connected neighbouring routers".
pub const MAX_CHILDREN: usize = 16;

/// The parent half of a FIB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parent {
    /// Parent router's address (next tree hop toward the core).
    pub addr: Addr,
    /// Interface ("parent vif") the parent is reached through.
    pub iface: IfIndex,
    /// Last time an ECHO_REPLY (or any liveness proof) arrived.
    pub last_reply: SimTime,
    /// When the next ECHO_REQUEST is due.
    pub next_echo: SimTime,
}

/// One child in a FIB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Child {
    /// Child router's address.
    pub addr: Addr,
    /// Interface ("child vif") the child is reached through.
    pub iface: IfIndex,
    /// Last time an ECHO_REQUEST arrived from this child.
    pub last_heard: SimTime,
}

/// A per-group FIB entry.
#[derive(Debug, Clone, Default)]
pub struct FibEntry {
    /// Upstream attachment; `None` exactly when this router is the
    /// group's primary core ("R4 does not have a parent since it is the
    /// primary core", §5) — or a core whose own rejoin is in flight.
    pub parent: Option<Parent>,
    /// Downstream attachments.
    pub children: Vec<Child>,
    /// Ordered core list for the group, primary first, as learned from
    /// joins/acks ("the full list of core addresses is carried in a
    /// JOIN-ACK", §8.3).
    pub cores: Vec<Addr>,
    /// True if this router is one of the group's cores.
    pub i_am_core: bool,
}

impl FibEntry {
    /// The primary core (first of the core list).
    pub fn primary_core(&self) -> Option<Addr> {
        self.cores.first().copied()
    }

    /// Adds (or refreshes) a child. Returns `false` when the entry is
    /// full ([`MAX_CHILDREN`]) and the child is new.
    pub fn add_child(&mut self, addr: Addr, iface: IfIndex, now: SimTime) -> bool {
        if let Some(c) = self.children.iter_mut().find(|c| c.addr == addr) {
            c.iface = iface;
            c.last_heard = now;
            return true;
        }
        if self.children.len() >= MAX_CHILDREN {
            return false;
        }
        self.children.push(Child { addr, iface, last_heard: now });
        true
    }

    /// Removes a child by address; returns whether it existed.
    pub fn remove_child(&mut self, addr: Addr) -> bool {
        let before = self.children.len();
        self.children.retain(|c| c.addr != addr);
        self.children.len() != before
    }

    /// Is `addr` one of this entry's children?
    pub fn has_child(&self, addr: Addr) -> bool {
        self.children.iter().any(|c| c.addr == addr)
    }

    /// The distinct interfaces children are reached through, with the
    /// number of children behind each — CBT-mode forwarding picks
    /// unicast vs multicast per interface from this (§5).
    pub fn child_ifaces(&self) -> BTreeMap<IfIndex, usize> {
        let mut m = BTreeMap::new();
        for c in &self.children {
            *m.entry(c.iface).or_insert(0) += 1;
        }
        m
    }

    /// Is `iface` a valid on-tree interface for this entry (§7)?
    pub fn is_tree_iface(&self, iface: IfIndex) -> bool {
        self.parent.is_some_and(|p| p.iface == iface)
            || self.children.iter().any(|c| c.iface == iface)
    }

    /// Is `addr` this entry's parent?
    pub fn is_parent(&self, addr: Addr) -> bool {
        self.parent.is_some_and(|p| p.addr == addr)
    }
}

/// A stable handle to one group's dense FIB slot, valid for as long as
/// the FIB's [`Fib::generation`] is unchanged. Data-plane code resolves
/// a group to its slot once per burst and then indexes directly,
/// instead of walking the ordered index per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSlot(usize);

/// Deterministic hasher for `GroupId` keys. The group address is
/// already a well-mixed 32-bit value after the splitmix-style finisher,
/// and — unlike std's randomly seeded SipHash — the same group hashes
/// the same in every process, which the sharded engine's steering and
/// the determinism suite both rely on.
#[derive(Debug, Default)]
pub struct GroupIdHasher(u64);

impl Hasher for GroupIdHasher {
    fn finish(&self) -> u64 {
        // splitmix64 finisher: full avalanche on sequential addresses.
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-u32 key parts (none today).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u32(&mut self, x: u32) {
        self.0 ^= u64::from(x);
    }
}

/// Hash map keyed by group with the deterministic [`GroupIdHasher`].
pub type GroupIndex<V> = HashMap<GroupId, V, BuildHasherDefault<GroupIdHasher>>;

/// The full FIB: group → entry.
///
/// Entries live in a dense slot vector. Two indexes point into it:
///
/// * `index` — a hash map ([`GroupIndex`], deterministic hasher) giving
///   the per-packet group → slot lookup in O(1); with a `BTreeMap` here
///   the sharded hot path paid an ordered walk per burst.
/// * `order` — a sorted group set kept in lockstep, so every iteration
///   API stays deterministic (sorted by group — the determinism suite
///   depends on this order). Insert/remove pay the O(log n) twice; both
///   are control-plane operations.
///
/// The slot layer exists for the data plane: [`Fib::slot`] pays the
/// hash lookup once per burst, after which [`Fib::at`] is a
/// bounds-checked index.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    index: GroupIndex<usize>,
    order: BTreeSet<GroupId>,
    slots: Vec<Option<FibEntry>>,
    free: Vec<usize>,
    generation: u64,
}

impl Fib {
    /// Empty FIB.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Entry for `group`, if on-tree.
    pub fn get(&self, group: GroupId) -> Option<&FibEntry> {
        self.index.get(&group).map(|&s| self.slots[s].as_ref().expect("indexed slot is live"))
    }

    /// Mutable entry for `group`.
    pub fn get_mut(&mut self, group: GroupId) -> Option<&mut FibEntry> {
        let s = *self.index.get(&group)?;
        Some(self.slots[s].as_mut().expect("indexed slot is live"))
    }

    /// Resolves `group` to its dense slot — the once-per-burst half of
    /// a data-plane lookup. The handle is invalidated by any insert or
    /// remove (see [`Fib::generation`]).
    pub fn slot(&self, group: GroupId) -> Option<GroupSlot> {
        self.index.get(&group).map(|&s| GroupSlot(s))
    }

    /// Direct slot access — the per-packet half of a data-plane lookup.
    pub fn at(&self, slot: GroupSlot) -> &FibEntry {
        self.slots[slot.0].as_ref().expect("slot handle outlived its entry")
    }

    /// Bumped on every insert and remove; a [`GroupSlot`] obtained at
    /// generation `n` must not be used once the generation moves on.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Creates (or returns) the entry for `group`.
    pub fn entry(&mut self, group: GroupId) -> &mut FibEntry {
        let s = match self.index.get(&group) {
            Some(&s) => s,
            None => {
                self.generation += 1;
                let s = match self.free.pop() {
                    Some(s) => {
                        self.slots[s] = Some(FibEntry::default());
                        s
                    }
                    None => {
                        self.slots.push(Some(FibEntry::default()));
                        self.slots.len() - 1
                    }
                };
                self.index.insert(group, s);
                self.order.insert(group);
                s
            }
        };
        self.slots[s].as_mut().expect("indexed slot is live")
    }

    /// Deletes the entry for `group`; returns it if it existed.
    pub fn remove(&mut self, group: GroupId) -> Option<FibEntry> {
        let s = self.index.remove(&group)?;
        self.order.remove(&group);
        self.generation += 1;
        self.free.push(s);
        Some(self.slots[s].take().expect("indexed slot is live"))
    }

    /// Is this router on-tree for `group`?
    pub fn on_tree(&self, group: GroupId) -> bool {
        self.index.contains_key(&group)
    }

    /// All on-tree groups, sorted.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.order.iter().copied()
    }

    /// All (group, entry) pairs, sorted by group. (The sorted `order`
    /// set drives iteration — never the hash index, whose bucket order
    /// is not part of the determinism contract.)
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &FibEntry)> {
        self.order
            .iter()
            .map(|g| (*g, self.slots[self.index[g]].as_ref().expect("indexed slot is live")))
    }

    /// Mutable iteration, sorted by group. (Control-plane only — the
    /// per-call scatter vector is fine off the packet path.)
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (GroupId, &mut FibEntry)> {
        let Fib { index, order, slots, .. } = self;
        let mut refs: Vec<Option<&mut FibEntry>> = slots.iter_mut().map(|o| o.as_mut()).collect();
        order.iter().map(move |g| (*g, refs[index[g]].take().expect("indexed slot is live")))
    }

    /// Number of entries — the "state per router" metric of experiment
    /// S93-T1.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no groups are on-tree.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> GroupId {
        GroupId::numbered(1)
    }

    fn a(n: u8) -> Addr {
        Addr::from_octets(10, 0, 0, n)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn entry_lifecycle() {
        let mut fib = Fib::new();
        assert!(!fib.on_tree(g()));
        assert!(fib.is_empty());
        let e = fib.entry(g());
        e.cores = vec![a(4), a(9)];
        assert!(fib.on_tree(g()));
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.get(g()).unwrap().primary_core(), Some(a(4)));
        assert!(fib.remove(g()).is_some());
        assert!(fib.is_empty());
    }

    #[test]
    fn children_add_refresh_remove() {
        let mut e = FibEntry::default();
        assert!(e.add_child(a(1), IfIndex(0), t(0)));
        assert!(e.add_child(a(2), IfIndex(1), t(0)));
        assert!(e.has_child(a(1)));
        // Re-adding refreshes instead of duplicating.
        assert!(e.add_child(a(1), IfIndex(0), t(5)));
        assert_eq!(e.children.len(), 2);
        assert_eq!(e.children[0].last_heard, t(5));
        assert!(e.remove_child(a(1)));
        assert!(!e.remove_child(a(1)));
        assert_eq!(e.children.len(), 1);
    }

    #[test]
    fn child_capacity_is_sixteen() {
        let mut e = FibEntry::default();
        for i in 0..MAX_CHILDREN {
            assert!(e.add_child(a(i as u8 + 1), IfIndex(0), t(0)), "child {i}");
        }
        assert!(!e.add_child(a(200), IfIndex(0), t(0)), "17th child rejected");
        // But refreshing an existing one still works at capacity.
        assert!(e.add_child(a(1), IfIndex(0), t(9)));
    }

    #[test]
    fn child_ifaces_counts_per_interface() {
        let mut e = FibEntry::default();
        e.add_child(a(1), IfIndex(0), t(0));
        e.add_child(a(2), IfIndex(0), t(0));
        e.add_child(a(3), IfIndex(2), t(0));
        let m = e.child_ifaces();
        assert_eq!(m[&IfIndex(0)], 2, "two children share iface 0 ⇒ CBT multicast there");
        assert_eq!(m[&IfIndex(2)], 1, "one child on iface 2 ⇒ CBT unicast");
    }

    #[test]
    fn tree_iface_and_parent_tests() {
        let mut e = FibEntry {
            parent: Some(Parent {
                addr: a(9),
                iface: IfIndex(3),
                last_reply: t(0),
                next_echo: t(30),
            }),
            ..Default::default()
        };
        e.add_child(a(1), IfIndex(0), t(0));
        assert!(e.is_tree_iface(IfIndex(3)), "parent vif");
        assert!(e.is_tree_iface(IfIndex(0)), "child vif");
        assert!(!e.is_tree_iface(IfIndex(7)));
        assert!(e.is_parent(a(9)));
        assert!(!e.is_parent(a(1)));
    }

    #[test]
    fn slot_lookup_tracks_generation() {
        let mut fib = Fib::new();
        fib.entry(g()).cores = vec![a(4)];
        let gen0 = fib.generation();
        let slot = fib.slot(g()).expect("on-tree");
        assert_eq!(fib.at(slot).primary_core(), Some(a(4)));
        // Mutating an entry in place does not move slots...
        fib.get_mut(g()).unwrap().add_child(a(1), IfIndex(0), t(1));
        assert_eq!(fib.generation(), gen0);
        assert_eq!(fib.at(slot).children.len(), 1);
        // ...but insert/remove invalidate outstanding handles.
        fib.entry(GroupId::numbered(2));
        assert_ne!(fib.generation(), gen0);
        assert_eq!(fib.slot(g()), Some(slot), "existing entries keep their slot");
    }

    #[test]
    fn removed_slots_are_reused() {
        let mut fib = Fib::new();
        fib.entry(GroupId::numbered(1));
        fib.entry(GroupId::numbered(2));
        assert!(fib.remove(GroupId::numbered(1)).is_some());
        assert!(!fib.on_tree(GroupId::numbered(1)));
        fib.entry(GroupId::numbered(3));
        // Group 3 recycled group 1's slot: the dense vector stays dense.
        assert_eq!(fib.slots.iter().filter(|s| s.is_some()).count(), 2);
        assert_eq!(fib.slots.len(), 2);
        let gs: Vec<_> = fib.groups().collect();
        assert_eq!(gs, vec![GroupId::numbered(2), GroupId::numbered(3)]);
    }

    #[test]
    fn iter_mut_is_sorted_and_hits_every_entry() {
        let mut fib = Fib::new();
        for n in [5u16, 1, 3] {
            fib.entry(GroupId::numbered(n));
        }
        let mut seen = Vec::new();
        for (g, e) in fib.iter_mut() {
            e.i_am_core = true;
            seen.push(g);
        }
        assert_eq!(seen, vec![GroupId::numbered(1), GroupId::numbered(3), GroupId::numbered(5)]);
        assert!(fib.iter().all(|(_, e)| e.i_am_core));
    }

    #[test]
    fn hash_index_and_order_stay_in_lockstep_under_churn() {
        let mut fib = Fib::new();
        let mut live = std::collections::BTreeSet::new();
        let mut x: u32 = 1;
        for _ in 0..2000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let g = GroupId::numbered((x >> 16) as u16 % 64);
            if live.remove(&g) {
                assert!(fib.remove(g).is_some());
            } else {
                fib.entry(g);
                live.insert(g);
            }
            assert_eq!(fib.len(), live.len());
        }
        let sorted: Vec<_> = live.iter().copied().collect();
        assert_eq!(fib.groups().collect::<Vec<_>>(), sorted, "iteration stays sorted under churn");
        for g in sorted {
            assert!(fib.on_tree(g) && fib.get(g).is_some(), "hash index agrees with order set");
        }
    }

    #[test]
    fn groups_iteration_is_sorted() {
        let mut fib = Fib::new();
        fib.entry(GroupId::numbered(5));
        fib.entry(GroupId::numbered(1));
        fib.entry(GroupId::numbered(3));
        let gs: Vec<_> = fib.groups().collect();
        assert_eq!(
            gs,
            vec![GroupId::numbered(1), GroupId::numbered(3), GroupId::numbered(5)],
            "BTreeMap keeps deterministic order"
        );
    }
}
