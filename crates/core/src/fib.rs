//! The Forwarding Information Base (spec §5, Fig. 4): per-group
//! parent/child state, one entry per group this router is on-tree for.
//!
//! "CBT routers create FIB entries whenever they send or receive a
//! JOIN_ACK (with the exception of a proxy-ack). The FIB describes the
//! parent-child relationships on a per-group basis" — plus, here, the
//! keepalive bookkeeping (last echo times) that §6.1/§9 hang off those
//! relationships.

use cbt_netsim::SimTime;
use cbt_topology::IfIndex;
use cbt_wire::{Addr, GroupId};
use std::collections::BTreeMap;

/// Maximum children per group entry. Fig. 4's field widths "assume a
/// maximum of 16 directly connected neighbouring routers".
pub const MAX_CHILDREN: usize = 16;

/// The parent half of a FIB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parent {
    /// Parent router's address (next tree hop toward the core).
    pub addr: Addr,
    /// Interface ("parent vif") the parent is reached through.
    pub iface: IfIndex,
    /// Last time an ECHO_REPLY (or any liveness proof) arrived.
    pub last_reply: SimTime,
    /// When the next ECHO_REQUEST is due.
    pub next_echo: SimTime,
}

/// One child in a FIB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Child {
    /// Child router's address.
    pub addr: Addr,
    /// Interface ("child vif") the child is reached through.
    pub iface: IfIndex,
    /// Last time an ECHO_REQUEST arrived from this child.
    pub last_heard: SimTime,
}

/// A per-group FIB entry.
#[derive(Debug, Clone, Default)]
pub struct FibEntry {
    /// Upstream attachment; `None` exactly when this router is the
    /// group's primary core ("R4 does not have a parent since it is the
    /// primary core", §5) — or a core whose own rejoin is in flight.
    pub parent: Option<Parent>,
    /// Downstream attachments.
    pub children: Vec<Child>,
    /// Ordered core list for the group, primary first, as learned from
    /// joins/acks ("the full list of core addresses is carried in a
    /// JOIN-ACK", §8.3).
    pub cores: Vec<Addr>,
    /// True if this router is one of the group's cores.
    pub i_am_core: bool,
}

impl FibEntry {
    /// The primary core (first of the core list).
    pub fn primary_core(&self) -> Option<Addr> {
        self.cores.first().copied()
    }

    /// Adds (or refreshes) a child. Returns `false` when the entry is
    /// full ([`MAX_CHILDREN`]) and the child is new.
    pub fn add_child(&mut self, addr: Addr, iface: IfIndex, now: SimTime) -> bool {
        if let Some(c) = self.children.iter_mut().find(|c| c.addr == addr) {
            c.iface = iface;
            c.last_heard = now;
            return true;
        }
        if self.children.len() >= MAX_CHILDREN {
            return false;
        }
        self.children.push(Child { addr, iface, last_heard: now });
        true
    }

    /// Removes a child by address; returns whether it existed.
    pub fn remove_child(&mut self, addr: Addr) -> bool {
        let before = self.children.len();
        self.children.retain(|c| c.addr != addr);
        self.children.len() != before
    }

    /// Is `addr` one of this entry's children?
    pub fn has_child(&self, addr: Addr) -> bool {
        self.children.iter().any(|c| c.addr == addr)
    }

    /// The distinct interfaces children are reached through, with the
    /// number of children behind each — CBT-mode forwarding picks
    /// unicast vs multicast per interface from this (§5).
    pub fn child_ifaces(&self) -> BTreeMap<IfIndex, usize> {
        let mut m = BTreeMap::new();
        for c in &self.children {
            *m.entry(c.iface).or_insert(0) += 1;
        }
        m
    }

    /// Is `iface` a valid on-tree interface for this entry (§7)?
    pub fn is_tree_iface(&self, iface: IfIndex) -> bool {
        self.parent.is_some_and(|p| p.iface == iface)
            || self.children.iter().any(|c| c.iface == iface)
    }

    /// Is `addr` this entry's parent?
    pub fn is_parent(&self, addr: Addr) -> bool {
        self.parent.is_some_and(|p| p.addr == addr)
    }
}

/// The full FIB: group → entry.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    entries: BTreeMap<GroupId, FibEntry>,
}

impl Fib {
    /// Empty FIB.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Entry for `group`, if on-tree.
    pub fn get(&self, group: GroupId) -> Option<&FibEntry> {
        self.entries.get(&group)
    }

    /// Mutable entry for `group`.
    pub fn get_mut(&mut self, group: GroupId) -> Option<&mut FibEntry> {
        self.entries.get_mut(&group)
    }

    /// Creates (or returns) the entry for `group`.
    pub fn entry(&mut self, group: GroupId) -> &mut FibEntry {
        self.entries.entry(group).or_default()
    }

    /// Deletes the entry for `group`; returns it if it existed.
    pub fn remove(&mut self, group: GroupId) -> Option<FibEntry> {
        self.entries.remove(&group)
    }

    /// Is this router on-tree for `group`?
    pub fn on_tree(&self, group: GroupId) -> bool {
        self.entries.contains_key(&group)
    }

    /// All on-tree groups.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.entries.keys().copied()
    }

    /// All (group, entry) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &FibEntry)> {
        self.entries.iter().map(|(g, e)| (*g, e))
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (GroupId, &mut FibEntry)> {
        self.entries.iter_mut().map(|(g, e)| (*g, e))
    }

    /// Number of entries — the "state per router" metric of experiment
    /// S93-T1.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no groups are on-tree.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> GroupId {
        GroupId::numbered(1)
    }

    fn a(n: u8) -> Addr {
        Addr::from_octets(10, 0, 0, n)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn entry_lifecycle() {
        let mut fib = Fib::new();
        assert!(!fib.on_tree(g()));
        assert!(fib.is_empty());
        let e = fib.entry(g());
        e.cores = vec![a(4), a(9)];
        assert!(fib.on_tree(g()));
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.get(g()).unwrap().primary_core(), Some(a(4)));
        assert!(fib.remove(g()).is_some());
        assert!(fib.is_empty());
    }

    #[test]
    fn children_add_refresh_remove() {
        let mut e = FibEntry::default();
        assert!(e.add_child(a(1), IfIndex(0), t(0)));
        assert!(e.add_child(a(2), IfIndex(1), t(0)));
        assert!(e.has_child(a(1)));
        // Re-adding refreshes instead of duplicating.
        assert!(e.add_child(a(1), IfIndex(0), t(5)));
        assert_eq!(e.children.len(), 2);
        assert_eq!(e.children[0].last_heard, t(5));
        assert!(e.remove_child(a(1)));
        assert!(!e.remove_child(a(1)));
        assert_eq!(e.children.len(), 1);
    }

    #[test]
    fn child_capacity_is_sixteen() {
        let mut e = FibEntry::default();
        for i in 0..MAX_CHILDREN {
            assert!(e.add_child(a(i as u8 + 1), IfIndex(0), t(0)), "child {i}");
        }
        assert!(!e.add_child(a(200), IfIndex(0), t(0)), "17th child rejected");
        // But refreshing an existing one still works at capacity.
        assert!(e.add_child(a(1), IfIndex(0), t(9)));
    }

    #[test]
    fn child_ifaces_counts_per_interface() {
        let mut e = FibEntry::default();
        e.add_child(a(1), IfIndex(0), t(0));
        e.add_child(a(2), IfIndex(0), t(0));
        e.add_child(a(3), IfIndex(2), t(0));
        let m = e.child_ifaces();
        assert_eq!(m[&IfIndex(0)], 2, "two children share iface 0 ⇒ CBT multicast there");
        assert_eq!(m[&IfIndex(2)], 1, "one child on iface 2 ⇒ CBT unicast");
    }

    #[test]
    fn tree_iface_and_parent_tests() {
        let mut e = FibEntry {
            parent: Some(Parent { addr: a(9), iface: IfIndex(3), last_reply: t(0), next_echo: t(30) }),
            ..Default::default()
        };
        e.add_child(a(1), IfIndex(0), t(0));
        assert!(e.is_tree_iface(IfIndex(3)), "parent vif");
        assert!(e.is_tree_iface(IfIndex(0)), "child vif");
        assert!(!e.is_tree_iface(IfIndex(7)));
        assert!(e.is_parent(a(9)));
        assert!(!e.is_parent(a(1)));
    }

    #[test]
    fn groups_iteration_is_sorted() {
        let mut fib = Fib::new();
        fib.entry(GroupId::numbered(5));
        fib.entry(GroupId::numbered(1));
        fib.entry(GroupId::numbered(3));
        let gs: Vec<_> = fib.groups().collect();
        assert_eq!(
            gs,
            vec![GroupId::numbered(1), GroupId::numbered(3), GroupId::numbered(5)],
            "BTreeMap keeps deterministic order"
        );
    }
}
