//! Tree joining: origination, hop-by-hop forwarding, acknowledgement,
//! proxy-acks, rejoins and loop detection (§2.5, §2.6, §6.1–6.3, §8.3).

use crate::engine::{CbtRouter, TimerKind};
use crate::events::RouterAction;
use crate::fib::Parent;
use crate::pending::{CachedJoin, JoinReason, PendingJoin};
use cbt_netsim::SimTime;
use cbt_topology::IfIndex;
use cbt_wire::{AckSubcode, Addr, ControlMessage, GroupId, IgmpMessage, JoinSubcode};

impl CbtRouter {
    /// D-DR join origination (§2.5): local membership appeared on LAN
    /// `iface` and this router must establish the subnet on the tree.
    pub(crate) fn trigger_join(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        group: GroupId,
        target_core_index: usize,
        act: &mut Vec<RouterAction>,
    ) {
        // Already on-tree: this LAN just needs to be served.
        if self.fib.on_tree(group) {
            self.gdr.insert((iface, group));
            return;
        }
        // §2.6: "If an IGMP RP/Core-Report is received by a D-DR with a
        // join for the same group already pending, it takes no action"
        // — but the LAN is remembered so the eventual ack serves it.
        if self.pending.contains(group) {
            if let Some(p) = self.pending.get_mut(group) {
                if let JoinReason::LocalMembership { trigger_lans } = &mut p.reason {
                    if !trigger_lans.contains(&iface) {
                        trigger_lans.push(iface);
                    }
                }
            }
            return;
        }
        let Some(cores) = self.cores_for(group) else {
            // No core knowledge at all (§2.4 v1/v2 hosts without managed
            // mappings): nothing can be done; the IFF-scan will retry.
            return;
        };
        self.learn_cores(group, &cores);

        // Am I one of the group's cores myself?
        if self.i_am_listed_core(&cores) {
            self.become_core(now, group, &cores, act);
            self.gdr.insert((iface, group));
            return;
        }

        let origin = self.iface(iface).map(|i| i.addr).unwrap_or(self.id_addr());
        let target_core_index = target_core_index.min(cores.len() - 1);
        self.launch_join(
            now,
            group,
            origin,
            cores,
            target_core_index,
            JoinSubcode::ActiveJoin,
            JoinReason::LocalMembership { trigger_lans: vec![iface] },
            act,
        );
    }

    /// Instates this router as an on-tree core for `group`. A
    /// non-primary core additionally joins the primary (the on-demand
    /// core tree, §1/§2.5/§6.2).
    pub(crate) fn become_core(
        &mut self,
        now: SimTime,
        group: GroupId,
        cores: &[Addr],
        act: &mut Vec<RouterAction>,
    ) {
        let entry = self.fib.entry(group);
        entry.cores = cores.to_vec();
        entry.i_am_core = true;
        // A join may (maliciously or due to damage) carry no core list
        // at all; we can still serve as a root, but there is no primary
        // to join toward.
        if cores.is_empty() {
            return;
        }
        if !self.i_am_primary(cores) && self.fib.get(group).unwrap().parent.is_none() {
            let primary = cores[0];
            if !self.pending.contains(group) {
                let cores = cores.to_vec();
                let origin = self.id_addr();
                // §2.5: the non-primary core joins the primary with
                // subcode REJOIN-ACTIVE.
                self.launch_join_to(
                    now,
                    group,
                    origin,
                    cores,
                    0,
                    primary,
                    JoinSubcode::RejoinActive,
                    JoinReason::Reattach,
                    act,
                );
            }
        }
    }

    /// Sends a join toward `cores[core_index]` and records the pending
    /// state. Does nothing if the core is unreachable and no later core
    /// is reachable either.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn launch_join(
        &mut self,
        now: SimTime,
        group: GroupId,
        origin: Addr,
        cores: Vec<Addr>,
        core_index: usize,
        subcode: JoinSubcode,
        reason: JoinReason,
        act: &mut Vec<RouterAction>,
    ) {
        // Find the first reachable core starting from core_index.
        for probe in 0..cores.len() {
            let idx = (core_index + probe) % cores.len();
            let target = cores[idx];
            if self.is_my_addr(target) {
                continue;
            }
            if self.routes.hop_toward(target).is_some() {
                self.launch_join_to(now, group, origin, cores, idx, target, subcode, reason, act);
                return;
            }
        }
        // Every core unreachable: give up silently; IFF-scan retries.
    }

    /// Lower-level variant with an explicit target.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn launch_join_to(
        &mut self,
        now: SimTime,
        group: GroupId,
        origin: Addr,
        cores: Vec<Addr>,
        core_index: usize,
        target: Addr,
        subcode: JoinSubcode,
        reason: JoinReason,
        act: &mut Vec<RouterAction>,
    ) {
        let Some(hop) = self.routes.hop_toward(target) else { return };
        // §2.7: if the best next hop is one of our current children, the
        // downstream branch must be flushed before re-joining through it.
        if let Some(entry) = self.fib.get(group) {
            if entry.has_child(hop.addr) {
                self.flush_child(now, group, hop.addr, act);
            }
        }
        let msg = ControlMessage::JoinRequest {
            subcode,
            group,
            origin,
            target_core: target,
            cores: cores.clone(),
        };
        self.stats.joins_originated += 1;
        self.send_control(act, hop.iface, hop.addr, msg);
        self.pending.insert(
            group,
            PendingJoin {
                reason,
                origin,
                target_core: target,
                cores,
                upstream: (hop.iface, hop.addr),
                sent_subcode: subcode,
                cached: Vec::new(),
                started: now,
                attempt_started: now,
                next_retransmit: now + self.cfg.pend_join_interval,
                core_index,
            },
        );
        self.timers.arm(TimerKind::PendingJoin(group), now + self.cfg.pend_join_interval);
    }

    /// Receipt of a JOIN_REQUEST (§2.5, §6.2, §6.3).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_join_request(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        src: Addr,
        subcode: JoinSubcode,
        group: GroupId,
        origin: Addr,
        target_core: Addr,
        cores: &[Addr],
        act: &mut Vec<RouterAction>,
    ) {
        self.learn_cores(group, cores);
        if subcode == JoinSubcode::RejoinNactive {
            self.on_nactive_rejoin(now, group, origin, target_core, cores, act);
            return;
        }

        // On-tree and able to acknowledge? (§2.5: a pending-join router
        // must cache instead.)
        if self.fib.on_tree(group) && !self.pending.contains(group) {
            let entry = self.fib.get(group).expect("on tree");
            let i_am_core_here = entry.i_am_core;
            if subcode == JoinSubcode::RejoinActive && !i_am_core_here {
                // §6.3: first on-tree non-core router converts the
                // active rejoin into the NACTIVE loop-detection walk...
                let fwd = ControlMessage::JoinRequest {
                    subcode: JoinSubcode::RejoinNactive,
                    group,
                    origin, // unchanged, so the originator can recognise it
                    // §8.3.1: converting router puts its own address in
                    // the core-address field so the primary can ack it
                    // directly.
                    target_core: self.id_addr(),
                    cores: cores.to_vec(),
                };
                if let Some(parent) = self.fib.get(group).and_then(|e| e.parent) {
                    self.stats.joins_forwarded += 1;
                    self.send_control(act, parent.iface, parent.addr, fwd);
                }
                // ...and acknowledges the received join downstream.
                self.ack_downstream(
                    now,
                    group,
                    &CachedJoin { from_iface: iface, from_addr: src, origin, subcode },
                    act,
                );
            } else {
                // Plain termination: core or on-tree router acks (§2.5).
                self.ack_downstream(
                    now,
                    group,
                    &CachedJoin { from_iface: iface, from_addr: src, origin, subcode },
                    act,
                );
            }
            return;
        }

        // §6.2 core restart discovery: "a core only becomes aware that
        // it is such by receiving a JOIN-REQUEST".
        if self.is_my_addr(target_core) || self.i_am_listed_core(cores) {
            self.become_core(now, group, cores, act);
            self.ack_downstream(
                now,
                group,
                &CachedJoin { from_iface: iface, from_addr: src, origin, subcode },
                act,
            );
            return;
        }

        // Waiting for our own ack: cache (§2.5).
        if self.pending.contains(group) {
            let p = self.pending.get_mut(group).expect("pending");
            let dup = p.cached.iter().any(|c| c.from_addr == src && c.origin == origin)
                || (p.upstream.1 == src);
            if !dup {
                p.cached.push(CachedJoin { from_iface: iface, from_addr: src, origin, subcode });
                self.stats.joins_cached += 1;
            }
            return;
        }

        // Forward hop-by-hop toward the target core (§2.5).
        match self.routes.hop_toward(target_core) {
            Some(hop) if hop.addr != src => {
                let fwd = ControlMessage::JoinRequest {
                    subcode,
                    group,
                    origin,
                    target_core,
                    cores: cores.to_vec(),
                };
                self.stats.joins_forwarded += 1;
                self.send_control(act, hop.iface, hop.addr, fwd);
                self.pending.insert(
                    group,
                    PendingJoin {
                        reason: JoinReason::Forwarded {
                            from_iface: iface,
                            from_addr: src,
                            subcode,
                        },
                        origin,
                        target_core,
                        cores: cores.to_vec(),
                        upstream: (hop.iface, hop.addr),
                        sent_subcode: subcode,
                        cached: Vec::new(),
                        started: now,
                        attempt_started: now,
                        next_retransmit: now + self.cfg.pend_join_interval,
                        core_index: cores.iter().position(|c| *c == target_core).unwrap_or(0),
                    },
                );
                self.timers.arm(TimerKind::PendingJoin(group), now + self.cfg.pend_join_interval);
            }
            _ => {
                // Unreachable core, or routing points straight back:
                // negative acknowledgement (§8.3).
                let nack = ControlMessage::JoinNack { group, origin, target_core };
                self.send_control(act, iface, src, nack);
            }
        }
    }

    /// §6.3: a NACTIVE rejoin walking parent-ward.
    fn on_nactive_rejoin(
        &mut self,
        now: SimTime,
        group: GroupId,
        origin: Addr,
        converter: Addr,
        cores: &[Addr],
        act: &mut Vec<RouterAction>,
    ) {
        if self.is_my_addr(origin) {
            // Our own rejoin came back: the new parent path loops.
            // "It immediately sends a QUIT_REQUEST to its newly-
            // established parent and the loop is broken."
            self.stats.loops_broken += 1;
            let parent = self.fib.get(group).and_then(|e| e.parent);
            if let Some(p) = parent {
                let quit = ControlMessage::QuitRequest { group, origin: self.id_addr() };
                self.send_control(act, p.iface, p.addr, quit);
                if let Some(e) = self.fib.get_mut(group) {
                    e.parent = None;
                }
                self.reindex_parent(group, Some(p.addr));
            }
            // A broken loop is a failed attempt of the ongoing §6.1
            // RECONNECT campaign — make sure the campaign clock is
            // running so repeated loop-break cycles cannot retry
            // forever (the instating ack may have been taken for a
            // success elsewhere).
            self.reattach_started.entry(group).or_insert(now);
            // The loop may be detected before our rejoin's ack retraces
            // it (the NACTIVE walk and the ack race hop for hop): cancel
            // the pending rejoin so a late ack cannot instate the
            // looping parent.
            self.pending.remove(group);
            self.timers.cancel(TimerKind::PendingJoin(group));
            // "It then attempts to re-join again" — after a short
            // backoff via the next core, giving routing time to settle.
            let next_attempt = now + self.cfg.pend_join_interval;
            self.defer_reattach(group, next_attempt, 1);
            return;
        }
        let i_primary = self.i_am_primary(cores)
            || self.fib.get(group).is_some_and(|e| e.i_am_core && e.parent.is_none());
        if i_primary {
            // Terminate the walk: ack the converting router directly
            // (§8.3.1 JOIN-ACK subcode REJOIN-NACTIVE).
            let Some(hop) = self.routes.hop_toward(converter) else { return };
            let ack = ControlMessage::JoinAck {
                subcode: AckSubcode::RejoinNactive,
                group,
                origin,
                target_core: converter,
                cores: cores.to_vec(),
            };
            self.send_control(act, hop.iface, hop.addr, ack);
            return;
        }
        // Keep walking parent-ward.
        let parent = self.fib.get(group).and_then(|e| e.parent);
        if let Some(p) = parent {
            let fwd = ControlMessage::JoinRequest {
                subcode: JoinSubcode::RejoinNactive,
                group,
                origin,
                target_core: converter,
                cores: cores.to_vec(),
            };
            self.stats.joins_forwarded += 1;
            self.send_control(act, p.iface, p.addr, fwd);
        }
    }

    /// Acknowledges a join received from downstream, applying the §2.6
    /// proxy-ack rule. Adds the sender as a child unless proxied.
    pub(crate) fn ack_downstream(
        &mut self,
        now: SimTime,
        group: GroupId,
        join: &CachedJoin,
        act: &mut Vec<RouterAction>,
    ) {
        let affiliation =
            self.fib.get(group).and_then(|e| e.primary_core()).unwrap_or(self.id_addr());
        let cores = self.fib.get(group).map(|e| e.cores.clone()).unwrap_or_default();

        // §2.6 proxy test: the previous hop *is* the join's origin and
        // sits on the subnet we are about to ack over — the origin is a
        // D-DR whose first hop stayed on its own LAN.
        let proxy = join.subcode == JoinSubcode::ActiveJoin
            && join.from_addr == join.origin
            && self
                .iface(join.from_iface)
                .is_some_and(|i| i.lan.is_some() && i.contains(join.origin));

        if proxy {
            let ack = ControlMessage::JoinAck {
                subcode: AckSubcode::ProxyAck,
                group,
                origin: join.origin,
                target_core: affiliation,
                cores,
            };
            self.stats.proxy_acks_sent += 1;
            self.send_control(act, join.from_iface, join.from_addr, ack);
            // We are now the group's attachment on that LAN (§2.6).
            self.gdr.insert((join.from_iface, group));
            return;
        }

        // Normal ack: the previous hop becomes a child (§8.3: "it is
        // the receipt of a JOIN-ACK that actually creates a branch" —
        // state on our side is created when we *send* one).
        let old_heard = if self.timers.enabled {
            self.fib.get(group).and_then(|e| {
                e.children.iter().find(|c| c.addr == join.from_addr).map(|c| c.last_heard)
            })
        } else {
            None
        };
        let full = {
            let entry = self.fib.entry(group);
            !entry.add_child(join.from_addr, join.from_iface, now)
        };
        if !full && self.timers.enabled {
            let expire = self.cfg.child_assert_expire;
            if let Some(h) = old_heard {
                self.child_expiry.remove(&(h + expire, group, join.from_addr));
            }
            self.child_expiry.insert((now + expire, group, join.from_addr));
        }
        if full {
            let nack =
                ControlMessage::JoinNack { group, origin: join.origin, target_core: affiliation };
            self.send_control(act, join.from_iface, join.from_addr, nack);
            return;
        }
        let ack = ControlMessage::JoinAck {
            subcode: AckSubcode::Normal,
            group,
            origin: join.origin,
            target_core: affiliation,
            cores,
        };
        self.send_control(act, join.from_iface, join.from_addr, ack);
    }

    /// Receipt of a JOIN_ACK (§2.5/§2.6/§8.3).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_join_ack(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        src: Addr,
        subcode: AckSubcode,
        group: GroupId,
        _origin: Addr,
        _target_core: Addr,
        cores: &[Addr],
        act: &mut Vec<RouterAction>,
    ) {
        self.learn_cores(group, cores);
        if subcode == AckSubcode::RejoinNactive {
            // Direct confirmation from the primary that the NACTIVE
            // walk we started terminated loop-free. Nothing to change.
            return;
        }
        let Some(p) = self.pending.remove(group) else {
            return; // stale/duplicate ack
        };
        // The ack must come from the hop we actually joined through.
        if p.upstream.1 != src {
            self.pending.insert(group, p);
            return;
        }
        self.timers.cancel(TimerKind::PendingJoin(group));
        self.obs.join_rtt_us.record(now.since(p.started).micros());

        let old_parent = self.fib.get(group).and_then(|e| e.parent.map(|pp| pp.addr));
        match (&p.reason, subcode) {
            (JoinReason::LocalMembership { trigger_lans }, AckSubcode::ProxyAck) => {
                // §2.6: cancel transient state, keep **no** FIB entry;
                // the proxy sender is the G-DR.
                for lan in trigger_lans.clone() {
                    let origin_lan = self.iface(lan).is_some_and(|i| i.contains(p.origin));
                    if origin_lan {
                        self.proxy_handled.insert((lan, group), src);
                    } else {
                        // Additional member LANs that the G-DR cannot
                        // serve (it is not attached to them): join again
                        // with that LAN's address as origin.
                        self.trigger_join(now, lan, group, 0, act);
                    }
                }
            }
            (JoinReason::LocalMembership { trigger_lans }, _) => {
                let cores_final = if cores.is_empty() { p.cores.clone() } else { cores.to_vec() };
                let entry = self.fib.entry(group);
                entry.parent = Some(Parent {
                    addr: src,
                    iface,
                    last_reply: now,
                    next_echo: now + self.cfg.echo_interval,
                });
                entry.i_am_core = false;
                entry.cores = cores_final;
                for lan in trigger_lans.clone() {
                    self.gdr.insert((lan, group));
                    // §2.5 proposal: notify member hosts on the subnet
                    // that the tree has been joined.
                    act.push(RouterAction::SendIgmp {
                        iface: lan,
                        dst: group.addr(),
                        msg: IgmpMessage::TreeJoined { group, core: p.target_core },
                    });
                }
            }
            (JoinReason::Forwarded { from_iface, from_addr, subcode: down_sub }, _) => {
                let cores_final = if cores.is_empty() { p.cores.clone() } else { cores.to_vec() };
                let entry = self.fib.entry(group);
                entry.parent = Some(Parent {
                    addr: src,
                    iface,
                    last_reply: now,
                    next_echo: now + self.cfg.echo_interval,
                });
                entry.cores = cores_final;
                self.ack_downstream(
                    now,
                    group,
                    &CachedJoin {
                        from_iface: *from_iface,
                        from_addr: *from_addr,
                        origin: p.origin,
                        subcode: *down_sub,
                    },
                    act,
                );
            }
            (JoinReason::Reattach, _) => {
                let cores_final = if cores.is_empty() { p.cores.clone() } else { cores.to_vec() };
                let entry = self.fib.entry(group);
                entry.parent = Some(Parent {
                    addr: src,
                    iface,
                    last_reply: now,
                    next_echo: now + self.cfg.echo_interval,
                });
                entry.cores = cores_final;
                // The RECONNECT campaign budget is NOT retired here: an
                // ack whose path runs through our own subtree instates
                // a parent that the §6.3 NACTIVE walk tears right back
                // down, and treating that as success would reset the
                // budget every oscillation. The budget is retired when
                // the new parent proves real by answering an echo
                // (`on_echo_reply`).
            }
        }
        self.reindex_parent(group, old_parent);
        self.arm_echo(group);

        // §2.5: "only then can it acknowledge any cached joins."
        for cached in p.cached {
            if self.fib.on_tree(group) {
                // §6.3: a cached ACTIVE_REJOIN gets the same loop-
                // detection treatment as one received while on-tree:
                // convert to a NACTIVE walk up our (new) parent path
                // before acknowledging. Skipping this lets a rejoin
                // that was cached while we were pending — and whose ack
                // path runs THROUGH its own originator — instate a
                // stable parent/child cycle that nothing ever breaks.
                let i_am_core_here = self.fib.get(group).is_some_and(|e| e.i_am_core);
                if cached.subcode == JoinSubcode::RejoinActive && !i_am_core_here {
                    let fwd = ControlMessage::JoinRequest {
                        subcode: JoinSubcode::RejoinNactive,
                        group,
                        origin: cached.origin,
                        target_core: self.id_addr(),
                        cores: self.fib.get(group).map(|e| e.cores.clone()).unwrap_or_default(),
                    };
                    if let Some(parent) = self.fib.get(group).and_then(|e| e.parent) {
                        self.stats.joins_forwarded += 1;
                        self.send_control(act, parent.iface, parent.addr, fwd);
                    }
                }
                self.ack_downstream(now, group, &cached, act);
            } else {
                // Proxy-acked ourselves: we hold no entry, so re-process
                // the cached join as a fresh arrival (it will be
                // forwarded upstream independently).
                let target = p.target_core;
                let cores = p.cores.clone();
                self.on_join_request(
                    now,
                    cached.from_iface,
                    cached.from_addr,
                    cached.subcode,
                    group,
                    cached.origin,
                    target,
                    &cores,
                    act,
                );
            }
        }
    }

    /// Receipt of a JOIN_NACK: the upstream attempt failed.
    pub(crate) fn on_join_nack(
        &mut self,
        now: SimTime,
        _iface: IfIndex,
        src: Addr,
        group: GroupId,
        act: &mut Vec<RouterAction>,
    ) {
        let Some(p) = self.pending.remove(group) else { return };
        if p.upstream.1 != src {
            self.pending.insert(group, p);
            return;
        }
        self.timers.cancel(TimerKind::PendingJoin(group));
        self.fail_pending(now, group, p, act);
    }

    /// A pending join failed (nack or timeout): try the next core or
    /// propagate the failure downstream. `p` must already be removed
    /// from the pending set.
    pub(crate) fn fail_pending(
        &mut self,
        now: SimTime,
        group: GroupId,
        p: PendingJoin,
        act: &mut Vec<RouterAction>,
    ) {
        let overall_deadline = p.started + self.cfg.expire_pending_join;
        let more_cores = p.cores.len() > 1;
        if now < overall_deadline && more_cores {
            // §6.1: "an alternate core is arbitrarily elected from the
            // core list. The process is repeated until a JOIN-ACK is
            // received, for a maximum of RECONNECT-TIMEOUT seconds."
            let next_index = (p.core_index + 1) % p.cores.len();
            self.launch_join(
                now,
                group,
                p.origin,
                p.cores.clone(),
                next_index,
                p.sent_subcode,
                p.reason.clone(),
                act,
            );
            if let Some(npj) = self.pending.get_mut(group) {
                // Carry over the original start time and any cached
                // joins so the overall budget and downstream
                // obligations survive the retry.
                npj.started = p.started;
                npj.cached = p.cached;
            } else {
                // Relaunch found no reachable core at all: give up.
                self.give_up_pending(now, group, p, act);
            }
            return;
        }
        self.give_up_pending(now, group, p, act);
    }

    /// Abandons a pending join entirely.
    fn give_up_pending(
        &mut self,
        now: SimTime,
        group: GroupId,
        p: PendingJoin,
        act: &mut Vec<RouterAction>,
    ) {
        // Downstream waiters get nacks.
        if let JoinReason::Forwarded { from_iface, from_addr, .. } = p.reason {
            let nack =
                ControlMessage::JoinNack { group, origin: p.origin, target_core: p.target_core };
            self.send_control(act, from_iface, from_addr, nack);
        }
        for c in &p.cached {
            let nack =
                ControlMessage::JoinNack { group, origin: c.origin, target_core: p.target_core };
            self.send_control(act, c.from_iface, c.from_addr, nack);
        }
        if matches!(p.reason, JoinReason::Reattach) {
            // §6.1 re-attachment failed for RECONNECT-TIMEOUT: tear the
            // subtree down; downstream routers will re-join on their own
            // (they serve their own member subnets).
            self.flush_all_children(now, group, act);
            self.remove_fib_entry(group);
            for lan in self.lan_ifaces() {
                self.gdr.remove(&(lan, group));
            }
        }
    }

    /// Retransmission / core-switch / expiry service for pending joins.
    pub(crate) fn service_pending_joins(&mut self, now: SimTime, act: &mut Vec<RouterAction>) {
        for group in self.pending.due(now) {
            self.service_pending_join_group(now, group, act);
        }
    }

    /// Services one due pending join — the shared body behind both the
    /// legacy scan and the wheel's per-candidate dispatch.
    pub(crate) fn service_pending_join_group(
        &mut self,
        now: SimTime,
        group: GroupId,
        act: &mut Vec<RouterAction>,
    ) {
        let p = self.pending.get(group).expect("due implies present").clone();
        if now.since(p.started) >= self.cfg.expire_pending_join {
            let p = self.pending.remove(group).expect("present");
            self.give_up_pending(now, group, p, act);
        } else if now.since(p.attempt_started) >= self.cfg.pend_join_timeout {
            // §9 PEND-JOIN-TIMEOUT: "time to try joining a
            // different core".
            let p = self.pending.remove(group).expect("present");
            self.fail_pending(now, group, p, act);
        } else {
            // §9 PEND-JOIN-INTERVAL: retransmit the same join.
            let msg = ControlMessage::JoinRequest {
                subcode: p.sent_subcode,
                group,
                origin: p.origin,
                target_core: p.target_core,
                cores: p.cores.clone(),
            };
            let (up_iface, up_addr) = p.upstream;
            self.send_control(act, up_iface, up_addr, msg);
            let interval = self.cfg.pend_join_interval;
            if let Some(pm) = self.pending.get_mut(group) {
                pm.next_retransmit = now + interval;
            }
            self.timers.arm(TimerKind::PendingJoin(group), now + interval);
        }
    }

    /// Fires re-attachments whose post-loop backoff has elapsed.
    pub(crate) fn service_deferred_reattach(&mut self, now: SimTime, act: &mut Vec<RouterAction>) {
        let due: Vec<(GroupId, usize)> = self
            .deferred_reattach
            .iter()
            .filter(|(_, (t, _))| *t <= now)
            .map(|(g, (_, idx))| (*g, *idx))
            .collect();
        for (group, idx) in due {
            self.deferred_reattach.remove(&group);
            self.start_reattach(now, group, idx, act);
        }
    }

    /// §6.1: the parent (or the path to it) failed — re-attach, serving
    /// the whole subtree below us. `start_index` picks where in the
    /// core list to start trying.
    pub(crate) fn start_reattach(
        &mut self,
        now: SimTime,
        group: GroupId,
        start_index: usize,
        act: &mut Vec<RouterAction>,
    ) {
        if self.pending.contains(group) {
            return;
        }
        let old_parent = self.fib.get(group).and_then(|e| e.parent.map(|p| p.addr));
        let Some(entry) = self.fib.get_mut(group) else { return };
        entry.parent = None;
        let entry_cores = entry.cores.clone();
        self.reindex_parent(group, old_parent);
        let cores = if entry_cores.is_empty() { self.cores_for(group) } else { Some(entry_cores) };
        let Some(cores) = cores else { return };
        if self.i_am_primary(&cores) {
            self.reattach_started.remove(&group);
            return; // the primary waits to be joined (§6.2)
        }
        // §6.1 RECONNECT-TIMEOUT: the whole campaign (including periods
        // where no core is even reachable) is bounded; past the budget
        // the subtree is flushed so downstream routers fend for
        // themselves.
        let started = *self.reattach_started.entry(group).or_insert(now);
        if now.since(started) >= self.cfg.expire_pending_join {
            self.reattach_started.remove(&group);
            self.deferred_reattach.remove(&group);
            self.timers.cancel(TimerKind::Reattach(group));
            if self.fib.get(group).is_some_and(|e| e.i_am_core) {
                // A core with an intact subtree is a legitimate root
                // (§6.1 fallback; §6.2: the primary waits to be
                // joined). Give up the campaign toward the primary
                // quietly and keep serving — flushing paying members
                // because the core *backbone* link cannot form would
                // punish the wrong party. The IFF-scan safety net
                // retries the link later.
                return;
            }
            self.flush_all_children(now, group, act);
            self.drop_group_state(group);
            return;
        }
        let has_children = !self.fib.get(group).expect("checked").children.is_empty();
        // §6.1: ACTIVE_JOIN if no children attached, ACTIVE_REJOIN if at
        // least one child is.
        let subcode =
            if has_children { JoinSubcode::RejoinActive } else { JoinSubcode::ActiveJoin };
        let origin = self.id_addr();
        let start = start_index.min(cores.len().saturating_sub(1));
        self.launch_join(now, group, origin, cores, start, subcode, JoinReason::Reattach, act);
        if !self.pending.contains(group) {
            // No core currently reachable: retry after a backoff (the
            // IGP may still be converging), inside the same budget.
            let retry = now + self.cfg.pend_join_interval;
            self.defer_reattach(group, retry, start_index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::*;
    use crate::CbtConfig;
    use cbt_routing::Hop;
    use cbt_topology::RouterId;
    use std::collections::BTreeMap;

    fn g() -> GroupId {
        GroupId::numbered(1)
    }

    fn core_a() -> Addr {
        Addr::from_octets(10, 255, 0, 77)
    }

    fn core_b() -> Addr {
        Addr::from_octets(10, 255, 0, 88)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Engine with a route to both cores via the "up" link (if1).
    fn routed_engine() -> CbtRouter {
        let mut e = engine(CbtConfig::default());
        let mut map = BTreeMap::new();
        map.insert(core_a(), up_hop());
        map.insert(core_b(), up_hop());
        set_routes(&mut e, map);
        e
    }

    fn trigger(e: &mut CbtRouter, now: SimTime) -> Vec<RouterAction> {
        let mut act = Vec::new();
        e.learn_cores(g(), &[core_a(), core_b()]);
        e.trigger_join(now, IfIndex(0), g(), 0, &mut act);
        act
    }

    #[test]
    fn trigger_sends_active_join_toward_core() {
        let mut e = routed_engine();
        let act = trigger(&mut e, t(0));
        assert_eq!(act.len(), 1);
        match &act[0] {
            RouterAction::SendControl { iface, dst, msg } => {
                assert_eq!(*iface, IfIndex(1));
                assert_eq!(*dst, up_hop().addr);
                match msg {
                    ControlMessage::JoinRequest { subcode, group, origin, target_core, cores } => {
                        assert_eq!(*subcode, JoinSubcode::ActiveJoin);
                        assert_eq!(*group, g());
                        assert_eq!(*origin, Addr::from_octets(10, 1, 0, 1), "LAN iface addr");
                        assert_eq!(*target_core, core_a());
                        assert_eq!(cores, &vec![core_a(), core_b()]);
                    }
                    other => panic!("expected join, got {other:?}"),
                }
            }
            other => panic!("expected control send, got {other:?}"),
        }
        assert!(e.has_pending_join(g()));
        assert!(!e.is_on_tree(g()), "no FIB entry until the ack (§8.3)");
    }

    #[test]
    fn second_trigger_while_pending_is_coalesced() {
        let mut e = routed_engine();
        let first = trigger(&mut e, t(0));
        assert_eq!(first.len(), 1);
        let mut act = Vec::new();
        e.trigger_join(t(1), IfIndex(0), g(), 0, &mut act);
        assert!(act.is_empty(), "§2.6: join already pending ⇒ no action");
    }

    #[test]
    fn ack_creates_fib_entry_and_notifies_hosts() {
        let mut e = routed_engine();
        trigger(&mut e, t(0));
        let act = e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        assert!(e.is_on_tree(g()));
        assert_eq!(e.parent_of(g()), Some(up_hop().addr));
        assert!(e.is_gdr(IfIndex(0), g()));
        assert!(!e.has_pending_join(g()));
        // The §2.5 tree-joined notification went onto the member LAN.
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendIgmp { iface: IfIndex(0), msg: IgmpMessage::TreeJoined { .. }, .. }
        )));
    }

    #[test]
    fn ack_from_wrong_hop_is_ignored() {
        let mut e = routed_engine();
        trigger(&mut e, t(0));
        e.handle_control(
            t(1),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::NULL,
                target_core: core_a(),
                cores: vec![],
            },
        );
        assert!(!e.is_on_tree(g()));
        assert!(e.has_pending_join(g()), "still waiting for the real ack");
    }

    #[test]
    fn join_forwarding_creates_transient_state() {
        let mut e = routed_engine();
        let act = e.handle_control(
            t(0),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        // Forwarded upstream unchanged.
        assert!(matches!(
            &act[0],
            RouterAction::SendControl {
                iface: IfIndex(1),
                msg: ControlMessage::JoinRequest {
                    subcode: JoinSubcode::ActiveJoin,
                    origin,
                    ..
                },
                ..
            } if *origin == Addr::from_octets(10, 9, 0, 1)
        ));
        assert!(e.has_pending_join(g()));
        assert_eq!(e.stats().joins_forwarded, 1);

        // Ack comes back: entry created, downstream acked as a child.
        let act = e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        assert!(e.is_on_tree(g()));
        assert_eq!(e.children_of(g()), vec![down_addr()]);
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl {
                iface: IfIndex(2),
                msg: ControlMessage::JoinAck { subcode: AckSubcode::Normal, .. },
                ..
            }
        )));
    }

    #[test]
    fn concurrent_joins_are_cached_until_own_ack() {
        let mut e = routed_engine();
        trigger(&mut e, t(0)); // our own pending join
        let act = e.handle_control(
            t(1),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        assert!(act.is_empty(), "§2.5: cached, not acked, not forwarded");
        assert_eq!(e.stats().joins_cached, 1);
        // Our ack arrives: the cached join is acked too.
        let act = e.handle_control(
            t(2),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl {
                iface: IfIndex(2),
                msg: ControlMessage::JoinAck { subcode: AckSubcode::Normal, .. },
                ..
            }
        )));
        assert_eq!(e.children_of(g()), vec![down_addr()]);
    }

    #[test]
    fn on_tree_router_terminates_joins() {
        let mut e = routed_engine();
        trigger(&mut e, t(0));
        e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        // Now on-tree. A join from downstream terminates here.
        let act = e.handle_control(
            t(2),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        assert_eq!(act.len(), 1, "ack only — join not propagated (§2.5)");
        assert!(matches!(
            &act[0],
            RouterAction::SendControl {
                msg: ControlMessage::JoinAck { subcode: AckSubcode::Normal, .. },
                ..
            }
        ));
        assert_eq!(e.children_of(g()), vec![down_addr()]);
    }

    #[test]
    fn proxy_ack_when_origin_is_previous_hop_on_shared_lan() {
        // A join arrives on our LAN iface directly from its origin (a
        // D-DR on our subnet); we are on-tree. §2.6 says: proxy-ack, no
        // child, we become G-DR.
        let mut e = routed_engine();
        trigger(&mut e, t(0));
        e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        let ddr = Addr::from_octets(10, 1, 0, 2); // another router on our LAN
        let act = e.handle_control(
            t(2),
            IfIndex(0),
            ddr,
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: ddr,
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        assert!(matches!(
            &act[0],
            RouterAction::SendControl {
                iface: IfIndex(0),
                dst,
                msg: ControlMessage::JoinAck { subcode: AckSubcode::ProxyAck, .. },
            } if *dst == ddr
        ));
        assert!(e.children_of(g()).is_empty(), "proxy-ack adds no child");
        assert!(e.is_gdr(IfIndex(0), g()), "proxy sender becomes G-DR");
        assert_eq!(e.stats().proxy_acks_sent, 1);
    }

    #[test]
    fn receiving_proxy_ack_cancels_without_fib_entry() {
        let mut e = engine(CbtConfig::default());
        // Route to the core goes via a router on our own LAN (if0).
        let lan_peer = Addr::from_octets(10, 1, 0, 2);
        let mut map = BTreeMap::new();
        map.insert(
            core_a(),
            Hop { iface: IfIndex(0), router: RouterId(1), addr: lan_peer, dist: 2 },
        );
        set_routes(&mut e, map);
        e.learn_cores(g(), &[core_a()]);
        let mut act = Vec::new();
        e.trigger_join(t(0), IfIndex(0), g(), 0, &mut act);
        assert!(e.has_pending_join(g()));
        // The LAN peer proxy-acks us.
        e.handle_control(
            t(1),
            IfIndex(0),
            lan_peer,
            ControlMessage::JoinAck {
                subcode: AckSubcode::ProxyAck,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        assert!(!e.is_on_tree(g()), "§2.6: D-DR keeps no FIB entry");
        assert!(!e.has_pending_join(g()));
        assert!(!e.is_gdr(IfIndex(0), g()));
        // And membership reports for the group do not retrigger joins.
        let mut act = Vec::new();
        e.trigger_join(t(2), IfIndex(0), g(), 0, &mut act);
        // (trigger_join is only called on NewGroup events; with the
        // group proxy-handled, presence still exists, so no NewGroup
        // fires. Direct call here shows it would join again — which is
        // correct after a genuine expiry.)
        assert_eq!(act.len(), 1);
    }

    #[test]
    fn join_toward_unreachable_core_gets_nack() {
        let mut e = engine(CbtConfig::default()); // no routes at all
        let act = e.handle_control(
            t(0),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        assert!(matches!(
            &act[0],
            RouterAction::SendControl {
                iface: IfIndex(2),
                msg: ControlMessage::JoinNack { .. },
                ..
            }
        ));
        assert!(!e.has_pending_join(g()));
    }

    #[test]
    fn nack_switches_to_alternate_core() {
        let mut e = routed_engine();
        trigger(&mut e, t(0));
        let act = e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinNack {
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
            },
        );
        // A fresh join toward core B went out.
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl {
                msg: ControlMessage::JoinRequest { target_core, .. },
                ..
            } if *target_core == core_b()
        )));
        assert!(e.has_pending_join(g()));
    }

    #[test]
    fn retransmission_then_core_switch_then_expiry() {
        let mut e = routed_engine();
        trigger(&mut e, t(0));
        // t=10: PEND-JOIN-INTERVAL retransmission of the same join.
        let act = e.on_timer(t(10));
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl {
                msg: ControlMessage::JoinRequest { target_core, .. },
                ..
            } if *target_core == core_a()
        )));
        // t=30: PEND-JOIN-TIMEOUT switches to core B.
        let act = e.on_timer(t(30));
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl {
                msg: ControlMessage::JoinRequest { target_core, .. },
                ..
            } if *target_core == core_b()
        )));
        // t=90+: EXPIRE-PENDING-JOIN gives up entirely.
        e.on_timer(t(60));
        e.on_timer(t(91));
        assert!(!e.has_pending_join(g()), "overall budget exhausted");
    }

    #[test]
    fn core_discovers_itself_from_join_and_acks() {
        // §6.2: a (re-started) core learns its role from the join's
        // core list.
        let mut e = routed_engine();
        let my_id = e.id_addr();
        let act = e.handle_control(
            t(0),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: my_id,
                cores: vec![my_id, core_b()],
            },
        );
        assert!(e.is_on_tree(g()));
        assert!(e.fib().get(g()).unwrap().i_am_core);
        assert!(e.fib().get(g()).unwrap().parent.is_none(), "primary core has no parent");
        assert!(matches!(
            &act[0],
            RouterAction::SendControl {
                msg: ControlMessage::JoinAck { subcode: AckSubcode::Normal, .. },
                ..
            }
        ));
        assert_eq!(e.children_of(g()), vec![down_addr()]);
    }

    #[test]
    fn secondary_core_acks_then_rejoins_primary() {
        // §2.5: a non-primary core receiving a join first acks it, then
        // sends REJOIN-ACTIVE to the primary.
        let mut e = routed_engine();
        let my_id = e.id_addr();
        let act = e.handle_control(
            t(0),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: my_id,
                cores: vec![core_a(), my_id], // primary is core_a
            },
        );
        let acks: Vec<_> = act
            .iter()
            .filter(|a| {
                matches!(a, RouterAction::SendControl { msg: ControlMessage::JoinAck { .. }, .. })
            })
            .collect();
        assert_eq!(acks.len(), 1);
        let rejoins: Vec<_> = act
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    RouterAction::SendControl {
                        msg: ControlMessage::JoinRequest {
                            subcode: JoinSubcode::RejoinActive,
                            target_core,
                            ..
                        },
                        ..
                    } if *target_core == core_a()
                )
            })
            .collect();
        assert_eq!(rejoins.len(), 1, "core tree built on demand (§1)");
        assert!(e.has_pending_join(g()));
    }

    #[test]
    fn nactive_rejoin_walks_parentward() {
        let mut e = routed_engine();
        trigger(&mut e, t(0));
        e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        let converter = Addr::from_octets(10, 255, 0, 50);
        let act = e.handle_control(
            t(2),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::RejoinNactive,
                group: g(),
                origin: Addr::from_octets(10, 255, 0, 60), // someone else's rejoin
                target_core: converter,
                cores: vec![core_a()],
            },
        );
        // Forwarded out our parent interface, fields unchanged.
        assert!(matches!(
            &act[0],
            RouterAction::SendControl {
                iface: IfIndex(1),
                msg: ControlMessage::JoinRequest {
                    subcode: JoinSubcode::RejoinNactive,
                    origin,
                    target_core,
                    ..
                },
                ..
            } if *origin == Addr::from_octets(10, 255, 0, 60) && *target_core == converter
        ));
    }

    #[test]
    fn own_nactive_rejoin_breaks_loop_with_quit() {
        let mut e = routed_engine();
        trigger(&mut e, t(0));
        e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        let my_id = e.id_addr();
        let act = e.handle_control(
            t(2),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::RejoinNactive,
                group: g(),
                origin: my_id, // our own rejoin came back!
                target_core: Addr::from_octets(10, 255, 0, 50),
                cores: vec![core_a(), core_b()],
            },
        );
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    iface: IfIndex(1),
                    msg: ControlMessage::QuitRequest { .. },
                    ..
                }
            )),
            "§6.3: quit to the newly-established parent"
        );
        assert_eq!(e.stats().loops_broken, 1);
        assert_eq!(e.parent_of(g()), None);
    }

    #[test]
    fn primary_core_acks_nactive_rejoin_directly_to_converter() {
        let mut e = routed_engine();
        let my_id = e.id_addr();
        // Become primary core by receiving a join listing us first.
        e.handle_control(
            t(0),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: my_id,
                cores: vec![my_id],
            },
        );
        // Route to the converter for the direct ack.
        let converter = Addr::from_octets(10, 255, 0, 50);
        let mut map = BTreeMap::new();
        map.insert(converter, up_hop());
        set_routes(&mut e, map);
        let act = e.handle_control(
            t(1),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::RejoinNactive,
                group: g(),
                origin: Addr::from_octets(10, 255, 0, 60),
                target_core: converter,
                cores: vec![my_id],
            },
        );
        assert!(
            matches!(
                &act[0],
                RouterAction::SendControl {
                    iface: IfIndex(1),
                    dst,
                    msg: ControlMessage::JoinAck { subcode: AckSubcode::RejoinNactive, .. },
                } if *dst == up_hop().addr
            ),
            "unicast directly toward the converting router (§8.3.1)"
        );
    }

    #[test]
    fn reattach_uses_rejoin_active_iff_children_exist() {
        let mut e = routed_engine();
        // On-tree with a child.
        trigger(&mut e, t(0));
        e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        e.handle_control(
            t(2),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        assert_eq!(e.children_of(g()).len(), 1);
        let mut act = Vec::new();
        e.start_reattach(t(3), g(), 0, &mut act);
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    msg: ControlMessage::JoinRequest { subcode: JoinSubcode::RejoinActive, .. },
                    ..
                }
            )),
            "§6.1: subcode ACTIVE_REJOIN when a child is attached"
        );
    }

    #[test]
    fn child_limit_produces_nack() {
        let mut e = routed_engine();
        let my_id = e.id_addr();
        // Become primary core.
        e.handle_control(
            t(0),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: my_id,
                cores: vec![my_id],
            },
        );
        // Fill to 16 children.
        for i in 1..crate::fib::MAX_CHILDREN {
            let child = Addr::from_octets(172, 31, 10, i as u8);
            e.handle_control(
                t(1),
                IfIndex(2),
                child,
                ControlMessage::JoinRequest {
                    subcode: JoinSubcode::ActiveJoin,
                    group: g(),
                    origin: Addr::from_octets(10, 9, 0, i as u8),
                    target_core: my_id,
                    cores: vec![my_id],
                },
            );
        }
        assert_eq!(e.children_of(g()).len(), crate::fib::MAX_CHILDREN);
        let act = e.handle_control(
            t(2),
            IfIndex(2),
            Addr::from_octets(172, 31, 11, 1),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 1, 1),
                target_core: my_id,
                cores: vec![my_id],
            },
        );
        assert!(matches!(
            &act[0],
            RouterAction::SendControl { msg: ControlMessage::JoinNack { .. }, .. }
        ));
    }

    /// Deviation 7 regression: an ACTIVE_REJOIN cached while we were
    /// pending (§2.5) must get the §6.3 NACTIVE conversion when it is
    /// finally served, exactly as if it had arrived while we were
    /// on-tree — otherwise an ack path running through the rejoin's own
    /// originator instates an undetectable parent/child cycle.
    #[test]
    fn cached_rejoin_active_is_nactive_converted_at_service_time() {
        let mut e = routed_engine();
        trigger(&mut e, t(0)); // our own pending join
        let rejoin_origin = Addr::from_octets(10, 255, 0, 60);
        let act = e.handle_control(
            t(1),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::RejoinActive,
                group: g(),
                origin: rejoin_origin,
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        assert!(act.is_empty(), "§2.5: cached while pending");
        assert_eq!(e.stats().joins_cached, 1);
        // Our ack arrives; serving the cached rejoin must launch the
        // loop-detection walk up our new parent path AND ack downstream.
        let act = e.handle_control(
            t(2),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        let my_id = e.id_addr();
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    iface: IfIndex(1),
                    dst,
                    msg: ControlMessage::JoinRequest {
                        subcode: JoinSubcode::RejoinNactive,
                        origin,
                        target_core,
                        ..
                    },
                } if *dst == up_hop().addr && *origin == rejoin_origin && *target_core == my_id
            )),
            "§6.3 walk parent-ward, origin preserved, converter in the core field: {act:?}"
        );
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    iface: IfIndex(2),
                    msg: ControlMessage::JoinAck { subcode: AckSubcode::Normal, .. },
                    ..
                }
            )),
            "the cached rejoin is still acknowledged downstream"
        );
    }

    /// Deviation 7 regression: a core whose RECONNECT campaign toward
    /// the primary expires gives up *quietly* — it keeps its subtree
    /// and stays a serving root — instead of flushing its members.
    #[test]
    fn core_past_reconnect_budget_keeps_serving_as_root() {
        let mut e = routed_engine();
        let my_id = e.id_addr();
        // Become a non-primary core (primary listed first) with a child.
        e.handle_control(
            t(0),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: my_id,
                cores: vec![core_a(), my_id],
            },
        );
        assert_eq!(e.children_of(g()).len(), 1);
        // A campaign has been failing since t=0...
        e.pending.remove(g()); // become_core's rejoin attempt, cleared
        e.reattach_started.insert(g(), t(0));
        // ...and the next retry lands past the budget.
        let past = t(0) + e.cfg.expire_pending_join;
        let mut act = Vec::new();
        e.start_reattach(past, g(), 0, &mut act);
        assert!(
            !act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl { msg: ControlMessage::FlushTree { .. }, .. }
            )),
            "no flush: the members are not punished for a dead backbone link"
        );
        assert!(e.is_on_tree(g()), "still a serving root");
        assert_eq!(e.children_of(g()).len(), 1, "subtree intact");
        assert!(!e.reattach_started.contains_key(&g()), "campaign retired");
    }

    /// Contrast case: a NON-core router past the same budget flushes
    /// downstream and drops its state (§6.1's RECONNECT-TIMEOUT).
    #[test]
    fn non_core_past_reconnect_budget_flushes_downstream() {
        let mut e = routed_engine();
        trigger(&mut e, t(0));
        e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        e.handle_control(
            t(2),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        assert_eq!(e.children_of(g()).len(), 1);
        e.reattach_started.insert(g(), t(2));
        let past = t(2) + e.cfg.expire_pending_join;
        let mut act = Vec::new();
        e.start_reattach(past, g(), 0, &mut act);
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl { msg: ControlMessage::FlushTree { .. }, .. }
            )),
            "§6.1: downstream flushed to fend for itself: {act:?}"
        );
        assert!(!e.is_on_tree(g()), "state dropped");
    }
}
