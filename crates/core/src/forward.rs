//! Data-plane forwarding: native mode (§4), CBT mode (§5), the on-tree
//! bit (§7) and non-member sending (§5.1/§5.3).
//!
//! The handlers write into a caller-provided action buffer and draw all
//! per-packet working storage from scratch collections on the router,
//! so the steady-state forward path performs no heap allocation: the
//! caller drains and reuses one `Vec<RouterAction>`, packet payloads
//! are refcounted [`Bytes`](cbt_wire::data) handles, and group lookups
//! go through the memoised dense FIB slot.

use crate::config::ForwardingMode;
use crate::engine::CbtRouter;
use crate::events::RouterAction;
use cbt_netsim::SimTime;
use cbt_obs::DropReason;
use cbt_topology::IfIndex;
use cbt_wire::header::{OFF_TREE, ON_TREE};
use cbt_wire::{Addr, CbtDataPacket, DataPacket, GroupId};

impl CbtRouter {
    /// A native (plain IP multicast) data packet arrived on `iface`
    /// from link-layer neighbour `link_src` (the sender's interface
    /// address on the shared medium — what the source MAC identifies
    /// on real Ethernet). Resulting sends are appended to `act`.
    pub fn handle_native_data(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        link_src: Addr,
        pkt: DataPacket,
        act: &mut Vec<RouterAction>,
    ) {
        if pkt.ttl == 0 {
            self.stats.data_discarded += 1;
            self.obs.drop_packet(DropReason::TtlExpired);
            return;
        }
        let group = pkt.group;
        let slot = self.fib_slot_cached(group);
        // "Sourced locally" (§5) means the originating host itself put
        // the packet on this wire — the link sender IS the IP source.
        let local_origin =
            self.iface(iface).is_some_and(|i| i.contains(pkt.src)) && link_src == pkt.src;

        if local_origin {
            // First-hop duties for a packet sourced on this subnet (§5).
            // Who picks it up?
            //
            //  * the LAN's responsible router — the group-specific DR,
            //    or failing that the default DR (-02 §2.2: "only one
            //    router, the DR, forward[s] to and from upstream to
            //    avoid loops") — which owns the member-LAN attachment;
            //  * any on-tree router whose TREE interface is this LAN
            //    (the LAN is a branch segment): the broadcast is its
            //    tree copy, since the skip-arrival rule means no tree
            //    neighbour will re-send it onto this LAN.
            //
            // Everyone else discards, or the tree carries duplicates.
            let responsible = self.is_gdr(iface, group)
                || (self.i_am_dr(iface, now) && !self.proxy_handled.contains_key(&(iface, group)));
            let arrival_is_tree = slot.is_some_and(|s| self.fib.at(s).is_tree_iface(iface));
            if slot.is_some() && (responsible || arrival_is_tree) {
                self.forward_over_tree(now, group, &pkt, Some(iface), None, act);
            } else if responsible && self.i_am_dr(iface, now) && slot.is_none() {
                // §5.1/§5.3 non-member sending: the D-DR encapsulates
                // and unicasts toward a core for the group.
                self.send_toward_core(group, &pkt, act);
            } else {
                self.stats.data_discarded += 1;
                // A responsible router with no tree has no FIB state to
                // forward with; an unresponsible one is outside its
                // scope — another router owns this LAN's attachment.
                self.obs.drop_packet(if responsible {
                    DropReason::NoFibEntry
                } else {
                    DropReason::ScopeBoundary
                });
            }
            return;
        }

        // §7: forwarded native packets must arrive on a valid on-tree
        // interface — AND from the tree neighbour that interface points
        // at. On a multi-access segment several routers transmit; only
        // the branch parent/child counts, otherwise member-delivery
        // multicasts from a co-located G-DR would be mistaken for
        // branch traffic and amplified around shared-LAN cycles.
        let valid = slot.is_some_and(|s| {
            let e = self.fib.at(s);
            e.parent.is_some_and(|p| p.iface == iface && p.addr == link_src)
                || e.children.iter().any(|c| c.iface == iface && c.addr == link_src)
        });
        if valid {
            self.forward_over_tree(now, group, &pkt, Some(iface), None, act);
        } else {
            self.stats.data_discarded += 1;
            self.obs.drop_packet(DropReason::ScopeBoundary);
        }
    }

    /// A CBT-mode (encapsulated) data packet arrived, addressed to us
    /// (or CBT-multicast on a LAN). `outer_src` identifies the sending
    /// neighbour; `arrival` the interface. Sends are appended to `act`.
    pub fn handle_cbt_data(
        &mut self,
        now: SimTime,
        arrival: IfIndex,
        outer_src: Addr,
        mut pkt: CbtDataPacket,
        act: &mut Vec<RouterAction>,
    ) {
        let group = pkt.cbt.group;
        let slot = self.fib_slot_cached(group);
        if pkt.cbt.is_on_tree() {
            // §7: an on-tree packet arriving over a non-tree interface
            // — or from anyone but the tree neighbour behind that
            // interface — is a leak (or a loop): discard immediately.
            let valid = slot.is_some_and(|s| {
                let e = self.fib.at(s);
                e.parent.is_some_and(|p| p.iface == arrival && p.addr == outer_src)
                    || e.children.iter().any(|c| c.iface == arrival && c.addr == outer_src)
            });
            if !valid {
                self.stats.data_discarded += 1;
                self.obs.drop_packet(DropReason::ScopeBoundary);
                return;
            }
            self.span_cbt(now, group, pkt, Some(outer_src), Some(arrival), act);
        } else {
            // Off-tree packet travelling from a non-member sender's DR
            // toward the tree (§5.1). The first on-tree router marks it.
            if slot.is_some() {
                pkt.cbt.on_tree = ON_TREE;
                self.span_cbt(now, group, pkt, Some(outer_src), None, act);
            } else {
                // We are the target core but have no tree (no members
                // ever joined): nowhere to deliver.
                self.stats.data_discarded += 1;
                self.obs.drop_packet(DropReason::NoFibEntry);
            }
        }
    }

    /// Encapsulates a native packet and unicasts it toward the group's
    /// best-known core (§5.1/§5.3).
    fn send_toward_core(&mut self, group: GroupId, pkt: &DataPacket, act: &mut Vec<RouterAction>) {
        let Some(cores) = self.cores_for(group) else {
            self.stats.data_discarded += 1;
            self.obs.drop_packet(DropReason::NoFibEntry);
            return;
        };
        // First reachable core wins.
        for core in cores {
            if let Some(hop) = self.routes.hop_toward(core) {
                let mut enc = CbtDataPacket::encapsulate(pkt, core);
                enc.cbt.on_tree = OFF_TREE;
                self.stats.data_forwarded += 1;
                self.obs.data_forwarded += 1;
                act.push(RouterAction::SendCbtUnicast { iface: hop.iface, dst: core, pkt: enc });
                return;
            }
        }
        self.stats.data_discarded += 1;
        self.obs.drop_packet(DropReason::NoFibEntry);
    }

    /// Spans the tree with a packet that is on it, in the configured
    /// forwarding mode. `skip_neighbor` suppresses the tree neighbour
    /// the packet came from; `skip_iface` suppresses re-multicasting
    /// onto the arrival subnet.
    fn forward_over_tree(
        &mut self,
        now: SimTime,
        group: GroupId,
        pkt: &DataPacket,
        skip_iface: Option<IfIndex>,
        skip_neighbor: Option<Addr>,
        act: &mut Vec<RouterAction>,
    ) {
        match self.cfg.mode {
            ForwardingMode::Native => {
                self.forward_native(group, pkt, skip_iface, act);
            }
            ForwardingMode::CbtMode => {
                let core = self
                    .fib_slot_cached(group)
                    .and_then(|s| self.fib.at(s).primary_core())
                    .unwrap_or(Addr::NULL);
                let mut enc = CbtDataPacket::encapsulate(pkt, core);
                enc.cbt.on_tree = ON_TREE;
                self.span_cbt(now, group, enc, skip_neighbor, skip_iface, act);
            }
        }
    }

    /// Native-mode spanning (§4): one IP multicast per distinct tree
    /// interface (parent vif, child vifs) and per member subnet this
    /// router is the attachment (G-DR) for.
    fn forward_native(
        &mut self,
        group: GroupId,
        pkt: &DataPacket,
        skip_iface: Option<IfIndex>,
        act: &mut Vec<RouterAction>,
    ) {
        let Some(slot) = self.fib_slot_cached(group) else {
            // Unreachable from the guarded call sites (they check the
            // slot first), but a FIB miss here must never be silent.
            self.stats.data_discarded += 1;
            self.obs.drop_packet(DropReason::NoFibEntry);
            return;
        };
        if pkt.ttl <= 1 {
            // §5 boundary, unified with the CBT path: every native
            // re-send decrements, so a ttl=1 packet cannot travel
            // further — its LAN of arrival already heard the original
            // broadcast, which is the §4 local delivery.
            self.stats.data_discarded += 1;
            self.obs.drop_packet(DropReason::TtlExpired);
            return;
        }
        let mut ifaces = std::mem::take(&mut self.scratch_ifaces);
        ifaces.clear();
        {
            let entry = self.fib.at(slot);
            if let Some(p) = entry.parent {
                ifaces.push(p.iface);
            }
            for c in &entry.children {
                ifaces.push(c.iface);
            }
        }
        for (&lan, l) in &self.lans {
            if l.presence.has_members(group) && self.is_gdr(lan, group) {
                ifaces.push(lan);
            }
        }
        // Sorted + deduped: same deterministic emission order as the
        // BTreeSet this replaced, without its per-packet node allocs.
        ifaces.sort_unstable();
        ifaces.dedup();
        if let Some(skip) = skip_iface {
            ifaces.retain(|i| *i != skip);
        }
        let out = DataPacket::new(pkt.src, pkt.group, pkt.ttl - 1, pkt.payload.clone());
        let sent = ifaces.len();
        for &iface in &ifaces {
            act.push(RouterAction::SendNativeData { iface, pkt: out.clone() });
        }
        self.scratch_ifaces = ifaces;
        if sent > 0 {
            self.stats.data_forwarded += 1;
            self.obs.data_forwarded += 1;
            // Member-LAN sends among the fan-out count as deliveries.
            let delivered = self.scratch_ifaces.iter().any(|i| {
                self.lans.get(i).is_some_and(|l| l.presence.has_members(group))
                    && self.is_gdr(*i, group)
            });
            if delivered {
                self.obs.data_delivered += 1;
            }
        }
    }

    /// CBT-mode spanning (§5): per tree interface, CBT-unicast to a
    /// single neighbour or CBT-multicast when parent/children share it;
    /// member subnets get the decapsulated packet as a native multicast
    /// with TTL 1.
    fn span_cbt(
        &mut self,
        _now: SimTime,
        group: GroupId,
        mut pkt: CbtDataPacket,
        skip_neighbor: Option<Addr>,
        _arrival: Option<IfIndex>,
        act: &mut Vec<RouterAction>,
    ) {
        // §5/§8.1: the CBT header TTL is decremented by every CBT hop.
        // A packet arriving with ttl <= 1 has no hop left to spend: it
        // neither transits nor reaches local member LANs, exactly as a
        // native packet expiring at this router would not — the TTL
        // radius is hop-for-hop identical in both modes (pinned by
        // tests/ttl_scoping.rs). §5's "inner TTL forced to 1" applies
        // to the decapsulated copy of a packet that still has hops, not
        // to one that already expired in flight. The same `ttl <= 1 ⇒
        // expired` boundary governs native transit; both count the loss.
        if pkt.cbt.ip_ttl <= 1 {
            self.obs.drop_packet(DropReason::TtlExpired);
            self.stats.data_discarded += 1;
            return;
        }
        pkt.cbt.ip_ttl -= 1;
        let Some(slot) = self.fib_slot_cached(group) else {
            // Unreachable from the guarded call sites, but never silent.
            self.stats.data_discarded += 1;
            self.obs.drop_packet(DropReason::NoFibEntry);
            return;
        };

        let mut forwarded = false;
        // Collect tree neighbours, then group by interface (ascending,
        // matching the order of the BTreeMap this replaced).
        let mut neighbors = std::mem::take(&mut self.scratch_neighbors);
        neighbors.clear();
        {
            let entry = self.fib.at(slot);
            if let Some(p) = entry.parent {
                if Some(p.addr) != skip_neighbor {
                    neighbors.push((p.iface, p.addr));
                }
            }
            for c in &entry.children {
                if Some(c.addr) != skip_neighbor {
                    neighbors.push((c.iface, c.addr));
                }
            }
        }
        neighbors.sort_unstable_by_key(|(iface, _)| *iface);

        let mut i = 0;
        while i < neighbors.len() {
            let iface = neighbors[i].0;
            let mut j = i + 1;
            while j < neighbors.len() && neighbors[j].0 == iface {
                j += 1;
            }
            if j - i == 1 {
                act.push(RouterAction::SendCbtUnicast {
                    iface,
                    dst: neighbors[i].1,
                    pkt: pkt.clone(),
                });
            } else {
                // §5 "CBT multicasting": several tree neighbours
                // behind one interface.
                act.push(RouterAction::SendCbtMulticast { iface, pkt: pkt.clone() });
            }
            forwarded = true;
            i = j;
        }
        self.scratch_neighbors = neighbors;

        // Member subnets: decapsulate, inner TTL forced to 1 (§5).
        // Zero-copy: the delivered payload views the encapsulated inner
        // datagram's refcounted buffer.
        let mut delivered = false;
        if let Ok(native) = pkt.decapsulate_for_delivery() {
            for (&lan, l) in &self.lans {
                if l.presence.has_members(group) && self.is_gdr(lan, group) {
                    // Never send the packet back onto its source subnet
                    // ("S10 received the IP style packet already from
                    // the originator", §5).
                    let src_is_here = self.iface(lan).is_some_and(|i| i.contains(native.src));
                    if !src_is_here {
                        act.push(RouterAction::SendNativeData { iface: lan, pkt: native.clone() });
                        delivered = true;
                        forwarded = true;
                    }
                }
            }
        }
        if forwarded {
            self.stats.data_forwarded += 1;
            self.obs.data_forwarded += 1;
            if delivered {
                self.obs.data_delivered += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::*;
    use crate::CbtConfig;
    use cbt_wire::{AckSubcode, ControlMessage, IgmpMessage, JoinSubcode};
    use std::collections::BTreeMap;

    fn g() -> GroupId {
        GroupId::numbered(1)
    }

    fn core_a() -> Addr {
        Addr::from_octets(10, 255, 0, 77)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn host_pkt(ttl: u8) -> DataPacket {
        DataPacket::new(Addr::from_octets(10, 1, 0, 100), g(), ttl, b"data".to_vec())
    }

    /// Drives `handle_native_data` through a fresh action buffer, the
    /// way pre-out-param callers did.
    fn native_data(
        e: &mut CbtRouter,
        now: SimTime,
        iface: IfIndex,
        link_src: Addr,
        pkt: DataPacket,
    ) -> Vec<RouterAction> {
        let mut act = Vec::new();
        e.handle_native_data(now, iface, link_src, pkt, &mut act);
        act
    }

    /// Same for `handle_cbt_data`.
    fn cbt_data(
        e: &mut CbtRouter,
        now: SimTime,
        arrival: IfIndex,
        outer_src: Addr,
        pkt: CbtDataPacket,
    ) -> Vec<RouterAction> {
        let mut act = Vec::new();
        e.handle_cbt_data(now, arrival, outer_src, pkt, &mut act);
        act
    }

    /// On-tree engine with parent via if1, one child via if2, members +
    /// G-DR on LAN if0.
    fn full_tree_engine(cfg: CbtConfig) -> CbtRouter {
        let mut e = engine(cfg);
        let mut map = BTreeMap::new();
        map.insert(core_a(), up_hop());
        set_routes(&mut e, map);
        e.learn_cores(g(), &[core_a()]);
        // Local member (also makes us G-DR when the join completes).
        e.handle_igmp(
            t(0),
            IfIndex(0),
            Addr::from_octets(10, 1, 0, 100),
            IgmpMessage::Report { version: 3, group: g() },
        );
        e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        e.handle_control(
            t(2),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        assert!(e.is_on_tree(g()));
        assert!(e.is_gdr(IfIndex(0), g()));
        assert_eq!(e.children_of(g()).len(), 1);
        e
    }

    #[test]
    fn local_packet_fans_up_and_down_but_not_back() {
        let mut e = full_tree_engine(CbtConfig::default());
        let act =
            native_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), host_pkt(16));
        let ifaces: Vec<IfIndex> = act
            .iter()
            .filter_map(|a| match a {
                RouterAction::SendNativeData { iface, .. } => Some(*iface),
                _ => None,
            })
            .collect();
        assert!(ifaces.contains(&IfIndex(1)), "toward parent");
        assert!(ifaces.contains(&IfIndex(2)), "toward child");
        assert!(!ifaces.contains(&IfIndex(0)), "never back onto the source subnet");
        // TTL decremented once.
        for a in &act {
            if let RouterAction::SendNativeData { pkt, .. } = a {
                assert_eq!(pkt.ttl, 15);
            }
        }
    }

    #[test]
    fn fanned_out_copies_share_the_payload_allocation() {
        let mut e = full_tree_engine(CbtConfig::default());
        let src_pkt = host_pkt(16);
        let original_payload = src_pkt.payload.clone();
        let act = native_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), src_pkt);
        let payloads: Vec<_> = act
            .iter()
            .filter_map(|a| match a {
                RouterAction::SendNativeData { pkt, .. } => Some(&pkt.payload),
                _ => None,
            })
            .collect();
        assert!(payloads.len() >= 2, "parent + child branches");
        for p in payloads {
            assert!(
                p.shares_allocation_with(&original_payload),
                "per-branch copies must be refcount clones, not deep copies"
            );
        }
    }

    #[test]
    fn action_buffer_is_appended_not_replaced() {
        // Callers drain one reusable buffer; the handler must append.
        let mut e = full_tree_engine(CbtConfig::default());
        let mut act = Vec::new();
        e.handle_native_data(
            t(5),
            IfIndex(0),
            Addr::from_octets(10, 1, 0, 100),
            host_pkt(16),
            &mut act,
        );
        let first = act.len();
        assert!(first >= 2);
        e.handle_native_data(
            t(6),
            IfIndex(0),
            Addr::from_octets(10, 1, 0, 100),
            host_pkt(16),
            &mut act,
        );
        assert_eq!(act.len(), first * 2, "second packet appends after the first");
    }

    #[test]
    fn packet_from_parent_reaches_child_and_members() {
        let mut e = full_tree_engine(CbtConfig::default());
        let remote = DataPacket::new(Addr::from_octets(10, 9, 0, 100), g(), 16, b"x".to_vec());
        let act = native_data(&mut e, t(5), IfIndex(1), up_hop().addr, remote);
        let ifaces: Vec<IfIndex> = act
            .iter()
            .filter_map(|a| match a {
                RouterAction::SendNativeData { iface, .. } => Some(*iface),
                _ => None,
            })
            .collect();
        assert!(ifaces.contains(&IfIndex(2)), "down to the child");
        assert!(ifaces.contains(&IfIndex(0)), "onto the member LAN (we are G-DR)");
        assert!(!ifaces.contains(&IfIndex(1)), "not back to the parent");
    }

    #[test]
    fn off_tree_arrival_is_discarded() {
        let mut e = full_tree_engine(CbtConfig::default());
        // if0 is a member LAN, not a tree iface; a *forwarded* (non-
        // local-origin) packet arriving there violates §7.
        let rogue = DataPacket::new(Addr::from_octets(10, 9, 0, 100), g(), 16, b"x".to_vec());
        let act = native_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 2), rogue);
        assert!(act.is_empty());
        assert_eq!(e.stats().data_discarded, 1);
    }

    #[test]
    fn ttl_expiry_discards() {
        let mut e = full_tree_engine(CbtConfig::default());
        let act =
            native_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), host_pkt(1));
        assert!(act.is_empty(), "TTL 1 cannot be forwarded");
        assert!(native_data(
            &mut e,
            t(5),
            IfIndex(0),
            Addr::from_octets(10, 1, 0, 100),
            host_pkt(0)
        )
        .is_empty());
        assert_eq!(e.stats().data_discarded, 2);
    }

    #[test]
    fn unknown_group_from_host_without_dr_role_is_dropped() {
        let mut e = engine(CbtConfig::default());
        // No cores known, but we are the DR: nothing can be done.
        let act =
            native_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), host_pkt(16));
        assert!(act.is_empty());
        assert_eq!(e.stats().data_discarded, 1);
    }

    #[test]
    fn non_member_sender_dr_encapsulates_toward_core() {
        let mut e = engine(CbtConfig::default());
        let mut map = BTreeMap::new();
        map.insert(core_a(), up_hop());
        set_routes(&mut e, map);
        e.learn_cores(g(), &[core_a()]);
        // Off-tree, D-DR of if0, host sends to a group with no local
        // members: §5.1/§5.3.
        let act =
            native_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), host_pkt(16));
        assert_eq!(act.len(), 1);
        match &act[0] {
            RouterAction::SendCbtUnicast { iface, dst, pkt } => {
                assert_eq!(*iface, IfIndex(1));
                assert_eq!(*dst, core_a(), "unicast to the core itself");
                assert_eq!(pkt.cbt.on_tree, OFF_TREE);
                assert_eq!(pkt.cbt.group, g());
                assert_eq!(pkt.cbt.origin, Addr::from_octets(10, 1, 0, 100));
            }
            other => panic!("expected CBT unicast, got {other:?}"),
        }
    }

    #[test]
    fn proxy_handled_group_suppresses_dr_encapsulation() {
        let mut e = engine(CbtConfig::default());
        let mut map = BTreeMap::new();
        map.insert(core_a(), up_hop());
        set_routes(&mut e, map);
        e.learn_cores(g(), &[core_a()]);
        e.proxy_handled.insert((IfIndex(0), g()), Addr::from_octets(10, 1, 0, 2));
        let act =
            native_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), host_pkt(16));
        assert!(act.is_empty(), "the G-DR on the LAN forwards; we must not duplicate");
    }

    #[test]
    fn cbt_mode_local_packet_spans_with_unicasts() {
        let mut e = full_tree_engine(CbtConfig::cbt_mode());
        let act =
            native_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), host_pkt(16));
        let unicasts: Vec<(&IfIndex, &Addr)> = act
            .iter()
            .filter_map(|a| match a {
                RouterAction::SendCbtUnicast { iface, dst, .. } => Some((iface, dst)),
                _ => None,
            })
            .collect();
        assert_eq!(unicasts.len(), 2, "parent + child, each alone on its iface");
        for a in &act {
            if let RouterAction::SendCbtUnicast { pkt, .. } = a {
                assert!(pkt.cbt.is_on_tree(), "first on-tree router sets the bit (§7)");
                assert_eq!(pkt.cbt.ip_ttl, 15, "CBT TTL decremented (§5)");
            }
        }
    }

    #[test]
    fn cbt_mode_multicasts_when_children_share_iface() {
        let mut e = full_tree_engine(CbtConfig::cbt_mode());
        // Second child behind the same interface as the first.
        e.handle_control(
            t(3),
            IfIndex(2),
            Addr::from_octets(172, 31, 0, 9),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 8, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        let act =
            native_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), host_pkt(16));
        assert!(
            act.iter()
                .any(|a| matches!(a, RouterAction::SendCbtMulticast { iface: IfIndex(2), .. })),
            "two children on if2 ⇒ CBT multicast (§5)"
        );
        assert!(
            act.iter().any(|a| matches!(a, RouterAction::SendCbtUnicast { iface: IfIndex(1), .. })),
            "parent alone on if1 ⇒ CBT unicast"
        );
    }

    #[test]
    fn cbt_data_from_parent_delivers_members_and_children() {
        let mut e = full_tree_engine(CbtConfig::cbt_mode());
        let native = DataPacket::new(Addr::from_octets(10, 9, 0, 100), g(), 16, b"x".to_vec());
        let mut enc = CbtDataPacket::encapsulate(&native, core_a());
        enc.cbt.on_tree = ON_TREE;
        let act = cbt_data(&mut e, t(5), IfIndex(1), up_hop().addr, enc);
        assert!(
            act.iter().any(|a| matches!(a, RouterAction::SendCbtUnicast { iface: IfIndex(2), .. })),
            "down to the child"
        );
        let member_delivery = act.iter().find_map(|a| match a {
            RouterAction::SendNativeData { iface: IfIndex(0), pkt } => Some(pkt),
            _ => None,
        });
        let delivered = member_delivery.expect("member LAN gets native delivery");
        assert_eq!(delivered.ttl, 1, "§5: inner TTL set to one");
        assert!(
            !act.iter()
                .any(|a| matches!(a, RouterAction::SendCbtUnicast { iface: IfIndex(1), .. })),
            "not back to the parent"
        );
    }

    #[test]
    fn on_tree_cbt_packet_on_wrong_iface_discarded() {
        let mut e = full_tree_engine(CbtConfig::cbt_mode());
        let native = DataPacket::new(Addr::from_octets(10, 9, 0, 100), g(), 16, b"x".to_vec());
        let mut enc = CbtDataPacket::encapsulate(&native, core_a());
        enc.cbt.on_tree = ON_TREE;
        // Arrives on the member LAN (if0) — not a tree interface.
        let act = cbt_data(&mut e, t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 7), enc);
        assert!(act.is_empty(), "§7 wandering packet discarded");
        assert_eq!(e.stats().data_discarded, 1);
    }

    #[test]
    fn off_tree_cbt_packet_joins_the_tree_here() {
        let mut e = full_tree_engine(CbtConfig::cbt_mode());
        let native = DataPacket::new(Addr::from_octets(10, 77, 0, 5), g(), 16, b"ns".to_vec());
        let enc = CbtDataPacket::encapsulate(&native, core_a()); // OFF_TREE
                                                                 // Arrives over a non-tree path (unicast toward the core crossed
                                                                 // us first).
        let act = cbt_data(&mut e, t(5), IfIndex(2), Addr::from_octets(172, 31, 0, 9), enc);
        assert!(!act.is_empty(), "we are on-tree: the packet spans from here");
        for a in &act {
            if let RouterAction::SendCbtUnicast { pkt, .. } = a {
                assert!(pkt.cbt.is_on_tree(), "bit set at the first on-tree router");
            }
        }
    }

    #[test]
    fn off_tree_cbt_packet_at_off_tree_router_dropped() {
        let mut e = engine(CbtConfig::cbt_mode());
        let native = DataPacket::new(Addr::from_octets(10, 77, 0, 5), g(), 16, b"ns".to_vec());
        let enc = CbtDataPacket::encapsulate(&native, core_a());
        let act = cbt_data(&mut e, t(5), IfIndex(1), up_hop().addr, enc);
        assert!(act.is_empty(), "target core without a tree: no receivers exist");
        assert_eq!(e.stats().data_discarded, 1);
    }

    /// §5: "it is possible that an IP-style multicast and a CBT
    /// multicast will be forwarded over a particular subnetwork" — a
    /// LAN that is both a tree branch (two children) and a member
    /// subnet gets both encapsulations.
    #[test]
    fn lan_carries_both_cbt_multicast_and_native_delivery() {
        let mut e = full_tree_engine(CbtConfig::cbt_mode());
        // Two children ON THE LAN iface (if0) — addresses in its subnet.
        for last in [2u8, 3] {
            e.handle_control(
                t(3),
                IfIndex(0),
                Addr::from_octets(10, 1, 0, last),
                ControlMessage::JoinRequest {
                    subcode: JoinSubcode::ActiveJoin,
                    group: g(),
                    origin: Addr::from_octets(10, 7, 0, last),
                    target_core: core_a(),
                    cores: vec![core_a()],
                },
            );
        }
        // Data arrives from the parent.
        let native = DataPacket::new(Addr::from_octets(10, 9, 0, 100), g(), 16, b"x".to_vec());
        let mut enc = CbtDataPacket::encapsulate(&native, core_a());
        enc.cbt.on_tree = ON_TREE;
        let act = cbt_data(&mut e, t(5), IfIndex(1), up_hop().addr, enc);
        assert!(
            act.iter()
                .any(|a| matches!(a, RouterAction::SendCbtMulticast { iface: IfIndex(0), .. })),
            "two children behind if0 ⇒ one CBT multicast on the subnet"
        );
        assert!(
            act.iter().any(|a| matches!(a, RouterAction::SendNativeData { iface: IfIndex(0), .. })),
            "member presence on the same subnet ⇒ a native multicast too (§5)"
        );
    }

    #[test]
    fn cbt_ttl_expiry() {
        // Unified TTL rule: a CBT packet arriving with ip_ttl == 1 has no
        // hop left — it neither transits nor reaches this router's member
        // LANs, exactly as a native packet expiring here would not. The
        // TTL radius is hop-for-hop identical across forwarding modes
        // (the composition is pinned end-to-end by tests/ttl_scoping.rs).
        let mut e = full_tree_engine(CbtConfig::cbt_mode());
        let native = DataPacket::new(Addr::from_octets(10, 9, 0, 100), g(), 1, b"x".to_vec());
        let mut enc = CbtDataPacket::encapsulate(&native, core_a());
        enc.cbt.on_tree = ON_TREE;
        assert_eq!(enc.cbt.ip_ttl, 1);
        let act = cbt_data(&mut e, t(5), IfIndex(1), up_hop().addr, enc);
        assert!(
            act.is_empty(),
            "an expired CBT packet is dropped whole: no transit, no member delivery"
        );
        assert_eq!(e.obs().drops.get(DropReason::TtlExpired), 1, "expiry lands in the taxonomy");
        assert_eq!(e.stats().data_discarded, 1, "the packet died here");
    }

    #[test]
    fn cbt_ttl_expiry_without_members_discards() {
        // Same expired packet at a router with no local members: transit is
        // suppressed and there is no member LAN to deliver to, so the
        // packet dies here and is counted once under TtlExpired.
        let mut e = engine(CbtConfig::cbt_mode());
        let mut map = BTreeMap::new();
        map.insert(core_a(), up_hop());
        set_routes(&mut e, map);
        e.learn_cores(g(), &[core_a()]);
        // A child's join (no local IGMP members), acked by the parent.
        e.handle_control(
            t(0),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        assert!(e.is_on_tree(g()));
        let native = DataPacket::new(Addr::from_octets(10, 9, 0, 100), g(), 1, b"x".to_vec());
        let mut enc = CbtDataPacket::encapsulate(&native, core_a());
        enc.cbt.on_tree = ON_TREE;
        let act = cbt_data(&mut e, t(5), IfIndex(1), up_hop().addr, enc);
        assert!(act.is_empty(), "no members and no viable transit: packet dies here");
        assert_eq!(e.obs().drops.get(DropReason::TtlExpired), 1);
        assert_eq!(e.stats().data_discarded, 1);
    }

    #[test]
    fn native_transit_ttl_one_is_dropped_symmetrically() {
        // Satellite fix: native-mode transit used to forward a ttl==1
        // packet with ttl 0 on the wire while CBT mode dropped it. Both
        // paths now apply `ttl <= 1 ⇒ expired` and count TtlExpired.
        let mut e = full_tree_engine(CbtConfig::default());
        let pkt = DataPacket::new(Addr::from_octets(10, 9, 0, 100), g(), 1, b"x".to_vec());
        let act = native_data(&mut e, t(5), IfIndex(1), up_hop().addr, pkt);
        assert!(act.is_empty(), "ttl=1 transit packet must not be forwarded (§4)");
        assert_eq!(e.obs().drops.get(DropReason::TtlExpired), 1);
        assert_eq!(e.stats().data_discarded, 1);
    }
}
