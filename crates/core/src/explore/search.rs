//! The forward search itself: enumerate fault placements against a
//! profiled baseline run, execute every interleaving, extend the ones
//! that perturbed the fleet, and distill violations into minimized
//! counterexamples.
//!
//! The search replays rather than snapshots: a placement is a complete
//! `(scenario, seed, schedule)` triple, so any run the search ever
//! looks at is already in replayable form. Depth-1 places one fault at
//! every enumerated injection point; depth-2 extends only schedules
//! whose end-state signature differs from the baseline's (faults the
//! fleet absorbed without a trace cannot enable new behaviour, so
//! extending them is wasted work).

use super::counterexample::minimize;
use super::{execute, Counterexample, Fault, RunResult, Scenario, Schedule};
use crate::engine::ProtocolPhase;
use crate::{CbtWorld, RouterNode};
use cbt_netsim::{Entity, SimDuration, SimTime};
use cbt_obs::ObsSnapshot;
use cbt_topology::{LanId, LinkId, RouterId};
use std::collections::BTreeSet;

/// The five fault dimensions the search places, for coverage
/// accounting (rows are [`ProtocolPhase`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultTag {
    /// Targeted control-frame drop.
    DropControl = 0,
    /// Targeted data-frame drop.
    DropData = 1,
    /// Router crash + §6.2 empty-state restart.
    Crash = 2,
    /// Point-to-point link partition.
    CutLink = 3,
    /// Whole-LAN outage.
    CutLan = 4,
}

impl FaultTag {
    /// Number of dimensions.
    pub const COUNT: usize = 5;

    /// Every dimension, in index order.
    pub const ALL: [FaultTag; FaultTag::COUNT] = [
        FaultTag::DropControl,
        FaultTag::DropData,
        FaultTag::Crash,
        FaultTag::CutLink,
        FaultTag::CutLan,
    ];

    /// Stable name for reports.
    pub const fn as_str(self) -> &'static str {
        match self {
            FaultTag::DropControl => "drop-ctl",
            FaultTag::DropData => "drop-data",
            FaultTag::Crash => "crash",
            FaultTag::CutLink => "cut-link",
            FaultTag::CutLan => "cut-lan",
        }
    }

    fn of(f: &Fault) -> FaultTag {
        match f {
            Fault::DropControl { .. } => FaultTag::DropControl,
            Fault::DropData { .. } => FaultTag::DropData,
            Fault::Crash { .. } => FaultTag::Crash,
            Fault::CutLink { .. } => FaultTag::CutLink,
            Fault::CutLan { .. } => FaultTag::CutLan,
        }
    }
}

/// Runs-per-cell coverage: which protocol phase each executed fault
/// was injected into, by fault dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageMatrix(pub [[u64; FaultTag::COUNT]; ProtocolPhase::COUNT]);

impl Default for CoverageMatrix {
    fn default() -> Self {
        CoverageMatrix([[0; FaultTag::COUNT]; ProtocolPhase::COUNT])
    }
}

impl CoverageMatrix {
    /// Count one executed placement.
    pub fn bump(&mut self, phase: ProtocolPhase, tag: FaultTag) {
        self.0[phase as usize][tag as usize] += 1;
    }

    /// Runs recorded for a (phase, dimension) cell.
    pub fn get(&self, phase: ProtocolPhase, tag: FaultTag) -> u64 {
        self.0[phase as usize][tag as usize]
    }

    /// Distinct protocol phases that received at least one fault.
    pub fn phases_covered(&self) -> usize {
        self.0.iter().filter(|row| row.iter().any(|&c| c > 0)).count()
    }

    /// Total placements recorded.
    pub fn total(&self) -> u64 {
        self.0.iter().flatten().sum()
    }

    /// Merge another matrix in.
    pub fn merge(&mut self, other: &CoverageMatrix) {
        for (a, b) in self.0.iter_mut().flatten().zip(other.0.iter().flatten()) {
            *a += b;
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct ExploreParams {
    /// Scenario names to explore (defaults to all).
    pub scenarios: Vec<String>,
    /// Maximum schedule length (1 = single faults only).
    pub depth: usize,
    /// Total interleaving budget across all scenarios and depths.
    pub max_runs: usize,
    /// Shard count each run uses.
    pub shards: usize,
    /// World seed.
    pub seed: u64,
    /// Grid spacing for timed faults (crash/cut probes).
    pub probe_period: SimDuration,
    /// Outage duration for timed faults.
    pub fault_down: SimDuration,
    /// Cap on targeted data-frame drop placements per scenario (data
    /// frames are few and homogeneous; control frames get the budget).
    pub max_data_drops: usize,
}

impl Default for ExploreParams {
    fn default() -> Self {
        ExploreParams {
            scenarios: Scenario::names().iter().map(|s| s.to_string()).collect(),
            depth: 2,
            max_runs: 900,
            shards: 1,
            seed: 0,
            probe_period: SimDuration::from_secs(4),
            // Longer than the fast-config echo timeout (9 s): outages
            // must outlive failure detection or the §6.1 re-attachment
            // campaign (echo-wait → core-unreachable) never starts and
            // those phases would be unreachable by construction.
            fault_down: SimDuration::from_secs(12),
            max_data_drops: 24,
        }
    }
}

/// What the search produced.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct fault interleavings executed (baseline runs excluded).
    pub interleavings: u64,
    /// Distinct end-state signatures seen (baselines included).
    pub distinct_signatures: u64,
    /// Runs whose verdict was not `ok`.
    pub violating_runs: u64,
    /// Runs that failed to quiesce.
    pub quiesce_failures: u64,
    /// Minimized, deduplicated counterexamples.
    pub counterexamples: Vec<Counterexample>,
    /// Phase × dimension coverage over executed placements.
    pub coverage: CoverageMatrix,
    /// Interleavings per scenario, in scenario order.
    pub per_scenario: Vec<(String, u64)>,
    /// Merged baseline observability snapshot across scenarios.
    pub baseline_obs: ObsSnapshot,
}

/// One schedulable run for a batch runner.
#[derive(Debug, Clone)]
pub struct Job {
    /// Scenario to run.
    pub scenario: Scenario,
    /// Faults to inject.
    pub schedule: Schedule,
    /// Shard count.
    pub shards: usize,
    /// World seed.
    pub seed: u64,
}

/// Executes one job (the function batch runners map over).
pub fn run_job(job: &Job) -> RunResult {
    execute(&job.scenario, &job.schedule, job.shards, job.seed)
}

/// Runs the search sequentially.
pub fn explore(params: &ExploreParams) -> ExploreReport {
    explore_with(params, |jobs| jobs.iter().map(run_job).collect())
}

/// Runs the search with a caller-supplied batch runner (`cbt-eval`
/// passes its deterministic in-order parallel map). The runner must
/// return exactly one result per job, in input order.
pub fn explore_with(
    params: &ExploreParams,
    run_batch: impl Fn(&[Job]) -> Vec<RunResult>,
) -> ExploreReport {
    let scenarios: Vec<Scenario> = params
        .scenarios
        .iter()
        .map(|n| Scenario::by_name(n).unwrap_or_else(|| panic!("unknown scenario {n:?}")))
        .collect();

    let mut coverage = CoverageMatrix::default();
    let mut signatures = BTreeSet::new();
    let mut per_scenario = vec![0u64; scenarios.len()];
    let mut interleavings = 0u64;
    let mut violating_runs = 0u64;
    let mut quiesce_failures = 0u64;
    let mut baseline_obs = ObsSnapshot::default();
    let mut raw_violations: Vec<(usize, Schedule, Vec<String>)> = Vec::new();

    // ---- baseline profiling: one fault-free run per scenario ----
    let mut profiles = Vec::with_capacity(scenarios.len());
    for scn in &scenarios {
        let prof = profile_scenario(scn, params);
        signatures.insert(prof.baseline.signature);
        baseline_obs.merge(&prof.baseline.obs);
        if !prof.baseline.violations.is_empty() {
            raw_violations.push((profiles.len(), Schedule::none(), prof.baseline.verdict_lines()));
        }
        profiles.push(prof);
    }

    // ---- depth 1: place single faults, evenly thinned to budget ----
    // With extensions enabled, keep a third of the budget for them —
    // otherwise depth-1 placements would starve the frontier.
    let d1_budget =
        if params.depth > 1 { (params.max_runs * 2 / 3).max(1) } else { params.max_runs };
    let share = (d1_budget / scenarios.len().max(1)).max(1);
    let mut jobs = Vec::new();
    let mut labels = Vec::new(); // (scenario idx, placement idx)
    for (si, prof) in profiles.iter().enumerate() {
        for pi in thin_indices(prof.placements.len(), share) {
            let p = &prof.placements[pi];
            jobs.push(Job {
                scenario: scenarios[si].clone(),
                schedule: Schedule::single(p.fault),
                shards: params.shards,
                seed: params.seed,
            });
            labels.push((si, pi));
        }
    }
    let results = run_batch(&jobs);
    assert_eq!(results.len(), jobs.len(), "runner must return one result per job");

    let mut frontier: Vec<(usize, Schedule, usize)> = Vec::new(); // (scenario, schedule, last placement idx)
    for ((job, result), &(si, pi)) in jobs.iter().zip(&results).zip(&labels) {
        let p = &profiles[si].placements[pi];
        // Timed faults report the phase actually observed at injection
        // in this very run; frame drops keep the profiler's label.
        let phase = result.injected_phases.last().copied().flatten().unwrap_or(p.phase);
        coverage.bump(phase, FaultTag::of(&p.fault));
        per_scenario[si] += 1;
        interleavings += 1;
        signatures.insert(result.signature);
        if !result.quiesced {
            quiesce_failures += 1;
        }
        if result.violations.is_empty() {
            if result.signature != profiles[si].baseline.signature {
                frontier.push((si, job.schedule.clone(), pi));
            }
        } else {
            violating_runs += 1;
            raw_violations.push((si, job.schedule.clone(), result.verdict_lines()));
        }
    }

    // ---- depth ≥ 2: extend signature-changing schedules ----
    for _ in 2..=params.depth {
        let budget = params.max_runs.saturating_sub(interleavings as usize);
        if budget == 0 || frontier.is_empty() {
            break;
        }
        let quota = (budget / frontier.len()).max(1);
        let mut jobs = Vec::new();
        let mut labels = Vec::new();
        'fill: for (si, sched, last) in &frontier {
            // Only extend with later placements: schedules are
            // canonical ordered sets, so each combination runs once.
            // Interior spread, not prefix: with a quota of 1 a prefix
            // pick would always grab the placement *adjacent* to the
            // parent fault — same grid instant, zero sim time for the
            // first fault to bite — while interior picks land inside
            // and after the parent's outage window.
            let later = profiles[*si].placements.len().saturating_sub(last + 1);
            for off in spread_indices(later, quota) {
                if jobs.len() >= budget {
                    break 'fill;
                }
                let pi = last + 1 + off;
                jobs.push(Job {
                    scenario: scenarios[*si].clone(),
                    schedule: sched.and(profiles[*si].placements[pi].fault),
                    shards: params.shards,
                    seed: params.seed,
                });
                labels.push((*si, pi));
            }
        }
        if jobs.is_empty() {
            break;
        }
        let results = run_batch(&jobs);
        assert_eq!(results.len(), jobs.len(), "runner must return one result per job");
        let mut next_frontier = Vec::new();
        for ((job, result), &(si, pi)) in jobs.iter().zip(&results).zip(&labels) {
            let p = &profiles[si].placements[pi];
            // The extension fault is the schedule's last entry; inside
            // another fault's outage window the live sample reports
            // the phase that outage induced (echo-wait, core-
            // unreachable) — unknowable from the fault-free baseline.
            let phase = result.injected_phases.last().copied().flatten().unwrap_or(p.phase);
            coverage.bump(phase, FaultTag::of(&p.fault));
            per_scenario[si] += 1;
            interleavings += 1;
            signatures.insert(result.signature);
            if !result.quiesced {
                quiesce_failures += 1;
            }
            if result.violations.is_empty() {
                if result.signature != profiles[si].baseline.signature {
                    next_frontier.push((si, job.schedule.clone(), pi));
                }
            } else {
                violating_runs += 1;
                raw_violations.push((si, job.schedule.clone(), result.verdict_lines()));
            }
        }
        frontier = next_frontier;
    }

    // ---- minimize + dedupe violations into counterexamples ----
    let mut seen_verdicts = BTreeSet::new();
    let mut counterexamples = Vec::new();
    for (si, schedule, verdict) in raw_violations {
        if !seen_verdicts.insert((scenarios[si].name.to_string(), verdict.clone())) {
            continue;
        }
        let minimized = if schedule.faults.is_empty() {
            schedule
        } else {
            minimize(&scenarios[si], &schedule, params.shards, params.seed, &verdict)
        };
        counterexamples.push(Counterexample {
            scenario: scenarios[si].name.to_string(),
            seed: params.seed,
            shards: params.shards,
            schedule: minimized,
            verdict,
        });
    }

    ExploreReport {
        interleavings,
        distinct_signatures: signatures.len() as u64,
        violating_runs,
        quiesce_failures,
        counterexamples,
        coverage,
        per_scenario: scenarios
            .iter()
            .zip(per_scenario)
            .map(|(s, n)| (s.name.to_string(), n))
            .collect(),
        baseline_obs,
    }
}

/// Evenly spaced selection of `want` indices out of `0..len`,
/// anchored at 0.
fn thin_indices(len: usize, want: usize) -> Vec<usize> {
    if len == 0 || want == 0 {
        return Vec::new();
    }
    if want >= len {
        return (0..len).collect();
    }
    (0..want).map(|i| i * len / want).collect()
}

/// Evenly spaced selection of `want` indices out of `0..len`, interior
/// (never anchored at 0): `want = 1` picks the middle, not the first.
fn spread_indices(len: usize, want: usize) -> Vec<usize> {
    if len == 0 || want == 0 {
        return Vec::new();
    }
    if want >= len {
        return (0..len).collect();
    }
    (0..want).map(|i| (i + 1) * len / (want + 1)).collect()
}

/// One enumerated injection point, labelled with the protocol phase
/// the baseline fleet was in at that moment.
#[derive(Debug, Clone)]
struct Placement {
    fault: Fault,
    phase: ProtocolPhase,
}

struct Profile {
    baseline: RunResult,
    placements: Vec<Placement>,
}

/// Precedence when one injection point spans several (router, group)
/// phases: label with the most failure-interesting one.
pub(super) fn rank(p: ProtocolPhase) -> u8 {
    match p {
        ProtocolPhase::Idle => 0,
        ProtocolPhase::Attached => 1,
        ProtocolPhase::EchoWait => 2,
        ProtocolPhase::PendingJoin => 3,
        ProtocolPhase::CoreUnreachable => 4,
        ProtocolPhase::Teardown => 5,
    }
}

/// The protocol exchange a CBT control frame belongs to, as a phase
/// label for the drop that severs it. `None` for IGMP (labelled by
/// grid sample instead).
fn phase_of_control(kind: cbt_netsim::PacketKind) -> Option<ProtocolPhase> {
    use cbt_wire::ControlType as C;
    let cbt_netsim::PacketKind::Control(c) = kind else { return None };
    Some(match c {
        C::JoinRequest | C::JoinAck | C::JoinNack => ProtocolPhase::PendingJoin,
        C::EchoRequest | C::EchoReply => ProtocolPhase::EchoWait,
        C::QuitRequest | C::QuitAck | C::FlushTree => ProtocolPhase::Teardown,
    })
}

/// Runs the scenario fault-free with a full trace, sampling every
/// router's per-group phase on the probe grid. The sampled phases
/// label every placement; the recorded control/data frame sequence
/// numbers *are* the drop placements (trace order equals injector
/// order — both sit on the same emission path).
fn profile_scenario(scn: &Scenario, params: &ExploreParams) -> Profile {
    let mut cw = scn.build(params.shards, params.seed, &Schedule::none(), true);
    cw.world.start();

    let probe = params.probe_period;
    let quanta = (scn.horizon.micros() / probe.micros()) as usize;
    // samples[q][router][group index] = phase at time q * probe
    let mut samples: Vec<Vec<Vec<ProtocolPhase>>> = Vec::with_capacity(quanta + 1);
    for q in 0..=quanta {
        cw.world.run_until(SimTime::from_micros(q as u64 * probe.micros()));
        samples.push(sample_phases(&cw, &scn.groups));
    }
    cw.world.run_until(scn.horizon + scn.settle);
    let quiesced = super::await_quiescence(&mut cw, &scn.groups, SimDuration::from_secs(90));
    let mut violations = super::check_tree_invariants(&cw, &scn.groups);
    super::invariants::sort_violations(&mut violations);
    let baseline = RunResult {
        violations,
        signature: super::fleet_signature(&cw, &scn.groups),
        quiesced,
        obs: super::fleet_obs(&cw),
        fault_stats: cw.world.fault_stats(),
        injected_phases: Vec::new(),
    };

    let phase_at = |at: SimTime, routers: &[usize]| -> ProtocolPhase {
        let q = ((at.micros() / probe.micros()) as usize).min(quanta);
        routers
            .iter()
            .flat_map(|&r| samples[q][r].iter().copied())
            .max_by_key(|&p| rank(p))
            .unwrap_or(ProtocolPhase::Idle)
    };
    let net = cw.net.clone();
    let routers_of = |from: Entity| -> Vec<usize> {
        match from {
            Entity::Router(r) => vec![r.0 as usize],
            Entity::Host(h) => {
                let lan = net.hosts[h.0 as usize].lan;
                net.lans[lan.0 as usize].routers.iter().map(|r| r.0 as usize).collect()
            }
        }
    };

    let mut placements = Vec::new();
    // Frame-drop placements from the recorded trace. A control drop is
    // labelled by the exchange it severs — dropping a JOIN_ACK is a
    // pending-join fault, dropping an ECHO_REPLY forces the echo-wait
    // window, dropping a QUIT/FLUSH interferes with teardown — which
    // is sharper than the probe grid (those phases last milliseconds,
    // far below any sane probe period). IGMP and data frames fall back
    // to the sampled grid phase.
    let mut ctl_seq = 0u64;
    let mut data_drops = Vec::new();
    let mut data_seq = 0u64;
    for e in cw.world.trace().entries() {
        if e.kind.is_control() {
            if e.at <= scn.horizon {
                let phase =
                    phase_of_control(e.kind).unwrap_or_else(|| phase_at(e.at, &routers_of(e.from)));
                placements.push(Placement { fault: Fault::DropControl { seq: ctl_seq }, phase });
            }
            ctl_seq += 1;
        } else {
            if e.at <= scn.horizon {
                data_drops.push(Placement {
                    fault: Fault::DropData { seq: data_seq },
                    phase: phase_at(e.at, &routers_of(e.from)),
                });
            }
            data_seq += 1;
        }
    }
    for i in thin_indices(data_drops.len(), params.max_data_drops) {
        placements.push(data_drops[i].clone());
    }
    // Timed placements on the probe grid (skip t=0: nothing has
    // happened yet, and a crash before the schedule starts only tests
    // the boot path over and over).
    for q in 1..=quanta {
        let at = SimTime::from_micros(q as u64 * probe.micros());
        for ri in 0..net.routers.len() {
            placements.push(Placement {
                fault: Fault::Crash { router: RouterId(ri as u32), at, down: params.fault_down },
                phase: phase_at(at, &[ri]),
            });
        }
        for li in 0..net.links.len() {
            let l = &net.links[li];
            placements.push(Placement {
                fault: Fault::CutLink { link: LinkId(li as u32), at, down: params.fault_down },
                phase: phase_at(at, &[l.a.0 as usize, l.b.0 as usize]),
            });
        }
        for si in 0..net.lans.len() {
            let routers: Vec<usize> = net.lans[si].routers.iter().map(|r| r.0 as usize).collect();
            placements.push(Placement {
                fault: Fault::CutLan { lan: LanId(si as u32), at, down: params.fault_down },
                phase: phase_at(at, &routers),
            });
        }
    }
    Profile { baseline, placements }
}

/// Every up router's phase for every group, in index order.
fn sample_phases(cw: &CbtWorld, groups: &[cbt_wire::GroupId]) -> Vec<Vec<ProtocolPhase>> {
    let now = cw.world.now();
    (0..cw.net.routers.len())
        .map(|i| {
            let r = RouterId(i as u32);
            if cw.world.failures().router_down(r) {
                return vec![ProtocolPhase::Idle; groups.len()];
            }
            match cw.world.node::<RouterNode>(Entity::Router(r)) {
                Some(node) => {
                    groups.iter().map(|&g| node.sharded().protocol_phase(g, now)).collect()
                }
                None => vec![ProtocolPhase::Idle; groups.len()],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thin_indices_selects_evenly() {
        assert_eq!(thin_indices(10, 20), (0..10).collect::<Vec<_>>());
        assert_eq!(thin_indices(10, 5), vec![0, 2, 4, 6, 8]);
        assert_eq!(thin_indices(0, 5), Vec::<usize>::new());
        assert_eq!(thin_indices(5, 0), Vec::<usize>::new());
        let t = thin_indices(1000, 3);
        assert_eq!(t.len(), 3);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn small_exploration_covers_phases_and_stays_deterministic() {
        let params = ExploreParams {
            scenarios: vec!["chain".into()],
            depth: 1,
            max_runs: 24,
            ..ExploreParams::default()
        };
        let a = explore(&params);
        assert_eq!(a.interleavings, 24);
        assert!(a.distinct_signatures >= 2, "some fault must perturb the end state");
        assert!(a.coverage.phases_covered() >= 2, "coverage: {:?}", a.coverage);
        assert_eq!(a.coverage.total(), 24);
        // Same params → identical report (the whole pipeline is
        // deterministic, including counterexample content).
        let b = explore(&params);
        assert_eq!(a.interleavings, b.interleavings);
        assert_eq!(a.distinct_signatures, b.distinct_signatures);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.counterexamples, b.counterexamples);
    }

    #[test]
    fn depth_two_extends_only_perturbing_schedules() {
        let params = ExploreParams {
            scenarios: vec!["dual-dr".into()],
            depth: 2,
            max_runs: 30,
            ..ExploreParams::default()
        };
        let report = explore(&params);
        assert!(report.interleavings as usize <= params.max_runs);
        // The dual-dr scenario has well over 15 placements, so the
        // depth-1 share (15) is fully used.
        assert!(report.interleavings >= 15);
    }
}
