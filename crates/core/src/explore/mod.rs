//! # Systematic fault-interleaving exploration
//!
//! A forward-search harness that drives the deterministic simulator
//! through *enumerated* fault schedules instead of random seeds. The
//! unit of exploration is a [`Schedule`]: an ordered set of [`Fault`]s
//! (targeted control/data-frame drops, router crash + §6.2 restart,
//! link partition, LAN outage) injected into one named [`Scenario`].
//!
//! Because the simulator replays bit-identically from `(scenario,
//! seed, schedule)`, there is no snapshotting: every interleaving is a
//! fresh run, and every run the search flags is a self-contained
//! replayable counterexample ([`Counterexample`]) that `cargo test`
//! re-executes verbatim from its text form.
//!
//! After each interleaving the harness heals all faults, waits for the
//! fleet to quiesce, and checks the tree invariants
//! ([`check_tree_invariants`]): no forwarding loops, parent/child FIB
//! symmetry, every member attached to a rooted tree, no orphaned hard
//! state after teardown, and obs counters consistent with the injected
//! faults. See `DESIGN.md` ("Exploration harness").

mod counterexample;
mod invariants;
mod scenario;
mod search;

pub use counterexample::Counterexample;
pub use invariants::{assert_tree_invariants, check_tree_invariants, record_violations, Violation};
pub use scenario::Scenario;
pub use search::{
    explore, explore_with, run_job, CoverageMatrix, ExploreParams, ExploreReport, FaultTag, Job,
};

use crate::engine::ProtocolPhase;
use crate::CbtWorld;
use cbt_netsim::{SimDuration, SimTime};
use cbt_obs::ObsSnapshot;
use cbt_topology::{LanId, LinkId, RouterId};
use cbt_wire::GroupId;
use std::fmt;

/// One injectable fault. Timed faults (`Crash`, `CutLink`, `CutLan`)
/// take effect at `at` and heal `down` later; frame drops are keyed by
/// the per-class deterministic sequence number the
/// [`cbt_netsim::fault::FaultInjector`] assigns, which is what makes a
/// drop schedule immune to unrelated traffic (see
/// `FaultPlan::drop_control_seqs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Drop the `seq`-th control-class frame (CBT control or IGMP).
    DropControl {
        /// Control-class sequence number (emission order).
        seq: u64,
    },
    /// Drop the `seq`-th data-class frame.
    DropData {
        /// Data-class sequence number (emission order).
        seq: u64,
    },
    /// Crash a router at `at`; restart it with empty state (§6.2)
    /// after `down`.
    Crash {
        /// Which router.
        router: RouterId,
        /// When it dies.
        at: SimTime,
        /// How long it stays down.
        down: SimDuration,
    },
    /// Partition a point-to-point link at `at` for `down`.
    CutLink {
        /// Which link.
        link: LinkId,
        /// When it goes down.
        at: SimTime,
        /// How long it stays down.
        down: SimDuration,
    },
    /// Take a whole LAN segment down at `at` for `down`.
    CutLan {
        /// Which LAN.
        lan: LanId,
        /// When it goes down.
        at: SimTime,
        /// How long it stays down.
        down: SimDuration,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::DropControl { seq } => write!(f, "drop-ctl {seq}"),
            Fault::DropData { seq } => write!(f, "drop-data {seq}"),
            Fault::Crash { router, at, down } => {
                write!(f, "crash r{} at={}us down={}us", router.0, at.micros(), down.micros())
            }
            Fault::CutLink { link, at, down } => {
                write!(f, "cut-link l{} at={}us down={}us", link.0, at.micros(), down.micros())
            }
            Fault::CutLan { lan, at, down } => {
                write!(f, "cut-lan s{} at={}us down={}us", lan.0, at.micros(), down.micros())
            }
        }
    }
}

impl Fault {
    /// Parses the `Display` form back. Returns `None` on anything
    /// malformed — counterexample files are hand-editable, so this is
    /// lenient about whitespace but strict about fields.
    pub fn parse(s: &str) -> Option<Fault> {
        let mut it = s.split_whitespace();
        let head = it.next()?;
        match head {
            "drop-ctl" => Some(Fault::DropControl { seq: it.next()?.parse().ok()? }),
            "drop-data" => Some(Fault::DropData { seq: it.next()?.parse().ok()? }),
            "crash" | "cut-link" | "cut-lan" => {
                let id = it.next()?;
                let idx: u32 = id.get(1..)?.parse().ok()?;
                let at = parse_us(it.next()?, "at=")?;
                let down = parse_us(it.next()?, "down=")?;
                let (at, down) = (SimTime::from_micros(at), SimDuration::from_micros(down));
                match (head, id.as_bytes()[0]) {
                    ("crash", b'r') => Some(Fault::Crash { router: RouterId(idx), at, down }),
                    ("cut-link", b'l') => Some(Fault::CutLink { link: LinkId(idx), at, down }),
                    ("cut-lan", b's') => Some(Fault::CutLan { lan: LanId(idx), at, down }),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// When a timed fault takes effect; frame drops are untimed.
    fn at(&self) -> Option<SimTime> {
        match *self {
            Fault::Crash { at, .. } | Fault::CutLink { at, .. } | Fault::CutLan { at, .. } => {
                Some(at)
            }
            _ => None,
        }
    }
}

fn parse_us(tok: &str, key: &str) -> Option<u64> {
    tok.strip_prefix(key)?.strip_suffix("us")?.parse().ok()
}

/// An ordered set of faults applied to one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The faults, in injection order.
    pub faults: Vec<Fault>,
}

impl Schedule {
    /// The empty (baseline) schedule.
    pub fn none() -> Schedule {
        Schedule::default()
    }

    /// A single-fault schedule.
    pub fn single(f: Fault) -> Schedule {
        Schedule { faults: vec![f] }
    }

    /// This schedule plus one more fault.
    pub fn and(&self, f: Fault) -> Schedule {
        let mut faults = self.faults.clone();
        faults.push(f);
        Schedule { faults }
    }
}

/// What one executed interleaving produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Invariant violations found after heal + quiescence (empty on a
    /// clean run). Already stably sorted.
    pub violations: Vec<Violation>,
    /// FNV-1a hash over the fleet's per-group end state — two runs
    /// with equal signatures converged to the same tree.
    pub signature: u64,
    /// Did the fleet reach a transient-state-free instant within the
    /// quiescence budget?
    pub quiesced: bool,
    /// Merged fleet observability snapshot at the end of the run.
    pub obs: ObsSnapshot,
    /// `(passed, corrupted, dropped)` from the fault injector.
    pub fault_stats: (u64, u64, u64),
    /// For each schedule fault, the protocol phase the involved
    /// routers were actually in at injection time — sampled live from
    /// this very run for timed faults (`Crash`/`CutLink`/`CutLan`),
    /// `None` for frame drops (those are labelled statically by the
    /// search profiler from the frame they sever). Exact by
    /// construction: a second fault landing inside another fault's
    /// outage window is labelled with the phase that outage induced
    /// (e.g. core-unreachable), which no baseline profile can know.
    pub injected_phases: Vec<Option<ProtocolPhase>>,
}

impl RunResult {
    /// The verdict lines a counterexample file records: one line per
    /// violation, or the single line `ok`.
    pub fn verdict_lines(&self) -> Vec<String> {
        if self.violations.is_empty() {
            vec!["ok".into()]
        } else {
            self.violations.iter().map(|v| v.to_string()).collect()
        }
    }
}

/// Extra sim time granted after a violation is first seen: one §9
/// IFF-scan period plus slack, so states the engine will still clean
/// up on its own slow timers are not misreported as stuck.
const GRACE: SimDuration = SimDuration::from_secs(40);

/// How long [`await_quiescence`] is willing to keep stepping.
const QUIESCE_BUDGET: SimDuration = SimDuration::from_secs(90);

/// Step granularity while waiting for quiescence.
const QUIESCE_STEP: SimDuration = SimDuration::from_millis(500);

/// Runs `scenario` under `schedule` with `shards`-way sharded routers
/// and returns the checked result. This is the single replay primitive
/// everything else (search, counterexample replay, property tests) is
/// built on: identical inputs give byte-identical verdicts.
pub fn execute(scenario: &Scenario, schedule: &Schedule, shards: usize, seed: u64) -> RunResult {
    let mut cw = scenario.build(shards, seed, schedule, false);
    cw.world.start();

    // Timed faults and their heals, in deterministic order, each
    // remembering which schedule entry it came from so the injection
    // phase can be recorded against the right fault.
    let mut events: Vec<(SimTime, usize, TimedOp)> = Vec::new();
    for (fi, f) in schedule.faults.iter().enumerate() {
        let Some(at) = f.at() else { continue };
        match *f {
            Fault::Crash { router, down, .. } => {
                events.push((at, fi, TimedOp::CrashRouter(router)));
                events.push((at + down, fi, TimedOp::RestartRouter(router)));
            }
            Fault::CutLink { link, down, .. } => {
                events.push((at, fi, TimedOp::CutLink(link)));
                events.push((at + down, fi, TimedOp::HealLink(link)));
            }
            Fault::CutLan { lan, down, .. } => {
                events.push((at, fi, TimedOp::CutLan(lan)));
                events.push((at + down, fi, TimedOp::HealLan(lan)));
            }
            _ => {}
        }
    }
    events.sort_by_key(|(t, _, _)| *t); // stable: ties keep schedule order
    let mut injected_phases: Vec<Option<ProtocolPhase>> = vec![None; schedule.faults.len()];
    for (t, fi, op) in events {
        let t = t.min(scenario.horizon); // late heals happen in heal()
        cw.world.run_until(t);
        let now = cw.world.now();
        match op {
            TimedOp::CrashRouter(r) => {
                injected_phases[fi] = Some(phase_of_routers(&cw, &[r], &scenario.groups));
                cw.fail_router(r);
            }
            TimedOp::RestartRouter(r) => {
                if cw.world.failures().router_down(r) {
                    cw.restart_router(r, now);
                }
            }
            TimedOp::CutLink(l) => {
                let ends = [cw.net.links[l.0 as usize].a, cw.net.links[l.0 as usize].b];
                injected_phases[fi] = Some(phase_of_routers(&cw, &ends, &scenario.groups));
                cw.fail_link(l);
            }
            TimedOp::HealLink(l) => {
                if cw.world.failures().link_down(l) {
                    cw.restore_link(l);
                }
            }
            TimedOp::CutLan(l) => {
                let routers = cw.net.lans[l.0 as usize].routers.clone();
                injected_phases[fi] = Some(phase_of_routers(&cw, &routers, &scenario.groups));
                cw.fail_lan(l);
            }
            TimedOp::HealLan(l) => {
                if cw.world.failures().lan_down(l) {
                    cw.restore_lan(l);
                }
            }
        }
    }

    cw.world.run_until(scenario.horizon);
    heal_everything(&mut cw);
    cw.world.run_until(scenario.horizon + scenario.settle);
    let mut quiesced = await_quiescence(&mut cw, &scenario.groups, QUIESCE_BUDGET);
    let mut violations = check_tree_invariants(&cw, &scenario.groups);
    if !violations.is_empty() || !quiesced {
        // Grace pass: anything the engine's own slow timers (IFF-scan,
        // child-assert expiry) would still repair is not a violation.
        cw.world.run_for(GRACE);
        quiesced = await_quiescence(&mut cw, &scenario.groups, QUIESCE_BUDGET);
        violations = check_tree_invariants(&cw, &scenario.groups);
    }
    if !quiesced {
        violations.push(Violation {
            kind: cbt_obs::InvariantKind::OrphanedState,
            group: None,
            router: None,
            detail: "fleet never quiesced within budget".into(),
        });
    }
    invariants::sort_violations(&mut violations);
    record_violations(&mut cw, &violations);

    let signature = fleet_signature(&cw, &scenario.groups);
    let obs = fleet_obs(&cw);
    RunResult {
        violations,
        signature,
        quiesced,
        obs,
        fault_stats: cw.world.fault_stats(),
        injected_phases,
    }
}

/// The most failure-interesting protocol phase any of `routers` is in
/// right now, across `groups`. Down routers contribute nothing.
fn phase_of_routers(cw: &CbtWorld, routers: &[RouterId], groups: &[GroupId]) -> ProtocolPhase {
    let now = cw.world.now();
    routers
        .iter()
        .filter(|&&r| !cw.world.failures().router_down(r))
        .filter_map(|&r| cw.world.node::<crate::RouterNode>(cbt_netsim::Entity::Router(r)))
        .flat_map(|node| groups.iter().map(move |&g| node.sharded().protocol_phase(g, now)))
        .max_by_key(|&p| search::rank(p))
        .unwrap_or(ProtocolPhase::Idle)
}

enum TimedOp {
    CrashRouter(RouterId),
    RestartRouter(RouterId),
    CutLink(LinkId),
    HealLink(LinkId),
    CutLan(LanId),
    HealLan(LanId),
}

/// Restores every failed element and restarts (empty-state, §6.2)
/// every dead router, so invariants are checked against a network
/// that has had a chance to converge.
fn heal_everything(cw: &mut CbtWorld) {
    let now = cw.world.now();
    for i in 0..cw.net.links.len() {
        let l = LinkId(i as u32);
        if cw.world.failures().link_down(l) {
            cw.restore_link(l);
        }
    }
    for i in 0..cw.net.lans.len() {
        let l = LanId(i as u32);
        if cw.world.failures().lan_down(l) {
            cw.restore_lan(l);
        }
    }
    for i in 0..cw.net.routers.len() {
        let r = RouterId(i as u32);
        if cw.world.failures().router_down(r) {
            cw.restart_router(r, now);
        }
    }
}

/// Steps the world in [`QUIESCE_STEP`] increments until no up router
/// holds transient state (pending join, unacked quit, re-attachment
/// campaign) for any of `groups`, or `budget` is spent. Returns
/// whether quiescence was reached.
pub fn await_quiescence(cw: &mut CbtWorld, groups: &[GroupId], budget: SimDuration) -> bool {
    let deadline = cw.world.now() + budget;
    loop {
        if fleet_is_quiescent(cw, groups) {
            return true;
        }
        if cw.world.now() >= deadline {
            return false;
        }
        cw.world.run_for(QUIESCE_STEP);
    }
}

fn fleet_is_quiescent(cw: &CbtWorld, groups: &[GroupId]) -> bool {
    for i in 0..cw.net.routers.len() {
        let r = RouterId(i as u32);
        if cw.world.failures().router_down(r) {
            continue;
        }
        let Some(node) = cw.world.node::<crate::RouterNode>(cbt_netsim::Entity::Router(r)) else {
            continue;
        };
        if groups.iter().any(|&g| node.sharded().has_transient_state(g)) {
            return false;
        }
    }
    true
}

/// FNV-1a over the fleet's end state: per router per group the
/// on-tree bit, parent, sorted children and transient bit; per host
/// the membership bit and delivery count; plus the trace totals. Two
/// runs whose faults were absorbed without a trace converge to the
/// baseline signature — the search uses that to prune extensions.
pub fn fleet_signature(cw: &CbtWorld, groups: &[GroupId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let put = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for i in 0..cw.net.routers.len() {
        let r = RouterId(i as u32);
        let down = cw.world.failures().router_down(r);
        put(&mut h, &[down as u8]);
        if down {
            continue;
        }
        let Some(node) = cw.world.node::<crate::RouterNode>(cbt_netsim::Entity::Router(r)) else {
            continue;
        };
        for &g in groups {
            let eng = node.sharded();
            put(&mut h, &g.addr().0.to_be_bytes());
            put(&mut h, &[eng.is_on_tree(g) as u8, eng.has_transient_state(g) as u8]);
            put(&mut h, &eng.parent_of(g).unwrap_or(cbt_wire::Addr::NULL).0.to_be_bytes());
            let mut kids = eng.children_of(g);
            kids.sort_unstable();
            for k in kids {
                put(&mut h, &k.0.to_be_bytes());
            }
        }
    }
    for i in 0..cw.net.hosts.len() {
        let hid = cbt_topology::HostId(i as u32);
        let Some(app) = cw.world.node::<crate::HostApp>(cbt_netsim::Entity::Host(hid)) else {
            continue;
        };
        put(&mut h, &(app.received().len() as u32).to_be_bytes());
        for &g in groups {
            put(&mut h, &[app.is_member(g) as u8]);
        }
    }
    let (frames, bytes) = cw.world.trace().totals();
    put(&mut h, &frames.to_be_bytes());
    put(&mut h, &bytes.to_be_bytes());
    h
}

/// Merged observability snapshot across all up routers.
pub fn fleet_obs(cw: &CbtWorld) -> ObsSnapshot {
    let mut merged = ObsSnapshot::default();
    for i in 0..cw.net.routers.len() {
        let r = RouterId(i as u32);
        if cw.world.failures().router_down(r) {
            continue;
        }
        if let Some(node) = cw.world.node::<crate::RouterNode>(cbt_netsim::Entity::Router(r)) {
            merged.merge(&node.sharded().obs_snapshot());
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display_parse_roundtrip() {
        let faults = [
            Fault::DropControl { seq: 17 },
            Fault::DropData { seq: 0 },
            Fault::Crash {
                router: RouterId(2),
                at: SimTime::from_secs(21),
                down: SimDuration::from_secs(8),
            },
            Fault::CutLink {
                link: LinkId(1),
                at: SimTime::from_micros(1_234_567),
                down: SimDuration::from_millis(2500),
            },
            Fault::CutLan {
                lan: LanId(0),
                at: SimTime::from_secs(3),
                down: SimDuration::from_secs(6),
            },
        ];
        for f in faults {
            let s = f.to_string();
            assert_eq!(Fault::parse(&s), Some(f), "roundtrip of {s:?}");
        }
        assert_eq!(Fault::parse("drop-ctl"), None);
        assert_eq!(Fault::parse("crash x2 at=1us down=1us"), None);
        assert_eq!(Fault::parse("crash r2 at=1 down=1us"), None);
    }

    #[test]
    fn identical_runs_have_identical_verdicts_and_signatures() {
        let scn = Scenario::by_name("chain").unwrap();
        let sched = Schedule::single(Fault::DropControl { seq: 3 });
        let a = execute(&scn, &sched, 1, 7);
        let b = execute(&scn, &sched, 1, 7);
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.verdict_lines(), b.verdict_lines());
        assert_eq!(a.fault_stats, b.fault_stats);
    }

    #[test]
    fn baseline_run_is_clean_and_quiesces() {
        for name in Scenario::names() {
            let scn = Scenario::by_name(name).unwrap();
            let r = execute(&scn, &Schedule::none(), 1, 0);
            assert!(r.quiesced, "{name}: baseline must quiesce");
            assert_eq!(r.verdict_lines(), vec!["ok".to_string()], "{name}: {:?}", r.violations);
            assert_eq!(r.fault_stats.1, 0, "{name}: no corruption in baseline");
            assert_eq!(r.fault_stats.2, 0, "{name}: no drops in baseline");
        }
    }

    #[test]
    fn crash_of_core_heals_back_to_clean_tree() {
        let scn = Scenario::by_name("chain").unwrap();
        let sched = Schedule::single(Fault::Crash {
            router: RouterId(1), // the core
            at: SimTime::from_secs(8),
            down: SimDuration::from_secs(6),
        });
        let r = execute(&scn, &sched, 1, 0);
        assert!(r.quiesced);
        assert_eq!(r.verdict_lines(), vec!["ok".to_string()], "{:?}", r.violations);
    }
}
