//! The scenario library the search explores. Each scenario is a small
//! named deployment whose host schedule walks the fleet through every
//! protocol phase worth injecting faults into: pending joins (§2.5),
//! steady-state keepalives (§6.1), teardown (§2.7), alternate-core
//! fallback (§6.1) and dual-DR LANs (§2.3/§2.6). Scenarios are
//! referenced *by name* from counterexample files, so their topologies
//! and schedules are part of the replay contract — change one and the
//! golden corpus must be regenerated.

use super::Schedule;
use crate::{CbtConfig, CbtWorld};
use cbt_netsim::{FaultPlan, SimDuration, SimTime, WorldConfig};
use cbt_topology::NetworkBuilder;
use cbt_wire::GroupId;

/// A named, fully-scripted deployment the exploration harness can run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable name (the counterexample replay key).
    pub name: &'static str,
    /// Groups in play; invariants are checked for each.
    pub groups: Vec<GroupId>,
    /// End of the scripted portion; faults inject before this, healing
    /// happens here.
    pub horizon: SimTime,
    /// Post-heal convergence time before the invariant check.
    pub settle: SimDuration,
}

const G1: GroupId = GroupId::numbered(1);
const G2: GroupId = GroupId::numbered(2);

impl Scenario {
    /// All scenario names, in a stable order.
    pub fn names() -> &'static [&'static str] {
        &["chain", "diamond", "dual-dr"]
    }

    /// Looks a scenario up by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        let (groups, horizon, settle) = match name {
            // A—R0—R1(core)—R2—R3—B with a leaver C behind R2: joins,
            // steady state, data both ways, and a full §2.7 teardown.
            "chain" => (vec![G1, G2], 36, 48),
            // Square with a diagonal and two listed cores: re-attachment
            // has real alternate paths and an alternate core (§6.1).
            "diamond" => (vec![G1], 30, 48),
            // Two routers on the member LAN: D-DR election, G-DR
            // proxying and DR takeover (§2.3/§2.6).
            "dual-dr" => (vec![G1], 30, 48),
            _ => return None,
        };
        Some(Scenario {
            name: Self::names().iter().find(|n| **n == name)?,
            groups,
            horizon: SimTime::from_secs(horizon),
            settle: SimDuration::from_secs(settle),
        })
    }

    /// Builds the world for one run: topology + host schedule, with
    /// `schedule`'s targeted drops installed in the fault plan.
    /// `record_trace` is only needed by the baseline profiling run.
    pub fn build(
        &self,
        shards: usize,
        seed: u64,
        schedule: &Schedule,
        record_trace: bool,
    ) -> CbtWorld {
        let mut ctl = Vec::new();
        let mut data = Vec::new();
        for f in &schedule.faults {
            match *f {
                super::Fault::DropControl { seq } => ctl.push(seq),
                super::Fault::DropData { seq } => data.push(seq),
                _ => {}
            }
        }
        let plan = FaultPlan::none().with_control_drops(ctl).with_data_drops(data);
        let world_cfg = WorldConfig { fault: plan, seed, record_trace, ..WorldConfig::default() };
        let mut cfg = CbtConfig::fast();
        cfg.shards = shards;
        match self.name {
            "chain" => build_chain(cfg, world_cfg),
            "diamond" => build_diamond(cfg, world_cfg),
            "dual-dr" => build_dual_dr(cfg, world_cfg),
            other => unreachable!("unknown scenario {other}"),
        }
    }
}

/// `A —[S0]— R0 —— R1(core) —— R2 —— R3 —[S1]— B`, plus `C` on S2
/// behind R2. A and B are members of g1 and exchange data; C joins g2
/// and leaves again, so the run contains a complete teardown whose
/// QUIT/FLUSH exchange the search can interfere with.
fn build_chain(cfg: CbtConfig, world_cfg: WorldConfig) -> CbtWorld {
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0");
    let r1 = b.router("R1"); // core for both groups
    let r2 = b.router("R2");
    let r3 = b.router("R3");
    b.link(r0, r1, 1);
    b.link(r1, r2, 1);
    b.link(r2, r3, 1);
    let s0 = b.lan("S0");
    b.attach(s0, r0);
    let a = b.host("A", s0);
    let s1 = b.lan("S1");
    b.attach(s1, r3);
    let bb = b.host("B", s1);
    let s2 = b.lan("S2");
    b.attach(s2, r2);
    let c = b.host("C", s2);
    let net = b.build();
    let core = net.router_addr(r1);

    let mut cw = CbtWorld::build(net, cfg, world_cfg);
    cw.host(a).join_at(SimTime::from_secs(1), G1, vec![core]);
    cw.host(bb).join_at(SimTime::from_micros(1_500_000), G1, vec![core]);
    cw.host(c).join_at(SimTime::from_secs(2), G2, vec![core]);
    cw.host(bb).send_at(SimTime::from_secs(10), G1, b"b->a first".to_vec(), 32);
    cw.host(a).send_at(SimTime::from_secs(18), G1, b"a->b reply".to_vec(), 32);
    cw.host(bb).send_at(SimTime::from_secs(20), G1, b"b->a again".to_vec(), 32);
    cw.host(c).leave_at(SimTime::from_secs(24), G2);
    cw
}

/// A square with a diagonal and **two listed cores**:
///
/// ```text
///   R0 ---- R1
///    |    /  |
///   R2 ---- R3(core, alternate R2)
/// ```
///
/// Crashing R3 forces the §6.1 alternate-core fallback to R2; the
/// diagonal gives re-attachment a genuinely different path to retrace.
fn build_diamond(cfg: CbtConfig, world_cfg: WorldConfig) -> CbtWorld {
    let mut b = NetworkBuilder::new();
    let r0 = b.router("R0");
    let r1 = b.router("R1");
    let r2 = b.router("R2");
    let r3 = b.router("R3");
    b.link(r0, r1, 1);
    b.link(r0, r2, 1);
    b.link(r1, r3, 1);
    b.link(r2, r3, 1);
    b.link(r1, r2, 1);
    let s0 = b.lan("S0");
    b.attach(s0, r0);
    let a = b.host("A", s0);
    let s1 = b.lan("S1");
    b.attach(s1, r1);
    let bb = b.host("B", s1);
    let net = b.build();
    let cores = vec![net.router_addr(r3), net.router_addr(r2)];

    let mut cw = CbtWorld::build(net, cfg, world_cfg);
    cw.host(a).join_at(SimTime::from_secs(1), G1, cores.clone());
    cw.host(bb).join_at(SimTime::from_secs(2), G1, cores);
    cw.host(a).send_at(SimTime::from_secs(14), G1, b"a->b data".to_vec(), 32);
    cw.host(bb).send_at(SimTime::from_secs(22), G1, b"b->a data".to_vec(), 32);
    cw
}

/// Two routers share the member LAN (lowest-addressed one wins D-DR),
/// both uplinked to the core; a member+sender M sits behind the core.
/// Crashing the D-DR mid-tree exercises takeover without duplicate
/// delivery.
fn build_dual_dr(cfg: CbtConfig, world_cfg: WorldConfig) -> CbtWorld {
    let mut b = NetworkBuilder::new();
    let r_low = b.router("Rlow"); // created first → lowest address → D-DR
    let r_high = b.router("Rhigh");
    let r_core = b.router("Rcore");
    let s0 = b.lan("S0");
    b.attach(s0, r_low);
    b.attach(s0, r_high);
    let h = b.host("H", s0);
    b.link(r_low, r_core, 1);
    b.link(r_high, r_core, 1);
    let s1 = b.lan("S1");
    b.attach(s1, r_core);
    let m = b.host("M", s1);
    let net = b.build();
    let core = net.router_addr(r_core);

    let mut cw = CbtWorld::build(net, cfg, world_cfg);
    cw.host(m).join_at(SimTime::from_secs(1), G1, vec![core]);
    cw.host(h).join_at(SimTime::from_secs(2), G1, vec![core]);
    cw.host(m).send_at(SimTime::from_secs(8), G1, b"m->h one".to_vec(), 32);
    cw.host(m).send_at(SimTime::from_secs(20), G1, b"m->h two".to_vec(), 32);
    cw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_builds() {
        for name in Scenario::names() {
            let scn = Scenario::by_name(name).expect(name);
            assert_eq!(scn.name, *name);
            let cw = scn.build(1, 0, &Schedule::none(), false);
            assert!(!cw.net.routers.is_empty());
            assert!(!cw.net.hosts.is_empty());
        }
        assert!(Scenario::by_name("no-such").is_none());
    }
}
