//! The tree-invariant checker: what must hold of the fleet's hard
//! state once the network has healed and quiesced.
//!
//! The checks run over a plain snapshot ([`FleetView`]) collected from
//! the world in one read-only pass, so the logic is pure and unit
//! testable with hand-built views — including states (forwarding
//! loops, dangling parents) that a correct engine should never reach.

use crate::CbtWorld;
use cbt_obs::{DropReason, InvariantKind};
use cbt_topology::{HostId, LanId, RouterId};
use cbt_wire::{Addr, GroupId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One invariant violation, attributed as precisely as possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// The group concerned, if group-scoped.
    pub group: Option<GroupId>,
    /// The router the violation is attributed to (counter bumping and
    /// display), if router-scoped.
    pub router: Option<RouterId>,
    /// Human-readable specifics. Part of the stable verdict text.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.as_str())?;
        if let Some(g) = self.group {
            let o = g.addr().octets();
            write!(f, " group={}.{}.{}.{}", o[0], o[1], o[2], o[3])?;
        }
        if let Some(r) = self.router {
            write!(f, " router=r{}", r.0)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Stable ordering so verdicts are byte-identical across shard counts
/// and discovery order.
pub(super) fn sort_violations(vs: &mut [Violation]) {
    vs.sort_by(|a, b| {
        (a.kind as usize, a.group.map(|g| g.addr().0), a.router.map(|r| r.0), &a.detail).cmp(&(
            b.kind as usize,
            b.group.map(|g| g.addr().0),
            b.router.map(|r| r.0),
            &b.detail,
        ))
    });
}

/// Per-group slice of one router's FIB, as the checker sees it.
#[derive(Debug, Clone, Default)]
pub(super) struct GroupView {
    pub on_tree: bool,
    pub parent: Option<Addr>,
    pub children: Vec<Addr>,
    pub i_am_core: bool,
    pub transient: bool,
}

/// One router in the snapshot.
#[derive(Debug, Clone)]
pub(super) struct RouterView {
    pub up: bool,
    /// Every address that resolves to this router (ID + interfaces).
    pub addrs: Vec<Addr>,
    pub per_group: BTreeMap<GroupId, GroupView>,
}

/// The whole fleet, frozen for checking.
#[derive(Debug, Clone)]
pub(super) struct FleetView {
    pub groups: Vec<GroupId>,
    pub routers: Vec<RouterView>,
    /// Which routers serve each LAN (for member attachment).
    pub lan_routers: BTreeMap<LanId, Vec<usize>>,
    /// Member hosts per group: (host name, its LAN).
    pub members: BTreeMap<GroupId, Vec<(String, LanId)>>,
    /// Frames the injector corrupted in flight.
    pub corrupted: u64,
    /// Fleet-wide checksum-rejection count from obs.
    pub checksum_bad: u64,
}

/// Runs every invariant over the current world state. The world must
/// be healed and quiescent (see `execute`) — in-flight transitions are
/// legitimate protocol states, not violations. Returns a stably
/// sorted list; empty means the tree is sound.
pub fn check_tree_invariants(cw: &CbtWorld, groups: &[GroupId]) -> Vec<Violation> {
    let view = collect_fleet(cw, groups);
    let mut vs = check_fleet(&view);
    sort_violations(&mut vs);
    vs
}

/// Bumps the obs invariant counters on each violation's attributed
/// router (shard 0 of the fleet-wide merge), so the drop-reason /
/// invariant taxonomy in exported snapshots reflects what the checker
/// found. Unattributed violations land on router 0.
pub fn record_violations(cw: &mut CbtWorld, violations: &[Violation]) {
    for v in violations {
        let r = v.router.unwrap_or(RouterId(0));
        if cw.world.failures().router_down(r) {
            continue;
        }
        cw.router(r).sharded_mut().obs_mut().invariant_violated(v.kind);
    }
}

/// Panics with the full violation list if any invariant fails —
/// the one-line convergence assertion integration tests use.
pub fn assert_tree_invariants(cw: &CbtWorld, groups: &[GroupId]) {
    let vs = check_tree_invariants(cw, groups);
    assert!(
        vs.is_empty(),
        "tree invariants violated:\n{}",
        vs.iter().map(|v| format!("  {v}")).collect::<Vec<_>>().join("\n")
    );
}

fn collect_fleet(cw: &CbtWorld, groups: &[GroupId]) -> FleetView {
    let net = &cw.net;
    let mut routers = Vec::with_capacity(net.routers.len());
    for (i, spec) in net.routers.iter().enumerate() {
        let r = RouterId(i as u32);
        let up = !cw.world.failures().router_down(r);
        let mut addrs = vec![spec.addr];
        addrs.extend(spec.ifaces.iter().map(|ifc| ifc.addr));
        let mut per_group = BTreeMap::new();
        if up {
            if let Some(node) = cw.world.node::<crate::RouterNode>(cbt_netsim::Entity::Router(r)) {
                for &g in groups {
                    let eng = node.sharded().shard_for(g);
                    let mut gv = GroupView {
                        on_tree: eng.is_on_tree(g),
                        transient: eng.has_transient_state(g),
                        ..GroupView::default()
                    };
                    if let Some(e) = eng.fib().get(g) {
                        gv.parent = e.parent.map(|p| p.addr);
                        gv.children = e.children.iter().map(|c| c.addr).collect();
                        gv.i_am_core = e.i_am_core;
                    }
                    per_group.insert(g, gv);
                }
            }
        }
        routers.push(RouterView { up, addrs, per_group });
    }
    let lan_routers = net
        .lans
        .iter()
        .enumerate()
        .map(|(i, l)| (LanId(i as u32), l.routers.iter().map(|r| r.0 as usize).collect()))
        .collect();
    let mut members: BTreeMap<GroupId, Vec<(String, LanId)>> = BTreeMap::new();
    for (i, spec) in net.hosts.iter().enumerate() {
        let h = HostId(i as u32);
        let Some(app) = cw.world.node::<crate::HostApp>(cbt_netsim::Entity::Host(h)) else {
            continue;
        };
        for &g in groups {
            if app.is_member(g) {
                members.entry(g).or_default().push((spec.name.clone(), spec.lan));
            }
        }
    }
    let checksum_bad = super::fleet_obs(cw).drops.get(DropReason::ChecksumBad);
    FleetView {
        groups: groups.to_vec(),
        routers,
        lan_routers,
        members,
        corrupted: cw.world.fault_stats().1,
        checksum_bad,
    }
}

/// How one router's parent chain for a group terminates.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Chain {
    /// Reaches a core acting as root: valid.
    Rooted,
    /// Ends somewhere invalid (dangling parent, off-tree upstream,
    /// parentless non-core) or feeds a loop.
    Broken,
}

pub(super) fn check_fleet(view: &FleetView) -> Vec<Violation> {
    let mut vs = Vec::new();
    let addr_to_router: BTreeMap<Addr, usize> = view
        .routers
        .iter()
        .enumerate()
        .flat_map(|(i, r)| r.addrs.iter().map(move |&a| (a, i)))
        .collect();

    for &g in &view.groups {
        let gv = |i: usize| view.routers[i].per_group.get(&g);
        let on_tree: Vec<usize> = (0..view.routers.len())
            .filter(|&i| view.routers[i].up && gv(i).is_some_and(|v| v.on_tree))
            .collect();

        // ---- parent/child FIB symmetry (both directions) ----
        for &i in &on_tree {
            let v = gv(i).expect("on-tree");
            if let Some(p) = v.parent {
                match addr_to_router.get(&p) {
                    None => vs.push(Violation {
                        kind: InvariantKind::ParentChildAsymmetry,
                        group: Some(g),
                        router: Some(RouterId(i as u32)),
                        detail: format!("parent {} is not any router's address", dotted(p)),
                    }),
                    Some(&pi) if view.routers[pi].up => {
                        let pv = gv(pi);
                        let knows_me = pv.is_some_and(|pv| {
                            pv.children.iter().any(|c| view.routers[i].addrs.contains(c))
                        });
                        if !knows_me {
                            vs.push(Violation {
                                kind: InvariantKind::ParentChildAsymmetry,
                                group: Some(g),
                                router: Some(RouterId(i as u32)),
                                detail: format!(
                                    "parent r{pi} has no matching child entry for r{i}"
                                ),
                            });
                        }
                    }
                    Some(_) => {} // parent router is down: chain walk handles it
                }
            }
            for c in &v.children {
                let ok = addr_to_router.get(c).is_some_and(|&ci| {
                    view.routers[ci].up
                        && gv(ci).is_some_and(|cv| {
                            cv.on_tree
                                && cv.parent.is_some_and(|pp| view.routers[i].addrs.contains(&pp))
                        })
                });
                if !ok {
                    vs.push(Violation {
                        kind: InvariantKind::ParentChildAsymmetry,
                        group: Some(g),
                        router: Some(RouterId(i as u32)),
                        detail: format!("child {} does not point back at r{i}", dotted(*c)),
                    });
                }
            }
        }

        // ---- parent-chain walk: loops, orphan roots, rootedness ----
        let mut chain: BTreeMap<usize, Chain> = BTreeMap::new();
        let mut cycles: BTreeSet<Vec<usize>> = BTreeSet::new();
        for &start in &on_tree {
            if chain.contains_key(&start) {
                continue;
            }
            let mut path: Vec<usize> = Vec::new();
            let mut cur = start;
            let end = loop {
                if let Some(&done) = chain.get(&cur) {
                    break done;
                }
                if let Some(pos) = path.iter().position(|&x| x == cur) {
                    // New cycle: canonicalise by rotating its minimum
                    // to the front so each loop is reported once.
                    let mut cyc = path[pos..].to_vec();
                    let min_at =
                        cyc.iter().enumerate().min_by_key(|(_, &r)| r).map(|(i, _)| i).unwrap();
                    cyc.rotate_left(min_at);
                    cycles.insert(cyc);
                    break Chain::Broken;
                }
                let Some(v) = gv(cur).filter(|v| v.on_tree && view.routers[cur].up) else {
                    break Chain::Broken; // upstream off-tree or dead
                };
                match v.parent {
                    None => break if v.i_am_core { Chain::Rooted } else { Chain::Broken },
                    Some(p) => match addr_to_router.get(&p) {
                        Some(&pi) => {
                            path.push(cur);
                            cur = pi;
                        }
                        None => break Chain::Broken,
                    },
                }
            };
            chain.insert(cur, end);
            for n in path {
                chain.insert(n, end);
            }
        }
        for cyc in &cycles {
            let names: Vec<String> = cyc.iter().map(|r| format!("r{r}")).collect();
            vs.push(Violation {
                kind: InvariantKind::ForwardingLoop,
                group: Some(g),
                router: Some(RouterId(cyc[0] as u32)),
                detail: format!("parent chain cycles through {}", names.join("->")),
            });
        }
        for &i in &on_tree {
            let v = gv(i).expect("on-tree");
            if v.parent.is_none() && !v.i_am_core {
                vs.push(Violation {
                    kind: InvariantKind::OrphanedState,
                    group: Some(g),
                    router: Some(RouterId(i as u32)),
                    detail: "on-tree with no parent and not a core".into(),
                });
            }
        }

        // ---- every member host reaches its core ----
        for (host, lan) in view.members.get(&g).map(Vec::as_slice).unwrap_or(&[]) {
            let servers = view.lan_routers.get(lan).map(Vec::as_slice).unwrap_or(&[]);
            let attached = servers.iter().any(|&ri| {
                view.routers[ri].up
                    && gv(ri).is_some_and(|v| v.on_tree)
                    && chain.get(&ri) == Some(&Chain::Rooted)
            });
            if !attached {
                vs.push(Violation {
                    kind: InvariantKind::MemberDetached,
                    group: Some(g),
                    router: servers
                        .iter()
                        .find(|&&ri| view.routers[ri].up)
                        .map(|&ri| RouterId(ri as u32)),
                    detail: format!("member {host} has no rooted on-tree router on its LAN"),
                });
            }
        }

        // ---- no hard state left after the last member is gone ----
        if view.members.get(&g).is_none_or(|m| m.is_empty()) {
            for i in 0..view.routers.len() {
                let Some(v) = gv(i).filter(|_| view.routers[i].up) else { continue };
                // A bare core entry (no parent, no children) is the one
                // acceptable residue: cores are rendezvous points and
                // keep no forwarding state.
                let residue = v.transient
                    || v.parent.is_some()
                    || !v.children.is_empty()
                    || (v.on_tree && !v.i_am_core);
                if residue {
                    vs.push(Violation {
                        kind: InvariantKind::OrphanedState,
                        group: Some(g),
                        router: Some(RouterId(i as u32)),
                        detail: "per-group state survives with no members anywhere".into(),
                    });
                }
            }
        }
    }

    // ---- obs counters consistent with the injected faults ----
    if view.corrupted == 0 && view.checksum_bad > 0 {
        vs.push(Violation {
            kind: InvariantKind::ObsInconsistent,
            group: None,
            router: None,
            detail: format!(
                "{} checksum rejections counted with zero frames corrupted in flight",
                view.checksum_bad
            ),
        });
    }
    vs
}

fn dotted(a: Addr) -> String {
    let o = a.octets();
    format!("{}.{}.{}.{}", o[0], o[1], o[2], o[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: GroupId = GroupId::numbered(1);

    fn addr(n: u32) -> Addr {
        Addr(0x0a00_0000 | n)
    }

    /// r0 —(child)→ r1(core). Symmetric, rooted, one member behind r0.
    fn healthy_pair() -> FleetView {
        let mut r0 = RouterView { up: true, addrs: vec![addr(10)], per_group: BTreeMap::new() };
        r0.per_group.insert(
            G,
            GroupView {
                on_tree: true,
                parent: Some(addr(11)),
                children: vec![],
                i_am_core: false,
                transient: false,
            },
        );
        let mut r1 = RouterView { up: true, addrs: vec![addr(11)], per_group: BTreeMap::new() };
        r1.per_group.insert(
            G,
            GroupView {
                on_tree: true,
                parent: None,
                children: vec![addr(10)],
                i_am_core: true,
                transient: false,
            },
        );
        FleetView {
            groups: vec![G],
            routers: vec![r0, r1],
            lan_routers: BTreeMap::from([(LanId(0), vec![0])]),
            members: BTreeMap::from([(G, vec![("A".to_string(), LanId(0))])]),
            corrupted: 0,
            checksum_bad: 0,
        }
    }

    #[test]
    fn healthy_fleet_has_no_violations() {
        assert_eq!(check_fleet(&healthy_pair()), vec![]);
    }

    #[test]
    fn forwarding_loop_is_reported_once() {
        let mut v = healthy_pair();
        // Point the core back at r0: a two-node cycle.
        let gv = v.routers[1].per_group.get_mut(&G).unwrap();
        gv.parent = Some(addr(10));
        gv.i_am_core = false;
        v.routers[0].per_group.get_mut(&G).unwrap().children = vec![addr(11)];
        let vs = check_fleet(&v);
        let loops: Vec<_> = vs.iter().filter(|x| x.kind == InvariantKind::ForwardingLoop).collect();
        assert_eq!(loops.len(), 1, "{vs:?}");
        assert!(loops[0].detail.contains("r0->r1"));
        // A looped tree roots nobody, so the member is detached too.
        assert!(vs.iter().any(|x| x.kind == InvariantKind::MemberDetached));
    }

    #[test]
    fn asymmetric_parent_is_flagged() {
        let mut v = healthy_pair();
        v.routers[1].per_group.get_mut(&G).unwrap().children.clear();
        let vs = check_fleet(&v);
        assert!(
            vs.iter()
                .any(|x| x.kind == InvariantKind::ParentChildAsymmetry
                    && x.router == Some(RouterId(0))),
            "{vs:?}"
        );
    }

    #[test]
    fn dangling_child_is_flagged() {
        let mut v = healthy_pair();
        v.routers[1].per_group.get_mut(&G).unwrap().children.push(addr(99));
        let vs = check_fleet(&v);
        assert!(vs.iter().any(
            |x| x.kind == InvariantKind::ParentChildAsymmetry && x.detail.contains("10.0.0.99")
        ));
    }

    #[test]
    fn parentless_non_core_is_orphaned_and_detaches_members() {
        let mut v = healthy_pair();
        v.routers[0].per_group.get_mut(&G).unwrap().parent = None;
        v.routers[1].per_group.get_mut(&G).unwrap().children.clear();
        let vs = check_fleet(&v);
        assert!(vs.iter().any(|x| x.kind == InvariantKind::OrphanedState));
        assert!(vs.iter().any(|x| x.kind == InvariantKind::MemberDetached));
    }

    #[test]
    fn leftover_state_after_last_leave_is_orphaned() {
        let mut v = healthy_pair();
        v.members.clear();
        let vs = check_fleet(&v);
        // r0 still holds a branch toward the core: orphaned. The core
        // has a child entry: also orphaned.
        assert_eq!(
            vs.iter().filter(|x| x.kind == InvariantKind::OrphanedState).count(),
            2,
            "{vs:?}"
        );
    }

    #[test]
    fn bare_core_entry_is_acceptable_residue() {
        let mut v = healthy_pair();
        v.members.clear();
        v.routers[0].per_group.remove(&G);
        let gv = v.routers[1].per_group.get_mut(&G).unwrap();
        gv.children.clear();
        assert_eq!(check_fleet(&v), vec![]);
    }

    #[test]
    fn down_routers_are_exempt() {
        let mut v = healthy_pair();
        // Kill the member's router and drop the member (host LAN dead
        // scenarios keep membership, but here we test the exemption).
        v.routers[0].up = false;
        v.members.clear();
        let gv = v.routers[1].per_group.get_mut(&G).unwrap();
        gv.children.clear();
        assert_eq!(check_fleet(&v), vec![]);
    }

    #[test]
    fn checksum_drops_without_corruption_are_inconsistent() {
        let mut v = healthy_pair();
        v.checksum_bad = 3;
        let vs = check_fleet(&v);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, InvariantKind::ObsInconsistent);
        v.corrupted = 1;
        assert_eq!(check_fleet(&v), vec![]);
    }

    #[test]
    fn violations_sort_stably() {
        let mut a = vec![
            Violation {
                kind: InvariantKind::OrphanedState,
                group: Some(G),
                router: Some(RouterId(2)),
                detail: "z".into(),
            },
            Violation {
                kind: InvariantKind::ForwardingLoop,
                group: Some(G),
                router: Some(RouterId(1)),
                detail: "a".into(),
            },
        ];
        sort_violations(&mut a);
        assert_eq!(a[0].kind, InvariantKind::ForwardingLoop);
    }
}
