//! Self-contained replayable counterexamples: the `cbt-cex v1` text
//! format. A counterexample pins *everything* a re-run needs —
//! scenario name, world seed, shard count, fault schedule — plus the
//! verdict the original run produced, so `cargo test` can re-execute
//! it verbatim and diff the verdicts byte-for-byte.

use super::{execute, RunResult, Scenario, Schedule};
use std::fmt;

/// One minimized, replayable run: inputs + expected verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Scenario name ([`Scenario::by_name`]).
    pub scenario: String,
    /// World seed.
    pub seed: u64,
    /// Shard count the verdict was recorded under. Replays under any
    /// shard count must reproduce the same verdict (see the sharded
    /// corpus test).
    pub shards: usize,
    /// The fault schedule.
    pub schedule: Schedule,
    /// Verdict lines: invariant violations, or the single line `ok`.
    pub verdict: Vec<String>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cbt-cex v1")?;
        writeln!(f, "scenario: {}", self.scenario)?;
        writeln!(f, "seed: {}", self.seed)?;
        writeln!(f, "shards: {}", self.shards)?;
        for fault in &self.schedule.faults {
            writeln!(f, "fault: {fault}")?;
        }
        for v in &self.verdict {
            writeln!(f, "verdict: {v}")?;
        }
        Ok(())
    }
}

impl Counterexample {
    /// Parses the text form back. `to_string()` of the result is
    /// byte-identical to a well-formed input.
    pub fn parse(text: &str) -> Result<Counterexample, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("cbt-cex v1") => {}
            other => return Err(format!("bad header {other:?}, expected \"cbt-cex v1\"")),
        }
        let mut scenario = None;
        let mut seed = None;
        let mut shards = None;
        let mut faults = Vec::new();
        let mut verdict = Vec::new();
        for (n, line) in lines.enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (key, value) =
                line.split_once(": ").ok_or_else(|| format!("line {}: no key", n + 2))?;
            match key {
                "scenario" => scenario = Some(value.to_string()),
                "seed" => seed = Some(value.parse().map_err(|e| format!("line {}: {e}", n + 2))?),
                "shards" => {
                    shards = Some(value.parse().map_err(|e| format!("line {}: {e}", n + 2))?)
                }
                "fault" => faults.push(
                    super::Fault::parse(value)
                        .ok_or_else(|| format!("line {}: bad fault {value:?}", n + 2))?,
                ),
                "verdict" => verdict.push(value.to_string()),
                other => return Err(format!("line {}: unknown key {other:?}", n + 2)),
            }
        }
        let scenario = scenario.ok_or("missing scenario")?;
        Scenario::by_name(&scenario).ok_or_else(|| format!("unknown scenario {scenario:?}"))?;
        if verdict.is_empty() {
            return Err("missing verdict".into());
        }
        Ok(Counterexample {
            scenario,
            seed: seed.ok_or("missing seed")?,
            shards: shards.ok_or("missing shards")?,
            schedule: Schedule { faults },
            verdict,
        })
    }

    /// Re-executes the run under the recorded shard count.
    pub fn replay(&self) -> RunResult {
        self.replay_with_shards(self.shards)
    }

    /// Re-executes the run under a chosen shard count (the sharded
    /// corpus test replays every entry under 1 and 2 shards and
    /// demands identical verdicts).
    pub fn replay_with_shards(&self, shards: usize) -> RunResult {
        let scn = Scenario::by_name(&self.scenario).expect("validated at parse/build time");
        execute(&scn, &self.schedule, shards, self.seed)
    }

    /// Does a fresh replay reproduce the recorded verdict?
    pub fn reproduces(&self) -> bool {
        self.replay().verdict_lines() == self.verdict
    }

    /// Stable file name for a corpus entry.
    pub fn file_name(&self, index: usize) -> String {
        format!("{:03}-{}.cex", index, self.scenario)
    }
}

/// Greedy delta-debugging: tries removing each fault (last first, so
/// extensions shed before their depth-1 parents) and keeps any removal
/// that preserves the verdict, looping until a fixpoint. Returns the
/// minimized schedule — every remaining fault is necessary.
pub fn minimize(
    scenario: &Scenario,
    schedule: &Schedule,
    shards: usize,
    seed: u64,
    verdict: &[String],
) -> Schedule {
    let mut current = schedule.clone();
    loop {
        let mut shrunk = false;
        let mut i = current.faults.len();
        while i > 0 {
            i -= 1;
            if current.faults.len() == 1 {
                break; // keep at least the fault itself
            }
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if execute(scenario, &candidate, shards, seed).verdict_lines() == verdict {
                current = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_netsim::{SimDuration, SimTime};
    use cbt_topology::RouterId;

    fn sample() -> Counterexample {
        Counterexample {
            scenario: "chain".into(),
            seed: 3,
            shards: 2,
            schedule: Schedule {
                faults: vec![
                    super::super::Fault::DropControl { seq: 17 },
                    super::super::Fault::Crash {
                        router: RouterId(1),
                        at: SimTime::from_secs(9),
                        down: SimDuration::from_secs(6),
                    },
                ],
            },
            verdict: vec!["ok".into()],
        }
    }

    #[test]
    fn text_roundtrip_is_byte_identical() {
        let cex = sample();
        let text = cex.to_string();
        let parsed = Counterexample::parse(&text).unwrap();
        assert_eq!(parsed, cex);
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Counterexample::parse("nonsense").is_err());
        assert!(Counterexample::parse("cbt-cex v1\nseed: 1\nshards: 1\nverdict: ok\n").is_err());
        assert!(Counterexample::parse(
            "cbt-cex v1\nscenario: no-such\nseed: 1\nshards: 1\nverdict: ok\n"
        )
        .is_err());
        assert!(Counterexample::parse(
            "cbt-cex v1\nscenario: chain\nseed: 1\nshards: 1\nfault: bogus 9\nverdict: ok\n"
        )
        .is_err());
        assert!(
            Counterexample::parse("cbt-cex v1\nscenario: chain\nseed: 1\nshards: 1\n").is_err(),
            "verdict is mandatory"
        );
    }

    #[test]
    fn replay_reproduces_recorded_verdict() {
        let scn = Scenario::by_name("dual-dr").unwrap();
        let schedule = Schedule::single(super::super::Fault::DropControl { seq: 5 });
        let run = execute(&scn, &schedule, 1, 0);
        let cex = Counterexample {
            scenario: "dual-dr".into(),
            seed: 0,
            shards: 1,
            schedule,
            verdict: run.verdict_lines(),
        };
        assert!(cex.reproduces());
    }

    #[test]
    fn minimize_drops_irrelevant_faults() {
        let scn = Scenario::by_name("chain").unwrap();
        // A data drop on a quiet sequence number far past the traffic
        // plus a control drop: the verdict (ok) survives either
        // removal, so the minimizer shrinks to a single fault.
        let schedule = Schedule {
            faults: vec![
                super::super::Fault::DropControl { seq: 2 },
                super::super::Fault::DropData { seq: 9999 },
            ],
        };
        let verdict = execute(&scn, &schedule, 1, 0).verdict_lines();
        let min = minimize(&scn, &schedule, 1, 0, &verdict);
        assert_eq!(min.faults.len(), 1);
        assert_eq!(execute(&scn, &min, 1, 0).verdict_lines(), verdict);
    }
}
