//! Tree teardown: QUIT_REQUEST/QUIT_ACK, FLUSH_TREE and the periodic
//! membership scan (§2.7, §6.3, §9).

use crate::engine::{CbtRouter, PendingQuit, TimerKind};
use crate::events::RouterAction;
use cbt_netsim::SimTime;
use cbt_topology::IfIndex;
use cbt_wire::{Addr, ControlMessage, GroupId};

impl CbtRouter {
    /// §2.7: "If a CBT router has no children it periodically checks
    /// all its directly connected subnets for group member presence. If
    /// no member presence is ascertained on any of its subnets it sends
    /// a QUIT_REQUEST upstream to remove itself from the tree."
    pub(crate) fn maybe_quit(&mut self, now: SimTime, group: GroupId, act: &mut Vec<RouterAction>) {
        if self.pending.contains(group) {
            return; // a join/reattach is in flight; let it settle first
        }
        let Some(entry) = self.fib.get(group) else { return };
        if !entry.children.is_empty() || self.serves_members(group) {
            return;
        }
        let parent = entry.parent;
        match parent {
            Some(parent) => {
                let quit = ControlMessage::QuitRequest { group, origin: self.id_addr() };
                self.send_control(act, parent.iface, parent.addr, quit);
                self.pending_quits.insert(
                    group,
                    PendingQuit {
                        parent_addr: parent.addr,
                        parent_iface: parent.iface,
                        retries_left: self.cfg.quit_retries,
                        next_send: now + self.cfg.quit_interval,
                    },
                );
                self.timers.arm(TimerKind::Quit(group), now + self.cfg.quit_interval);
                // The child removes its own state right away; the
                // pending quit only drives retransmission (§8.3: if the
                // parent cannot respond "the child nevertheless removes
                // its parent information").
                self.drop_group_state(group);
            }
            None => {
                // A core (or orphaned subtree root) with no children and
                // no members simply forgets the empty entry; §6.2 lets
                // it re-learn its core role from the next join.
                self.drop_group_state(group);
            }
        }
    }

    /// Removes every trace of `group` from this router.
    pub(crate) fn drop_group_state(&mut self, group: GroupId) {
        self.remove_fib_entry(group);
        let lans = self.lan_ifaces();
        for lan in lans {
            self.gdr.remove(&(lan, group));
        }
        self.pending.remove(group);
        self.timers.cancel(TimerKind::PendingJoin(group));
        self.deferred_reattach.remove(&group);
        self.timers.cancel(TimerKind::Reattach(group));
        self.reattach_started.remove(&group);
    }

    /// Receipt of a QUIT_REQUEST from a child (§2.7).
    pub(crate) fn on_quit_request(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        src: Addr,
        group: GroupId,
        act: &mut Vec<RouterAction>,
    ) {
        // Always acknowledge — even if we have no state left, so a
        // retransmitted quit still quiesces the child.
        let ack = ControlMessage::QuitAck { group, origin: self.id_addr() };
        self.send_control(act, iface, src, ack);
        let had_child = self.fib.get_mut(group).is_some_and(|e| e.remove_child(src));
        if had_child {
            // §2.7: "R3 subsequently checks whether it in turn can send
            // a quit."
            self.maybe_quit(now, group, act);
        }
    }

    /// Receipt of a QUIT_ACK: retransmissions can stop.
    pub(crate) fn on_quit_ack(&mut self, group: GroupId) {
        self.pending_quits.remove(&group);
        self.timers.cancel(TimerKind::Quit(group));
    }

    /// Retransmits unacknowledged quits; gives up after the configured
    /// retries (parent state is already gone, §8.3).
    pub(crate) fn service_pending_quits(&mut self, now: SimTime, act: &mut Vec<RouterAction>) {
        let due: Vec<GroupId> = self
            .pending_quits
            .iter()
            .filter(|(_, q)| q.next_send <= now)
            .map(|(g, _)| *g)
            .collect();
        for group in due {
            self.service_pending_quit_group(now, group, act);
        }
    }

    /// Services one due pending quit — the shared body behind both the
    /// legacy scan and the wheel's per-candidate dispatch.
    pub(crate) fn service_pending_quit_group(
        &mut self,
        now: SimTime,
        group: GroupId,
        act: &mut Vec<RouterAction>,
    ) {
        let q = self.pending_quits.get(&group).copied().expect("listed");
        if q.retries_left == 0 {
            self.pending_quits.remove(&group);
            return;
        }
        let quit = ControlMessage::QuitRequest { group, origin: self.id_addr() };
        self.send_control(act, q.parent_iface, q.parent_addr, quit);
        let interval = self.cfg.quit_interval;
        if let Some(qm) = self.pending_quits.get_mut(&group) {
            qm.retries_left -= 1;
            qm.next_send = now + interval;
        }
        self.timers.arm(TimerKind::Quit(group), now + interval);
    }

    /// Sends FLUSH_TREE down one child branch and removes that child
    /// (§2.7: required before re-joining through it).
    pub(crate) fn flush_child(
        &mut self,
        now: SimTime,
        group: GroupId,
        child_addr: Addr,
        act: &mut Vec<RouterAction>,
    ) {
        let _ = now;
        let Some(entry) = self.fib.get_mut(group) else { return };
        let Some(child) = entry.children.iter().find(|c| c.addr == child_addr).copied() else {
            return;
        };
        entry.remove_child(child_addr);
        let flush = ControlMessage::FlushTree { group, origin: self.id_addr() };
        self.send_control(act, child.iface, child.addr, flush);
    }

    /// Flushes every child branch (used when a re-attachment gives up
    /// for good).
    pub(crate) fn flush_all_children(
        &mut self,
        now: SimTime,
        group: GroupId,
        act: &mut Vec<RouterAction>,
    ) {
        let children: Vec<Addr> = self.children_of(group);
        for c in children {
            self.flush_child(now, group, c, act);
        }
    }

    /// Receipt of FLUSH_TREE (§2.7): "all routers receiving this message
    /// must process it and forward it to all their children. Routers
    /// that have received a flush message will re-establish themselves
    /// on the delivery tree if they have directly connected subnets
    /// with group presence."
    pub(crate) fn on_flush_tree(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        src: Addr,
        group: GroupId,
        act: &mut Vec<RouterAction>,
    ) {
        let from_parent = self
            .fib
            .get(group)
            .is_some_and(|e| e.is_parent(src) && e.parent.is_some_and(|p| p.iface == iface));
        if !from_parent {
            return; // only our parent may tear our branch down
        }
        // Forward down every child branch first.
        let children: Vec<(Addr, IfIndex)> = self
            .fib
            .get(group)
            .map(|e| e.children.iter().map(|c| (c.addr, c.iface)).collect())
            .unwrap_or_default();
        for (addr, child_iface) in children {
            let flush = ControlMessage::FlushTree { group, origin: self.id_addr() };
            self.send_control(act, child_iface, addr, flush);
        }
        // Remember which LANs we served, then drop all state.
        let served: Vec<IfIndex> =
            self.lan_ifaces().into_iter().filter(|l| self.is_gdr(*l, group)).collect();
        self.drop_group_state(group);
        // Re-establish for subnets with live membership.
        for lan in served {
            let has_members = self.lans.get(&lan).is_some_and(|l| l.presence.has_members(group));
            if has_members {
                self.trigger_join(now, lan, group, 0, act);
            }
        }
    }

    /// §9 IFF-SCAN-INTERVAL: periodic safety net. Quits childless
    /// memberless entries, and (re)joins groups that have local members
    /// but no tree and no pending join (e.g. after an expired join
    /// attempt or a lost trigger).
    pub(crate) fn iff_scan(&mut self, now: SimTime, act: &mut Vec<RouterAction>) {
        let groups: Vec<GroupId> = self.fib.groups().collect();
        for g in groups {
            self.maybe_quit(now, g, act);
        }
        // Backbone safety net (§6.1/§6.2): a parentless secondary core
        // whose RECONNECT campaign toward the primary gave up retries
        // at scan cadence, so a revived primary (which only learns it
        // is a core by being joined, §6.2) eventually re-absorbs this
        // fragment instead of the group staying partitioned forever.
        let fragments: Vec<GroupId> = self
            .fib
            .groups()
            .filter(|g| {
                self.fib.get(*g).is_some_and(|e| {
                    e.i_am_core
                        && e.parent.is_none()
                        && !e.cores.is_empty()
                        && !self.is_my_addr(e.cores[0])
                })
            })
            .filter(|g| !self.pending.contains(*g) && !self.deferred_reattach.contains_key(g))
            .collect();
        for g in fragments {
            self.start_reattach(now, g, 0, act);
        }
        // Re-join safety net.
        let lans = self.lan_ifaces();
        for lan in lans {
            let groups: Vec<GroupId> =
                self.lans.get(&lan).map(|l| l.presence.groups().collect()).unwrap_or_default();
            for g in groups {
                let handled = self.fib.on_tree(g)
                    || self.pending.contains(g)
                    || self.proxy_handled.contains_key(&(lan, g));
                if !handled && self.i_am_dr(lan, now) {
                    self.trigger_join(now, lan, g, 0, act);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::*;
    use crate::CbtConfig;
    use cbt_wire::{AckSubcode, JoinSubcode};
    use std::collections::BTreeMap;

    fn g() -> GroupId {
        GroupId::numbered(1)
    }

    fn core_a() -> Addr {
        Addr::from_octets(10, 255, 0, 77)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// On-tree engine: joined via if1 with one child on if2.
    fn on_tree_with_child() -> CbtRouter {
        let mut e = engine(CbtConfig::default());
        let mut map = BTreeMap::new();
        map.insert(core_a(), up_hop());
        set_routes(&mut e, map);
        e.learn_cores(g(), &[core_a()]);
        let mut act = Vec::new();
        e.trigger_join(t(0), IfIndex(0), g(), 0, &mut act);
        e.handle_control(
            t(1),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        e.handle_control(
            t(2),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        assert!(e.is_on_tree(g()));
        assert_eq!(e.children_of(g()).len(), 1);
        e
    }

    #[test]
    fn quit_from_child_removes_it_and_acks() {
        let mut e = on_tree_with_child();
        let act = e.handle_control(
            t(10),
            IfIndex(2),
            down_addr(),
            ControlMessage::QuitRequest { group: g(), origin: down_addr() },
        );
        assert!(matches!(
            &act[0],
            RouterAction::SendControl {
                iface: IfIndex(2),
                msg: ControlMessage::QuitAck { .. },
                ..
            }
        ));
        assert!(e.children_of(g()).is_empty());
    }

    #[test]
    fn cascading_quit_when_last_child_leaves_and_no_members() {
        let mut e = on_tree_with_child();
        // Drop our member LAN responsibility so the cascade can fire.
        e.gdr.remove(&(IfIndex(0), g()));
        let act = e.handle_control(
            t(10),
            IfIndex(2),
            down_addr(),
            ControlMessage::QuitRequest { group: g(), origin: down_addr() },
        );
        // Ack downstream + our own quit upstream.
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl {
                iface: IfIndex(2),
                msg: ControlMessage::QuitAck { .. },
                ..
            }
        )));
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    iface: IfIndex(1),
                    msg: ControlMessage::QuitRequest { .. },
                    ..
                }
            )),
            "§2.7: R3-style cascade"
        );
        assert!(!e.is_on_tree(g()), "state dropped immediately");
    }

    #[test]
    fn member_presence_blocks_quit() {
        let mut e = on_tree_with_child();
        // Fake membership on LAN if0 where we are G-DR.
        let report = cbt_wire::IgmpMessage::Report { version: 3, group: g() };
        e.handle_igmp(t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), report);
        let act = e.handle_control(
            t(10),
            IfIndex(2),
            down_addr(),
            ControlMessage::QuitRequest { group: g(), origin: down_addr() },
        );
        assert!(
            !act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    iface: IfIndex(1),
                    msg: ControlMessage::QuitRequest { .. },
                    ..
                }
            )),
            "members present ⇒ no cascade"
        );
        assert!(e.is_on_tree(g()));
    }

    #[test]
    fn quit_retransmits_until_acked_or_exhausted() {
        let mut e = on_tree_with_child();
        e.gdr.remove(&(IfIndex(0), g()));
        e.handle_control(
            t(10),
            IfIndex(2),
            down_addr(),
            ControlMessage::QuitRequest { group: g(), origin: down_addr() },
        );
        assert_eq!(e.stats().quits_sent, 1);
        // No ack: retransmit on the quit interval (5 s default).
        let act = e.on_timer(t(15));
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl { msg: ControlMessage::QuitRequest { .. }, .. }
        )));
        // An ack stops it.
        e.handle_control(
            t(16),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::QuitAck { group: g(), origin: up_hop().addr },
        );
        let act = e.on_timer(t(25));
        assert!(!act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl { msg: ControlMessage::QuitRequest { .. }, .. }
        )));
    }

    #[test]
    fn quit_gives_up_after_retries() {
        let mut e = on_tree_with_child();
        e.gdr.remove(&(IfIndex(0), g()));
        e.handle_control(
            t(10),
            IfIndex(2),
            down_addr(),
            ControlMessage::QuitRequest { group: g(), origin: down_addr() },
        );
        // Default: 3 retries at 5 s intervals, then silence.
        let mut quit_count = 0;
        for s in [15u64, 20, 25, 30, 35, 40] {
            let act = e.on_timer(t(s));
            quit_count += act
                .iter()
                .filter(|a| {
                    matches!(
                        a,
                        RouterAction::SendControl { msg: ControlMessage::QuitRequest { .. }, .. }
                    )
                })
                .count();
        }
        assert_eq!(quit_count, 3, "retries bounded (§8.3 'small number of re-tries')");
    }

    #[test]
    fn flush_from_parent_clears_state_and_forwards() {
        let mut e = on_tree_with_child();
        let act = e.handle_control(
            t(10),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::FlushTree { group: g(), origin: up_hop().addr },
        );
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    iface: IfIndex(2),
                    msg: ControlMessage::FlushTree { .. },
                    ..
                }
            )),
            "forwarded to children"
        );
        // We had members on if0? No report was fed, so no re-join.
        assert!(!e.is_on_tree(g()));
        assert!(!e.is_gdr(IfIndex(0), g()));
    }

    #[test]
    fn flush_from_non_parent_is_rejected() {
        let mut e = on_tree_with_child();
        let act = e.handle_control(
            t(10),
            IfIndex(2),
            down_addr(),
            ControlMessage::FlushTree { group: g(), origin: down_addr() },
        );
        assert!(act.is_empty());
        assert!(e.is_on_tree(g()), "a child cannot flush its parent");
    }

    #[test]
    fn flush_triggers_rejoin_for_served_members() {
        let mut e = on_tree_with_child();
        // Members on our LAN.
        let report = cbt_wire::IgmpMessage::Report { version: 3, group: g() };
        e.handle_igmp(t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), report);
        let act = e.handle_control(
            t(10),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::FlushTree { group: g(), origin: up_hop().addr },
        );
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    msg: ControlMessage::JoinRequest { subcode: JoinSubcode::ActiveJoin, .. },
                    ..
                }
            )),
            "§2.7: flushed routers with member subnets re-establish themselves"
        );
        assert!(e.has_pending_join(g()));
    }

    #[test]
    fn iff_scan_quits_lapsed_entries() {
        let mut e = on_tree_with_child();
        // Remove the child and member responsibility without a quit.
        e.fib.get_mut(g()).unwrap().children.clear();
        e.gdr.remove(&(IfIndex(0), g()));
        // Keep the parent alive so the echo timeout does not race the
        // scan into a re-attachment instead of a quit.
        e.handle_control(
            t(299),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::EchoReply { group: g(), origin: up_hop().addr, group_mask: None },
        );
        let act = e.on_timer(t(300));
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl { msg: ControlMessage::QuitRequest { .. }, .. }
            )),
            "IFF-SCAN catches it"
        );
        assert!(!e.is_on_tree(g()));
    }

    #[test]
    fn iff_scan_rejoins_orphaned_membership() {
        let mut e = engine(CbtConfig::default());
        let mut map = BTreeMap::new();
        map.insert(core_a(), up_hop());
        set_routes(&mut e, map);
        e.learn_cores(g(), &[core_a()]);
        // Membership exists but no join was ever made (e.g. the cores
        // were unreachable at trigger time).
        let report = cbt_wire::IgmpMessage::Report { version: 3, group: g() };
        // Suppress the immediate trigger by pretending no cores known.
        e.core_knowledge.clear();
        e.handle_igmp(t(5), IfIndex(0), Addr::from_octets(10, 1, 0, 100), report);
        assert!(!e.has_pending_join(g()));
        // Cores become known again; scan picks the group up. A fresh
        // report keeps the membership from expiring before the scan.
        e.learn_cores(g(), &[core_a()]);
        let report = cbt_wire::IgmpMessage::Report { version: 3, group: g() };
        e.handle_igmp(t(299), IfIndex(0), Addr::from_octets(10, 1, 0, 100), report);
        let act = e.on_timer(t(300));
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl { msg: ControlMessage::JoinRequest { .. }, .. }
        )));
        assert!(e.has_pending_join(g()));
    }

    /// Deviation 7 backbone safety net: a parentless secondary core
    /// whose RECONNECT campaign toward the primary gave up retries at
    /// IFF-scan cadence, so a revived primary (which only learns its
    /// role by being joined, §6.2) eventually re-absorbs the fragment.
    #[test]
    fn iff_scan_retries_the_primary_link_for_fragment_cores() {
        let mut e = engine(CbtConfig::default());
        let my_id = e.id_addr();
        let primary = core_a();
        let mut map = BTreeMap::new();
        map.insert(primary, up_hop());
        set_routes(&mut e, map);
        // Become a non-primary core with a child (a serving fragment).
        e.handle_control(
            t(0),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: my_id,
                cores: vec![primary, my_id],
            },
        );
        // become_core's own rejoin attempt is in flight; simulate its
        // campaign having expired and been given up quietly.
        e.pending.remove(g());
        e.reattach_started.remove(&g());
        e.deferred_reattach.clear();
        assert!(e.is_on_tree(g()));
        assert!(e.parent_of(g()).is_none());
        // Keep the child alive across the child-assert sweeps.
        for at in [90u64, 180, 270, 299] {
            e.handle_control(
                t(at),
                IfIndex(2),
                down_addr(),
                ControlMessage::EchoRequest { group: g(), origin: down_addr(), group_mask: None },
            );
        }
        // The periodic scan re-opens the campaign toward the primary.
        let act = e.on_timer(t(300));
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    iface: IfIndex(1),
                    msg: ControlMessage::JoinRequest {
                        subcode: JoinSubcode::RejoinActive,
                        target_core,
                        ..
                    },
                    ..
                } if *target_core == primary
            )),
            "scan relaunches the backbone rejoin toward the primary: {act:?}"
        );
        assert!(e.has_pending_join(g()));
    }
}
