//! Protocol configuration: the §9 default timers, forwarding mode and
//! managed `<core, group>` mappings.

use cbt_igmp::IgmpTimers;
use cbt_netsim::SimDuration;
use cbt_wire::{Addr, GroupId};
use std::collections::HashMap;

/// How data packets travel over tree interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardingMode {
    /// Native mode (§4): plain IP multicast over every tree interface.
    /// Correct only inside a pure-CBT cloud.
    #[default]
    Native,
    /// CBT mode (§5): CBT-header encapsulation, CBT unicast per tree
    /// neighbour (or CBT multicast when several share an interface).
    CbtMode,
}

/// One router's CBT configuration.
#[derive(Debug, Clone)]
pub struct CbtConfig {
    /// Data-plane mode.
    pub mode: ForwardingMode,
    /// Time between successive CBT-ECHO-REQUESTs to a parent
    /// (§9 CBT-ECHO-INTERVAL, default 30 s).
    pub echo_interval: SimDuration,
    /// Retransmission interval for an unacknowledged join
    /// (§9 PEND-JOIN-INTERVAL, default 10 s).
    pub pend_join_interval: SimDuration,
    /// How long to keep trying one core before electing another
    /// (§9 PEND-JOIN-TIMEOUT, default 30 s).
    pub pend_join_timeout: SimDuration,
    /// Total time transient join state may exist unacknowledged
    /// (§9 EXPIRE-PENDING-JOIN, default 90 s). Also the overall
    /// re-attachment budget (§6.1 RECONNECT-TIMEOUT, same 90 s value).
    pub expire_pending_join: SimDuration,
    /// No echo reply for this long ⇒ parent unreachable
    /// (§9 CBT-ECHO-TIMEOUT, default 90 s).
    pub echo_timeout: SimDuration,
    /// Cadence of the child-liveness sweep
    /// (§9 CHILD-ASSERT-INTERVAL, default 90 s).
    pub child_assert_interval: SimDuration,
    /// No echo request from a child for this long ⇒ drop the child
    /// (§9 CHILD-ASSERT-EXPIRE-TIME, default 180 s).
    pub child_assert_expire: SimDuration,
    /// Cadence of the member-presence scan that triggers quits
    /// (§9 IFF-SCAN-INTERVAL, default 300 s).
    pub iff_scan_interval: SimDuration,
    /// How many times a QUIT_REQUEST is retried before the child
    /// removes parent state unilaterally ("some small number, typically
    /// 3", §6.3).
    pub quit_retries: u32,
    /// Retransmission interval for unacknowledged quits.
    pub quit_interval: SimDuration,
    /// Aggregate echo keepalives per parent using a group mask (§8.4).
    /// Off by default — it requires coordinated address assignment.
    pub aggregate_echoes: bool,
    /// IGMP timing used by the router side of membership tracking.
    pub igmp: IgmpTimers,
    /// Managed `<core, group>` mappings (§2.4: how v1/v2-host subnets
    /// learn cores — "by means of network management"). Ordered,
    /// primary first. Consulted when no RP/Core-Report supplied a list.
    pub managed_mappings: HashMap<GroupId, Vec<Addr>>,
    /// Drive timers from the hierarchical timer wheel (O(due entries)
    /// per tick) instead of the legacy full-FIB scans. Behaviour is
    /// bit-identical either way; the flag exists so the equivalence
    /// suite and the `groupscale` experiment can pit both paths against
    /// each other.
    pub timer_wheel: bool,
    /// Group-space shards per router (see [`crate::shard`]). Defaults
    /// to the `CBT_SHARDS` environment variable, or 1 when unset, so
    /// the determinism suite can exercise sharded steering without code
    /// changes (`CBT_SHARDS=2 cargo test`). At 1 the sharded front is a
    /// transparent pass-through around a single engine.
    pub shards: usize,
}

impl Default for CbtConfig {
    /// The spec's §9 defaults.
    fn default() -> Self {
        CbtConfig {
            mode: ForwardingMode::Native,
            echo_interval: SimDuration::from_secs(30),
            pend_join_interval: SimDuration::from_secs(10),
            pend_join_timeout: SimDuration::from_secs(30),
            expire_pending_join: SimDuration::from_secs(90),
            echo_timeout: SimDuration::from_secs(90),
            child_assert_interval: SimDuration::from_secs(90),
            child_assert_expire: SimDuration::from_secs(180),
            iff_scan_interval: SimDuration::from_secs(300),
            quit_retries: 3,
            quit_interval: SimDuration::from_secs(5),
            aggregate_echoes: false,
            igmp: IgmpTimers::default(),
            managed_mappings: HashMap::new(),
            timer_wheel: true,
            shards: crate::parallelism::NODE_SHARDS.with_default(1).resolve_lenient(),
        }
    }
}

impl CbtConfig {
    /// §9 defaults with CBT-mode forwarding.
    pub fn cbt_mode() -> Self {
        CbtConfig { mode: ForwardingMode::CbtMode, ..Default::default() }
    }

    /// Timers compressed ~10× (ratios preserved) so simulations and
    /// tests converge in seconds of virtual time instead of minutes.
    pub fn fast() -> Self {
        CbtConfig {
            echo_interval: SimDuration::from_secs(3),
            pend_join_interval: SimDuration::from_secs(1),
            pend_join_timeout: SimDuration::from_secs(3),
            expire_pending_join: SimDuration::from_secs(9),
            echo_timeout: SimDuration::from_secs(9),
            child_assert_interval: SimDuration::from_secs(9),
            child_assert_expire: SimDuration::from_secs(18),
            iff_scan_interval: SimDuration::from_secs(30),
            quit_interval: SimDuration::from_millis(500),
            igmp: IgmpTimers::fast(),
            ..Default::default()
        }
    }

    /// Adds a managed mapping (builder style).
    pub fn with_mapping(mut self, group: GroupId, cores: Vec<Addr>) -> Self {
        self.managed_mappings.insert(group, cores);
        self
    }

    /// Switches forwarding mode (builder style).
    pub fn with_mode(mut self, mode: ForwardingMode) -> Self {
        self.mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_section_9() {
        let c = CbtConfig::default();
        assert_eq!(c.echo_interval, SimDuration::from_secs(30));
        assert_eq!(c.pend_join_interval, SimDuration::from_secs(10));
        assert_eq!(c.pend_join_timeout, SimDuration::from_secs(30));
        assert_eq!(c.expire_pending_join, SimDuration::from_secs(90));
        assert_eq!(c.echo_timeout, SimDuration::from_secs(90));
        assert_eq!(c.child_assert_interval, SimDuration::from_secs(90));
        assert_eq!(c.child_assert_expire, SimDuration::from_secs(180));
        assert_eq!(c.iff_scan_interval, SimDuration::from_secs(300));
        assert_eq!(c.quit_retries, 3);
        assert_eq!(c.mode, ForwardingMode::Native);
        assert!(!c.aggregate_echoes);
    }

    #[test]
    fn fast_preserves_ratios() {
        let c = CbtConfig::fast();
        // echo_timeout = 3 × echo_interval, as in the defaults (90/30).
        assert_eq!(c.echo_timeout.micros(), c.echo_interval.micros() * 3);
        assert_eq!(c.child_assert_expire.micros(), c.child_assert_interval.micros() * 2);
        assert!(c.pend_join_interval < c.pend_join_timeout);
        assert!(c.pend_join_timeout < c.expire_pending_join);
    }

    #[test]
    fn builder_helpers() {
        let g = GroupId::numbered(1);
        let cores = vec![Addr::from_octets(10, 255, 0, 3)];
        let c = CbtConfig::fast().with_mapping(g, cores.clone()).with_mode(ForwardingMode::CbtMode);
        assert_eq!(c.managed_mappings[&g], cores);
        assert_eq!(c.mode, ForwardingMode::CbtMode);
        assert_eq!(CbtConfig::cbt_mode().mode, ForwardingMode::CbtMode);
    }
}
