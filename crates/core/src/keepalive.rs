//! Keepalives and failure handling (§6.1, §8.4, §9): CBT-ECHO
//! request/reply between child and parent, optional aggregation, echo
//! timeout → re-attachment, child-assert sweeps.

use crate::engine::CbtRouter;
use crate::events::RouterAction;
use cbt_netsim::SimTime;
use cbt_topology::IfIndex;
use cbt_wire::{Addr, ControlMessage, GroupId};
use std::collections::{BTreeMap, BTreeSet};

impl CbtRouter {
    /// Earliest echo-related deadline (for `next_wakeup`).
    pub(crate) fn next_echo_deadline(&self) -> Option<SimTime> {
        self.fib
            .iter()
            .filter_map(|(_, e)| e.parent)
            .map(|p| p.next_echo.min(p.last_reply + self.cfg.echo_timeout))
            .min()
    }

    /// Sends due echo requests and detects parent failures (legacy
    /// full-FIB scan; the wheel path feeds the same worker from its due
    /// candidates in [`CbtRouter::service_keepalives_wheel`]).
    pub(crate) fn service_keepalives(&mut self, now: SimTime, act: &mut Vec<RouterAction>) {
        // Pass 1: which groups need an echo, which parents have timed out.
        let mut echo_due: Vec<(GroupId, IfIndex, Addr)> = Vec::new();
        let mut failed: Vec<GroupId> = Vec::new();
        for (g, e) in self.fib.iter() {
            let Some(p) = e.parent else { continue };
            if now.since(p.last_reply) >= self.cfg.echo_timeout {
                failed.push(g);
            } else if now >= p.next_echo {
                echo_due.push((g, p.iface, p.addr));
            }
        }
        self.run_echoes(now, echo_due, failed, act);
    }

    /// Wheel-side keepalive service: the same classification as the
    /// legacy pass 1, applied only to the due candidates. A candidate
    /// whose true deadline moved later (its parent answered an echo
    /// since the entry was armed) is silently re-armed.
    pub(crate) fn service_keepalives_wheel(
        &mut self,
        now: SimTime,
        candidates: BTreeSet<GroupId>,
        act: &mut Vec<RouterAction>,
    ) {
        let mut echo_due: Vec<(GroupId, IfIndex, Addr)> = Vec::new();
        let mut failed: Vec<GroupId> = Vec::new();
        for g in candidates {
            let Some(p) = self.fib.get(g).and_then(|e| e.parent) else { continue };
            if now.since(p.last_reply) >= self.cfg.echo_timeout {
                failed.push(g);
            } else if now >= p.next_echo {
                echo_due.push((g, p.iface, p.addr));
            } else {
                self.arm_echo(g);
            }
        }
        self.run_echoes(now, echo_due, failed, act);
    }

    /// Sends the echoes for the already-classified due groups and kicks
    /// off re-attachment for failed parents — shared by both timer
    /// paths, so behaviour (message set *and* order) is identical.
    fn run_echoes(
        &mut self,
        now: SimTime,
        echo_due: Vec<(GroupId, IfIndex, Addr)>,
        failed: Vec<GroupId>,
        act: &mut Vec<RouterAction>,
    ) {
        if self.cfg.aggregate_echoes {
            // §8.4: one echo per parent covering a masked group range.
            let mut by_parent: BTreeMap<(IfIndex, Addr), Vec<GroupId>> = BTreeMap::new();
            for (g, iface, addr) in &echo_due {
                by_parent.entry((*iface, *addr)).or_default().push(*g);
            }
            for ((iface, addr), groups) in by_parent {
                let (low, mask) = mask_covering(&groups);
                let msg = ControlMessage::EchoRequest {
                    group: low,
                    origin: self.id_addr(),
                    group_mask: Some(mask),
                };
                self.send_control(act, iface, addr, msg);
                // Every group this parent covers advances its echo clock
                // (not just the due ones — the aggregate refreshed all).
                // One `parent_index` lookup yields exactly those groups;
                // the old code rescanned the entire FIB per parent.
                let covered: Vec<GroupId> = self
                    .parent_index
                    .get(&addr)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                let interval = self.cfg.echo_interval;
                for g in covered {
                    if let Some(p) = self.fib.get_mut(g).and_then(|e| e.parent.as_mut()) {
                        if p.addr == addr {
                            p.next_echo = now + interval;
                        }
                    }
                    self.arm_echo(g);
                }
            }
        } else {
            for (g, iface, addr) in echo_due {
                let msg = ControlMessage::EchoRequest {
                    group: g,
                    origin: self.id_addr(),
                    group_mask: None,
                };
                self.send_control(act, iface, addr, msg);
                let interval = self.cfg.echo_interval;
                if let Some(p) = self.fib.get_mut(g).and_then(|e| e.parent.as_mut()) {
                    p.next_echo = now + interval;
                }
                self.arm_echo(g);
            }
        }

        for g in failed {
            // §6.1: "the child realises that its parent has become
            // unreachable and must therefore try and re-connect."
            self.stats.parent_failures += 1;
            self.start_reattach(now, g, 0, act);
        }
    }

    /// Receipt of CBT-ECHO-REQUEST: refresh child liveness and reply
    /// (§8.4). Replies mirror the request's aggregation.
    pub(crate) fn on_echo_request(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        src: Addr,
        group: GroupId,
        group_mask: Option<Addr>,
        act: &mut Vec<RouterAction>,
    ) {
        let mut refreshed_any = false;
        // A point echo (no mask) names exactly one group: resolve it
        // with one FIB lookup instead of scanning every entry — at
        // 100k groups the scan made each keepalive O(n).
        let matching: Vec<GroupId> = match group_mask {
            None => self
                .fib
                .get(group)
                .filter(|e| e.has_child(src))
                .map(|_| vec![group])
                .unwrap_or_default(),
            Some(_) => self
                .fib
                .iter()
                .filter(|(g, e)| group_matches(*g, group, group_mask) && e.has_child(src))
                .map(|(g, _)| g)
                .collect(),
        };
        let wheel = self.timers.enabled;
        let expire = self.cfg.child_assert_expire;
        for g in matching {
            if let Some(e) = self.fib.get_mut(g) {
                if let Some(c) = e.children.iter_mut().find(|c| c.addr == src) {
                    let old_heard = c.last_heard;
                    c.last_heard = now;
                    refreshed_any = true;
                    if wheel {
                        self.child_expiry.remove(&(old_heard + expire, g, src));
                        self.child_expiry.insert((now + expire, g, src));
                    }
                }
            }
        }
        if refreshed_any {
            let reply = ControlMessage::EchoReply { group, origin: self.id_addr(), group_mask };
            self.send_control(act, iface, src, reply);
        }
        // An echo from a router we do not consider a child gets no
        // reply: its echo timeout will make it re-join, which is the
        // §6.2 recovery for a parent that lost state.
    }

    /// Receipt of CBT-ECHO-REPLY: refresh parent liveness.
    pub(crate) fn on_echo_reply(
        &mut self,
        now: SimTime,
        _iface: IfIndex,
        src: Addr,
        group: GroupId,
        group_mask: Option<Addr>,
    ) {
        // Only groups parented on `src` can be refreshed, so resolve
        // the candidates without touching the rest of the FIB: a point
        // reply is one lookup, an aggregated reply is one
        // `parent_index` fetch. (The old full-FIB scan made every
        // reply O(groups) — quadratic keepalive cost per interval.)
        let candidates: Vec<GroupId> = match group_mask {
            None => vec![group],
            Some(_) => {
                self.parent_index.get(&src).map(|s| s.iter().copied().collect()).unwrap_or_default()
            }
        };
        let mut settled: Vec<GroupId> = Vec::new();
        for g in candidates {
            if !group_matches(g, group, group_mask) {
                continue;
            }
            if let Some(p) = self.fib.get_mut(g).and_then(|e| e.parent.as_mut()) {
                if p.addr == src {
                    p.last_reply = now;
                    settled.push(g);
                }
            }
        }
        // A parent that answers echoes is real — not the transient
        // instatement of a §6.3 loop-in-progress — so the §6.1
        // RECONNECT-TIMEOUT campaign for these groups has genuinely
        // succeeded and its budget can be retired.
        for g in settled {
            self.reattach_started.remove(&g);
            // The keepalive deadline just moved later: re-clock the
            // wheel entry so the next wake lands on it exactly.
            self.arm_echo(g);
        }
    }

    /// §9 CHILD-ASSERT: drop children that have stopped sending echoes.
    pub(crate) fn sweep_children(&mut self, now: SimTime, act: &mut Vec<RouterAction>) {
        let expire = self.cfg.child_assert_expire;
        let mut affected: Vec<GroupId> = Vec::new();
        for (g, e) in self.fib.iter_mut() {
            let before = e.children.len();
            e.children.retain(|c| now.since(c.last_heard) < expire);
            if e.children.len() != before {
                affected.push(g);
            }
        }
        for g in affected {
            // Losing the last child may make us quittable (§2.7).
            self.maybe_quit(now, g, act);
        }
    }

    /// Wheel-side child-assert sweep: pop the due `(deadline, group,
    /// child)` tuples and run the exact legacy `retain` on just those
    /// groups. Tuples are exact (every `last_heard` refresh re-files
    /// its tuple), so a group with no due tuple cannot hold an expired
    /// child; orphan tuples for already-removed children pop as no-ops.
    pub(crate) fn sweep_children_wheel(&mut self, now: SimTime, act: &mut Vec<RouterAction>) {
        let expire = self.cfg.child_assert_expire;
        let mut candidates: BTreeSet<GroupId> = BTreeSet::new();
        while let Some(first) = self.child_expiry.first().copied() {
            if first.0 > now {
                break;
            }
            self.child_expiry.remove(&first);
            candidates.insert(first.1);
        }
        let mut affected: Vec<GroupId> = Vec::new();
        for g in candidates {
            let Some(e) = self.fib.get_mut(g) else { continue };
            let before = e.children.len();
            e.children.retain(|c| now.since(c.last_heard) < expire);
            if e.children.len() != before {
                affected.push(g);
            }
        }
        for g in affected {
            self.maybe_quit(now, g, act);
        }
    }
}

/// Does `g` fall inside the echo's group/mask cover (Fig. 9 semantics)?
fn group_matches(g: GroupId, low: GroupId, mask: Option<Addr>) -> bool {
    match mask {
        None => g == low,
        Some(m) => g.addr().masked(m) == low.addr().masked(m),
    }
}

/// Smallest common-prefix mask covering all `groups`, with the low end
/// of the range. Used to build aggregated echoes (§8.4).
fn mask_covering(groups: &[GroupId]) -> (GroupId, Addr) {
    debug_assert!(!groups.is_empty());
    let first = groups[0].addr().0;
    let mut same = !0u32; // bits where all group addresses agree
    for g in groups {
        same &= !(first ^ g.addr().0);
    }
    // Take the longest prefix of agreeing bits.
    let mut mask = 0u32;
    for bit in (0..32).rev() {
        if same & (1 << bit) != 0 {
            mask |= 1 << bit;
        } else {
            break;
        }
    }
    let low = Addr(first & mask);
    // The low end must itself be a valid class-D address for the wire
    // format; groups all share the 1110 prefix so this always holds.
    (GroupId::new(low).unwrap_or(groups[0]), Addr(mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::*;
    use crate::CbtConfig;
    use cbt_wire::{AckSubcode, JoinSubcode};
    use std::collections::BTreeMap;

    fn g(n: u16) -> GroupId {
        GroupId::numbered(n)
    }

    fn core_a() -> Addr {
        Addr::from_octets(10, 255, 0, 77)
    }

    fn core_b() -> Addr {
        Addr::from_octets(10, 255, 0, 88)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn join_group(e: &mut CbtRouter, n: u16, at: SimTime) {
        e.learn_cores(g(n), &[core_a(), core_b()]);
        let mut act = Vec::new();
        e.trigger_join(at, IfIndex(0), g(n), 0, &mut act);
        e.handle_control(
            at,
            IfIndex(1),
            up_hop().addr,
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(n),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_a(),
                cores: vec![core_a(), core_b()],
            },
        );
        assert!(e.is_on_tree(g(n)));
    }

    fn routed_engine(cfg: CbtConfig) -> CbtRouter {
        let mut e = engine(cfg);
        let mut map = BTreeMap::new();
        map.insert(core_a(), up_hop());
        map.insert(core_b(), up_hop());
        set_routes(&mut e, map);
        e
    }

    #[test]
    fn echo_requests_flow_on_the_interval() {
        let mut e = routed_engine(CbtConfig::default());
        join_group(&mut e, 1, t(0));
        // Due at t=30 (CBT-ECHO-INTERVAL).
        assert!(e.on_timer(t(29)).iter().all(|a| !matches!(
            a,
            RouterAction::SendControl { msg: ControlMessage::EchoRequest { .. }, .. }
        )));
        let act = e.on_timer(t(30));
        assert!(act.iter().any(|a| matches!(
            a,
            RouterAction::SendControl {
                iface: IfIndex(1),
                msg: ControlMessage::EchoRequest { group_mask: None, .. },
                ..
            }
        )));
        assert_eq!(e.stats().echo_requests_sent, 1);
    }

    #[test]
    fn parent_replies_to_child_echo() {
        let mut e = routed_engine(CbtConfig::default());
        join_group(&mut e, 1, t(0));
        // Adopt a child.
        e.handle_control(
            t(1),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(1),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        let act = e.handle_control(
            t(5),
            IfIndex(2),
            down_addr(),
            ControlMessage::EchoRequest { group: g(1), origin: down_addr(), group_mask: None },
        );
        assert!(matches!(
            &act[0],
            RouterAction::SendControl {
                iface: IfIndex(2),
                msg: ControlMessage::EchoReply { .. },
                ..
            }
        ));
        assert_eq!(e.stats().echo_replies_sent, 1);
    }

    #[test]
    fn echo_from_stranger_gets_no_reply() {
        let mut e = routed_engine(CbtConfig::default());
        join_group(&mut e, 1, t(0));
        let act = e.handle_control(
            t(5),
            IfIndex(2),
            down_addr(), // not a child — we never acked it
            ControlMessage::EchoRequest { group: g(1), origin: down_addr(), group_mask: None },
        );
        assert!(act.is_empty(), "silence makes the stranger re-join (§6.2)");
    }

    #[test]
    fn echo_timeout_triggers_reattach_to_alternate_core() {
        let mut e = routed_engine(CbtConfig::default());
        join_group(&mut e, 1, t(0));
        // Echoes go unanswered; at +90 s the parent is declared dead.
        e.on_timer(t(30));
        e.on_timer(t(60));
        let act = e.on_timer(t(90));
        assert_eq!(e.stats().parent_failures, 1);
        assert!(
            act.iter().any(|a| matches!(
                a,
                RouterAction::SendControl {
                    msg: ControlMessage::JoinRequest { subcode: JoinSubcode::ActiveJoin, .. },
                    ..
                }
            )),
            "no children ⇒ plain ACTIVE_JOIN (§6.1)"
        );
        assert!(e.has_pending_join(g(1)));
        assert_eq!(e.parent_of(g(1)), None);
    }

    #[test]
    fn replies_keep_parent_alive() {
        let mut e = routed_engine(CbtConfig::default());
        join_group(&mut e, 1, t(0));
        for s in [30u64, 60, 90, 120] {
            e.on_timer(t(s));
            e.handle_control(
                t(s),
                IfIndex(1),
                up_hop().addr,
                ControlMessage::EchoReply { group: g(1), origin: up_hop().addr, group_mask: None },
            );
        }
        assert_eq!(e.stats().parent_failures, 0);
        assert_eq!(e.parent_of(g(1)), Some(up_hop().addr));
    }

    #[test]
    fn child_sweep_expires_silent_children() {
        let mut e = routed_engine(CbtConfig::default());
        join_group(&mut e, 1, t(0));
        e.handle_control(
            t(1),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(1),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        assert_eq!(e.children_of(g(1)).len(), 1);
        // Child stays silent: CHILD-ASSERT-EXPIRE-TIME is 180 s; sweeps
        // run every 90 s.
        e.on_timer(t(90));
        assert_eq!(e.children_of(g(1)).len(), 1, "only 89 s silent");
        e.on_timer(t(185));
        assert!(e.children_of(g(1)).is_empty(), "expired at the next sweep");
    }

    #[test]
    fn child_echo_refreshes_against_sweep() {
        let mut e = routed_engine(CbtConfig::default());
        join_group(&mut e, 1, t(0));
        e.handle_control(
            t(1),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinRequest {
                subcode: JoinSubcode::ActiveJoin,
                group: g(1),
                origin: Addr::from_octets(10, 9, 0, 1),
                target_core: core_a(),
                cores: vec![core_a()],
            },
        );
        for s in [60u64, 120, 180, 240] {
            e.handle_control(
                t(s),
                IfIndex(2),
                down_addr(),
                ControlMessage::EchoRequest { group: g(1), origin: down_addr(), group_mask: None },
            );
            // Keep our own parent alive too, so the child-assert sweep
            // is the only mechanism under test.
            e.handle_control(
                t(s),
                IfIndex(1),
                up_hop().addr,
                ControlMessage::EchoReply { group: g(1), origin: up_hop().addr, group_mask: None },
            );
            e.on_timer(t(s + 1));
        }
        assert_eq!(e.children_of(g(1)).len(), 1, "regular echoes keep the child");
    }

    #[test]
    fn aggregated_echo_covers_multiple_groups() {
        let cfg = CbtConfig { aggregate_echoes: true, ..Default::default() };
        let mut e = routed_engine(cfg);
        join_group(&mut e, 0, t(0));
        join_group(&mut e, 1, t(0));
        join_group(&mut e, 2, t(0));
        let act = e.on_timer(t(30));
        let echoes: Vec<_> = act
            .iter()
            .filter_map(|a| match a {
                RouterAction::SendControl {
                    msg: ControlMessage::EchoRequest { group, group_mask, .. },
                    ..
                } => Some((*group, *group_mask)),
                _ => None,
            })
            .collect();
        assert_eq!(echoes.len(), 1, "one aggregate instead of three (§8.4)");
        let (low, mask) = echoes[0];
        let mask = mask.expect("aggregated");
        for n in [0u16, 1, 2] {
            assert!(group_matches(g(n), low, Some(mask)), "group {n} covered");
        }
    }

    #[test]
    fn aggregated_reply_refreshes_all_covered_parents() {
        let cfg = CbtConfig { aggregate_echoes: true, ..Default::default() };
        let mut e = routed_engine(cfg);
        join_group(&mut e, 1, t(0));
        join_group(&mut e, 2, t(0));
        e.on_timer(t(30));
        // One aggregated reply.
        let (low, mask) = mask_covering(&[g(1), g(2)]);
        e.handle_control(
            t(31),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::EchoReply { group: low, origin: up_hop().addr, group_mask: Some(mask) },
        );
        // Neither parent may time out at t=90 (last_reply was t=31).
        e.on_timer(t(60));
        e.on_timer(t(90));
        assert_eq!(e.stats().parent_failures, 0);
    }

    /// Regression for the §8.4 re-clock loop: refreshing one parent's
    /// covered groups must touch exactly that parent's groups (one
    /// `parent_index` lookup), never re-scan the whole FIB. Two groups
    /// ride the upstream parent, a third rides a different parent with
    /// a staggered clock — the aggregate for the first parent must
    /// advance its own two groups to `now + interval` and leave the
    /// third group's earlier deadline untouched.
    #[test]
    fn aggregate_refresh_is_single_pass_per_parent() {
        let cfg = CbtConfig { aggregate_echoes: true, ..Default::default() };
        let mut e = routed_engine(cfg);
        let down_hop = cbt_routing::Hop {
            iface: IfIndex(2),
            router: cbt_topology::RouterId(2),
            addr: down_addr(),
            dist: 1,
        };
        let mut map = BTreeMap::new();
        map.insert(core_a(), up_hop());
        map.insert(core_b(), down_hop);
        set_routes(&mut e, map);
        join_group(&mut e, 1, t(0));
        join_group(&mut e, 2, t(0));
        // Group 3 joins through the *other* parent, 10 s later.
        e.learn_cores(g(3), &[core_b()]);
        let mut act = Vec::new();
        e.trigger_join(t(10), IfIndex(0), g(3), 0, &mut act);
        e.handle_control(
            t(10),
            IfIndex(2),
            down_addr(),
            ControlMessage::JoinAck {
                subcode: AckSubcode::Normal,
                group: g(3),
                origin: Addr::from_octets(10, 1, 0, 1),
                target_core: core_b(),
                cores: vec![core_b()],
            },
        );
        assert_eq!(
            e.parent_index.get(&up_hop().addr).map(|s| s.iter().copied().collect::<Vec<_>>()),
            Some(vec![g(1), g(2)]),
            "index maps the upstream parent to exactly its groups"
        );
        assert_eq!(
            e.parent_index.get(&down_addr()).map(|s| s.iter().copied().collect::<Vec<_>>()),
            Some(vec![g(3)]),
        );

        let act = e.on_timer(t(30));
        let echoes = act
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    RouterAction::SendControl { msg: ControlMessage::EchoRequest { .. }, .. }
                )
            })
            .count();
        assert_eq!(echoes, 1, "only the upstream parent's groups were due");
        let next_echo =
            |e: &CbtRouter, n: u16| e.fib().get(g(n)).unwrap().parent.unwrap().next_echo;
        assert_eq!(next_echo(&e, 1), t(60), "covered group re-clocked");
        assert_eq!(next_echo(&e, 2), t(60), "covered group re-clocked");
        assert_eq!(next_echo(&e, 3), t(40), "other parent's group left alone");

        // The untouched clock fires on its own schedule, aimed at the
        // other parent only.
        let act = e.on_timer(t(40));
        let targets: Vec<Addr> = act
            .iter()
            .filter_map(|a| match a {
                RouterAction::SendControl {
                    dst, msg: ControlMessage::EchoRequest { .. }, ..
                } => Some(*dst),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![down_addr()]);
        assert_eq!(next_echo(&e, 1), t(60), "upstream clocks unaffected in return");
        assert_eq!(next_echo(&e, 3), t(70));
    }

    /// The point-reply fast path (no mask) refreshes exactly the named
    /// group — a sibling group on the same parent keeps its clock, the
    /// same answer the old full-FIB scan gave.
    #[test]
    fn point_reply_refreshes_only_its_group() {
        let mut e = routed_engine(CbtConfig::default());
        join_group(&mut e, 1, t(0));
        join_group(&mut e, 2, t(0));
        e.handle_control(
            t(31),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::EchoReply { group: g(1), origin: up_hop().addr, group_mask: None },
        );
        let last = |e: &CbtRouter, n: u16| e.fib().get(g(n)).unwrap().parent.unwrap().last_reply;
        assert_eq!(last(&e, 1), t(31), "named group refreshed");
        assert!(last(&e, 2) < t(31), "sibling on the same parent untouched");
    }

    #[test]
    fn mask_covering_properties() {
        let (low, mask) = mask_covering(&[g(0)]);
        assert_eq!(low, g(0));
        assert_eq!(mask, Addr(!0), "single group ⇒ host mask");
        let groups = [g(0), g(1), g(2), g(3)];
        let (low, mask) = mask_covering(&groups);
        for grp in groups {
            assert!(group_matches(grp, low, Some(mask)));
        }
        assert!(low.addr().is_multicast());
    }

    /// Deviation 7: the §6.1 RECONNECT campaign budget is retired by a
    /// parent that proves real (answers an echo) — not by the ack that
    /// instated it, which may be a §6.3 loop about to be torn down.
    #[test]
    fn parent_echo_reply_retires_the_reconnect_budget() {
        let mut e = routed_engine(CbtConfig::default());
        join_group(&mut e, 1, t(0));
        e.reattach_started.insert(g(1), t(0));
        // A reply from someone who is NOT the parent changes nothing.
        e.handle_control(
            t(5),
            IfIndex(2),
            down_addr(),
            ControlMessage::EchoReply { group: g(1), origin: down_addr(), group_mask: None },
        );
        assert!(e.reattach_started.contains_key(&g(1)), "stranger's reply ignored");
        // The parent's reply retires the campaign.
        e.handle_control(
            t(6),
            IfIndex(1),
            up_hop().addr,
            ControlMessage::EchoReply { group: g(1), origin: up_hop().addr, group_mask: None },
        );
        assert!(!e.reattach_started.contains_key(&g(1)), "parent answered: settled");
    }
}
