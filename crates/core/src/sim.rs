//! Adapters that run the sans-I/O engine inside the deterministic
//! simulator: [`RouterNode`] (a CBT router with an IP forwarding plane)
//! and [`HostApp`] (an end-system running IGMP plus a tiny multicast
//! application).
//!
//! Everything on the wire is a complete IPv4 datagram built by
//! `cbt-wire`, so the trace sees exactly what a packet capture would.

use crate::engine::{CbtRouter, RouteLookup, SharedRib};
use crate::events::RouterAction;
use crate::shard::ShardedRouter;
use cbt_igmp::{HostMembership, IgmpTimers};
use cbt_netsim::{Bytes, Outbox, SimNode, SimTime};
use cbt_obs::DropReason;
use cbt_topology::IfIndex;
use cbt_wire::ipv4::{build_datagram, split_datagram};
use cbt_wire::{
    Addr, CbtDataPacket, ControlMessage, DataPacket, GroupId, IgmpMessage, IpProto, Ipv4Header,
    UdpHeader, WireError, CBT_AUX_PORT, CBT_PRIMARY_PORT,
};
use std::any::Any;

/// A CBT router in the simulator: the protocol engine plus the plain
/// IP forwarding plane that carries multi-hop unicasts (joins are
/// neighbour-to-neighbour, but off-tree data to a core and the direct
/// REJOIN-NACTIVE ack cross several hops).
pub struct RouterNode {
    engine: ShardedRouter,
    rib: SharedRib,
    /// Scratch buffer reused for every control-message encode on the
    /// send path — the hot path allocates once, not per message.
    ctl_buf: Vec<u8>,
    /// Reusable action buffer the data-plane handlers write into;
    /// drained by [`RouterNode::emit`], its capacity persists across
    /// packets so the steady-state forward path never reallocates it.
    act_buf: Vec<RouterAction>,
}

impl RouterNode {
    /// Builds the node: engine plus forwarding plane, both consulting
    /// the same shared RIB.
    pub fn new(
        net: &cbt_topology::NetworkSpec,
        me: cbt_topology::RouterId,
        cfg: crate::CbtConfig,
        rib: SharedRib,
        now: SimTime,
    ) -> Self {
        let engine = ShardedRouter::new(net, me, cfg, || Box::new(rib.clone()), now);
        RouterNode { engine, rib, ctl_buf: Vec::new(), act_buf: Vec::new() }
    }

    /// Builds the node as shard `index` of an `total`-way sharded
    /// router: it owns exactly one engine shard and expects its caller
    /// (the live plane's steering fabric) to feed it only the frames
    /// its shard owns — plus the broadcast ones, which it processes
    /// with shard-0-only emission so the deployment sends each
    /// group-less message once.
    pub fn new_shard_slice(
        net: &cbt_topology::NetworkSpec,
        me: cbt_topology::RouterId,
        cfg: crate::CbtConfig,
        rib: SharedRib,
        now: SimTime,
        index: usize,
        total: usize,
    ) -> Self {
        let engine = ShardedRouter::slice(net, me, cfg, Box::new(rib.clone()), now, index, total);
        RouterNode { engine, rib, ctl_buf: Vec::new(), act_buf: Vec::new() }
    }

    /// The first shard's engine (tests and metrics poke around in
    /// here; at the default `shards = 1` it is the whole router).
    pub fn engine(&self) -> &CbtRouter {
        self.engine.primary()
    }

    /// Mutable first-shard access for harness-level operations.
    pub fn engine_mut(&mut self) -> &mut CbtRouter {
        self.engine.primary_mut()
    }

    /// The sharded steering front (all shards).
    pub fn sharded(&self) -> &ShardedRouter {
        &self.engine
    }

    /// Mutable access to the sharded steering front.
    pub fn sharded_mut(&mut self) -> &mut ShardedRouter {
        &mut self.engine
    }

    /// Turns engine actions into frames, draining `actions` so the
    /// caller's buffer (and its capacity) can be reused for the next
    /// packet.
    fn emit(&mut self, actions: &mut Vec<RouterAction>, out: &mut Outbox) {
        // Fan-out memo: native spanning pushes one SendNativeData per
        // branch interface carrying the *same* datagram. Encode once
        // and hand each interface a refcounted clone of the frame.
        let mut native_memo: Option<(DataPacket, Bytes)> = None;
        for a in actions.drain(..) {
            match a {
                RouterAction::SendControl { iface, dst, msg } => {
                    let port = if msg.is_primary() { CBT_PRIMARY_PORT } else { CBT_AUX_PORT };
                    if msg.encode_into(&mut self.ctl_buf).is_err() {
                        // Unreachable for engine-built messages (core
                        // lists are clamped at ingestion), but an
                        // unencodable message must be counted, not
                        // silently skipped.
                        self.engine.obs_mut().drop_packet(DropReason::DecodeError);
                        continue;
                    }
                    let udp = UdpHeader::wrap(port, port, &self.ctl_buf);
                    let src = self.iface_addr(iface);
                    let frame = build_datagram(src, dst, IpProto::Udp, 64, &udp);
                    self.emit_frame(iface, dst, frame.into(), out);
                }
                RouterAction::SendIgmp { iface, dst, msg } => {
                    let src = self.iface_addr(iface);
                    let frame = build_datagram(src, dst, IpProto::Igmp, 1, &msg.encode());
                    self.emit_frame(iface, dst, frame.into(), out);
                }
                RouterAction::SendNativeData { iface, pkt } => {
                    // The original datagram travels unchanged (§4):
                    // source stays the originating end-system.
                    let frame = match &native_memo {
                        Some((prev, frame)) if *prev == pkt => frame.clone(),
                        _ => {
                            let frame = Bytes::from(pkt.encode());
                            native_memo = Some((pkt, frame.clone()));
                            frame
                        }
                    };
                    out.send(iface, frame);
                }
                RouterAction::SendCbtUnicast { iface, dst, pkt } => {
                    let src = self.iface_addr(iface);
                    let frame = pkt.wrap_unicast(src, dst, None);
                    self.emit_frame(iface, dst, frame.into(), out);
                }
                RouterAction::SendCbtMulticast { iface, pkt } => {
                    // Outer source differs per interface, so CBT
                    // multicasts cannot share a memoised frame.
                    let src = self.iface_addr(iface);
                    let frame = pkt.wrap_multicast(src);
                    out.send(iface, frame);
                }
            }
        }
    }

    fn iface_addr(&self, iface: IfIndex) -> Addr {
        self.engine.iface(iface).map(|i| i.addr).unwrap_or(self.engine.id_addr())
    }

    /// Sends a frame out `iface`, resolving the link-layer destination
    /// the way ARP + a routing lookup would.
    fn emit_frame(&self, iface: IfIndex, ip_dst: Addr, frame: Bytes, out: &mut Outbox) {
        let Some(info) = self.engine.iface(iface) else { return };
        if info.lan.is_none() || ip_dst.is_multicast() {
            out.send(iface, frame);
            return;
        }
        if info.contains(ip_dst) {
            out.send_to(iface, ip_dst, frame);
            return;
        }
        // Off-subnet unicast: frame goes to the next hop's address.
        if let Some(hop) = self.rib.hop_toward(ip_dst) {
            out.send_to(iface, hop.addr, frame);
        }
        // No route: dropped, like a real router with no ARP entry.
    }

    /// Plain IP forwarding for unicasts not addressed to us.
    fn ip_forward(&mut self, hdr: Ipv4Header, body: &[u8], out: &mut Outbox) {
        if hdr.ttl <= 1 {
            return;
        }
        let Some(hop) = self.rib.hop_toward(hdr.dst) else { return };
        let frame = build_datagram(hdr.src, hdr.dst, hdr.proto, hdr.ttl - 1, body);
        self.emit_frame(hop.iface, hdr.dst, frame.into(), out);
    }

    /// Zero-copy view of `sub` (a subslice of `frame`'s backing bytes)
    /// as a refcounted handle into the same allocation.
    fn subslice(frame: &Bytes, sub: &[u8]) -> Bytes {
        let off = sub.as_ptr() as usize - frame.as_ptr() as usize;
        frame.slice(off..off + sub.len())
    }

    /// Classifies a parse failure into the drop taxonomy: checksum
    /// rejections are distinguished from every other malformation.
    fn count_decode_failure(&mut self, e: &WireError) {
        let reason = match e {
            WireError::BadChecksum { .. } => DropReason::ChecksumBad,
            _ => DropReason::DecodeError,
        };
        self.engine.obs_mut().drop_packet(reason);
    }
}

impl SimNode for RouterNode {
    fn on_packet(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        link_src: Addr,
        frame: &Bytes,
        out: &mut Outbox,
    ) {
        let hdr_body = match split_datagram(frame) {
            Ok(v) => v,
            Err(e) => {
                self.count_decode_failure(&e);
                return;
            }
        };
        let (hdr, body) = hdr_body;
        let mine = self.engine.is_my_addr(hdr.dst);
        match hdr.proto {
            IpProto::Igmp => match IgmpMessage::decode(body) {
                Ok(msg) => {
                    let mut actions = self.engine.handle_igmp(now, iface, hdr.src, msg);
                    self.emit(&mut actions, out);
                }
                Err(e) => self.count_decode_failure(&e),
            },
            IpProto::Udp => {
                match UdpHeader::unwrap(body) {
                    Ok((udp, payload))
                        if udp.dst_port == CBT_PRIMARY_PORT || udp.dst_port == CBT_AUX_PORT =>
                    {
                        if mine {
                            match ControlMessage::decode(payload) {
                                Ok(msg) => {
                                    let mut actions =
                                        self.engine.handle_control(now, iface, hdr.src, msg);
                                    self.emit(&mut actions, out);
                                }
                                Err(e) => self.count_decode_failure(&e),
                            }
                        } else if !hdr.dst.is_multicast() {
                            self.ip_forward(hdr, body, out);
                        }
                    }
                    Ok(_) => {
                        if hdr.dst.is_multicast() {
                            // Zero-copy parse: the packet's payload is
                            // a refcounted view into the frame.
                            match DataPacket::decode_bytes(frame) {
                                Ok(pkt) => {
                                    let mut actions = std::mem::take(&mut self.act_buf);
                                    self.engine.handle_native_data(
                                        now,
                                        iface,
                                        link_src,
                                        pkt,
                                        &mut actions,
                                    );
                                    self.emit(&mut actions, out);
                                    self.act_buf = actions;
                                }
                                Err(e) => self.count_decode_failure(&e),
                            }
                        } else if !mine {
                            self.ip_forward(hdr, body, out);
                        }
                    }
                    Err(e) => self.count_decode_failure(&e), // corrupted in flight
                }
            }
            IpProto::Cbt => {
                let payload = Self::subslice(frame, body);
                if mine || hdr.dst.is_multicast() {
                    match CbtDataPacket::decode_payload_bytes(&payload) {
                        Ok(pkt) => {
                            let mut actions = std::mem::take(&mut self.act_buf);
                            self.engine.handle_cbt_data(now, iface, hdr.src, pkt, &mut actions);
                            self.emit(&mut actions, out);
                            self.act_buf = actions;
                        }
                        Err(e) => self.count_decode_failure(&e),
                    }
                } else {
                    // §7: an off-tree encapsulated packet travelling
                    // toward a core is intercepted by the FIRST on-tree
                    // router on its path ("until the data packet
                    // reaches an on-tree router — at this point, the
                    // router must convert [on-tree] to 0xff"), not only
                    // by the addressed core.
                    let intercept = CbtDataPacket::decode_payload_bytes(&payload)
                        .ok()
                        .filter(|p| !p.cbt.is_on_tree() && self.engine.is_on_tree(p.cbt.group));
                    if let Some(pkt) = intercept {
                        let mut actions = std::mem::take(&mut self.act_buf);
                        self.engine.handle_cbt_data(now, iface, hdr.src, pkt, &mut actions);
                        self.emit(&mut actions, out);
                        self.act_buf = actions;
                    } else {
                        self.ip_forward(hdr, body, out);
                    }
                }
            }
            IpProto::IpIp => {
                if !mine {
                    self.ip_forward(hdr, body, out);
                }
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, out: &mut Outbox) {
        let mut actions = self.engine.on_timer(now);
        self.emit(&mut actions, out);
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.engine.next_wakeup()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// One multicast payload delivered to a host application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// When it arrived.
    pub at: SimTime,
    /// Group it was addressed to.
    pub group: GroupId,
    /// Originating end-system.
    pub src: Addr,
    /// Application payload.
    pub payload: Vec<u8>,
}

/// An application-level operation a host performs at a given time.
#[derive(Debug, Clone)]
enum HostOp {
    Join { group: GroupId, cores: Vec<Addr>, target_core_index: u8 },
    Leave { group: GroupId },
    Send { group: GroupId, payload: Vec<u8>, ttl: u8 },
}

/// An end-system in the simulator: IGMP membership plus a scriptable
/// multicast application that records what it receives.
pub struct HostApp {
    addr: Addr,
    membership: HostMembership,
    schedule: Vec<(SimTime, HostOp)>,
    received: Vec<Delivery>,
    tree_joined: Vec<(SimTime, GroupId, Addr)>,
}

impl HostApp {
    /// A host at `addr` speaking IGMP `version`.
    pub fn new(addr: Addr, igmp_version: u8, timers: IgmpTimers) -> Self {
        HostApp {
            addr,
            membership: HostMembership::new(addr, igmp_version, timers),
            schedule: Vec::new(),
            received: Vec::new(),
            tree_joined: Vec::new(),
        }
    }

    /// Schedules a group join (unsolicited report + RP/Core-Report) at
    /// `at`.
    pub fn join_at(&mut self, at: SimTime, group: GroupId, cores: Vec<Addr>) {
        self.schedule.push((at, HostOp::Join { group, cores, target_core_index: 0 }));
        self.schedule.sort_by_key(|(t, _)| *t);
    }

    /// Schedules a join that steers toward a specific core in the list.
    pub fn join_at_with_target(
        &mut self,
        at: SimTime,
        group: GroupId,
        cores: Vec<Addr>,
        target_core_index: u8,
    ) {
        self.schedule.push((at, HostOp::Join { group, cores, target_core_index }));
        self.schedule.sort_by_key(|(t, _)| *t);
    }

    /// Schedules a leave at `at`.
    pub fn leave_at(&mut self, at: SimTime, group: GroupId) {
        self.schedule.push((at, HostOp::Leave { group }));
        self.schedule.sort_by_key(|(t, _)| *t);
    }

    /// Schedules a data transmission at `at`.
    pub fn send_at(&mut self, at: SimTime, group: GroupId, payload: impl Into<Vec<u8>>, ttl: u8) {
        self.schedule.push((at, HostOp::Send { group, payload: payload.into(), ttl }));
        self.schedule.sort_by_key(|(t, _)| *t);
    }

    /// Everything the application has received.
    pub fn received(&self) -> &[Delivery] {
        &self.received
    }

    /// Tree-joined notifications heard from the DR (§2.5 proposal).
    pub fn tree_joined_events(&self) -> &[(SimTime, GroupId, Addr)] {
        &self.tree_joined
    }

    /// Is this host currently a member of `group`?
    pub fn is_member(&self, group: GroupId) -> bool {
        self.membership.is_member(group)
    }

    /// This host's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    fn emit_igmp(&self, outs: Vec<cbt_igmp::IgmpOut>, out: &mut Outbox) {
        for o in outs {
            let frame = build_datagram(self.addr, o.dst, IpProto::Igmp, 1, &o.msg.encode());
            out.send(IfIndex(0), frame);
        }
    }
}

impl SimNode for HostApp {
    fn on_packet(
        &mut self,
        now: SimTime,
        _iface: IfIndex,
        _link_src: Addr,
        frame: &Bytes,
        out: &mut Outbox,
    ) {
        let Ok((hdr, body)) = split_datagram(frame) else { return };
        match hdr.proto {
            IpProto::Igmp => {
                if let Ok(msg) = IgmpMessage::decode(body) {
                    if let IgmpMessage::TreeJoined { group, core } = msg {
                        self.tree_joined.push((now, group, core));
                    } else {
                        self.membership.on_igmp(&msg, now);
                    }
                    let due = self.membership.poll(now);
                    self.emit_igmp(due, out);
                }
            }
            IpProto::Udp => {
                // Application data: only for groups we are members of.
                // The parse itself is zero-copy; the one copy happens
                // here, where the application takes ownership.
                if let Ok(pkt) = DataPacket::decode_bytes(frame) {
                    if self.membership.is_member(pkt.group) && pkt.src != self.addr {
                        self.received.push(Delivery {
                            at: now,
                            group: pkt.group,
                            src: pkt.src,
                            payload: pkt.payload.to_vec(),
                        });
                    }
                }
            }
            // "The IP module of end-systems ... will discard these
            // multicasts since the CBT payload type of the outer IP
            // header is not recognizable by hosts" (§5).
            IpProto::Cbt | IpProto::IpIp => {}
        }
    }

    fn on_timer(&mut self, now: SimTime, out: &mut Outbox) {
        while let Some((at, _)) = self.schedule.first() {
            if *at > now {
                break;
            }
            let (_, op) = self.schedule.remove(0);
            match op {
                HostOp::Join { group, cores, target_core_index } => {
                    let msgs = self.membership.join(group, cores, target_core_index);
                    self.emit_igmp(msgs, out);
                }
                HostOp::Leave { group } => {
                    let msgs = self.membership.leave(group);
                    self.emit_igmp(msgs, out);
                }
                HostOp::Send { group, payload, ttl } => {
                    let pkt = DataPacket::new(self.addr, group, ttl, payload);
                    out.send(IfIndex(0), pkt.encode());
                }
            }
        }
        let due = self.membership.poll(now);
        self.emit_igmp(due, out);
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        let sched = self.schedule.first().map(|(t, _)| *t);
        let report = self.membership.next_wakeup();
        match (sched, report) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Everything needed to stand up a full CBT network in the simulator:
/// a [`cbt_netsim::World`] with one [`RouterNode`] per router and one
/// [`HostApp`] per host, all sharing one RIB.
pub struct CbtWorld {
    /// The simulator world.
    pub world: cbt_netsim::World,
    /// The shared routing table (recompute after failures).
    pub rib: std::sync::Arc<parking_lot::RwLock<cbt_routing::Rib>>,
    /// The network, for address lookups.
    pub net: std::sync::Arc<cbt_topology::NetworkSpec>,
    /// RIB-view factory (used when re-installing a restarted router).
    make_rib: Box<dyn Fn(cbt_topology::RouterId) -> SharedRib>,
    /// Router config used at construction (restarts reuse it).
    cfg: crate::CbtConfig,
}

impl CbtWorld {
    /// Builds a world where every router runs CBT with `cfg` and every
    /// host runs IGMPv3.
    pub fn build(
        net: cbt_topology::NetworkSpec,
        cfg: crate::CbtConfig,
        world_cfg: cbt_netsim::WorldConfig,
    ) -> Self {
        Self::build_with_igmp_versions(net, cfg, world_cfg, |_| 3)
    }

    /// As [`CbtWorld::build`], choosing each host's IGMP version.
    pub fn build_with_igmp_versions(
        net: cbt_topology::NetworkSpec,
        cfg: crate::CbtConfig,
        world_cfg: cbt_netsim::WorldConfig,
        igmp_version: impl Fn(cbt_topology::HostId) -> u8,
    ) -> Self {
        let net = std::sync::Arc::new(net);
        let (rib, make_rib) = SharedRib::build(net.clone());
        let mut world = cbt_netsim::World::new((*net).clone(), world_cfg);
        for i in 0..net.routers.len() {
            let me = cbt_topology::RouterId(i as u32);
            let node = RouterNode::new(&net, me, cfg.clone(), make_rib(me), SimTime::ZERO);
            world.set_node(cbt_netsim::Entity::Router(me), Box::new(node));
        }
        for (i, h) in net.hosts.iter().enumerate() {
            let hid = cbt_topology::HostId(i as u32);
            let app = HostApp::new(h.addr, igmp_version(hid), cfg.igmp);
            world.set_node(cbt_netsim::Entity::Host(hid), Box::new(app));
        }
        CbtWorld { world, rib, net, make_rib: Box::new(make_rib), cfg }
    }

    /// Host handle. If you schedule operations after `world.start()`,
    /// follow up with [`CbtWorld::touch_host`] so the world learns the
    /// new wakeup.
    pub fn host(&mut self, h: cbt_topology::HostId) -> &mut HostApp {
        self.world.node_mut::<HostApp>(cbt_netsim::Entity::Host(h)).expect("host exists")
    }

    /// Re-arms a host's timer after post-start schedule changes.
    pub fn touch_host(&mut self, h: cbt_topology::HostId) {
        self.world.poke(cbt_netsim::Entity::Host(h));
    }

    /// Router handle.
    pub fn router(&mut self, r: cbt_topology::RouterId) -> &mut RouterNode {
        self.world.node_mut::<RouterNode>(cbt_netsim::Entity::Router(r)).expect("router exists")
    }

    /// Fails a router and recomputes routing, as a converged IGP would.
    pub fn fail_router(&mut self, r: cbt_topology::RouterId) {
        self.world.failures_mut().fail_router(r);
        self.recompute_routes();
    }

    /// Fails a link and recomputes routing.
    pub fn fail_link(&mut self, l: cbt_topology::LinkId) {
        self.world.failures_mut().fail_link(l);
        self.recompute_routes();
    }

    /// Fails a whole LAN segment and recomputes routing.
    pub fn fail_lan(&mut self, l: cbt_topology::LanId) {
        self.world.failures_mut().fail_lan(l);
        self.recompute_routes();
    }

    /// Restores a failed LAN segment and recomputes routing.
    pub fn restore_lan(&mut self, l: cbt_topology::LanId) {
        self.world.failures_mut().restore_lan(l);
        self.recompute_routes();
    }

    /// Restores a failed link and recomputes routing.
    pub fn restore_link(&mut self, l: cbt_topology::LinkId) {
        self.world.failures_mut().restore_link(l);
        self.recompute_routes();
    }

    /// Restores a router **with empty protocol state** (§6.2 restart)
    /// and recomputes routing.
    pub fn restart_router(&mut self, r: cbt_topology::RouterId, now: SimTime) {
        self.world.failures_mut().restore_router(r);
        self.recompute_routes();
        let node = RouterNode::new(&self.net, r, self.cfg.clone(), (self.make_rib)(r), now);
        self.world.set_node(cbt_netsim::Entity::Router(r), Box::new(node));
    }

    /// Recomputes the shared RIB from the current failure set.
    pub fn recompute_routes(&self) {
        SharedRib::recompute(&self.net, &self.rib, self.world.failures());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbt_netsim::WorldConfig;
    use cbt_topology::NetworkBuilder;

    /// Two LANs joined by a chain of three routers; host A joins, host
    /// B sends — the simplest end-to-end delivery through a real join.
    #[test]
    fn end_to_end_join_and_delivery() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1"); // will be the core
        let r2 = b.router("R2");
        let s0 = b.lan("S0");
        b.attach(s0, r0);
        let a = b.host("A", s0);
        b.link(r0, r1, 1);
        b.link(r1, r2, 1);
        let s1 = b.lan("S1");
        b.attach(s1, r2);
        let sender = b.host("B", s1);
        let net = b.build();
        let core = net.router_addr(r1);

        let group = GroupId::numbered(7);
        // §5.1: a non-member sender's DR needs a <core, group> mapping
        // mechanism, which the spec leaves external — here, managed
        // configuration.
        let cfg = crate::CbtConfig::fast().with_mapping(group, vec![core]);
        let mut cw = CbtWorld::build(net, cfg, WorldConfig::default());
        cw.host(a).join_at(SimTime::from_secs(1), group, vec![core]);
        // The sender is a non-member: §5.1 non-member sending.
        cw.host(sender).send_at(SimTime::from_secs(3), group, b"hello".to_vec(), 32);
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(5));

        // A's DR joined the tree...
        assert!(cw.router(r0).engine().is_on_tree(group));
        assert_eq!(
            cw.router(r0).engine().parent_of(group),
            Some({
                // R0's parent is R1 via the p2p link.
                let net = cw.net.clone();
                net.routers[r1.0 as usize]
                    .ifaces
                    .iter()
                    .find(|i| i.subnet == net.routers[r0.0 as usize].ifaces[1].subnet)
                    .unwrap()
                    .addr
            })
        );
        // ...the host heard the §2.5 notification...
        assert!(!cw.host(a).tree_joined_events().is_empty());
        // ...and B's data arrived at A exactly once.
        let got = cw.host(a).received();
        assert_eq!(got.len(), 1, "exactly one copy delivered");
        assert_eq!(got[0].payload, b"hello");
        assert_eq!(got[0].group, group);
    }

    /// Same network; member-to-member delivery both directions.
    #[test]
    fn two_members_exchange_data() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let s0 = b.lan("S0");
        b.attach(s0, r0);
        let a = b.host("A", s0);
        b.link(r0, r1, 1);
        b.link(r1, r2, 1);
        let s1 = b.lan("S1");
        b.attach(s1, r2);
        let bb = b.host("B", s1);
        let net = b.build();
        let core = net.router_addr(r1);
        let group = GroupId::numbered(9);

        let mut cw = CbtWorld::build(net, crate::CbtConfig::fast(), WorldConfig::default());
        cw.host(a).join_at(SimTime::from_secs(1), group, vec![core]);
        cw.host(bb).join_at(SimTime::from_secs(1), group, vec![core]);
        cw.host(a).send_at(SimTime::from_secs(4), group, b"from A".to_vec(), 32);
        cw.host(bb).send_at(SimTime::from_secs(5), group, b"from B".to_vec(), 32);
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(8));

        let at_b = cw.host(bb).received();
        assert_eq!(at_b.len(), 1);
        assert_eq!(at_b[0].payload, b"from A");
        let at_a = cw.host(a).received();
        assert_eq!(at_a.len(), 1);
        assert_eq!(at_a[0].payload, b"from B");
        // The core carries both directions: it is on-tree with two
        // children and no parent.
        let core_engine = cw.router(r1).engine();
        assert!(core_engine.is_on_tree(group));
        assert_eq!(core_engine.parent_of(group), None);
        assert_eq!(core_engine.children_of(group).len(), 2);
    }

    /// CBT-mode forwarding delivers identically.
    #[test]
    fn cbt_mode_end_to_end() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let s0 = b.lan("S0");
        b.attach(s0, r0);
        let a = b.host("A", s0);
        b.link(r0, r1, 1);
        let s1 = b.lan("S1");
        b.attach(s1, r1);
        let bb = b.host("B", s1);
        let net = b.build();
        let core = net.router_addr(r1);
        let group = GroupId::numbered(2);

        let mut cw = CbtWorld::build(
            net,
            crate::CbtConfig::fast().with_mode(crate::config::ForwardingMode::CbtMode),
            WorldConfig::default(),
        );
        cw.host(a).join_at(SimTime::from_secs(1), group, vec![core]);
        cw.host(bb).join_at(SimTime::from_secs(1), group, vec![core]);
        cw.host(bb).send_at(SimTime::from_secs(3), group, b"cbt mode".to_vec(), 32);
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(6));
        let sender_addr = cw.host(bb).addr();
        let got = cw.host(a).received();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"cbt mode");
        assert_eq!(got[0].src, sender_addr);
        // The delivered copy crossed a CBT-mode branch.
        use cbt_netsim::PacketKind;
        assert!(cw.world.trace().count(PacketKind::DataCbt) > 0, "branch used CBT mode");
    }

    /// Leaves tear the branch down again (§2.7) within the fast timers.
    #[test]
    fn leave_triggers_quit_upstream() {
        let mut b = NetworkBuilder::new();
        let r0 = b.router("R0");
        let r1 = b.router("R1");
        let s0 = b.lan("S0");
        b.attach(s0, r0);
        let a = b.host("A", s0);
        b.link(r0, r1, 1);
        let s1 = b.lan("S1");
        b.attach(s1, r1);
        let net = b.build();
        let core = net.router_addr(r1);
        let group = GroupId::numbered(3);

        let mut cw = CbtWorld::build(net, crate::CbtConfig::fast(), WorldConfig::default());
        cw.host(a).join_at(SimTime::from_secs(1), group, vec![core]);
        cw.host(a).leave_at(SimTime::from_secs(5), group);
        cw.world.start();
        cw.world.run_until(SimTime::from_secs(4));
        assert!(cw.router(r0).engine().is_on_tree(group), "joined first");
        cw.world.run_until(SimTime::from_secs(15));
        assert!(!cw.router(r0).engine().is_on_tree(group), "quit after leave");
        let core_children = cw.router(r1).engine().children_of(group);
        assert!(core_children.is_empty(), "core saw the quit");
    }
}
