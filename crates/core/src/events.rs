//! Engine outputs and statistics.

use cbt_topology::IfIndex;
use cbt_wire::{Addr, CbtDataPacket, ControlMessage, DataPacket, GroupId, IgmpMessage};

/// An action the engine wants performed. The adapter (simulator or
/// tokio runtime) turns these into frames on interfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterAction {
    /// Unicast a CBT control message to `dst` out of `iface`
    /// (in UDP, port per message class — §3).
    SendControl {
        /// Interface to send on.
        iface: IfIndex,
        /// Unicast destination (next hop or, for the REJOIN-NACTIVE
        /// ack, the converting router directly).
        dst: Addr,
        /// The message.
        msg: ControlMessage,
    },
    /// Put an IGMP message on a LAN (queries, tree-joined notification).
    SendIgmp {
        /// LAN interface.
        iface: IfIndex,
        /// IP destination (all-systems, the group, ...).
        dst: Addr,
        /// The message.
        msg: IgmpMessage,
    },
    /// IP-multicast a native data packet onto a subnet (§4/§5: member
    /// subnets get the packet with TTL per the mode's rules).
    SendNativeData {
        /// LAN (or tree) interface.
        iface: IfIndex,
        /// The packet, TTL already set by the engine.
        pkt: DataPacket,
    },
    /// CBT-unicast an encapsulated data packet to a tree neighbour or
    /// core (§5 "CBT unicasting").
    SendCbtUnicast {
        /// Interface toward the neighbour.
        iface: IfIndex,
        /// The neighbour/core address (outer IP destination).
        dst: Addr,
        /// The encapsulated packet.
        pkt: CbtDataPacket,
    },
    /// CBT-multicast an encapsulated packet (outer destination = the
    /// group) because a parent or several children share one interface
    /// (§5 "CBT multicasting").
    SendCbtMulticast {
        /// The shared interface.
        iface: IfIndex,
        /// The encapsulated packet.
        pkt: CbtDataPacket,
    },
}

impl RouterAction {
    /// The group the action concerns (for assertions in tests).
    pub fn group(&self) -> Option<GroupId> {
        match self {
            RouterAction::SendControl { msg, .. } => Some(msg.group()),
            RouterAction::SendIgmp { msg, .. } => match msg {
                IgmpMessage::Query { group, .. } => *group,
                IgmpMessage::Report { group, .. }
                | IgmpMessage::Leave { group }
                | IgmpMessage::TreeJoined { group, .. } => Some(*group),
                IgmpMessage::RpCore(r) => Some(r.group),
            },
            RouterAction::SendNativeData { pkt, .. } => Some(pkt.group),
            RouterAction::SendCbtUnicast { pkt, .. }
            | RouterAction::SendCbtMulticast { pkt, .. } => Some(pkt.cbt.group),
        }
    }
}

/// Counters a router keeps about its own behaviour (inputs to the
/// overhead experiments and general observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// JOIN_REQUESTs this router originated (not forwarded).
    pub joins_originated: u64,
    /// JOIN_REQUESTs forwarded hop-by-hop.
    pub joins_forwarded: u64,
    /// JOIN_ACKs sent (any subcode).
    pub acks_sent: u64,
    /// PROXY-ACKs sent (subset of `acks_sent`).
    pub proxy_acks_sent: u64,
    /// JOIN_NACKs sent.
    pub nacks_sent: u64,
    /// QUIT_REQUESTs sent.
    pub quits_sent: u64,
    /// FLUSH_TREE messages sent.
    pub flushes_sent: u64,
    /// Echo requests sent.
    pub echo_requests_sent: u64,
    /// Echo replies sent.
    pub echo_replies_sent: u64,
    /// Data packets forwarded (all modes).
    pub data_forwarded: u64,
    /// Data packets discarded by the §7 on-tree rules.
    pub data_discarded: u64,
    /// Parent failures detected (echo timeout).
    pub parent_failures: u64,
    /// Loops broken by the §6.3 NACTIVE mechanism.
    pub loops_broken: u64,
    /// Joins cached while a join for the same group was pending (§2.5).
    pub joins_cached: u64,
}

impl RouterStats {
    /// Folds another router's (or shard's) counters into this one.
    /// Every field is a plain event count, so the fold is associative
    /// and commutative — shard merge order cannot matter.
    pub fn merge(&mut self, o: &RouterStats) {
        self.joins_originated += o.joins_originated;
        self.joins_forwarded += o.joins_forwarded;
        self.acks_sent += o.acks_sent;
        self.proxy_acks_sent += o.proxy_acks_sent;
        self.nacks_sent += o.nacks_sent;
        self.quits_sent += o.quits_sent;
        self.flushes_sent += o.flushes_sent;
        self.echo_requests_sent += o.echo_requests_sent;
        self.echo_replies_sent += o.echo_replies_sent;
        self.data_forwarded += o.data_forwarded;
        self.data_discarded += o.data_discarded;
        self.parent_failures += o.parent_failures;
        self.loops_broken += o.loops_broken;
        self.joins_cached += o.joins_cached;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_group_extraction() {
        let g = GroupId::numbered(4);
        let act = RouterAction::SendIgmp {
            iface: IfIndex(0),
            dst: g.addr(),
            msg: IgmpMessage::Report { version: 3, group: g },
        };
        assert_eq!(act.group(), Some(g));
        let q = RouterAction::SendIgmp {
            iface: IfIndex(0),
            dst: cbt_wire::ALL_SYSTEMS,
            msg: IgmpMessage::Query { group: None, max_resp_tenths: 100 },
        };
        assert_eq!(q.group(), None, "general query has no group");
    }

    #[test]
    fn stats_default_to_zero() {
        let s = RouterStats::default();
        assert_eq!(s.joins_originated, 0);
        assert_eq!(s.data_forwarded, 0);
    }
}
