//! Group-space sharding: one router, N independent engines.
//!
//! CBT's scaling argument is that router state grows with *group*
//! count, not sender count — which makes the group id a natural
//! partition key. [`ShardedRouter`] fronts `N` fully independent
//! [`CbtRouter`] shards for one node: every group hashes to exactly one
//! shard ([`shard_of`]), and that shard owns the group's FIB entry,
//! pending-join state, timer-wheel entries and observability counters
//! outright. No state is shared between shards, so a deployment can pin
//! one shard per core and the forward path crosses no locks.
//!
//! ## Steering rules
//!
//! * Control messages, group-specific IGMP, native data and CBT data
//!   all carry a group — each goes to `shard_of(group)` alone.
//! * IGMP **general** queries (`Query { group: None }`) carry no group
//!   but drive the querier/DR election, whose outcome every shard needs
//!   to agree on. They are broadcast to all shards, which keep
//!   identical election replicas (same config, same boot instant, same
//!   heard queries ⇒ same ranks). Redundant *emissions* — each replica
//!   also wants to send its own general query — are suppressed for
//!   every shard but the first, so the wire sees exactly what an
//!   unsharded router would send.
//! * Non-group housekeeping (decode-error drop counts, group-less
//!   transit) lands on shard 0 by convention.
//!
//! `next_wakeup` is the min over per-shard wheel peeks; `on_timer`
//! visits due shards in index order, which keeps multi-shard instants
//! deterministic. Snapshots ([`ShardedRouter::stats`],
//! [`ShardedRouter::obs_snapshot`]) merge across shards with the same
//! associative/commutative folds the parallel eval runner uses across
//! seeds.
//!
//! At `shards = 1` the front is a transparent pass-through around a
//! single engine: same calls, same action vectors, no filtering — the
//! determinism suite replays byte-identically.

use crate::config::CbtConfig;
use crate::engine::{CbtRouter, IfaceInfo, RouteLookup};
use crate::events::{RouterAction, RouterStats};
use cbt_netsim::SimTime;
use cbt_obs::{ObsSnapshot, RouterObs};
use cbt_topology::{IfIndex, NetworkSpec, RouterId};
use cbt_wire::{Addr, CbtDataPacket, ControlMessage, DataPacket, GroupId, IgmpMessage};

/// Maps a group to its owning shard: a splitmix-style avalanche of the
/// group address, reduced mod `shards`.
///
/// Hand-written (not `std`'s SipHash) because steering must be stable
/// across processes and runs — the same group must land on the same
/// shard in the simulator, the live plane, and every restart, or
/// per-shard state would be orphaned. The mixer gives a near-uniform
/// spread even over sequential `239.x.y.z` allocations.
pub fn shard_of(group: GroupId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // Murmur3/splitmix-style 32-bit finisher: full avalanche, so
    // sequential group addresses spread uniformly.
    let mut x = group.addr().0;
    x = x.wrapping_add(0x9E37_79B9);
    x ^= x >> 16;
    x = x.wrapping_mul(0x21F0_AAAD);
    x ^= x >> 15;
    x = x.wrapping_mul(0x735A_2D97);
    x ^= x >> 15;
    (x as usize) % shards
}

/// Should a shard with global index `shard` emit `a`? Group-carrying
/// actions are each produced by exactly one shard (the group's owner)
/// and always pass. Group-less actions — only IGMP general queries —
/// are produced by *every* shard's election replica; the first shard's
/// copy is the one the wire sees.
fn emits(shard: usize, a: &RouterAction) -> bool {
    shard == 0 || a.group().is_some()
}

/// `N` independent [`CbtRouter`] shards behind one steering front.
///
/// Two deployment shapes share this type:
///
/// * **full** — all `N` shards in one value (the simulator, the eval
///   harness): built by [`ShardedRouter::new`].
/// * **slice** — one shard of a larger set (the live plane runs one
///   task per shard, each owning a single-shard slice): built by
///   [`ShardedRouter::slice`]. A slice steers with the *global* shard
///   count so ownership agrees across tasks, and applies the same
///   emission filtering by its global index.
pub struct ShardedRouter {
    shards: Vec<CbtRouter>,
    /// Global index of `shards[0]`: 0 for a full set, `k` for a slice.
    first_index: usize,
    /// Global shard count used for steering (≥ `shards.len()`).
    total: usize,
}

impl ShardedRouter {
    /// Builds the full shard set for router `me`: `cfg.shards` engines
    /// (min 1), each with its own route-table handle from
    /// `make_routes`.
    pub fn new(
        net: &NetworkSpec,
        me: RouterId,
        cfg: CbtConfig,
        mut make_routes: impl FnMut() -> Box<dyn RouteLookup>,
        now: SimTime,
    ) -> Self {
        let total = cfg.shards.max(1);
        let shards =
            (0..total).map(|_| CbtRouter::new(net, me, cfg.clone(), make_routes(), now)).collect();
        ShardedRouter { shards, first_index: 0, total }
    }

    /// Builds a one-shard slice: global shard `index` of `total`. The
    /// caller (the live plane) must pre-steer inputs so only owned
    /// groups arrive here — group-less broadcasts are fine, they are
    /// what the slice's election replica exists for.
    pub fn slice(
        net: &NetworkSpec,
        me: RouterId,
        cfg: CbtConfig,
        routes: Box<dyn RouteLookup>,
        now: SimTime,
        index: usize,
        total: usize,
    ) -> Self {
        let total = total.max(1);
        assert!(index < total, "shard index {index} out of range for {total} shards");
        let shards = vec![CbtRouter::new(net, me, cfg, routes, now)];
        ShardedRouter { shards, first_index: index, total }
    }

    /// Global shard count steering is computed against.
    pub fn shard_count(&self) -> usize {
        self.total
    }

    /// Number of engines held locally (equals `shard_count()` for a
    /// full set, 1 for a slice).
    pub fn local_count(&self) -> usize {
        self.shards.len()
    }

    /// The global shard index owning `group`.
    pub fn shard_index(&self, group: GroupId) -> usize {
        shard_of(group, self.total)
    }

    /// Local vector index for `group`. For a full set this is simply
    /// the owning shard; a slice resolves foreign groups to its one
    /// engine (defensive — pre-steering should prevent that).
    #[inline]
    fn local_for(&self, group: GroupId) -> usize {
        shard_of(group, self.total).wrapping_sub(self.first_index).min(self.shards.len() - 1)
    }

    /// Shard by local index.
    pub fn shard(&self, k: usize) -> &CbtRouter {
        &self.shards[k]
    }

    /// Mutable shard by local index.
    pub fn shard_mut(&mut self, k: usize) -> &mut CbtRouter {
        &mut self.shards[k]
    }

    /// The first local shard — the engine that owns group-less state.
    /// Existing single-engine call sites read through this; at
    /// `shards = 1` it *is* the whole router.
    pub fn primary(&self) -> &CbtRouter {
        &self.shards[0]
    }

    /// Mutable access to the first local shard.
    pub fn primary_mut(&mut self) -> &mut CbtRouter {
        &mut self.shards[0]
    }

    /// The shard owning `group`.
    pub fn shard_for(&self, group: GroupId) -> &CbtRouter {
        &self.shards[self.local_for(group)]
    }

    /// Mutable access to the shard owning `group`.
    pub fn shard_for_mut(&mut self, group: GroupId) -> &mut CbtRouter {
        let k = self.local_for(group);
        &mut self.shards[k]
    }

    // ------------------------------------------------------------------
    // Steered input dispatch — same signatures as `CbtRouter`.
    // ------------------------------------------------------------------

    /// Steers a control message to its group's shard.
    pub fn handle_control(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        src: Addr,
        msg: ControlMessage,
    ) -> Vec<RouterAction> {
        let k = self.local_for(msg.group());
        self.shards[k].handle_control(now, iface, src, msg)
    }

    /// Steers an IGMP message: group-carrying variants go to the owning
    /// shard; general queries are broadcast to every shard (election
    /// replicas) with redundant emissions filtered to the first shard.
    pub fn handle_igmp(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        src: Addr,
        msg: IgmpMessage,
    ) -> Vec<RouterAction> {
        let group = match &msg {
            IgmpMessage::Query { group, .. } => *group,
            IgmpMessage::Report { group, .. }
            | IgmpMessage::Leave { group }
            | IgmpMessage::TreeJoined { group, .. } => Some(*group),
            IgmpMessage::RpCore(r) => Some(r.group),
        };
        match group {
            Some(g) => {
                let k = self.local_for(g);
                self.shards[k].handle_igmp(now, iface, src, msg)
            }
            None if self.shards.len() == 1 => {
                let first = self.first_index;
                let mut act = self.shards[0].handle_igmp(now, iface, src, msg);
                if first > 0 {
                    act.retain(|a| emits(first, a));
                }
                act
            }
            None => {
                let first = self.first_index;
                let mut out = Vec::new();
                for (k, shard) in self.shards.iter_mut().enumerate() {
                    let act = shard.handle_igmp(now, iface, src, msg.clone());
                    out.extend(act.into_iter().filter(|a| emits(first + k, a)));
                }
                out
            }
        }
    }

    /// Steers a native-mode data packet to its group's shard. Pure
    /// index arithmetic in front of the zero-allocation forward path.
    #[inline]
    pub fn handle_native_data(
        &mut self,
        now: SimTime,
        iface: IfIndex,
        link_src: Addr,
        pkt: DataPacket,
        act: &mut Vec<RouterAction>,
    ) {
        let k = self.local_for(pkt.group);
        self.shards[k].handle_native_data(now, iface, link_src, pkt, act);
    }

    /// Steers a CBT-mode data packet to its group's shard.
    #[inline]
    pub fn handle_cbt_data(
        &mut self,
        now: SimTime,
        arrival: IfIndex,
        outer_src: Addr,
        pkt: CbtDataPacket,
        act: &mut Vec<RouterAction>,
    ) {
        let k = self.local_for(pkt.cbt.group);
        self.shards[k].handle_cbt_data(now, arrival, outer_src, pkt, act);
    }

    /// Advances every due shard, in shard order (deterministic when
    /// several shards share a wakeup instant). A single local shard is
    /// driven unconditionally, exactly like an unsharded engine.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<RouterAction> {
        let first = self.first_index;
        if self.shards.len() == 1 {
            let mut act = self.shards[0].on_timer(now);
            if first > 0 {
                act.retain(|a| emits(first, a));
            }
            return act;
        }
        let mut out = Vec::new();
        for (k, shard) in self.shards.iter_mut().enumerate() {
            if shard.next_wakeup().is_some_and(|w| w <= now) {
                let act = shard.on_timer(now);
                out.extend(act.into_iter().filter(|a| emits(first + k, a)));
            }
        }
        out
    }

    /// Earliest wakeup across every local shard's wheel peek.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.next_wakeup()).min()
    }

    // ------------------------------------------------------------------
    // Queries and merged views.
    // ------------------------------------------------------------------

    /// This router's id in the network spec.
    pub fn router_id(&self) -> RouterId {
        self.shards[0].router_id()
    }

    /// The router-id address (identical across shards).
    pub fn id_addr(&self) -> Addr {
        self.shards[0].id_addr()
    }

    /// Is `a` one of this router's addresses?
    pub fn is_my_addr(&self, a: Addr) -> bool {
        self.shards[0].is_my_addr(a)
    }

    /// Interface info (identical across shards).
    pub(crate) fn iface(&self, i: IfIndex) -> Option<&IfaceInfo> {
        self.shards[0].iface(i)
    }

    /// Am I the D-DR on `i`? Every shard's election replica agrees;
    /// the first answers.
    pub fn i_am_dr(&self, i: IfIndex, now: SimTime) -> bool {
        self.shards[0].i_am_dr(i, now)
    }

    /// Am I the G-DR for `group` on `i`? Asked of the owning shard.
    pub fn is_gdr(&self, i: IfIndex, group: GroupId) -> bool {
        self.shard_for(group).is_gdr(i, group)
    }

    /// Is this router on-tree for `group`?
    pub fn is_on_tree(&self, group: GroupId) -> bool {
        self.shard_for(group).is_on_tree(group)
    }

    /// Parent address for `group`, if any.
    pub fn parent_of(&self, group: GroupId) -> Option<Addr> {
        self.shard_for(group).parent_of(group)
    }

    /// Child addresses for `group`.
    pub fn children_of(&self, group: GroupId) -> Vec<Addr> {
        self.shard_for(group).children_of(group)
    }

    /// Is a join in flight for `group`?
    pub fn has_pending_join(&self, group: GroupId) -> bool {
        self.shard_for(group).has_pending_join(group)
    }

    /// Per-group protocol phase at `now`, asked of the owning shard.
    pub fn protocol_phase(&self, group: GroupId, now: SimTime) -> crate::engine::ProtocolPhase {
        self.shard_for(group).protocol_phase(group, now)
    }

    /// Any transient per-group state (pending join/quit, re-attach) on
    /// the owning shard? See [`crate::engine::CbtRouter::has_transient_state`].
    pub fn has_transient_state(&self, group: GroupId) -> bool {
        self.shard_for(group).has_transient_state(group)
    }

    /// Cores known for `group` (owning shard's knowledge).
    pub fn cores_for(&self, group: GroupId) -> Option<Vec<Addr>> {
        self.shard_for(group).cores_for(group)
    }

    /// Records a core list with the owning shard.
    pub fn learn_cores(&mut self, group: GroupId, cores: &[Addr]) {
        self.shard_for_mut(group).learn_cores(group, cores);
    }

    /// The configuration in force (identical across shards).
    pub fn config(&self) -> &CbtConfig {
        self.shards[0].config()
    }

    /// Total FIB entries across local shards.
    pub fn fib_len(&self) -> usize {
        self.shards.iter().map(|s| s.fib().len()).sum()
    }

    /// Observability of the first local shard — where host layers
    /// classify drops that never reach a group (decode failures).
    pub fn obs_mut(&mut self) -> &mut RouterObs {
        self.shards[0].obs_mut()
    }

    /// Behaviour counters summed across local shards.
    pub fn stats(&self) -> RouterStats {
        let mut total = RouterStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total
    }

    /// Counter snapshot merged across local shards, labelled once with
    /// the router address. Merge order is irrelevant — `ObsSnapshot`
    /// merge is associative and commutative (see the obs crate's
    /// property tests) — so full sets and slice-per-task deployments
    /// aggregate to the same totals.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let mut snap = self.shards[0].obs_snapshot();
        for s in &self.shards[1..] {
            snap.merge(&s.obs_snapshot());
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::ScriptRoutes;
    use cbt_topology::NetworkBuilder;
    use std::collections::BTreeMap;

    fn test_net() -> (NetworkSpec, RouterId) {
        // Same shape as engine::testutil: ME with a LAN (if0) and two
        // p2p links (if1 up, if2 down).
        let mut b = NetworkBuilder::new();
        let me = b.router("ME");
        let up = b.router("UP");
        let down = b.router("DOWN");
        let lan = b.lan("S0");
        b.attach(lan, me);
        b.host("H", lan);
        b.link(me, up, 1);
        b.link(me, down, 1);
        (b.build(), me)
    }

    /// The upstream peer on if1, used as every group's core.
    fn core() -> Addr {
        Addr::from_octets(172, 31, 0, 2)
    }

    /// Routes reaching the core through if1 — so joins actually leave
    /// the router instead of dying on "no route".
    fn routes() -> Box<dyn RouteLookup> {
        let hop =
            cbt_routing::Hop { iface: IfIndex(1), router: RouterId(1), addr: core(), dist: 1 };
        Box::new(ScriptRoutes([(core(), hop)].into_iter().collect()))
    }

    fn sharded(n: usize) -> ShardedRouter {
        let (net, me) = test_net();
        let cfg = CbtConfig { shards: n, ..CbtConfig::default() };
        ShardedRouter::new(&net, me, cfg, routes, SimTime::ZERO)
    }

    #[test]
    fn every_group_maps_to_exactly_one_shard() {
        for n in [1usize, 2, 3, 4, 8] {
            let mut per_shard = vec![0usize; n];
            for i in 0..4096u16 {
                let s = shard_of(GroupId::numbered(i), n);
                assert!(s < n, "shard {s} out of range for {n}");
                per_shard[s] += 1;
            }
            assert_eq!(per_shard.iter().sum::<usize>(), 4096, "total coverage");
            // The mixer must spread sequential allocations roughly
            // uniformly — no shard may be starved or overloaded.
            if n > 1 {
                let expect = 4096 / n;
                for (s, &c) in per_shard.iter().enumerate() {
                    assert!(
                        c > expect / 2 && c < expect * 2,
                        "shard {s}/{n} got {c} of 4096 (expected ≈{expect})"
                    );
                }
            }
        }
    }

    #[test]
    fn steering_is_stable_across_runs() {
        // Golden values: steering feeds persistent per-shard state, so
        // it may never drift between builds or hosts. If this test
        // fails, the hash function changed — that is a breaking change
        // for any deployment with in-flight sharded state.
        let golden: Vec<usize> = (0..16u16).map(|i| shard_of(GroupId::numbered(i), 4)).collect();
        assert_eq!(golden, vec![1, 0, 3, 2, 2, 0, 2, 2, 3, 1, 1, 3, 1, 0, 2, 3]);
        // And trivially: recomputing gives the same answer.
        for i in 0..512u16 {
            let g = GroupId::numbered(i);
            assert_eq!(shard_of(g, 8), shard_of(g, 8));
        }
    }

    #[test]
    fn single_shard_is_a_transparent_pass_through() {
        let (net, me) = test_net();
        let cfg = CbtConfig::fast();
        let mut plain = CbtRouter::new(
            &net,
            me,
            cfg.clone(),
            Box::new(ScriptRoutes(BTreeMap::new())),
            SimTime::ZERO,
        );
        let mut front = ShardedRouter::new(
            &net,
            me,
            CbtConfig { shards: 1, ..cfg },
            || Box::new(ScriptRoutes(BTreeMap::new())),
            SimTime::ZERO,
        );
        let host = Addr::from_octets(10, 1, 0, 77);
        let g = GroupId::numbered(9);
        let report = IgmpMessage::Report { version: 2, group: g };
        let mut t = SimTime::ZERO;
        for step in 0..200 {
            let (a, b) = (
                plain.handle_igmp(t, IfIndex(0), host, report.clone()),
                front.handle_igmp(t, IfIndex(0), host, report.clone()),
            );
            assert_eq!(a, b, "igmp actions diverge at step {step}");
            let (wa, wb) = (plain.next_wakeup(), front.next_wakeup());
            assert_eq!(wa, wb, "wakeup diverges at step {step}");
            t = wa.unwrap_or(t + cbt_netsim::SimDuration::from_secs(1));
            assert_eq!(
                plain.on_timer(t),
                front.on_timer(t),
                "timer actions diverge at step {step}"
            );
        }
        assert_eq!(plain.stats(), front.stats());
    }

    #[test]
    fn cross_shard_control_lands_on_the_right_shard() {
        // A LAN hosting members of group B must not swallow control
        // traffic for group A owned by a different shard: steering is
        // by the *message's* group, never by port or LAN state.
        let n = 4;
        let mut r = sharded(n);
        let host = Addr::from_octets(10, 1, 0, 77);
        // Two groups owned by different shards (per the golden table:
        // numbered(1) → shard 0, numbered(0) → shard 1 at n = 4).
        let ga = GroupId::numbered(1);
        let gb = GroupId::numbered(0);
        assert_ne!(r.shard_index(ga), r.shard_index(gb), "test needs distinct owners");
        // Group B becomes live on the LAN (if0): cores learned, member
        // reported — B's owner shard originates the join upstream.
        r.learn_cores(gb, &[core()]);
        r.handle_igmp(
            SimTime::ZERO,
            IfIndex(0),
            host,
            IgmpMessage::Report { version: 2, group: gb },
        );
        // A JOIN for group A arrives on the downstream link (if2) —
        // same router, same ports as B's traffic would use.
        let child = Addr::from_octets(172, 31, 0, 6);
        let join = ControlMessage::JoinRequest {
            subcode: cbt_wire::control::JoinSubcode::ActiveJoin,
            group: ga,
            origin: child,
            target_core: core(),
            cores: vec![core()],
        };
        r.handle_control(SimTime::from_micros(10_000), IfIndex(2), child, join);
        let (ka, kb) = (r.shard_index(ga), r.shard_index(gb));
        for k in 0..n {
            // Group A's join state (and its control counters) live on
            // A's shard and nowhere else — B's LAN membership on the
            // same router must not capture them.
            assert_eq!(
                r.shard(k).has_pending_join(ga),
                k == ka,
                "shard {k}: group A join state misplaced"
            );
            assert_eq!(
                r.shard(k).obs().groups.contains_key(&ga.addr().0),
                k == ka,
                "shard {k}: group A counters misplaced"
            );
            assert_eq!(
                r.shard(k).has_pending_join(gb) || r.shard(k).is_on_tree(gb),
                k == kb,
                "shard {k}: group B state misplaced"
            );
        }
    }

    #[test]
    fn general_queries_broadcast_but_emit_once() {
        let mut r = sharded(4);
        // Boot instant: every shard's election wants to send its
        // startup general query; exactly one may reach the wire.
        let act = r.on_timer(SimTime::ZERO);
        let queries = act
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    RouterAction::SendIgmp { msg: IgmpMessage::Query { group: None, .. }, .. }
                )
            })
            .count();
        assert_eq!(queries, 1, "exactly one general query on the wire");
        // A foreign general query is heard by every shard's replica.
        let rival = Addr::from_octets(10, 1, 0, 200);
        let q = IgmpMessage::Query { group: None, max_resp_tenths: 100 };
        r.handle_igmp(SimTime::from_micros(5_000), IfIndex(0), rival, q);
        for k in 0..4 {
            // The rival has a higher address than our 10.1.0.1 LAN
            // iface, so our shards keep querier duty — but each replica
            // must at least have *heard* the query identically; their
            // wakeups stay in lockstep.
            assert_eq!(
                r.shard(k).next_wakeup(),
                r.shard(0).next_wakeup(),
                "shard {k} election replica diverged"
            );
        }
    }

    /// The shard-merged snapshot equals the single-engine snapshot for
    /// the same (timer-free) event stream: joins, acks, data, leaves.
    /// Timer-driven events are deliberately absent — each shard runs
    /// its own LAN/election replica, so wheel-driven housekeeping
    /// (general queries, sweeps) legitimately fires once per shard,
    /// while every group-scoped counter lands on exactly one shard and
    /// must sum back to the unsharded totals.
    #[test]
    fn shard_merged_snapshot_matches_single_engine() {
        let (net, me) = test_net();
        let cfg = CbtConfig::default();
        let mut single = CbtRouter::new(&net, me, cfg.clone(), routes(), SimTime::ZERO);
        let mut front =
            ShardedRouter::new(&net, me, CbtConfig { shards: 4, ..cfg }, routes, SimTime::ZERO);
        let host = Addr::from_octets(10, 1, 0, 77);
        let origin = Addr::from_octets(10, 1, 0, 1);

        for i in 0..24u16 {
            let g = GroupId::numbered(i);
            let t = SimTime::from_micros(1_000 + i as u64);
            single.learn_cores(g, &[core()]);
            front.learn_cores(g, &[core()]);
            let report = IgmpMessage::Report { version: 2, group: g };
            single.handle_igmp(t, IfIndex(0), host, report.clone());
            front.handle_igmp(t, IfIndex(0), host, report);
            let ack = ControlMessage::JoinAck {
                subcode: cbt_wire::control::AckSubcode::Normal,
                group: g,
                origin,
                target_core: core(),
                cores: vec![core()],
            };
            let t2 = SimTime::from_micros(5_000 + 7 * i as u64);
            single.handle_control(t2, IfIndex(1), core(), ack.clone());
            front.handle_control(t2, IfIndex(1), core(), ack);
        }
        let mut act = Vec::new();
        for i in 0..24u16 {
            let g = GroupId::numbered(i);
            let t3 = SimTime::from_micros(50_000 + i as u64);
            let pkt = DataPacket::new(host, g, 16, vec![0u8; 8]);
            single.handle_native_data(t3, IfIndex(0), host, pkt.clone(), &mut act);
            act.clear();
            front.handle_native_data(t3, IfIndex(0), host, pkt, &mut act);
            act.clear();
        }
        for i in 0..6u16 {
            let g = GroupId::numbered(i);
            let t4 = SimTime::from_micros(90_000 + i as u64);
            let leave = IgmpMessage::Leave { group: g };
            single.handle_igmp(t4, IfIndex(0), host, leave.clone());
            front.handle_igmp(t4, IfIndex(0), host, leave);
        }

        assert_eq!(single.obs_snapshot(), front.obs_snapshot());
        assert!(front.obs_snapshot().data_forwarded >= 24, "data actually flowed");
        assert_eq!(single.stats(), front.stats());
    }

    #[test]
    fn merged_snapshot_totals_cover_all_shards() {
        let mut r = sharded(4);
        let host = Addr::from_octets(10, 1, 0, 77);
        for i in 0..32u16 {
            let g = GroupId::numbered(i);
            r.learn_cores(g, &[core()]);
            r.handle_igmp(
                SimTime::ZERO,
                IfIndex(0),
                host,
                IgmpMessage::Report { version: 2, group: g },
            );
        }
        let merged = r.obs_snapshot();
        let by_hand: usize = (0..4).map(|k| r.shard(k).obs().groups.len()).sum();
        assert_eq!(merged.groups.len(), 32, "every group visible in the merged snapshot");
        assert_eq!(by_hand, 32, "each group counted on exactly one shard");
        let stats = r.stats();
        let per_shard: u64 = (0..4).map(|k| r.shard(k).stats().joins_originated).sum();
        assert_eq!(stats.joins_originated, per_shard);
    }
}
