//! Property tests on the protocol engine: arbitrary (including
//! adversarial) control/IGMP/data inputs must never panic the engine,
//! and its structural invariants must survive any input sequence.
//!
//! This is the sans-I/O payoff: the whole router is a pure state
//! machine, so it can be fuzzed directly with no sockets or clocks.

use cbt::{CbtConfig, CbtRouter, RouteLookup};
use cbt_netsim::SimTime;
use cbt_routing::Hop;
use cbt_topology::{IfIndex, NetworkBuilder, RouterId};
use cbt_wire::{
    AckSubcode, Addr, CbtDataPacket, ControlMessage, DataPacket, GroupId, IgmpMessage, JoinSubcode,
    RpCoreReport,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

struct FixedRoutes(BTreeMap<Addr, Hop>);
impl RouteLookup for FixedRoutes {
    fn hop_toward(&self, dst: Addr) -> Option<Hop> {
        self.0.get(&dst).copied()
    }
}

fn core_a() -> Addr {
    Addr::from_octets(10, 255, 0, 77)
}

fn core_b() -> Addr {
    Addr::from_octets(10, 255, 0, 88)
}

/// 1 LAN + 2 p2p ifaces, with routes to both cores via if1.
fn engine() -> CbtRouter {
    let mut b = NetworkBuilder::new();
    let me = b.router("ME");
    let up = b.router("UP");
    let down = b.router("DOWN");
    let lan = b.lan("S0");
    b.attach(lan, me);
    b.host("H", lan);
    b.link(me, up, 1);
    b.link(me, down, 1);
    let net = b.build();
    let mut routes = BTreeMap::new();
    for c in [core_a(), core_b()] {
        routes.insert(
            c,
            Hop {
                iface: IfIndex(1),
                router: RouterId(1),
                addr: Addr::from_octets(172, 31, 0, 2),
                dist: 1,
            },
        );
    }
    CbtRouter::new(&net, me, CbtConfig::fast(), Box::new(FixedRoutes(routes)), SimTime::ZERO)
}

#[derive(Debug, Clone)]
enum Input {
    Control { iface: u8, src_last: u8, msg: ControlMessage },
    Igmp { src_last: u8, msg: IgmpMessage },
    NativeData { iface: u8, src_last: u8, ttl: u8 },
    CbtData { iface: u8, on_tree: bool, ttl: u8 },
    Tick { advance_ms: u32 },
}

fn arb_group() -> impl Strategy<Value = GroupId> {
    (0u16..4).prop_map(GroupId::numbered)
}

fn arb_addr() -> impl Strategy<Value = Addr> {
    prop_oneof![
        (1u8..=6).prop_map(|x| Addr::from_octets(172, 31, 0, x)), // link peers
        (1u8..=5).prop_map(|x| Addr::from_octets(10, 1, 0, x)),   // LAN routers
        (100u8..=103).prop_map(|x| Addr::from_octets(10, 1, 0, x)), // LAN hosts
        Just(core_a()),
        Just(core_b()),
    ]
}

fn arb_control() -> impl Strategy<Value = ControlMessage> {
    let cores = prop_oneof![
        Just(vec![core_a()]),
        Just(vec![core_a(), core_b()]),
        Just(vec![core_b(), core_a()]),
        Just(Vec::new()),
    ];
    (0u8..8, arb_group(), arb_addr(), arb_addr(), cores, 0u8..3).prop_map(
        |(which, group, origin, target, cores, sub)| match which {
            0 => ControlMessage::JoinRequest {
                subcode: match sub {
                    0 => JoinSubcode::ActiveJoin,
                    1 => JoinSubcode::RejoinActive,
                    _ => JoinSubcode::RejoinNactive,
                },
                group,
                origin,
                target_core: target,
                cores,
            },
            1 => ControlMessage::JoinAck {
                subcode: match sub {
                    0 => AckSubcode::Normal,
                    1 => AckSubcode::ProxyAck,
                    _ => AckSubcode::RejoinNactive,
                },
                group,
                origin,
                target_core: target,
                cores,
            },
            2 => ControlMessage::JoinNack { group, origin, target_core: target },
            3 => ControlMessage::QuitRequest { group, origin },
            4 => ControlMessage::QuitAck { group, origin },
            5 => ControlMessage::FlushTree { group, origin },
            6 => ControlMessage::EchoRequest { group, origin, group_mask: None },
            _ => ControlMessage::EchoReply { group, origin, group_mask: None },
        },
    )
}

fn arb_igmp() -> impl Strategy<Value = IgmpMessage> {
    (0u8..5, arb_group(), 0u8..3).prop_map(|(which, group, idx)| match which {
        0 => IgmpMessage::Query { group: None, max_resp_tenths: 20 },
        1 => IgmpMessage::Query { group: Some(group), max_resp_tenths: 10 },
        2 => IgmpMessage::Report { version: 3, group },
        3 => IgmpMessage::Leave { group },
        _ => IgmpMessage::RpCore(RpCoreReport {
            group,
            code: 1,
            target_core_index: idx.min(1),
            cores: vec![core_a(), core_b()],
        }),
    })
}

fn arb_input() -> impl Strategy<Value = Input> {
    prop_oneof![
        (0u8..3, 1u8..120, arb_control()).prop_map(|(iface, src_last, msg)| Input::Control {
            iface,
            src_last,
            msg
        }),
        (1u8..120, arb_igmp()).prop_map(|(src_last, msg)| Input::Igmp { src_last, msg }),
        (0u8..3, 1u8..120, 0u8..64).prop_map(|(iface, src_last, ttl)| Input::NativeData {
            iface,
            src_last,
            ttl
        }),
        (0u8..3, any::<bool>(), 0u8..64).prop_map(|(iface, on_tree, ttl)| Input::CbtData {
            iface,
            on_tree,
            ttl
        }),
        (1u32..5_000).prop_map(|advance_ms| Input::Tick { advance_ms }),
    ]
}

/// Drives a fresh engine through the whole input sequence, checking
/// invariants after every step.
fn drive(inputs: &[Input]) {
    let mut e = engine();
    let mut now = SimTime::ZERO;
    for input in inputs {
        match input.clone() {
            Input::Control { iface, src_last, msg } => {
                let src = Addr::from_octets(172, 31, 0, src_last);
                let _ = e.handle_control(now, IfIndex(u32::from(iface)), src, msg);
            }
            Input::Igmp { src_last, msg } => {
                let src = Addr::from_octets(10, 1, 0, src_last);
                let _ = e.handle_igmp(now, IfIndex(0), src, msg);
            }
            Input::NativeData { iface, src_last, ttl } => {
                let src = Addr::from_octets(10, 1, 0, src_last);
                let pkt = DataPacket::new(src, GroupId::numbered(1), ttl, b"x".to_vec());
                // Fuzz both honest (link_src == ip src) and spoofed
                // link senders.
                let link_src = if ttl % 2 == 0 { src } else { Addr::from_octets(172, 31, 0, 2) };
                let mut act = Vec::new();
                e.handle_native_data(now, IfIndex(u32::from(iface)), link_src, pkt, &mut act);
            }
            Input::CbtData { iface, on_tree, ttl } => {
                let native = DataPacket::new(
                    Addr::from_octets(10, 9, 0, 5),
                    GroupId::numbered(1),
                    ttl,
                    b"y".to_vec(),
                );
                let mut pkt = CbtDataPacket::encapsulate(&native, core_a());
                pkt.cbt.on_tree =
                    if on_tree { cbt_wire::header::ON_TREE } else { cbt_wire::header::OFF_TREE };
                let mut act = Vec::new();
                e.handle_cbt_data(
                    now,
                    IfIndex(u32::from(iface)),
                    Addr::from_octets(172, 31, 0, 2),
                    pkt,
                    &mut act,
                );
            }
            Input::Tick { advance_ms } => {
                now += cbt_netsim::SimDuration::from_millis(u64::from(advance_ms));
                let _ = e.on_timer(now);
            }
        }
        check_invariants(&e);
    }
}

fn check_invariants(e: &CbtRouter) {
    for (g, entry) in e.fib().iter() {
        // A router is never its own parent or child.
        if let Some(p) = entry.parent {
            assert!(!e.is_my_addr(p.addr), "{g}: self as parent");
            assert!(!entry.has_child(p.addr), "{g}: parent also a child");
        }
        assert!(entry.children.len() <= cbt::MAX_CHILDREN, "{g}: child overflow");
        // Child list has no duplicates.
        let mut addrs: Vec<Addr> = entry.children.iter().map(|c| c.addr).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), entry.children.len(), "{g}: duplicate children");
        for c in &entry.children {
            assert!(!e.is_my_addr(c.addr), "{g}: self as child");
        }
    }
    // next_wakeup, stats and accessors never panic.
    let _ = e.next_wakeup();
    let _ = e.stats();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// No sequence of inputs panics the engine or breaks FIB structure.
    #[test]
    fn engine_survives_arbitrary_inputs(inputs in proptest::collection::vec(arb_input(), 0..120)) {
        drive(&inputs);
    }

    /// Engines are deterministic state machines: the same input
    /// sequence yields identical observable state.
    #[test]
    fn engine_is_deterministic(inputs in proptest::collection::vec(arb_input(), 0..60)) {
        let run = |inputs: &[Input]| {
            let mut e = engine();
            let mut now = SimTime::ZERO;
            let mut outputs = 0usize;
            for input in inputs {
                match input.clone() {
                    Input::Control { iface, src_last, msg } => {
                        let src = Addr::from_octets(172, 31, 0, src_last);
                        outputs += e.handle_control(now, IfIndex(u32::from(iface)), src, msg).len();
                    }
                    Input::Igmp { src_last, msg } => {
                        let src = Addr::from_octets(10, 1, 0, src_last);
                        outputs += e.handle_igmp(now, IfIndex(0), src, msg).len();
                    }
                    Input::Tick { advance_ms } => {
                        now += cbt_netsim::SimDuration::from_millis(u64::from(advance_ms));
                        outputs += e.on_timer(now).len();
                    }
                    _ => {}
                }
            }
            let fib: Vec<(GroupId, Option<Addr>, usize)> = e
                .fib()
                .iter()
                .map(|(g, en)| (g, en.parent.map(|p| p.addr), en.children.len()))
                .collect();
            (outputs, fib, e.stats())
        };
        prop_assert_eq!(run(&inputs), run(&inputs));
    }
}
