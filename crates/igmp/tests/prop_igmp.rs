//! Property tests on the IGMP state machines: arbitrary message
//! sequences never panic, and the protocol invariants survive.

use cbt_igmp::{GroupPresence, HostMembership, IgmpTimers, QuerierElection};
use cbt_netsim::{SimDuration, SimTime};
use cbt_wire::{igmp::RpCoreReport, Addr, GroupId, IgmpMessage};
use proptest::prelude::*;

fn arb_group() -> impl Strategy<Value = GroupId> {
    (0u16..6).prop_map(GroupId::numbered)
}

fn arb_msg() -> impl Strategy<Value = IgmpMessage> {
    (0u8..6, arb_group(), any::<u8>()).prop_map(|(which, group, x)| match which {
        0 => IgmpMessage::Query { group: None, max_resp_tenths: x },
        1 => IgmpMessage::Query { group: Some(group), max_resp_tenths: x },
        2 => IgmpMessage::Report { version: 1 + (x % 3), group },
        3 => IgmpMessage::Leave { group },
        4 => IgmpMessage::RpCore(RpCoreReport {
            group,
            code: 1,
            target_core_index: 0,
            cores: vec![Addr::from_octets(10, 255, 0, 1)],
        }),
        _ => IgmpMessage::TreeJoined { group, core: Addr::from_octets(10, 255, 0, 1) },
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The router-side presence table survives any input stream, and
    /// `next_wakeup` never lies (polling at the advertised instant
    /// never panics and clears every due deadline).
    #[test]
    fn presence_survives_arbitrary_streams(
        steps in proptest::collection::vec((arb_msg(), 0u64..40, any::<bool>()), 0..80),
    ) {
        let mut p = GroupPresence::new(IgmpTimers::fast());
        let mut now = SimTime::ZERO;
        for (msg, advance, querier) in steps {
            now += SimDuration::from_secs(advance);
            let (_events, _sends) = p.on_igmp(&msg, now, querier);
            let _ = p.poll(now);
            // After polling at `now`, every due deadline is cleared:
            // the advertised next wakeup lies strictly in the future.
            if let Some(w) = p.next_wakeup() {
                assert!(w > now, "stale deadline survived poll: {w:?} <= {now:?}");
            }
            // Group listing is consistent with has_members.
            for g in p.groups().collect::<Vec<_>>() {
                assert!(p.has_members(g));
            }
        }
    }

    /// Presence NewGroup/GroupExpired events alternate per group: never
    /// two NewGroups without an expiry between them.
    #[test]
    fn presence_events_alternate(
        steps in proptest::collection::vec((arb_msg(), 0u64..40), 0..80),
    ) {
        use cbt_igmp::PresenceEvent;
        let mut p = GroupPresence::new(IgmpTimers::fast());
        let mut now = SimTime::ZERO;
        let mut live = std::collections::BTreeSet::new();
        let handle = |evs: Vec<PresenceEvent>, live: &mut std::collections::BTreeSet<GroupId>| {
            for ev in evs {
                match ev {
                    PresenceEvent::NewGroup { group, .. } => {
                        assert!(live.insert(group), "double NewGroup for {group}");
                    }
                    PresenceEvent::GroupExpired { group } => {
                        assert!(live.remove(&group), "expiry without presence for {group}");
                    }
                }
            }
        };
        for (msg, advance) in steps {
            now += SimDuration::from_secs(advance);
            let (evs, _) = p.on_igmp(&msg, now, true);
            handle(evs, &mut live);
            handle(p.poll(now), &mut live);
        }
    }

    /// Querier elections among any set of routers on one LAN settle on
    /// the lowest address once everyone has heard everyone.
    #[test]
    fn election_settles_on_lowest(
        count in 2usize..6,
        order in proptest::collection::vec(any::<u8>(), 1..30),
    ) {
        let addrs: Vec<Addr> =
            (0..count).map(|i| Addr::from_octets(10, 1, 0, 1 + i as u8)).collect();
        let mut elections: Vec<QuerierElection> = addrs
            .iter()
            .map(|a| QuerierElection::new(*a, IgmpTimers::fast(), SimTime::ZERO))
            .collect();
        let mut now = SimTime::ZERO;
        // Routers emit queries in an arbitrary interleaving; every
        // query is heard by everyone else.
        for pick in order {
            now += SimDuration::from_millis(100);
            let i = pick as usize % count;
            for out in elections[i].poll(now) {
                let _ = out;
                let from = addrs[i];
                for (j, e) in elections.iter_mut().enumerate() {
                    if j != i {
                        e.on_query_heard(from, now);
                    }
                }
            }
        }
        // Force the lowest to speak once so stragglers have heard it.
        now += SimDuration::from_millis(100);
        let lows = elections[0].poll(now);
        if !lows.is_empty() {
            for e in elections.iter_mut().skip(1) {
                e.on_query_heard(addrs[0], now);
            }
        }
        // Now: exactly the lowest-addressed router believes it is DR.
        assert!(elections[0].i_am_dr(now), "lowest must hold the role");
        for (j, e) in elections.iter().enumerate().skip(1) {
            // Others defer iff they have heard the lowest at least once;
            // after the forced announcement they all have.
            assert!(!e.i_am_dr(now) || j == 0, "router {j} wrongly claims DR");
        }
    }

    /// Host membership: join/leave in any order never panics and ends
    /// consistent (member iff more joins than leaves... exactly: last
    /// operation wins per group).
    #[test]
    fn host_membership_consistent(
        ops in proptest::collection::vec((arb_group(), any::<bool>()), 0..60),
        version in 1u8..=3,
    ) {
        let mut h = HostMembership::new(Addr::from_octets(10, 1, 0, 100), version, IgmpTimers::fast());
        let mut expect = std::collections::BTreeMap::new();
        for (g, join) in ops {
            if join {
                let msgs = h.join(g, vec![Addr::from_octets(10, 255, 0, 1)], 0);
                assert!(!msgs.is_empty(), "every join reports");
            } else {
                let _ = h.leave(g);
            }
            expect.insert(g, join);
        }
        for (g, member) in expect {
            assert_eq!(h.is_member(g), member, "{g}");
        }
    }
}
