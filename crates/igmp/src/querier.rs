//! Per-LAN querier election — which in CBT *is* the D-DR election.
//!
//! §2.3: at start-up a CBT router assumes it is alone, fires two or
//! three general queries in short succession, and thereafter the
//! lowest-addressed router on the LAN holds querier duty. The CBT
//! default DR (D-DR) is the querier — unless the querier is not
//! CBT-capable, in which case the D-DR is the lowest-addressed
//! CBT-capable router on the link.

use crate::{IgmpOut, IgmpTimers};
use cbt_netsim::{SimDuration, SimTime};
use cbt_wire::{Addr, IgmpMessage, ALL_SYSTEMS};
use std::collections::BTreeMap;

/// Querier election state for one LAN interface.
#[derive(Debug, Clone)]
pub struct QuerierElection {
    my_addr: Addr,
    timers: IgmpTimers,
    /// Lower-addressed querier we currently defer to, with last-heard time.
    deferring_to: Option<(Addr, SimTime)>,
    /// Start-up burst queries still owed.
    startup_left: u32,
    /// When we next send a general query (if we are querier).
    next_query: SimTime,
    /// CBT-capable routers heard on this LAN (address → CBT-capable).
    /// Fed by the CBT engine, which knows its CBT neighbours (§2.3).
    neighbours: BTreeMap<Addr, bool>,
}

impl QuerierElection {
    /// New election state for a router whose address on this LAN is
    /// `my_addr`, starting (booting) at `now`.
    pub fn new(my_addr: Addr, timers: IgmpTimers, now: SimTime) -> Self {
        QuerierElection {
            my_addr,
            timers,
            deferring_to: None,
            startup_left: timers.startup_query_count,
            next_query: now, // first start-up query immediately
            neighbours: BTreeMap::new(),
        }
    }

    /// My address on this LAN.
    pub fn my_addr(&self) -> Addr {
        self.my_addr
    }

    /// Am I currently the querier?
    pub fn is_querier(&self, now: SimTime) -> bool {
        match self.deferring_to {
            Some((_, heard)) => {
                now.since(heard) >= SimDuration::from_secs(self.timers.other_querier_timeout_s)
            }
            None => true,
        }
    }

    /// The current querier's address (mine if I hold the role).
    pub fn querier_addr(&self, now: SimTime) -> Addr {
        if self.is_querier(now) {
            self.my_addr
        } else {
            self.deferring_to.expect("not querier implies deferring").0
        }
    }

    /// Records that a general query was heard from `from`.
    ///
    /// Lowest address wins: we yield iff `from` is lower than us, and
    /// forget a recorded rival if someone even lower appears.
    pub fn on_query_heard(&mut self, from: Addr, now: SimTime) {
        if from >= self.my_addr {
            return; // they will yield when they hear us
        }
        match self.deferring_to {
            Some((cur, _)) if from <= cur => self.deferring_to = Some((from, now)),
            Some(_) => {} // higher than current rival but lower than us: current wins
            None => self.deferring_to = Some((from, now)),
        }
    }

    /// Marks a LAN neighbour's CBT capability (engine feeds this from
    /// its own neighbour knowledge).
    pub fn set_neighbour_cbt(&mut self, addr: Addr, cbt_capable: bool) {
        self.neighbours.insert(addr, cbt_capable);
    }

    /// The CBT D-DR on this LAN, per §2.3:
    ///
    /// * if the querier is CBT-capable (we always are; a remembered
    ///   rival is looked up in the neighbour table), the querier is the
    ///   D-DR;
    /// * otherwise the lowest-addressed CBT-capable router (ourselves
    ///   included) is the D-DR.
    pub fn dr_addr(&self, now: SimTime) -> Addr {
        let querier = self.querier_addr(now);
        if querier == self.my_addr || self.neighbours.get(&querier).copied().unwrap_or(true) {
            return querier;
        }
        // Querier not CBT-capable: lowest CBT-capable address wins.
        self.neighbours
            .iter()
            .filter(|(_, &cbt)| cbt)
            .map(|(&a, _)| a)
            .chain(std::iter::once(self.my_addr))
            .min()
            .expect("iterator includes self")
    }

    /// Am I the D-DR for this LAN?
    pub fn i_am_dr(&self, now: SimTime) -> bool {
        self.dr_addr(now) == self.my_addr
    }

    /// Advances time: emits any due general queries (start-up burst,
    /// then periodic while querier).
    pub fn poll(&mut self, now: SimTime) -> Vec<IgmpOut> {
        let mut out = Vec::new();
        if now < self.next_query {
            return out;
        }
        if self.startup_left > 0 {
            self.startup_left -= 1;
            out.push(self.general_query());
            self.next_query = now
                + if self.startup_left > 0 {
                    SimDuration::from_secs(self.timers.startup_query_interval_s)
                } else {
                    SimDuration::from_secs(self.timers.query_interval_s)
                };
        } else if self.is_querier(now) {
            out.push(self.general_query());
            self.next_query = now + SimDuration::from_secs(self.timers.query_interval_s);
        } else {
            // Re-check once the rival's claim would have expired.
            let (_, heard) = self.deferring_to.expect("not querier implies deferring");
            self.next_query = heard + SimDuration::from_secs(self.timers.other_querier_timeout_s);
        }
        out
    }

    /// When `poll` next wants to run.
    pub fn next_wakeup(&self) -> SimTime {
        self.next_query
    }

    fn general_query(&self) -> IgmpOut {
        IgmpOut {
            dst: ALL_SYSTEMS,
            msg: IgmpMessage::Query {
                group: None,
                max_resp_tenths: (self.timers.query_response_s * 10).min(255) as u8,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Addr {
        Addr::from_octets(10, 1, 0, n)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn elect(n: u8) -> QuerierElection {
        QuerierElection::new(addr(n), IgmpTimers::default(), SimTime::ZERO)
    }

    #[test]
    fn startup_burst_then_periodic() {
        let mut q = elect(5);
        let burst1 = q.poll(SimTime::ZERO);
        assert_eq!(burst1.len(), 1);
        assert_eq!(burst1[0].dst, ALL_SYSTEMS);
        assert!(matches!(burst1[0].msg, IgmpMessage::Query { group: None, .. }));
        // Second start-up query one second later.
        assert_eq!(q.next_wakeup(), t(1));
        assert!(q.poll(t(0)).is_empty(), "not due yet at same instant after send");
        assert_eq!(q.poll(t(1)).len(), 1);
        // Then the periodic cadence.
        assert_eq!(q.next_wakeup(), t(1 + 125));
        assert_eq!(q.poll(t(126)).len(), 1);
    }

    #[test]
    fn alone_i_am_querier_and_dr() {
        let q = elect(5);
        assert!(q.is_querier(t(0)));
        assert!(q.i_am_dr(t(0)));
        assert_eq!(q.querier_addr(t(0)), addr(5));
    }

    #[test]
    fn lower_address_takes_querier_duty() {
        let mut q = elect(5);
        q.on_query_heard(addr(3), t(2));
        assert!(!q.is_querier(t(2)));
        assert_eq!(q.querier_addr(t(2)), addr(3));
        assert!(!q.i_am_dr(t(2)), "querier (CBT-capable by default) is the D-DR");
    }

    #[test]
    fn higher_address_is_ignored() {
        let mut q = elect(5);
        q.on_query_heard(addr(9), t(2));
        assert!(q.is_querier(t(2)), "we are lower; rival will yield");
        assert!(q.poll(t(0)).len() == 1, "we keep querying");
    }

    #[test]
    fn even_lower_rival_replaces_current() {
        let mut q = elect(9);
        q.on_query_heard(addr(5), t(1));
        q.on_query_heard(addr(3), t(2));
        assert_eq!(q.querier_addr(t(2)), addr(3));
        q.on_query_heard(addr(5), t(3)); // higher than current rival: ignored
        assert_eq!(q.querier_addr(t(3)), addr(3));
    }

    #[test]
    fn querier_role_reclaimed_after_rival_silence() {
        let mut q = elect(5);
        q.on_query_heard(addr(3), t(10));
        assert!(!q.is_querier(t(100)));
        // 255 s after last hearing the rival, the role comes back.
        assert!(q.is_querier(t(10 + 255)));
        assert!(q.i_am_dr(t(10 + 255)));
    }

    #[test]
    fn refreshed_rival_keeps_role() {
        let mut q = elect(5);
        q.on_query_heard(addr(3), t(10));
        q.on_query_heard(addr(3), t(130));
        assert!(!q.is_querier(t(264)), "refresh extended the rival's claim");
        assert!(q.is_querier(t(130 + 255)));
    }

    /// §2.3: non-CBT querier ⇒ D-DR is the lowest-addressed CBT router.
    #[test]
    fn non_cbt_querier_shifts_dr_to_lowest_cbt_router() {
        let mut q = elect(5);
        q.set_neighbour_cbt(addr(2), false); // the querier-to-be is not CBT
        q.set_neighbour_cbt(addr(4), true);
        q.on_query_heard(addr(2), t(1));
        assert_eq!(q.querier_addr(t(1)), addr(2), "IGMP role still theirs");
        assert_eq!(q.dr_addr(t(1)), addr(4), "CBT D-DR is lowest CBT router");
        assert!(!q.i_am_dr(t(1)));
        // If address 4 were not CBT-capable, we (5) would be D-DR.
        q.set_neighbour_cbt(addr(4), false);
        assert_eq!(q.dr_addr(t(1)), addr(5));
        assert!(q.i_am_dr(t(1)));
    }

    #[test]
    fn yielding_stops_periodic_queries() {
        let mut q = elect(5);
        q.poll(t(0));
        q.poll(t(1)); // burst done
        q.on_query_heard(addr(3), t(2));
        assert!(q.poll(t(126)).is_empty(), "deferring: no query");
        // But once the rival goes silent long enough, queries resume.
        let wake = q.next_wakeup();
        assert_eq!(wake, t(2 + 255));
        assert_eq!(q.poll(wake).len(), 1);
    }
}
