//! Router-side group presence per LAN: the table behind "directly
//! connected subnets with group member presence" that the CBT engine
//! consults for joining (§2.5), forwarding (§5) and quitting (§2.7,
//! IFF-SCAN).

use crate::{IgmpOut, IgmpTimers};
use cbt_netsim::{SimDuration, SimTime};
use cbt_wire::{Addr, GroupId, IgmpMessage, RpCoreReport};
use std::collections::{BTreeMap, BTreeSet};

/// Something the presence table wants the CBT engine to know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PresenceEvent {
    /// First report for a group not previously heard from on this LAN —
    /// the trigger for the DR's JOIN_REQUEST (§2.5), together with the
    /// core list most recently learned from an RP/Core-Report.
    NewGroup {
        /// The group.
        group: GroupId,
        /// Ordered core list (primary first) if an RP/Core-Report
        /// supplied one; empty if only plain reports were heard (§2.4
        /// v1/v2 hosts — the engine falls back to managed mappings).
        cores: Vec<Addr>,
        /// Index of the core a join should target first.
        target_core_index: usize,
    },
    /// Membership for the group has lapsed on this LAN (leave confirmed
    /// by an unanswered group-specific query, or reports expired).
    GroupExpired {
        /// The group.
        group: GroupId,
    },
}

#[derive(Debug, Clone)]
struct GroupState {
    expires: SimTime,
    /// Outstanding leave-triggered group-specific query deadline.
    leave_deadline: Option<SimTime>,
    /// Latest core list from an RP/Core-Report.
    cores: Vec<Addr>,
    target_core_index: usize,
}

/// A group's next service instant: the leave-query window if one is
/// open (it is always at or before the membership expiry), else the
/// membership expiry itself.
fn deadline_of(s: &GroupState) -> SimTime {
    s.leave_deadline.map_or(s.expires, |d| d.min(s.expires))
}

/// Membership presence for one LAN interface of one router.
#[derive(Debug, Clone)]
pub struct GroupPresence {
    timers: IgmpTimers,
    groups: BTreeMap<GroupId, GroupState>,
    /// Core lists learned from RP/Core-Reports *before* the matching
    /// membership report arrived (the spec allows either order).
    pending_cores: BTreeMap<GroupId, (Vec<Addr>, usize)>,
    /// `(deadline, group)` — exactly one tuple per tracked group, kept
    /// in lock-step with every deadline mutation, so `poll` pops due
    /// groups and `next_wakeup` peeks the head instead of scanning.
    deadlines: BTreeSet<(SimTime, GroupId)>,
}

impl GroupPresence {
    /// Empty table.
    pub fn new(timers: IgmpTimers) -> Self {
        GroupPresence {
            timers,
            groups: BTreeMap::new(),
            pending_cores: BTreeMap::new(),
            deadlines: BTreeSet::new(),
        }
    }

    /// Does this LAN currently have members of `group`?
    pub fn has_members(&self, group: GroupId) -> bool {
        self.groups.contains_key(&group)
    }

    /// All groups with current presence.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.groups.keys().copied()
    }

    /// Latest core list known for a group (from RP/Core-Reports).
    pub fn cores_for(&self, group: GroupId) -> Option<(&[Addr], usize)> {
        self.groups.get(&group).and_then(|s| {
            (!s.cores.is_empty()).then_some((s.cores.as_slice(), s.target_core_index))
        })
    }

    /// Feeds one received IGMP message. Returns protocol events and any
    /// messages to send (the leave-triggered group-specific query, sent
    /// only if `i_am_querier`).
    pub fn on_igmp(
        &mut self,
        msg: &IgmpMessage,
        now: SimTime,
        i_am_querier: bool,
    ) -> (Vec<PresenceEvent>, Vec<IgmpOut>) {
        let mut events = Vec::new();
        let mut sends = Vec::new();
        match msg {
            IgmpMessage::Report { group, .. } => {
                let expires = now + SimDuration::from_secs(self.timers.membership_timeout_s);
                match self.groups.get_mut(group) {
                    Some(state) => {
                        let old = deadline_of(state);
                        state.expires = expires;
                        // A report during a leave-query window cancels
                        // the pending expiry: members remain.
                        state.leave_deadline = None;
                        self.deadlines.remove(&(old, *group));
                        self.deadlines.insert((expires, *group));
                    }
                    None => {
                        let (cores, idx) =
                            self.pending_cores.remove(group).unwrap_or((Vec::new(), 0));
                        self.groups.insert(
                            *group,
                            GroupState {
                                expires,
                                leave_deadline: None,
                                cores: cores.clone(),
                                target_core_index: idx,
                            },
                        );
                        self.deadlines.insert((expires, *group));
                        events.push(PresenceEvent::NewGroup {
                            group: *group,
                            cores,
                            target_core_index: idx,
                        });
                    }
                }
            }
            IgmpMessage::RpCore(RpCoreReport { group, cores, target_core_index, .. }) => {
                match self.groups.get_mut(group) {
                    Some(state) => {
                        state.cores = cores.clone();
                        state.target_core_index = *target_core_index as usize;
                    }
                    None => {
                        self.pending_cores
                            .insert(*group, (cores.clone(), *target_core_index as usize));
                    }
                }
            }
            IgmpMessage::Leave { group } => {
                // §2.7: the querier responds with a group-specific query;
                // if no host answers within the response interval the
                // group is gone from this subnet. Every router on the
                // LAN arms the response window (leaves are multicast to
                // all-routers), but only the querier asks the question —
                // that is how the G-DR (which may not be the querier,
                // §2.6) learns to quit promptly.
                if let Some(state) = self.groups.get_mut(group) {
                    let old = deadline_of(state);
                    state.leave_deadline =
                        Some(now + SimDuration::from_secs(self.timers.last_member_query_s));
                    let new = deadline_of(state);
                    self.deadlines.remove(&(old, *group));
                    self.deadlines.insert((new, *group));
                    if i_am_querier {
                        sends.push(IgmpOut {
                            dst: group.addr(),
                            msg: IgmpMessage::Query {
                                group: Some(*group),
                                max_resp_tenths: (self.timers.last_member_query_s * 10).min(255)
                                    as u8,
                            },
                        });
                    }
                }
            }
            _ => {}
        }
        (events, sends)
    }

    /// Advances time: expires lapsed memberships and resolves
    /// unanswered leave queries. O(due groups), not O(tracked groups):
    /// pops the head of the deadline index. Events come out in group
    /// order (the order the old full-scan produced).
    pub fn poll(&mut self, now: SimTime) -> Vec<PresenceEvent> {
        let mut due: Vec<GroupId> = Vec::new();
        while let Some(&(t, g)) = self.deadlines.first() {
            if t > now {
                break;
            }
            self.deadlines.remove(&(t, g));
            due.push(g);
        }
        due.sort_unstable();
        let mut events = Vec::new();
        for g in due {
            self.groups.remove(&g);
            events.push(PresenceEvent::GroupExpired { group: g });
        }
        events
    }

    /// Earliest instant `poll` would do something: the index head.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.deadlines.first().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u16) -> GroupId {
        GroupId::numbered(n)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn report(n: u16) -> IgmpMessage {
        IgmpMessage::Report { version: 3, group: g(n) }
    }

    fn cores() -> Vec<Addr> {
        vec![Addr::from_octets(10, 255, 0, 3), Addr::from_octets(10, 255, 0, 8)]
    }

    fn rp_core(n: u16) -> IgmpMessage {
        IgmpMessage::RpCore(RpCoreReport {
            group: g(n),
            code: cbt_wire::igmp::RP_CORE_CODE_CBT,
            target_core_index: 1,
            cores: cores(),
        })
    }

    #[test]
    fn first_report_yields_new_group_event() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        let (ev, sends) = p.on_igmp(&report(1), t(0), true);
        assert_eq!(
            ev,
            vec![PresenceEvent::NewGroup { group: g(1), cores: vec![], target_core_index: 0 }]
        );
        assert!(sends.is_empty());
        assert!(p.has_members(g(1)));
        // A second report refreshes without a new event.
        let (ev, _) = p.on_igmp(&report(1), t(5), true);
        assert!(ev.is_empty());
    }

    #[test]
    fn rp_core_before_report_supplies_core_list() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        let (ev, _) = p.on_igmp(&rp_core(1), t(0), true);
        assert!(ev.is_empty(), "core report alone is not membership");
        let (ev, _) = p.on_igmp(&report(1), t(0), true);
        assert_eq!(
            ev,
            vec![PresenceEvent::NewGroup { group: g(1), cores: cores(), target_core_index: 1 }]
        );
        assert_eq!(p.cores_for(g(1)), Some((cores().as_slice(), 1)));
    }

    #[test]
    fn rp_core_after_report_updates_core_list() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        p.on_igmp(&report(1), t(0), true);
        assert_eq!(p.cores_for(g(1)), None);
        p.on_igmp(&rp_core(1), t(1), true);
        assert_eq!(p.cores_for(g(1)), Some((cores().as_slice(), 1)));
    }

    #[test]
    fn leave_triggers_group_specific_query_from_querier_only() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        p.on_igmp(&report(1), t(0), true);
        let (_, sends) = p.on_igmp(&IgmpMessage::Leave { group: g(1) }, t(10), false);
        assert!(sends.is_empty(), "non-querier stays silent");
        let (_, sends) = p.on_igmp(&IgmpMessage::Leave { group: g(1) }, t(10), true);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].dst, g(1).addr(), "group-specific query goes to the group");
        assert!(matches!(sends[0].msg, IgmpMessage::Query { group: Some(grp), .. } if grp == g(1)));
    }

    #[test]
    fn unanswered_leave_query_expires_group() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        p.on_igmp(&report(1), t(0), true);
        p.on_igmp(&IgmpMessage::Leave { group: g(1) }, t(10), true);
        assert!(p.poll(t(10)).is_empty(), "response interval still open");
        let ev = p.poll(t(11));
        assert_eq!(ev, vec![PresenceEvent::GroupExpired { group: g(1) }]);
        assert!(!p.has_members(g(1)));
    }

    #[test]
    fn answered_leave_query_keeps_group() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        p.on_igmp(&report(1), t(0), true);
        p.on_igmp(&IgmpMessage::Leave { group: g(1) }, t(10), true);
        // Another member answers the group-specific query in time.
        p.on_igmp(&report(1), t(10), true);
        assert!(p.poll(t(12)).is_empty());
        assert!(p.has_members(g(1)));
    }

    #[test]
    fn silence_expires_membership() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        p.on_igmp(&report(1), t(0), true);
        assert!(p.poll(t(259)).is_empty());
        let ev = p.poll(t(260));
        assert_eq!(ev, vec![PresenceEvent::GroupExpired { group: g(1) }]);
    }

    #[test]
    fn next_wakeup_tracks_earliest_deadline() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        assert_eq!(p.next_wakeup(), None);
        p.on_igmp(&report(1), t(0), true);
        assert_eq!(p.next_wakeup(), Some(t(260)));
        p.on_igmp(&report(2), t(5), true);
        p.on_igmp(&IgmpMessage::Leave { group: g(2) }, t(6), true);
        assert_eq!(p.next_wakeup(), Some(t(7)), "leave query deadline is earliest");
    }

    #[test]
    fn deadline_index_survives_refresh_and_cancelled_leave() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        p.on_igmp(&report(1), t(0), true);
        assert_eq!(p.next_wakeup(), Some(t(260)));
        // A refresh re-files the single deadline tuple, not a second one.
        p.on_igmp(&report(1), t(50), true);
        assert_eq!(p.next_wakeup(), Some(t(310)));
        assert!(p.poll(t(260)).is_empty(), "stale pre-refresh deadline must be gone");
        // A leave opens the query window; an answering report closes it
        // and restores the plain membership expiry.
        p.on_igmp(&IgmpMessage::Leave { group: g(1) }, t(261), true);
        assert_eq!(p.next_wakeup(), Some(t(262)));
        p.on_igmp(&report(1), t(261), true);
        assert_eq!(p.next_wakeup(), Some(t(521)));
        assert!(p.poll(t(262)).is_empty(), "answered leave window must not fire");
        assert_eq!(p.poll(t(521)), vec![PresenceEvent::GroupExpired { group: g(1) }]);
        assert_eq!(p.next_wakeup(), None, "index drains with the table");
    }

    #[test]
    fn leave_for_unknown_group_is_ignored() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        let (ev, sends) = p.on_igmp(&IgmpMessage::Leave { group: g(9) }, t(0), true);
        assert!(ev.is_empty());
        assert!(sends.is_empty());
    }

    #[test]
    fn multiple_groups_tracked_independently() {
        let mut p = GroupPresence::new(IgmpTimers::default());
        p.on_igmp(&report(1), t(0), true);
        p.on_igmp(&report(2), t(100), true);
        let ev = p.poll(t(260));
        assert_eq!(ev, vec![PresenceEvent::GroupExpired { group: g(1) }]);
        assert!(p.has_members(g(2)));
        assert_eq!(p.groups().collect::<Vec<_>>(), vec![g(2)]);
    }
}
