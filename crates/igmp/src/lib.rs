//! # cbt-igmp — group membership machinery on LANs
//!
//! CBT trees start and end at LANs: a host's IGMP report is what
//! triggers a DR's JOIN_REQUEST (§2.5), a host's leave is what triggers
//! the QUIT path (§2.7), and the IGMP *querier election* doubles as the
//! CBT default-DR election (§2.3: "the CBT DEFAULT DR is always the
//! subnet's IGMP-querier ... there is no protocol overhead whatsoever
//! associated with electing the CBT D-DR").
//!
//! Three state machines, all sans-I/O (they consume decoded
//! [`cbt_wire::IgmpMessage`]s plus time, and emit messages to send):
//!
//! * [`querier::QuerierElection`] — per-LAN lowest-address-wins querier
//!   election, including the §2.3 rule for LANs whose querier is not
//!   CBT-capable;
//! * [`presence::GroupPresence`] — the router-side per-LAN membership
//!   table with report refresh, leave-triggered group-specific queries
//!   and expiry (this feeds the engine's join/quit decisions);
//! * [`host::HostMembership`] — the host side: unsolicited reports +
//!   RP/Core-Reports on join (IGMPv3 per §1), query-answering with
//!   deterministic response delays and v1/v2 report suppression, leave
//!   on departure (§2.4 back-compat: v1 hosts leave silently).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host;
pub mod presence;
pub mod querier;

pub use host::HostMembership;
pub use presence::{GroupPresence, PresenceEvent};
pub use querier::QuerierElection;

use cbt_wire::{Addr, IgmpMessage};

/// An IGMP message to put on the LAN, with its destination address
/// (reports go to the group itself, queries to all-systems, leaves to
/// all-routers — the caller wraps it in IP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IgmpOut {
    /// Destination address for the IP header.
    pub dst: Addr,
    /// The message.
    pub msg: IgmpMessage,
}

/// Protocol timing constants (IGMPv2 defaults; §9-style, configurable).
#[derive(Debug, Clone, Copy)]
pub struct IgmpTimers {
    /// Interval between general queries from the querier (125 s).
    pub query_interval_s: u64,
    /// Max response time advertised in general queries (10 s).
    pub query_response_s: u64,
    /// How long membership lives without a report
    /// (robustness × interval + response, ≈ 260 s; we use 2×125+10).
    pub membership_timeout_s: u64,
    /// Max response time in group-specific (leave-triggered) queries (1 s).
    pub last_member_query_s: u64,
    /// Number of rapid queries at router start-up (§2.3: "two or three").
    pub startup_query_count: u32,
    /// Spacing of those start-up queries (1 s).
    pub startup_query_interval_s: u64,
    /// How long after last hearing a rival querier before reclaiming
    /// the role (other-querier-present interval, 255 s).
    pub other_querier_timeout_s: u64,
}

impl Default for IgmpTimers {
    fn default() -> Self {
        IgmpTimers {
            query_interval_s: 125,
            query_response_s: 10,
            membership_timeout_s: 260,
            last_member_query_s: 1,
            startup_query_count: 2,
            startup_query_interval_s: 1,
            other_querier_timeout_s: 255,
        }
    }
}

impl IgmpTimers {
    /// Compressed timers for simulations that shouldn't wait minutes of
    /// virtual time (ratios preserved).
    pub fn fast() -> Self {
        IgmpTimers {
            query_interval_s: 10,
            query_response_s: 2,
            membership_timeout_s: 22,
            last_member_query_s: 1,
            startup_query_count: 2,
            startup_query_interval_s: 1,
            other_querier_timeout_s: 21,
        }
    }
}
