//! Host-side IGMP: what an end-system's IP stack does for the
//! multicast applications running on it.
//!
//! §2.2: invoking a multicast application makes the host emit an IGMP
//! RP/Core-Report and a group membership report, both multicast to the
//! group. §2.4: v1/v2 hosts cannot send RP/Core-Reports (their DR needs
//! managed `<core, group>` mappings); v1 hosts cannot even send leaves.

use crate::{IgmpOut, IgmpTimers};
use cbt_netsim::{SimDuration, SimTime};
use cbt_wire::{igmp::RP_CORE_CODE_CBT, Addr, GroupId, IgmpMessage, RpCoreReport, ALL_ROUTERS};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Membership {
    cores: Vec<Addr>,
    target_core_index: u8,
    /// A query obliges us to report by this deadline (unless another
    /// host's report suppresses ours first).
    report_due: Option<SimTime>,
}

/// IGMP state of one host on one LAN.
#[derive(Debug, Clone)]
pub struct HostMembership {
    my_addr: Addr,
    /// Which IGMP generation this host speaks (1, 2 or 3).
    version: u8,
    timers: IgmpTimers,
    groups: BTreeMap<GroupId, Membership>,
}

impl HostMembership {
    /// A host at `my_addr` speaking IGMP `version` (1..=3).
    pub fn new(my_addr: Addr, version: u8, timers: IgmpTimers) -> Self {
        assert!((1..=3).contains(&version), "IGMP version must be 1..=3");
        HostMembership { my_addr, version, timers, groups: BTreeMap::new() }
    }

    /// The host's address.
    pub fn my_addr(&self) -> Addr {
        self.my_addr
    }

    /// Groups currently joined.
    pub fn joined(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.groups.keys().copied()
    }

    /// Is the host a member of `group`?
    pub fn is_member(&self, group: GroupId) -> bool {
        self.groups.contains_key(&group)
    }

    /// Joins a group: returns the unsolicited report(s) to send — a
    /// membership report, preceded (for v3 hosts with known cores) by
    /// the RP/Core-Report carrying the ordered core list (§2.2).
    pub fn join(
        &mut self,
        group: GroupId,
        cores: Vec<Addr>,
        target_core_index: u8,
    ) -> Vec<IgmpOut> {
        let mut out = Vec::new();
        if self.version >= 3 && !cores.is_empty() {
            out.push(IgmpOut {
                dst: group.addr(),
                msg: IgmpMessage::RpCore(RpCoreReport {
                    group,
                    code: RP_CORE_CODE_CBT,
                    target_core_index,
                    cores: cores.clone(),
                }),
            });
        }
        out.push(IgmpOut {
            dst: group.addr(),
            msg: IgmpMessage::Report { version: self.version, group },
        });
        self.groups.insert(group, Membership { cores, target_core_index, report_due: None });
        out
    }

    /// Leaves a group: v2+ hosts send a leave to all-routers (§2.7);
    /// v1 hosts go silent and let membership time out (§2.4).
    pub fn leave(&mut self, group: GroupId) -> Vec<IgmpOut> {
        if self.groups.remove(&group).is_none() {
            return Vec::new();
        }
        if self.version >= 2 {
            vec![IgmpOut { dst: ALL_ROUTERS, msg: IgmpMessage::Leave { group } }]
        } else {
            Vec::new()
        }
    }

    /// Handles a heard IGMP message (queries oblige future reports;
    /// another member's report suppresses ours).
    pub fn on_igmp(&mut self, msg: &IgmpMessage, now: SimTime) {
        match msg {
            IgmpMessage::Query { group, max_resp_tenths } => {
                let horizon = SimDuration::from_millis(u64::from(*max_resp_tenths) * 100);
                match group {
                    Some(queried) => {
                        let due = now + self.response_delay(*queried, horizon);
                        if let Some(m) = self.groups.get_mut(queried) {
                            m.report_due = Some(m.report_due.map_or(due, |d| d.min(due)));
                        }
                    }
                    None => {
                        // General query: every joined group owes a report.
                        let keys: Vec<GroupId> = self.groups.keys().copied().collect();
                        for g in keys {
                            let due = now + self.response_delay(g, horizon);
                            let m = self.groups.get_mut(&g).expect("key just listed");
                            m.report_due = Some(m.report_due.map_or(due, |d| d.min(due)));
                        }
                    }
                }
            }
            IgmpMessage::Report { group, .. } => {
                // Suppression: someone else reported this group on the
                // LAN, so the routers already know. (v3 proper does not
                // suppress, but per-LAN presence is all CBT needs, and
                // suppression keeps simulated LANs quiet.)
                if let Some(m) = self.groups.get_mut(group) {
                    m.report_due = None;
                }
            }
            _ => {}
        }
    }

    /// Emits any reports that have come due.
    pub fn poll(&mut self, now: SimTime) -> Vec<IgmpOut> {
        let mut out = Vec::new();
        for (g, m) in self.groups.iter_mut() {
            if m.report_due.is_some_and(|d| d <= now) {
                m.report_due = None;
                if self.version >= 3 && !m.cores.is_empty() {
                    out.push(IgmpOut {
                        dst: g.addr(),
                        msg: IgmpMessage::RpCore(RpCoreReport {
                            group: *g,
                            code: RP_CORE_CODE_CBT,
                            target_core_index: m.target_core_index,
                            cores: m.cores.clone(),
                        }),
                    });
                }
                out.push(IgmpOut {
                    dst: g.addr(),
                    msg: IgmpMessage::Report { version: self.version, group: *g },
                });
            }
        }
        out
    }

    /// Earliest pending report deadline.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.groups.values().filter_map(|m| m.report_due).min()
    }

    /// Deterministic stand-in for the random response delay: a hash of
    /// (host address, group) folded into the advertised window, so runs
    /// replay identically while different hosts still spread out.
    fn response_delay(&self, group: GroupId, horizon: SimDuration) -> SimDuration {
        let h = self
            .my_addr
            .0
            .wrapping_mul(2654435761)
            .wrapping_add(group.addr().0.wrapping_mul(40503));
        let window = horizon.micros().max(1);
        SimDuration::from_micros(u64::from(h) % window)
    }

    /// Timers in force (exposed for harnesses).
    pub fn timers(&self) -> IgmpTimers {
        self.timers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u16) -> GroupId {
        GroupId::numbered(n)
    }

    fn cores() -> Vec<Addr> {
        vec![Addr::from_octets(10, 255, 0, 3), Addr::from_octets(10, 255, 0, 8)]
    }

    fn host(version: u8) -> HostMembership {
        HostMembership::new(Addr::from_octets(10, 1, 0, 100), version, IgmpTimers::default())
    }

    #[test]
    fn v3_join_emits_rp_core_then_report_to_the_group() {
        let mut h = host(3);
        let out = h.join(g(1), cores(), 1);
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0].msg, IgmpMessage::RpCore(r)
            if r.cores == cores() && r.target_core_index == 1 && r.code == RP_CORE_CODE_CBT));
        assert!(matches!(&out[1].msg, IgmpMessage::Report { version: 3, group } if *group == g(1)));
        assert_eq!(out[0].dst, g(1).addr(), "both multicast to the group (§2.2)");
        assert_eq!(out[1].dst, g(1).addr());
        assert!(h.is_member(g(1)));
    }

    #[test]
    fn v2_join_has_no_rp_core_report() {
        let mut h = host(2);
        let out = h.join(g(1), cores(), 0);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0].msg, IgmpMessage::Report { version: 2, .. }));
    }

    #[test]
    fn v3_join_without_cores_skips_rp_core() {
        let mut h = host(3);
        let out = h.join(g(1), vec![], 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn leave_behaviour_by_version() {
        for (version, expect_leave) in [(1u8, false), (2, true), (3, true)] {
            let mut h = host(version);
            h.join(g(1), if version >= 3 { cores() } else { vec![] }, 0);
            let out = h.leave(g(1));
            assert_eq!(!out.is_empty(), expect_leave, "v{version}");
            if expect_leave {
                assert_eq!(out[0].dst, ALL_ROUTERS);
                assert!(matches!(out[0].msg, IgmpMessage::Leave { group } if group == g(1)));
            }
            assert!(!h.is_member(g(1)));
        }
    }

    #[test]
    fn leave_of_unjoined_group_is_silent() {
        let mut h = host(2);
        assert!(h.leave(g(7)).is_empty());
    }

    #[test]
    fn general_query_schedules_reports_within_window() {
        let mut h = host(3);
        h.join(g(1), cores(), 0);
        h.join(g(2), cores(), 0);
        let now = SimTime::from_secs(100);
        h.on_igmp(&IgmpMessage::Query { group: None, max_resp_tenths: 100 }, now);
        let due = h.next_wakeup().unwrap();
        assert!(due >= now && due <= now + SimDuration::from_secs(10));
        // Nothing fires before the deadline...
        assert!(h.poll(now).is_empty() || due == now);
        // ...and everything fires by the end of the window.
        let out = h.poll(now + SimDuration::from_secs(10));
        let reports = out.iter().filter(|o| matches!(o.msg, IgmpMessage::Report { .. })).count();
        assert_eq!(reports, 2);
    }

    #[test]
    fn group_specific_query_touches_only_that_group() {
        let mut h = host(3);
        h.join(g(1), cores(), 0);
        h.join(g(2), cores(), 0);
        let now = SimTime::from_secs(5);
        h.on_igmp(&IgmpMessage::Query { group: Some(g(2)), max_resp_tenths: 10 }, now);
        let out = h.poll(now + SimDuration::from_secs(1));
        assert!(out
            .iter()
            .all(|o| matches!(o.msg, IgmpMessage::Report { group, .. } if group == g(2))
                || matches!(&o.msg, IgmpMessage::RpCore(r) if r.group == g(2))));
        assert!(!out.is_empty());
    }

    #[test]
    fn anothers_report_suppresses_ours() {
        let mut h = host(2);
        h.join(g(1), vec![], 0);
        let now = SimTime::from_secs(5);
        h.on_igmp(&IgmpMessage::Query { group: None, max_resp_tenths: 100 }, now);
        assert!(h.next_wakeup().is_some());
        h.on_igmp(&IgmpMessage::Report { version: 2, group: g(1) }, now);
        assert_eq!(h.next_wakeup(), None, "suppressed");
        assert!(h.poll(now + SimDuration::from_secs(10)).is_empty());
    }

    #[test]
    fn response_delays_differ_across_hosts() {
        let mk = |last: u8| {
            HostMembership::new(Addr::from_octets(10, 1, 0, last), 2, IgmpTimers::default())
        };
        let d1 = mk(100).response_delay(g(1), SimDuration::from_secs(10));
        let d2 = mk(101).response_delay(g(1), SimDuration::from_secs(10));
        assert_ne!(d1, d2, "hosts spread their responses");
        // And the delay is deterministic per host.
        assert_eq!(d1, mk(100).response_delay(g(1), SimDuration::from_secs(10)));
    }

    #[test]
    fn query_for_unjoined_group_is_ignored() {
        let mut h = host(3);
        h.on_igmp(&IgmpMessage::Query { group: Some(g(9)), max_resp_tenths: 10 }, SimTime::ZERO);
        assert_eq!(h.next_wakeup(), None);
    }

    #[test]
    #[should_panic(expected = "version")]
    fn bad_version_rejected() {
        HostMembership::new(Addr::NULL, 4, IgmpTimers::default());
    }
}
