//! Impl-2 bench: per-packet forward cost through the engine under an
//! allocation-counting global allocator.
//!
//! The data-plane refactor's claim is not just "faster" but "no heap
//! traffic": with a warmed action buffer, refcounted payload handles
//! and the engine's scratch collections, the steady-state forward path
//! must perform **zero** heap allocations per packet. This bench
//! wraps the system allocator in a counter and *asserts* that claim
//! for the three hot paths (native transit, native local-origin
//! fan-out, CBT-mode on-tree transit) before timing them; the one
//! path that legitimately allocates — first-hop §5.1 encapsulation,
//! which must materialize the encapsulated datagram — is reported as
//! allocations/packet instead.

use cbt::{config::ForwardingMode, CbtConfig, CbtRouter, RouterAction, ShardedRouter};
use cbt_netsim::SimTime;
use cbt_routing::Hop;
use cbt_topology::{IfIndex, NetworkBuilder, RouterId};
use cbt_wire::header::ON_TREE;
use cbt_wire::{AckSubcode, Addr, CbtDataPacket, ControlMessage, DataPacket, GroupId, JoinSubcode};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped in an allocation counter. Counts every
/// heap acquisition (alloc, alloc_zeroed, realloc); frees are not
/// interesting for the steady-state claim.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

struct FixedRoutes(BTreeMap<Addr, Hop>);
impl cbt::RouteLookup for FixedRoutes {
    fn hop_toward(&self, dst: Addr) -> Option<Hop> {
        self.0.get(&dst).copied()
    }
}

fn group() -> GroupId {
    GroupId::numbered(1)
}

fn core() -> Addr {
    Addr::from_octets(10, 255, 0, 9)
}

fn parent_addr() -> Addr {
    Addr::from_octets(172, 31, 0, 2)
}

/// An on-tree router: member LAN on if0, parent via if1, child via if2
/// — the same shape `forwarding_modes` uses.
fn on_tree_engine(mode: ForwardingMode) -> CbtRouter {
    let mut b = NetworkBuilder::new();
    let me = b.router("ME");
    let up = b.router("UP");
    let down = b.router("DOWN");
    let lan = b.lan("S0");
    b.attach(lan, me);
    b.host("H", lan);
    b.link(me, up, 1);
    b.link(me, down, 1);
    let net = b.build();
    let mut routes = BTreeMap::new();
    routes.insert(
        core(),
        Hop { iface: IfIndex(1), router: RouterId(1), addr: parent_addr(), dist: 1 },
    );
    let mut e = CbtRouter::new(
        &net,
        me,
        CbtConfig::default().with_mode(mode),
        Box::new(FixedRoutes(routes)),
        SimTime::ZERO,
    );
    e.handle_igmp(
        SimTime::ZERO,
        IfIndex(0),
        Addr::from_octets(10, 1, 0, 100),
        cbt_wire::IgmpMessage::RpCore(cbt_wire::RpCoreReport {
            group: group(),
            code: cbt_wire::igmp::RP_CORE_CODE_CBT,
            target_core_index: 0,
            cores: vec![core()],
        }),
    );
    e.handle_igmp(
        SimTime::ZERO,
        IfIndex(0),
        Addr::from_octets(10, 1, 0, 100),
        cbt_wire::IgmpMessage::Report { version: 3, group: group() },
    );
    e.handle_control(
        SimTime::from_secs(1),
        IfIndex(1),
        parent_addr(),
        ControlMessage::JoinAck {
            subcode: AckSubcode::Normal,
            group: group(),
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: core(),
            cores: vec![core()],
        },
    );
    e.handle_control(
        SimTime::from_secs(1),
        IfIndex(2),
        Addr::from_octets(172, 31, 0, 6),
        ControlMessage::JoinRequest {
            subcode: JoinSubcode::ActiveJoin,
            group: group(),
            origin: Addr::from_octets(10, 9, 0, 1),
            target_core: core(),
            cores: vec![core()],
        },
    );
    assert!(e.is_on_tree(group()));
    e
}

/// The same on-tree shape fronted by a 4-way [`ShardedRouter`]: the
/// packet passes shard steering (`shard_for_mut`) before the engine,
/// so the zero-allocation claim covers the sharded forward path too.
fn on_tree_sharded(mode: ForwardingMode) -> ShardedRouter {
    let mut b = NetworkBuilder::new();
    let me = b.router("ME");
    let up = b.router("UP");
    let down = b.router("DOWN");
    let lan = b.lan("S0");
    b.attach(lan, me);
    b.host("H", lan);
    b.link(me, up, 1);
    b.link(me, down, 1);
    let net = b.build();
    let cfg = CbtConfig { shards: 4, ..CbtConfig::default().with_mode(mode) };
    let mut e = ShardedRouter::new(
        &net,
        me,
        cfg,
        || {
            let mut routes = BTreeMap::new();
            routes.insert(
                core(),
                Hop { iface: IfIndex(1), router: RouterId(1), addr: parent_addr(), dist: 1 },
            );
            Box::new(FixedRoutes(routes))
        },
        SimTime::ZERO,
    );
    e.handle_igmp(
        SimTime::ZERO,
        IfIndex(0),
        Addr::from_octets(10, 1, 0, 100),
        cbt_wire::IgmpMessage::RpCore(cbt_wire::RpCoreReport {
            group: group(),
            code: cbt_wire::igmp::RP_CORE_CODE_CBT,
            target_core_index: 0,
            cores: vec![core()],
        }),
    );
    e.handle_igmp(
        SimTime::ZERO,
        IfIndex(0),
        Addr::from_octets(10, 1, 0, 100),
        cbt_wire::IgmpMessage::Report { version: 3, group: group() },
    );
    e.handle_control(
        SimTime::from_secs(1),
        IfIndex(1),
        parent_addr(),
        ControlMessage::JoinAck {
            subcode: AckSubcode::Normal,
            group: group(),
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: core(),
            cores: vec![core()],
        },
    );
    e.handle_control(
        SimTime::from_secs(1),
        IfIndex(2),
        Addr::from_octets(172, 31, 0, 6),
        ControlMessage::JoinRequest {
            subcode: JoinSubcode::ActiveJoin,
            group: group(),
            origin: Addr::from_octets(10, 9, 0, 1),
            target_core: core(),
            cores: vec![core()],
        },
    );
    assert!(e.is_on_tree(group()));
    e
}

/// Warms `f` (growing every scratch buffer and memo to capacity), then
/// measures the allocation count across `iters` further calls and
/// returns allocations per call.
fn steady_state_allocs(mut f: impl FnMut(), iters: u64) -> f64 {
    for _ in 0..1_000 {
        f();
    }
    let before = allocs();
    for _ in 0..iters {
        f();
    }
    (allocs() - before) as f64 / iters as f64
}

fn bench_dataplane(c: &mut Criterion) {
    let host_src = Addr::from_octets(10, 1, 0, 100);
    let remote_src = Addr::from_octets(10, 9, 0, 100);

    // -- Zero-allocation assertions (10k packets each, after warmup) --

    // Native transit: packet from the parent branch spans to the child
    // and the member LAN.
    {
        let mut e = on_tree_engine(ForwardingMode::Native);
        let pkt = DataPacket::new(remote_src, group(), 32, vec![0u8; 512]);
        let mut act = Vec::new();
        let per = steady_state_allocs(
            || {
                act.clear();
                e.handle_native_data(
                    SimTime::from_secs(2),
                    IfIndex(1),
                    parent_addr(),
                    pkt.clone(),
                    &mut act,
                );
            },
            10_000,
        );
        assert!(!act.is_empty(), "transit packet must fan out");
        assert_eq!(per, 0.0, "native transit forward must not allocate in steady state");
        println!("[native_transit] steady-state heap allocations/packet: {per}");
    }

    // Native local-origin: a member host's packet fans up and down.
    {
        let mut e = on_tree_engine(ForwardingMode::Native);
        let pkt = DataPacket::new(host_src, group(), 32, vec![0u8; 512]);
        let mut act = Vec::new();
        let per = steady_state_allocs(
            || {
                act.clear();
                e.handle_native_data(
                    SimTime::from_secs(2),
                    IfIndex(0),
                    host_src,
                    pkt.clone(),
                    &mut act,
                );
            },
            10_000,
        );
        assert!(!act.is_empty());
        assert_eq!(per, 0.0, "local-origin native forward must not allocate in steady state");
        println!("[native_local_origin] steady-state heap allocations/packet: {per}");
    }

    // CBT-mode transit: an on-tree encapsulated packet from the parent
    // spans to the child (refcounted clone) and decapsulates for the
    // member LAN (zero-copy view).
    {
        let mut e = on_tree_engine(ForwardingMode::CbtMode);
        let native = DataPacket::new(remote_src, group(), 32, vec![0u8; 512]);
        let mut enc = CbtDataPacket::encapsulate(&native, core());
        enc.cbt.on_tree = ON_TREE;
        let mut act = Vec::new();
        let per = steady_state_allocs(
            || {
                act.clear();
                e.handle_cbt_data(
                    SimTime::from_secs(2),
                    IfIndex(1),
                    parent_addr(),
                    enc.clone(),
                    &mut act,
                );
            },
            10_000,
        );
        assert!(!act.is_empty());
        assert_eq!(per, 0.0, "CBT-mode on-tree transit must not allocate in steady state");
        println!("[cbt_transit] steady-state heap allocations/packet: {per}");
    }

    // Sharded forward path: the same native transit through a 4-way
    // `ShardedRouter` front — steering (group → shard) plus the engine
    // must stay allocation-free too.
    {
        let mut e = on_tree_sharded(ForwardingMode::Native);
        let pkt = DataPacket::new(remote_src, group(), 32, vec![0u8; 512]);
        let mut act = Vec::new();
        let per = steady_state_allocs(
            || {
                act.clear();
                e.handle_native_data(
                    SimTime::from_secs(2),
                    IfIndex(1),
                    parent_addr(),
                    pkt.clone(),
                    &mut act,
                );
            },
            10_000,
        );
        assert!(!act.is_empty(), "sharded transit packet must fan out");
        assert_eq!(per, 0.0, "sharded native forward must not allocate in steady state");
        println!("[sharded_native_transit] steady-state heap allocations/packet: {per}");
    }

    // First-hop CBT encapsulation (§5.1) — the one path that must
    // materialize a new buffer. Reported, not asserted zero.
    {
        let mut e = on_tree_engine(ForwardingMode::CbtMode);
        let pkt = DataPacket::new(host_src, group(), 32, vec![0u8; 512]);
        let mut act = Vec::new();
        let per = steady_state_allocs(
            || {
                act.clear();
                e.handle_native_data(
                    SimTime::from_secs(2),
                    IfIndex(0),
                    host_src,
                    pkt.clone(),
                    &mut act,
                );
            },
            10_000,
        );
        println!("[cbt_first_hop_encap] steady-state heap allocations/packet: {per}");
    }

    // -- Timings for the same paths --

    let mut g = c.benchmark_group("dataplane_forward");
    g.throughput(Throughput::Elements(1));

    g.bench_function("native_transit_512B", |b| {
        let mut e = on_tree_engine(ForwardingMode::Native);
        let pkt = DataPacket::new(remote_src, group(), 32, vec![0u8; 512]);
        let mut act = Vec::new();
        b.iter(|| {
            act.clear();
            e.handle_native_data(
                black_box(SimTime::from_secs(2)),
                IfIndex(1),
                parent_addr(),
                black_box(pkt.clone()),
                &mut act,
            );
            black_box(&mut act);
        })
    });

    g.bench_function("cbt_transit_512B", |b| {
        let mut e = on_tree_engine(ForwardingMode::CbtMode);
        let native = DataPacket::new(remote_src, group(), 32, vec![0u8; 512]);
        let mut enc = CbtDataPacket::encapsulate(&native, core());
        enc.cbt.on_tree = ON_TREE;
        let mut act = Vec::new();
        b.iter(|| {
            act.clear();
            e.handle_cbt_data(
                black_box(SimTime::from_secs(2)),
                IfIndex(1),
                parent_addr(),
                black_box(enc.clone()),
                &mut act,
            );
            black_box(&mut act);
        })
    });

    g.bench_function("sharded_native_transit_512B", |b| {
        let mut e = on_tree_sharded(ForwardingMode::Native);
        let pkt = DataPacket::new(remote_src, group(), 32, vec![0u8; 512]);
        let mut act = Vec::new();
        b.iter(|| {
            act.clear();
            e.handle_native_data(
                black_box(SimTime::from_secs(2)),
                IfIndex(1),
                parent_addr(),
                black_box(pkt.clone()),
                &mut act,
            );
            black_box(&mut act);
        })
    });

    g.bench_function("cbt_first_hop_encap_512B", |b| {
        let mut e = on_tree_engine(ForwardingMode::CbtMode);
        let pkt = DataPacket::new(host_src, group(), 32, vec![0u8; 512]);
        let mut act = Vec::new();
        b.iter(|| {
            act.clear();
            e.handle_native_data(
                black_box(SimTime::from_secs(2)),
                IfIndex(0),
                host_src,
                black_box(pkt.clone()),
                &mut act,
            );
            black_box(&mut act);
        })
    });

    g.finish();

    // Make sure a future edit can't silently turn RouterAction clones
    // into deep copies: fan-out payloads must share the input's buffer.
    let mut e = on_tree_engine(ForwardingMode::Native);
    let pkt = DataPacket::new(remote_src, group(), 32, vec![0u8; 512]);
    let mut act = Vec::new();
    e.handle_native_data(SimTime::from_secs(2), IfIndex(1), parent_addr(), pkt.clone(), &mut act);
    for a in &act {
        if let RouterAction::SendNativeData { pkt: out, .. } = a {
            assert!(out.payload.shares_allocation_with(&pkt.payload));
        }
    }
}

criterion_group!(benches, bench_dataplane);
criterion_main!(benches);
