//! Spec-E7 bench: wire-format encode/decode throughput for every CBT
//! packet format (§8).

use cbt_wire::{
    Addr, CbtDataHeader, CbtDataPacket, ControlMessage, DataPacket, GroupId, IgmpMessage,
    JoinSubcode,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn sample_join() -> ControlMessage {
    ControlMessage::JoinRequest {
        subcode: JoinSubcode::ActiveJoin,
        group: GroupId::numbered(7),
        origin: Addr::from_octets(10, 1, 0, 1),
        target_core: Addr::from_octets(10, 255, 0, 4),
        cores: vec![Addr::from_octets(10, 255, 0, 4), Addr::from_octets(10, 255, 0, 9)],
    }
}

fn bench_control(c: &mut Criterion) {
    let msg = sample_join();
    let bytes = msg.encode().unwrap();
    let mut g = c.benchmark_group("control");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_join", |b| b.iter(|| black_box(&msg).encode().unwrap()));
    g.bench_function("decode_join", |b| {
        b.iter(|| ControlMessage::decode(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_data_header(c: &mut Criterion) {
    let h = CbtDataHeader::new(
        GroupId::numbered(7),
        Addr::from_octets(10, 255, 0, 4),
        Addr::from_octets(10, 1, 0, 100),
        64,
    );
    let bytes = h.encode();
    let mut g = c.benchmark_group("cbt_header");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(&h).encode()));
    g.bench_function("decode", |b| b.iter(|| CbtDataHeader::decode(black_box(&bytes)).unwrap()));
    g.finish();
}

fn bench_igmp(c: &mut Criterion) {
    let msg = IgmpMessage::Report { version: 3, group: GroupId::numbered(7) };
    let bytes = msg.encode();
    c.bench_function("igmp/report_roundtrip", |b| {
        b.iter(|| {
            let enc = black_box(&msg).encode();
            IgmpMessage::decode(&enc).unwrap()
        })
    });
    c.bench_function("igmp/decode", |b| b.iter(|| IgmpMessage::decode(black_box(&bytes)).unwrap()));
}

fn bench_full_datagram(c: &mut Criterion) {
    for size in [64usize, 512, 1400] {
        let native = DataPacket::new(
            Addr::from_octets(10, 1, 0, 100),
            GroupId::numbered(7),
            32,
            vec![0xab; size],
        );
        let enc = CbtDataPacket::encapsulate(&native, Addr::from_octets(10, 255, 0, 4));
        let wire = enc.wrap_unicast(
            Addr::from_octets(172, 31, 0, 1),
            Addr::from_octets(172, 31, 0, 2),
            None,
        );
        let mut g = c.benchmark_group(format!("datagram_{size}B"));
        g.throughput(Throughput::Bytes(wire.len() as u64));
        g.bench_function("unwrap_outer", |b| {
            b.iter(|| CbtDataPacket::unwrap_outer(black_box(&wire)).unwrap())
        });
        g.finish();
    }
}

criterion_group!(benches, bench_control, bench_data_header, bench_igmp, bench_full_datagram);
criterion_main!(benches);
