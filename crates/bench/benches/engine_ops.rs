//! Control-plane microbenches: join processing rate at an on-tree
//! router (ack generation) and at a forwarding router, keepalive
//! service cost with many groups.

use cbt::{CbtConfig, CbtRouter};
use cbt_netsim::SimTime;
use cbt_routing::Hop;
use cbt_topology::{IfIndex, NetworkBuilder, RouterId};
use cbt_wire::{AckSubcode, Addr, ControlMessage, GroupId, JoinSubcode};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;

struct FixedRoutes(BTreeMap<Addr, Hop>);
impl cbt::RouteLookup for FixedRoutes {
    fn hop_toward(&self, dst: Addr) -> Option<Hop> {
        self.0.get(&dst).copied()
    }
}

fn core() -> Addr {
    Addr::from_octets(10, 255, 0, 9)
}

fn engine_with_routes() -> CbtRouter {
    let mut b = NetworkBuilder::new();
    let me = b.router("ME");
    let up = b.router("UP");
    let down = b.router("DOWN");
    let lan = b.lan("S0");
    b.attach(lan, me);
    b.link(me, up, 1);
    b.link(me, down, 1);
    let net = b.build();
    let mut routes = BTreeMap::new();
    routes.insert(
        core(),
        Hop {
            iface: IfIndex(1),
            router: RouterId(1),
            addr: Addr::from_octets(172, 31, 0, 2),
            dist: 1,
        },
    );
    CbtRouter::new(&net, me, CbtConfig::default(), Box::new(FixedRoutes(routes)), SimTime::ZERO)
}

/// Join termination at a core: the hot path of group setup.
fn bench_join_termination(c: &mut Criterion) {
    c.bench_function("engine/join_terminate_at_core", |b| {
        b.iter_batched(
            || {
                let mut e = engine_with_routes();
                let my_id = e.id_addr();
                // Prime: become the core for the group.
                e.handle_control(
                    SimTime::ZERO,
                    IfIndex(2),
                    Addr::from_octets(172, 31, 0, 6),
                    ControlMessage::JoinRequest {
                        subcode: JoinSubcode::ActiveJoin,
                        group: GroupId::numbered(1),
                        origin: Addr::from_octets(10, 9, 0, 1),
                        target_core: my_id,
                        cores: vec![my_id],
                    },
                );
                e
            },
            |mut e| {
                let my_id = e.id_addr();
                // A refreshed join from the same child: pure ack path.
                e.handle_control(
                    black_box(SimTime::from_secs(1)),
                    IfIndex(2),
                    Addr::from_octets(172, 31, 0, 6),
                    ControlMessage::JoinRequest {
                        subcode: JoinSubcode::ActiveJoin,
                        group: GroupId::numbered(1),
                        origin: Addr::from_octets(10, 9, 0, 1),
                        target_core: my_id,
                        cores: vec![my_id],
                    },
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

/// Echo keepalive service with many concurrent groups (the per-tick
/// cost a busy router pays).
fn bench_keepalive_service(c: &mut Criterion) {
    for groups in [16usize, 128] {
        c.bench_function(&format!("engine/echo_service_{groups}_groups"), |b| {
            b.iter_batched(
                || {
                    let mut e = engine_with_routes();
                    for n in 0..groups {
                        let g = GroupId::numbered(n as u16);
                        e.learn_cores(g, &[core()]);
                        // Manufacture on-tree state via a forwarded join + ack.
                        e.handle_control(
                            SimTime::ZERO,
                            IfIndex(2),
                            Addr::from_octets(172, 31, 0, 6),
                            ControlMessage::JoinRequest {
                                subcode: JoinSubcode::ActiveJoin,
                                group: g,
                                origin: Addr::from_octets(10, 9, 0, 1),
                                target_core: core(),
                                cores: vec![core()],
                            },
                        );
                        e.handle_control(
                            SimTime::ZERO,
                            IfIndex(1),
                            Addr::from_octets(172, 31, 0, 2),
                            ControlMessage::JoinAck {
                                subcode: AckSubcode::Normal,
                                group: g,
                                origin: Addr::from_octets(10, 9, 0, 1),
                                target_core: core(),
                                cores: vec![core()],
                            },
                        );
                    }
                    e
                },
                |mut e| e.on_timer(black_box(SimTime::from_secs(30))),
                criterion::BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(benches, bench_join_termination, bench_keepalive_service);
criterion_main!(benches);
