//! Substrate microbenches: topology generation, SPF and the baseline
//! tree constructions the evaluation sweeps lean on.

use cbt_baselines::{cbt_shared_tree, flood_and_prune};
use cbt_topology::{generate, AllPairs, NodeId, ShortestPaths};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_waxman(c: &mut Criterion) {
    for n in [50usize, 200] {
        c.bench_function(&format!("graph/waxman_n{n}"), |b| {
            b.iter(|| {
                generate::waxman(generate::WaxmanParams { n, ..Default::default() }, black_box(42))
            })
        });
    }
}

fn bench_spf(c: &mut Criterion) {
    let g = generate::waxman(generate::WaxmanParams { n: 200, ..Default::default() }, 1);
    c.bench_function("graph/dijkstra_n200", |b| {
        b.iter(|| ShortestPaths::dijkstra(black_box(&g), NodeId(0)))
    });
    c.bench_function("graph/allpairs_n200", |b| b.iter(|| AllPairs::compute(black_box(&g))));
}

fn bench_trees(c: &mut Criterion) {
    let g = generate::waxman(generate::WaxmanParams { n: 200, ..Default::default() }, 1);
    let members: Vec<NodeId> = (0..32).map(|i| NodeId(i * 6)).collect();
    c.bench_function("tree/cbt_shared_n200_m32", |b| {
        b.iter(|| cbt_shared_tree(black_box(&g), NodeId(100), black_box(&members)))
    });
    c.bench_function("tree/flood_prune_n200_m32", |b| {
        b.iter(|| flood_and_prune(black_box(&g), NodeId(3), black_box(&members)))
    });
}

criterion_group!(benches, bench_waxman, bench_spf, bench_trees);
criterion_main!(benches);
