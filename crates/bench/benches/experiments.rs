//! One Criterion target per evaluation table/figure: each bench runs
//! the *same* code the `cbt-eval` binary uses to regenerate that
//! artifact (quick presets so the bench suite stays minutes, not
//! hours). `cargo bench --bench experiments` therefore re-derives every
//! S93-* and Abl-* result.

use cbt_eval::experiments::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_state_scaling(c: &mut Criterion) {
    c.bench_function("experiment/S93-T1_state_scaling", |b| {
        b.iter(|| state::run(&state::Params::quick()))
    });
}

fn bench_tree_cost(c: &mut Criterion) {
    c.bench_function("experiment/S93-T2_tree_cost", |b| {
        b.iter(|| treecost::run(&treecost::Params::quick()))
    });
}

fn bench_delay_ratio(c: &mut Criterion) {
    c.bench_function("experiment/S93-F1_delay_ratio", |b| {
        b.iter(|| delay::run(&delay::Params::quick()))
    });
}

fn bench_traffic(c: &mut Criterion) {
    c.bench_function("experiment/S93-F2_traffic_concentration", |b| {
        b.iter(|| traffic::run(&traffic::Params::quick()))
    });
}

fn bench_overhead(c: &mut Criterion) {
    c.bench_function("experiment/S93-T3_control_overhead", |b| {
        b.iter(|| overhead::run(&overhead::Params::quick()))
    });
}

fn bench_latency(c: &mut Criterion) {
    c.bench_function("experiment/S93-T4_join_latency", |b| {
        b.iter(|| latency::run(&latency::Params::quick()))
    });
}

fn bench_placement(c: &mut Criterion) {
    c.bench_function("experiment/Abl-1_core_placement", |b| {
        b.iter(|| placement::run(&placement::Params::quick()))
    });
}

fn bench_multicore(c: &mut Criterion) {
    c.bench_function("experiment/Abl-2_multi_core_failover", |b| {
        b.iter(|| multicore::run(&multicore::Params::quick()))
    });
}

fn bench_spec_walkthroughs(c: &mut Criterion) {
    c.bench_function("experiment/Spec-E1..E6_walkthroughs", |b| {
        b.iter(|| {
            let _ = spec::e1();
            let _ = spec::e2();
            let _ = spec::e3();
            let _ = spec::e4();
            let _ = spec::e5();
            spec::e6()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_state_scaling, bench_tree_cost, bench_delay_ratio, bench_traffic,
        bench_overhead, bench_latency, bench_placement, bench_multicore,
        bench_spec_walkthroughs
}
criterion_main!(benches);
