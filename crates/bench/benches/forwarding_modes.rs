//! Abl-3 bench: native-mode vs CBT-mode per-packet forwarding cost and
//! bytes-on-wire overhead (§4 vs §5).

use cbt::{config::ForwardingMode, CbtConfig, CbtRouter, RouterAction};
use cbt_netsim::SimTime;
use cbt_routing::Hop;
use cbt_topology::{IfIndex, NetworkBuilder, RouterId};
use cbt_wire::{AckSubcode, Addr, ControlMessage, DataPacket, GroupId, JoinSubcode};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::collections::BTreeMap;

struct FixedRoutes(BTreeMap<Addr, Hop>);
impl cbt::RouteLookup for FixedRoutes {
    fn hop_toward(&self, dst: Addr) -> Option<Hop> {
        self.0.get(&dst).copied()
    }
}

fn group() -> GroupId {
    GroupId::numbered(1)
}

fn core() -> Addr {
    Addr::from_octets(10, 255, 0, 9)
}

/// An on-tree engine: member LAN on if0, parent via if1, child via if2.
fn on_tree_engine(mode: ForwardingMode) -> CbtRouter {
    let mut b = NetworkBuilder::new();
    let me = b.router("ME");
    let up = b.router("UP");
    let down = b.router("DOWN");
    let lan = b.lan("S0");
    b.attach(lan, me);
    b.host("H", lan);
    b.link(me, up, 1);
    b.link(me, down, 1);
    let net = b.build();
    let mut routes = BTreeMap::new();
    routes.insert(
        core(),
        Hop {
            iface: IfIndex(1),
            router: RouterId(1),
            addr: Addr::from_octets(172, 31, 0, 2),
            dist: 1,
        },
    );
    let mut e = CbtRouter::new(
        &net,
        me,
        CbtConfig::default().with_mode(mode),
        Box::new(FixedRoutes(routes)),
        SimTime::ZERO,
    );
    // Local member (makes us DR + eventually G-DR).
    e.handle_igmp(
        SimTime::ZERO,
        IfIndex(0),
        Addr::from_octets(10, 1, 0, 100),
        cbt_wire::IgmpMessage::RpCore(cbt_wire::RpCoreReport {
            group: group(),
            code: cbt_wire::igmp::RP_CORE_CODE_CBT,
            target_core_index: 0,
            cores: vec![core()],
        }),
    );
    e.handle_igmp(
        SimTime::ZERO,
        IfIndex(0),
        Addr::from_octets(10, 1, 0, 100),
        cbt_wire::IgmpMessage::Report { version: 3, group: group() },
    );
    // Complete our join and adopt a child.
    e.handle_control(
        SimTime::from_secs(1),
        IfIndex(1),
        Addr::from_octets(172, 31, 0, 2),
        ControlMessage::JoinAck {
            subcode: AckSubcode::Normal,
            group: group(),
            origin: Addr::from_octets(10, 1, 0, 1),
            target_core: core(),
            cores: vec![core()],
        },
    );
    e.handle_control(
        SimTime::from_secs(1),
        IfIndex(2),
        Addr::from_octets(172, 31, 0, 6),
        ControlMessage::JoinRequest {
            subcode: JoinSubcode::ActiveJoin,
            group: group(),
            origin: Addr::from_octets(10, 9, 0, 1),
            target_core: core(),
            cores: vec![core()],
        },
    );
    assert!(e.is_on_tree(group()));
    e
}

fn bench_modes(c: &mut Criterion) {
    for (name, mode) in [("native", ForwardingMode::Native), ("cbt_mode", ForwardingMode::CbtMode)]
    {
        let mut engine = on_tree_engine(mode);
        let pkt = DataPacket::new(Addr::from_octets(10, 1, 0, 100), group(), 32, vec![0u8; 512]);
        // Measure the engine's per-packet forwarding decision + any
        // encapsulation work, and record the bytes each mode puts on
        // the wire.
        let host_src = Addr::from_octets(10, 1, 0, 100);
        let mut actions = Vec::new();
        engine.handle_native_data(
            SimTime::from_secs(2),
            IfIndex(0),
            host_src,
            pkt.clone(),
            &mut actions,
        );
        let wire_bytes: usize = actions
            .iter()
            .map(|a| match a {
                RouterAction::SendNativeData { pkt, .. } => pkt.encode().len(),
                RouterAction::SendCbtUnicast { pkt, .. } => pkt.encode_payload().len() + 20,
                RouterAction::SendCbtMulticast { pkt, .. } => pkt.encode_payload().len() + 20,
                _ => 0,
            })
            .sum();
        let mut g = c.benchmark_group(format!("forward_{name}"));
        g.throughput(Throughput::Bytes(wire_bytes as u64));
        g.bench_function("one_packet_512B", |b| {
            // One action buffer reused across iterations — the shape
            // every real caller (sim and live) now has.
            let mut act = Vec::new();
            b.iter(|| {
                act.clear();
                engine.handle_native_data(
                    black_box(SimTime::from_secs(2)),
                    IfIndex(0),
                    host_src,
                    black_box(pkt.clone()),
                    &mut act,
                );
                black_box(&mut act);
            })
        });
        g.finish();
        println!("[{name}] bytes on wire per 512B packet across this hop: {wire_bytes}");
    }
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
