//! End-to-end simulator benches: the Figure 1 walkthrough (Spec-E1..E4
//! in one run) and a Waxman join-convergence run — the cost of
//! regenerating the spec scenarios from scratch.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{figure1, generate, HostId, NetworkSpec, NodeId};
use cbt_wire::GroupId;
use criterion::{criterion_group, criterion_main, Criterion};

/// Full Figure 1 scenario: 12 hosts join, G multicasts, everyone hears.
fn bench_figure1_walkthrough(c: &mut Criterion) {
    c.bench_function("sim/figure1_join_and_data", |b| {
        b.iter(|| {
            let fig = figure1();
            let group = GroupId::numbered(1);
            let cores = vec![
                fig.net.router_addr(fig.primary_core()),
                fig.net.router_addr(fig.secondary_core()),
            ];
            let mut cw = CbtWorld::build(
                fig.net.clone(),
                CbtConfig::fast(),
                WorldConfig { record_trace: false, ..Default::default() },
            );
            for h in [
                fig.hosts.a,
                fig.hosts.b,
                fig.hosts.c,
                fig.hosts.d,
                fig.hosts.e,
                fig.hosts.f,
                fig.hosts.g,
                fig.hosts.h,
                fig.hosts.i,
                fig.hosts.j,
                fig.hosts.k,
                fig.hosts.l,
            ] {
                cw.host(h).join_at(SimTime::from_secs(1), group, cores.clone());
            }
            cw.host(fig.hosts.g).send_at(SimTime::from_secs(5), group, b"x".to_vec(), 32);
            cw.world.start();
            cw.world.run_until(SimTime::from_secs(8));
            assert_eq!(cw.host(fig.hosts.j).received().len(), 1);
            cw.world.trace().totals()
        })
    });
}

/// 30-router Waxman network: 10 joins converging + 30 s of keepalives.
fn bench_waxman_convergence(c: &mut Criterion) {
    c.bench_function("sim/waxman30_converge", |b| {
        b.iter(|| {
            let graph = generate::waxman(generate::WaxmanParams { n: 30, ..Default::default() }, 3);
            let net = NetworkSpec::from_graph_with_stub_lans(&graph);
            let core = net.router_addr(cbt_topology::RouterId(0));
            let group = GroupId::numbered(1);
            let mut cw = CbtWorld::build(
                net,
                CbtConfig::fast(),
                WorldConfig { record_trace: false, ..Default::default() },
            );
            for i in (0..30).step_by(3) {
                let _ = NodeId(i as u32);
                cw.host(HostId(i as u32)).join_at(
                    SimTime::from_secs(1) + SimDuration::from_millis(100 * i as u64),
                    group,
                    vec![core],
                );
            }
            cw.world.start();
            cw.world.run_until(SimTime::from_secs(40));
            cw.world.trace().totals()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figure1_walkthrough, bench_waxman_convergence
}
criterion_main!(benches);
