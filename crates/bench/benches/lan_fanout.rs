//! LAN fan-out blast: the simulator's data-plane hot path.
//!
//! One router fronting a 64-host LAN; every host is a member and one
//! host blasts 600 small (64-byte) packets. Each transmission fans out to
//! all ~64 stations on the segment — the delivery pattern the
//! zero-copy (`Bytes`) frame path and the precomputed LAN delivery
//! plans exist for. Setup (topology, SPF, joins) is deliberately tiny
//! so per-receiver delivery cost dominates the measurement.

use cbt::{CbtConfig, CbtWorld};
use cbt_netsim::{SimDuration, SimTime, WorldConfig};
use cbt_topology::{HostId, NetworkBuilder};
use cbt_wire::GroupId;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const HOSTS: u32 = 64;
const PACKETS: u64 = 600;
const PAYLOAD: usize = 64;

fn bench_lan_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    // Application bytes delivered per iteration: every packet reaches
    // every station except the sender.
    g.throughput(Throughput::Bytes(PACKETS * (HOSTS as u64 - 1) * PAYLOAD as u64));
    g.bench_function("lan_fanout_blast_64rx_64B", |b| {
        b.iter(|| {
            let mut nb = NetworkBuilder::new();
            let r0 = nb.router("R0");
            let s0 = nb.lan("S0");
            nb.attach(s0, r0);
            for i in 0..HOSTS {
                nb.host(format!("H{i}"), s0);
            }
            let net = nb.build();
            let core = net.router_addr(r0);
            let group = GroupId::numbered(1);
            let mut cw = CbtWorld::build(
                net,
                CbtConfig::fast(),
                WorldConfig { record_trace: false, ..Default::default() },
            );
            for i in 0..HOSTS {
                cw.host(HostId(i)).join_at(SimTime::from_secs(1), group, vec![core]);
            }
            let payload = vec![0xabu8; PAYLOAD];
            for k in 0..PACKETS {
                cw.host(HostId(0)).send_at(
                    SimTime::from_secs(2) + SimDuration::from_millis(k),
                    group,
                    payload.clone(),
                    32,
                );
            }
            cw.world.start();
            cw.world.run_until(SimTime::from_secs(3));
            // Every other station heard every blast packet.
            assert_eq!(cw.host(HostId(1)).received().len(), PACKETS as usize);
            cw.world.trace().totals()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lan_fanout
}
criterion_main!(benches);
